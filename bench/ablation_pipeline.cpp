// Ablation: the mechanism behind Fig. 5(a)'s multicast>systolic ordering.
//
// The systolic time row spans all three loops, so each tile pays a
// (P1+P2-2)-cycle fill/drain; the multicast time row spans only the
// reduction loop. Sweeping K shows the systolic penalty amortizing away —
// the crossover logic a designer would use TensorLib's model to explore.
#include <cstdio>

#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  std::printf("\n=== Ablation  systolic pipeline fill vs reduction depth ===\n");
  std::printf("  %-6s %-14s %-14s %s\n", "K", "MMT util", "SST util",
              "SST/MMT");
  for (std::int64_t k : {16, 32, 64, 128, 256, 512, 1024}) {
    const auto g = tensor::workloads::gemm(256, 256, k);
    stt::ArrayConfig cfg;
    const auto mmt = sim::estimatePerformance(
        *stt::findDataflowByLabel(g, "MNK-MMT"), cfg);
    const auto sst = sim::estimatePerformance(
        *stt::findDataflowByLabel(g, "MNK-SST"), cfg);
    std::printf("  %-6lld %-14.3f %-14.3f %.3f\n", static_cast<long long>(k),
                mmt.utilization, sst.utilization,
                sst.utilization / mmt.utilization);
  }
  std::printf("  shape: ratio -> 1 as K grows (fill amortizes)\n");
  return 0;
}
