// Fig. 6: power/area scatter of the enumerated dataflow design space,
// 16x16 PE array, INT16, 320 MHz ASIC target.
//
// (a) GEMM: the paper plots 148 design points spanning area 0.75-0.875 mm²
//     and power 35-63 mW (1.8x power spread vs 1.16x area spread; dual-
//     multicast-input designs are the most power-hungry, reduction trees
//     are cheap, stationary tensors cost extra area+power).
// (b) Depthwise-Conv2D: 33 points, same axes.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

#include "cost/asic.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;

void scatter(const char* title, const std::vector<stt::DataflowSpec>& specs,
             const char* csvPath) {
  std::printf("\n=== %s ===\n", title);
  stt::ArrayConfig cfg;  // 16x16
  struct Point {
    std::string label;
    double area, power;
  };
  std::vector<Point> pts;
  for (const auto& s : specs) {
    const auto rep = cost::estimateAsic(s, cfg, 16);
    pts.push_back({s.label(), rep.areaMm2, rep.powerMw});
  }
  {
    // Full scatter as CSV for plotting (the stdout table is subsampled).
    std::ofstream csv(csvPath);
    csv << "dataflow,area_mm2,power_mw\n";
    for (const auto& p : pts)
      csv << p.label << "," << p.area << "," << p.power << "\n";
    std::printf("  full scatter written to %s\n", csvPath);
  }
  std::sort(pts.begin(), pts.end(),
            [](const Point& a, const Point& b) { return a.power < b.power; });

  std::printf("  %zu design points (paper: 148 GEMM / 33 depthwise)\n",
              pts.size());
  std::printf("  %-14s %-10s %s\n", "dataflow", "area(mm2)", "power(mW)");
  const std::size_t step = std::max<std::size_t>(1, pts.size() / 20);
  for (std::size_t i = 0; i < pts.size(); i += step)
    std::printf("  %-14s %-10.3f %.1f\n", pts[i].label.c_str(), pts[i].area,
                pts[i].power);
  if (pts.empty()) return;

  const auto [minA, maxA] = std::minmax_element(
      pts.begin(), pts.end(),
      [](const Point& a, const Point& b) { return a.area < b.area; });
  std::printf("  area  range: %.3f - %.3f mm2 (spread %.2fx; paper 1.16x)\n",
              minA->area, maxA->area, maxA->area / minA->area);
  std::printf("  power range: %.1f - %.1f mW (spread %.2fx; paper 1.8x)\n",
              pts.front().power, pts.back().power,
              pts.back().power / pts.front().power);
  std::printf("  most power-hungry designs: %s, %s (paper: MM* multicast pairs)\n",
              pts[pts.size() - 1].label.c_str(),
              pts[pts.size() - 2].label.c_str());
}

}  // namespace

int main() {
  const auto g = tensor::workloads::gemm(256, 256, 256);
  scatter("Fig. 6(a)  GEMM design space, 16x16 INT16",
          stt::enumerateTransforms(g, stt::LoopSelection(g, {0, 1, 2})),
          "fig6a_gemm.csv");

  // Depthwise: enumerate over all selections, keep one representative per
  // (selection, letters) signature — the granularity the paper plots.
  const auto dw = tensor::workloads::depthwiseConv(64, 56, 56, 3, 3);
  std::vector<stt::DataflowSpec> dwSpecs;
  std::set<std::string> seen;
  for (const auto& sel : stt::allLoopSelections(dw))
    for (auto& s : stt::enumerateTransforms(dw, sel))
      if (seen.insert(s.label()).second) dwSpecs.push_back(std::move(s));
  scatter("Fig. 6(b)  Depthwise-Conv design space, 16x16 INT16", dwSpecs,
          "fig6b_depthwise.csv");
  return 0;
}
