// Struct-of-arrays block pipeline vs scalar per-candidate pipeline (the
// PR-8 perf anchor).
//
// Runs the same traffic two ways through the exploration service:
//
//   scalar   blockSpecs = 0: the per-candidate path — one peek, one scalar
//            lower bound, one evaluation at a time, pointer-rich specs.
//   block    blockSpecs = 64: enumerated lists packed once into contiguous
//            struct-of-arrays buffers (stt::SpecBlockSet); bounds run as
//            packed loops over whole blocks, dominance cuts land before any
//            tile search, and survivors share one tile search per mapping
//            class through a BlockMappingStore.
//
// Scenario: the batched 10-query overlapping service scenario (GEMM-256
// under ASIC+FPGA objectives, attention, duplicate traffic), cold on a
// fresh service per side with the process-wide candidate memo cleared, so
// both sides pay enumeration honestly. Gate: block >= 2x (full mode only).
//
// Bit-identity is asserted every run, gates or not: block frontiers at 1
// and 8 worker threads, cold and warm, must equal the scalar frontiers.
//
// Merges a "block" section into BENCH_hotpaths.json next to the earlier
// gates.
//
// Usage: bench_block [--smoke] [--out <path>]
//   --smoke   maxEntry=1 spaces, correctness asserts only, no timing gates
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/explore_service.hpp"
#include "service_scenario.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr double kGateMinBatched = 2.0;
constexpr std::size_t kBlockSpecs = 64;

driver::ServiceOptions pipelineOptions(std::size_t blockSpecs,
                                       std::size_t threads = 0) {
  driver::ServiceOptions o;
  o.threads = threads;
  o.blockSpecs = blockSpecs;
  return o;
}

struct BlockReport {
  std::size_t batchDesigns = 0;  ///< design points across the batch
  double scalarColdMs = 0, blockColdMs = 0, blockWarmMs = 0;
  std::uint64_t pruned = 0;  ///< block-side dominance cuts, cold batch
  double coldSpeedup() const { return scalarColdMs / blockColdMs; }
};

BlockReport benchBlock(int maxEntry) {
  BlockReport r;
  const auto batch = bench::serviceScenarioBatch(maxEntry);

  // --- scalar side, cold: fresh service, cold candidate memo.
  std::vector<driver::QueryResult> scalarB;
  {
    stt::clearCandidateCache();
    driver::ExplorationService service(pipelineOptions(0));
    const auto t = Clock::now();
    scalarB = service.runBatch(batch);
    r.scalarColdMs = msSince(t);
  }

  // --- block side, cold + warm rerun on the same service.
  std::vector<driver::QueryResult> blockB, blockWarm;
  {
    stt::clearCandidateCache();
    driver::ExplorationService service(pipelineOptions(kBlockSpecs));
    const auto t = Clock::now();
    blockB = service.runBatch(batch);
    r.blockColdMs = msSince(t);
    const auto w = Clock::now();
    blockWarm = service.runBatch(batch);
    r.blockWarmMs = msSince(w);
  }
  bench::checkSameResults(scalarB, blockB);
  bench::checkSameResults(scalarB, blockWarm);
  for (const auto& res : blockB) {
    r.batchDesigns += res.designs;
    r.pruned += res.cache.pruned;
  }

  // --- thread-count bit-identity: 1 and 8 workers, cold services.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    driver::ExplorationService service(pipelineOptions(kBlockSpecs, threads));
    bench::checkSameResults(scalarB, service.runBatch(batch));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Block evaluation (smoke)"
                             : "Block vs scalar evaluation pipeline");
    const BlockReport r = benchBlock(smoke ? 1 : 2);
    std::printf(
        "  batched  scalar %.1f ms | block %.1f ms (%.2fx) | warm rerun %.1f "
        "ms  [%zu design evals, %llu cut, frontiers bit-identical at 1+8 "
        "threads]\n",
        r.scalarColdMs, r.blockColdMs, r.coldSpeedup(), r.blockWarmMs,
        r.batchDesigns, static_cast<unsigned long long>(r.pruned));

    const bool pass = smoke || r.coldSpeedup() >= kGateMinBatched;
    std::ostringstream line;
    line << "\"block\": {\"workloads\": \"gemm256+attention64\", "
         << "\"block_specs\": " << kBlockSpecs
         << ", \"batch_design_evals\": " << r.batchDesigns
         << ", \"batched_scalar_ms\": " << r.scalarColdMs
         << ", \"batched_block_ms\": " << r.blockColdMs
         << ", \"batched_speedup\": " << r.coldSpeedup()
         << ", \"block_warm_ms\": " << r.blockWarmMs
         << ", \"pruned_batched\": " << r.pruned
         << ", \"gate_min_batched_speedup\": " << kGateMinBatched
         << ", \"pass\": " << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "block", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass)
      std::printf("  GATE FAIL: batched block speedup %.2f < %.1f\n",
                  r.coldSpeedup(), kGateMinBatched);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
