// Socket front-end throughput benchmark (the network-service anchor).
//
// Runs the same 3-query reference traffic against an in-process
// ExplorationDaemon + SocketServer over loopback TCP at 1 and 8
// concurrent connections, each driven by a driver::ExploreClient. Every
// response is asserted canonically identical (query index and volatile
// cache counters stripped) to a socket-free reference daemon answering
// the same queries — concurrency and transport may only change how fast
// answers arrive, never what they are.
//
// Merges a "socket" section into BENCH_hotpaths.json. Absolute loopback
// throughput on shared runners is all jitter, so the committed gate is a
// ratio of the two measurements taken in the same process: 8 concurrent
// connections must sustain at least half the per-connection request rate
// of a single connection (full mode only; the correctness asserts run in
// every mode).
//
// Usage: bench_socket [--smoke] [--out <path>]
//   --smoke   few iterations, correctness asserts only, no gate
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cost/backend.hpp"
#include "driver/explore_client.hpp"
#include "driver/pareto.hpp"
#include "driver/socket_server.hpp"
#include "driver/wire.hpp"
#include "support/error.hpp"
#include "support/jsonl.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

/// Committed gate (full mode): aggregate req/s at 8 connections must be at
/// least this fraction of the single-connection rate — concurrency must
/// scale service throughput, not serialize it.
constexpr double kGateMinConcurrentRatio = 0.5;

const char* kQueries[] = {
    R"({"workload": "gemm", "rows": 8, "cols": 8, "max_entry": 1})",
    R"({"workload": "gemm", "rows": 8, "cols": 8, "max_entry": 1, "objective": "power"})",
    R"({"workload": "attention", "rows": 8, "cols": 8, "max_entry": 1})",
};

/// Strips the per-connection query index and the arrival-order-dependent
/// cache counters (same canonicalization as tools/chaos_runner).
std::string canonical(const std::string& response) {
  std::string s = response;
  if (s.rfind("{\"query\": ", 0) == 0) {
    const auto comma = s.find(", ");
    if (comma != std::string::npos) s = "{" + s.substr(comma + 2);
  }
  const auto cache = s.rfind(", \"cache\": ");
  if (cache != std::string::npos && s.size() >= 2 &&
      s.compare(s.size() - 2, 2, "}}") == 0) {
    s = s.substr(0, cache) + "}";
  }
  return s;
}

std::vector<std::string> referenceLines() {
  driver::ExplorationDaemon daemon;
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < std::size(kQueries); ++i) {
    auto request = driver::wire::parseRequest(support::parseJsonLine(kQueries[i]));
    const std::string backend = cost::backendKindName(request.query->backend);
    const std::string objective = driver::objectiveName(request.query->objective);
    const auto outcome = daemon.runOne("ref", std::move(*request.query));
    TL_CHECK(outcome.has_value() && !outcome->failed(), "reference query failed");
    lines.push_back(canonical(driver::wire::resultLine(
        i, request.name, backend, objective, *outcome->result, 16)));
  }
  daemon.shutdown();
  return lines;
}

struct Run {
  int connections = 0;
  std::size_t requests = 0;
  double ms = 0;
  double perSec() const { return requests / (ms / 1000.0); }
};

Run benchConnections(int connections, int itersPerConnection,
                     const std::vector<std::string>& expected) {
  driver::DaemonOptions dopts;
  dopts.workers = 2;
  dopts.queueBound = 256;
  dopts.perClientQueueBound = 32;
  driver::ExplorationDaemon daemon(dopts);
  driver::SocketServerOptions sopts;
  sopts.port = 0;  // ephemeral
  driver::SocketServer server(daemon, sopts);
  TL_CHECK(server.start(), "socket server failed to start: " + server.lastError());

  Run run;
  run.connections = connections;
  run.requests = static_cast<std::size_t>(connections) * itersPerConnection;
  std::vector<std::thread> clients;
  std::vector<std::string> errors(connections);
  const auto t = Clock::now();
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      driver::ClientOptions copts;
      copts.port = server.port();
      driver::ExploreClient client(copts);
      for (int i = 0; i < itersPerConnection; ++i) {
        const std::size_t q = i % std::size(kQueries);
        const auto response = client.request(kQueries[q]);
        if (!response.has_value()) {
          errors[c] = "request exhausted attempts";
          return;
        }
        if (canonical(*response) != expected[q]) {
          errors[c] = "response diverged from reference";
          return;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - t).count();
  for (const auto& error : errors) TL_CHECK(error.empty(), error);

  server.close("");
  daemon.shutdown();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Socket front-end (smoke)"
                             : "Socket front-end throughput");
    const auto expected = referenceLines();
    const int iters = smoke ? 8 : 200;
    double perSec1 = 0, perSec8 = 0;
    std::ostringstream line;
    line << "\"socket\": {\"iters_per_connection\": " << iters;
    for (const int connections : {1, 8}) {
      const Run run = benchConnections(connections, iters, expected);
      std::printf(
          "  %d connection%s | %zu requests in %.1f ms (%.0f req/s) "
          "[all responses canonically identical to reference]\n",
          run.connections, run.connections == 1 ? " " : "s", run.requests,
          run.ms, run.perSec());
      (connections == 1 ? perSec1 : perSec8) = run.perSec();
      line << ", \"conns_" << connections << "_req_per_sec\": " << run.perSec();
    }
    const double ratio = perSec8 / perSec1;
    const bool pass = smoke || ratio >= kGateMinConcurrentRatio;
    line << ", \"concurrent_ratio\": " << ratio
         << ", \"gate_min_concurrent_ratio\": " << kGateMinConcurrentRatio
         << ", \"pass\": " << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "socket", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass)
      std::printf("  GATE FAIL: 8-connection throughput ratio %.2f < %.2f\n",
                  ratio, kGateMinConcurrentRatio);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
