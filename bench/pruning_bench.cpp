// Frontier-pruned vs exhaustive evaluation benchmark (the PR-4 perf anchor).
//
// Runs the same traffic two ways through the exploration service:
//
//   exhaustive  PR-3 pipeline shape: every enumerated design point fully
//               evaluated (pruning off, tile-mapping memo off).
//   pruned      the frontier-aware pipeline: lower-bound dominance cuts
//               skip evaluations the incumbent frontier already dominates,
//               and the service's mapping memo collapses sign-relative
//               transforms onto one tile search.
//
// Two scenarios, both asserted bit-identical between the two pipelines:
//
//   single   one cold GEMM-256 query on a fresh service (gate: >= 1.5x).
//   batched  the 10-query overlapping service scenario from the "service"
//            bench — GEMM under ASIC+FPGA objectives, attention, duplicate
//            traffic (gate: >= 2x).
//
// Both sides pin blockSpecs=0: this bench isolates the SCALAR path's
// dominance cut and mapping memo, which the packed block pipeline (the
// default since blockSpecs flipped to 64) subsumes differently — block-path
// pruning has its own gates in the "block" and "enum3" sections.
//
// Merges a "pruning" section into BENCH_hotpaths.json next to the PR-1/3
// gates. Gates apply in full mode only.
//
// Usage: bench_pruning [--smoke] [--out <path>]
//   --smoke   maxEntry=1 spaces, correctness asserts only, no timing gates
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/explore_service.hpp"
#include "service_scenario.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr double kGateMinSingle = 1.5;
constexpr double kGateMinBatched = 2.0;

driver::ServiceOptions exhaustiveOptions() {
  driver::ServiceOptions o;
  o.enablePruning = false;
  o.mappingCacheCapacity = 0;
  o.blockSpecs = 0;  // scalar path (see file comment)
  return o;
}

driver::ServiceOptions prunedOptions() {
  driver::ServiceOptions o;
  o.blockSpecs = 0;  // scalar path (see file comment)
  return o;
}

struct PruningReport {
  std::size_t designs = 0;       ///< single-query space size
  std::size_t batchDesigns = 0;  ///< design points across the batch
  double singleExhaustiveMs = 0, singlePrunedMs = 0;
  double batchedExhaustiveMs = 0, batchedPrunedMs = 0;
  std::uint64_t pruned = 0;        ///< single-query dominance cuts
  std::uint64_t batchPruned = 0;   ///< batch-wide dominance cuts
  std::uint64_t mappingHits = 0, mappingMisses = 0;
  double singleSpeedup() const { return singleExhaustiveMs / singlePrunedMs; }
  double batchedSpeedup() const { return batchedExhaustiveMs / batchedPrunedMs; }
};

PruningReport benchPruning(int maxEntry) {
  PruningReport r;

  // --- single cold query: fresh service per side.
  driver::ExploreQuery single(tensor::workloads::gemm(256, 256, 256));
  single.enumeration.maxEntry = maxEntry;
  std::vector<driver::QueryResult> exhaustive1, pruned1;
  {
    driver::ExplorationService service(exhaustiveOptions());
    const auto t = Clock::now();
    exhaustive1.push_back(service.run(single));
    r.singleExhaustiveMs = msSince(t);
  }
  {
    driver::ExplorationService service(prunedOptions());
    const auto t = Clock::now();
    pruned1.push_back(service.run(single));
    r.singlePrunedMs = msSince(t);
    r.pruned = pruned1[0].cache.pruned;
  }
  bench::checkSameResults(exhaustive1, pruned1);
  r.designs = pruned1[0].designs;
  TL_CHECK(r.pruned > 0, "dominance cut never fired on the single query");

  // --- batched 10-query scenario: one cold service per side.
  const auto batch = bench::serviceScenarioBatch(maxEntry);
  std::vector<driver::QueryResult> exhaustiveB, prunedB;
  {
    driver::ExplorationService service(exhaustiveOptions());
    const auto t = Clock::now();
    exhaustiveB = service.runBatch(batch);
    r.batchedExhaustiveMs = msSince(t);
  }
  {
    driver::ExplorationService service(prunedOptions());
    const auto t = Clock::now();
    prunedB = service.runBatch(batch);
    r.batchedPrunedMs = msSince(t);
    const auto stats = service.cacheStats();
    r.mappingHits = stats.mappings.hits;
    r.mappingMisses = stats.mappings.misses;
  }
  bench::checkSameResults(exhaustiveB, prunedB);
  for (const auto& res : prunedB) {
    r.batchDesigns += res.designs;
    r.batchPruned += res.cache.pruned;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Frontier pruning (smoke)"
                             : "Frontier pruning vs exhaustive evaluation");
    const PruningReport r = benchPruning(smoke ? 1 : 2);
    std::printf(
        "  single   exhaustive %.1f ms | pruned %.1f ms (%.2fx)  [%zu designs, "
        "%llu cut, frontiers bit-identical]\n",
        r.singleExhaustiveMs, r.singlePrunedMs, r.singleSpeedup(), r.designs,
        static_cast<unsigned long long>(r.pruned));
    std::printf(
        "  batched  exhaustive %.1f ms | pruned %.1f ms (%.2fx)  [%zu design "
        "evals, %llu cut, mapping memo %llu hits / %llu searches]\n",
        r.batchedExhaustiveMs, r.batchedPrunedMs, r.batchedSpeedup(),
        r.batchDesigns, static_cast<unsigned long long>(r.batchPruned),
        static_cast<unsigned long long>(r.mappingHits),
        static_cast<unsigned long long>(r.mappingMisses));

    const bool pass = smoke || (r.singleSpeedup() >= kGateMinSingle &&
                                r.batchedSpeedup() >= kGateMinBatched);
    std::ostringstream line;
    line << "\"pruning\": {\"workloads\": \"gemm256+attention64\", \"designs\": "
         << r.designs << ", \"batch_design_evals\": " << r.batchDesigns
         << ", \"single_exhaustive_ms\": " << r.singleExhaustiveMs
         << ", \"single_pruned_ms\": " << r.singlePrunedMs
         << ", \"single_speedup\": " << r.singleSpeedup()
         << ", \"batched_exhaustive_ms\": " << r.batchedExhaustiveMs
         << ", \"batched_pruned_ms\": " << r.batchedPrunedMs
         << ", \"batched_speedup\": " << r.batchedSpeedup()
         << ", \"pruned_single\": " << r.pruned
         << ", \"pruned_batched\": " << r.batchPruned
         << ", \"mapping_hits\": " << r.mappingHits
         << ", \"mapping_misses\": " << r.mappingMisses
         << ", \"gate_min_single_speedup\": " << kGateMinSingle
         << ", \"gate_min_batched_speedup\": " << kGateMinBatched
         << ", \"pass\": " << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "pruning", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass) {
      if (r.singleSpeedup() < kGateMinSingle)
        std::printf("  GATE FAIL: single-query speedup %.2f < %.1f\n",
                    r.singleSpeedup(), kGateMinSingle);
      if (r.batchedSpeedup() < kGateMinBatched)
        std::printf("  GATE FAIL: batched speedup %.2f < %.1f\n",
                    r.batchedSpeedup(), kGateMinBatched);
    }
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
