// Fig. 5(a): normalized performance of GEMM dataflows on a 16x16 array
// (320 MHz, 32 GB/s scratchpad bandwidth, INT16), M=N=K=256.
//
// Paper shape to reproduce: multicast-input dataflows (MTM, MMT, ...) beat
// systolic ones (SST, TSS) by the pipeline fill/drain overhead; all stay
// compute-bound at this bandwidth.
#include "bench_util.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  bench::printHeader("Fig. 5(a)  GEMM 256x256x256, 16x16 PEs, INT16");
  const auto g = tensor::workloads::gemm(256, 256, 256);
  std::vector<bench::PerfRow> rows;
  bench::evalAll(g,
                 {"MNK-MTM", "MNK-MSM", "MNK-STM", "MNK-MMT", "MNK-MST",
                  "MNK-SST", "MNK-TSS", "MNK-SSM", "MNK-MMS"},
                 bench::paperArray(), &rows);

  // Shape checks the paper reports in prose.
  double bestMulticast = 0, bestSystolic = 0;
  for (const auto& r : rows) {
    if (r.label == "MNK-MTM" || r.label == "MNK-MMT")
      bestMulticast = std::max(bestMulticast, r.perf.utilization);
    if (r.label == "MNK-SST" || r.label == "MNK-TSS")
      bestSystolic = std::max(bestSystolic, r.perf.utilization);
  }
  std::printf("\n  shape check: multicast best %.1f%% > systolic best %.1f%% : %s\n",
              100 * bestMulticast, 100 * bestSystolic,
              bestMulticast > bestSystolic ? "OK" : "MISMATCH");
  return 0;
}
