// Table III: FPGA comparison on MM and Conv workloads (FP32, VU9P for
// TensorLib/PolySA; Susy's published Arria-10 numbers as reported).
//
// TensorLib rows are computed by this repository's generator + FPGA model
// (10x16 PE array, 8-lane vectorization, weight-stationary systolic array —
// the paper's KCX-STS configuration); PolySA/Susy rows are the published
// numbers (closed toolchains). The paper's headline: +21% throughput and
// +15% frequency over the best prior generator.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "cost/fpga.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  std::printf("\n=== Table III  FPGA comparison (MM / Conv, FP32) ===\n");
  std::printf("  %-10s %-9s %-5s %6s %6s %6s %7s %8s\n", "generator",
              "device", "wkld", "LUT%", "DSP%", "BRAM%", "MHz", "Gop/s");

  for (const auto& r : baselines::reportedBaselineMetrics())
    std::printf("  %-10s %-9s %-5s %6.0f %6.0f %6.0f %7.0f %8.0f  (reported)\n",
                r.generator.c_str(), r.device.c_str(), r.workload.c_str(),
                r.lutPct, r.dspPct, r.bramPct, r.frequencyMHz, r.gops);

  stt::ArrayConfig arr;
  arr.rows = 10;
  arr.cols = 16;
  arr.bandwidthGBps = 512.0;  // fed from on-chip banks
  arr.dataBytes = 4;
  cost::FpgaConfig fc;

  double tlGops = 0;
  {
    const auto g = tensor::workloads::gemm(1024, 1024, 1024);
    const auto spec = stt::findDataflowByLabel(g, "MNK-STS");
    const auto rep = cost::estimateFpga(*spec, arr, fc);
    tlGops = rep.gops;
    std::printf("  %-10s %-9s %-5s %6.0f %6.0f %6.0f %7.0f %8.0f  (this repo)\n",
                "TensorLib", "VU9P", "MM", rep.lutPct, rep.dspPct, rep.bramPct,
                rep.frequencyMHz, rep.gops);
  }
  {
    // Pick the best KCX-family dataflow for the conv layer, as the
    // generator's DSE would.
    const auto conv = tensor::workloads::conv2d(256, 256, 28, 28, 3, 3);
    cost::FpgaReport best;
    std::string bestLabel;
    for (const char* label : {"KCX-SST", "KCX-STS", "KCX-STM"}) {
      const auto spec = stt::findDataflowByLabel(conv, label);
      if (!spec) continue;
      const auto rep = cost::estimateFpga(*spec, arr, fc);
      if (rep.gops > best.gops) {
        best = rep;
        bestLabel = label;
      }
    }
    std::printf("  %-10s %-9s %-5s %6.0f %6.0f %6.0f %7.0f %8.0f  (this repo, %s)\n",
                "TensorLib", "VU9P", "Conv", best.lutPct, best.dspPct,
                best.bramPct, best.frequencyMHz, best.gops, bestLabel.c_str());
  }

  const double bestBaseline = 555.0;  // PolySA MM
  std::printf("\n  throughput vs best prior generator: %+.0f%%  (paper: +21%%)\n",
              100.0 * (tlGops / bestBaseline - 1.0));
  return 0;
}
