// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/perf.hpp"
#include "stt/enumerate.hpp"

namespace tensorlib::bench {

/// One bar of a Fig. 5 subplot: a named dataflow and its normalized
/// performance (achieved MACs / peak MACs at full array utilization —
/// exactly the paper's metric).
struct PerfRow {
  std::string label;
  sim::PerfResult perf;
};

inline void printHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Evaluates one dataflow label on a workload; prints and returns the row.
inline PerfRow evalDataflow(const tensor::TensorAlgebra& algebra,
                            const std::string& label,
                            const stt::ArrayConfig& config) {
  auto spec = stt::findDataflowByLabel(algebra, label);
  if (!spec.has_value()) {
    std::printf("  %-12s  (not realizable for %s)\n", label.c_str(),
                algebra.name().c_str());
    return {label, {}};
  }
  const auto perf = sim::estimatePerformance(*spec, config);
  std::printf("  %-12s  normalized perf %5.1f%%   cycles %-12lld %s\n",
              label.c_str(), 100.0 * perf.utilization,
              static_cast<long long>(perf.totalCycles),
              perf.bandwidthBound ? "[bandwidth-bound]" : "");
  return {label, perf};
}

inline void evalAll(const tensor::TensorAlgebra& algebra,
                    const std::vector<std::string>& labels,
                    const stt::ArrayConfig& config,
                    std::vector<PerfRow>* rows = nullptr) {
  for (const auto& l : labels) {
    PerfRow r = evalDataflow(algebra, l, config);
    if (rows) rows->push_back(std::move(r));
  }
}

/// The paper's evaluation array: 16x16 PEs, 320 MHz, 32 GB/s, INT16.
inline stt::ArrayConfig paperArray() { return stt::ArrayConfig{}; }

}  // namespace tensorlib::bench
