// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"

namespace tensorlib::bench {

/// One bar of a Fig. 5 subplot: a named dataflow and its normalized
/// performance (achieved MACs / peak MACs at full array utilization —
/// exactly the paper's metric).
struct PerfRow {
  std::string label;
  sim::PerfResult perf;
};

inline void printHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Evaluates one dataflow label on a workload; prints and returns the row.
inline PerfRow evalDataflow(const tensor::TensorAlgebra& algebra,
                            const std::string& label,
                            const stt::ArrayConfig& config) {
  auto spec = stt::findDataflowByLabel(algebra, label);
  if (!spec.has_value()) {
    std::printf("  %-12s  (not realizable for %s)\n", label.c_str(),
                algebra.name().c_str());
    return {label, {}};
  }
  const auto perf = sim::estimatePerformance(*spec, config);
  std::printf("  %-12s  normalized perf %5.1f%%   cycles %-12lld %s\n",
              label.c_str(), 100.0 * perf.utilization,
              static_cast<long long>(perf.totalCycles),
              perf.bandwidthBound ? "[bandwidth-bound]" : "");
  return {label, perf};
}

inline void evalAll(const tensor::TensorAlgebra& algebra,
                    const std::vector<std::string>& labels,
                    const stt::ArrayConfig& config,
                    std::vector<PerfRow>* rows = nullptr) {
  for (const auto& l : labels) {
    PerfRow r = evalDataflow(algebra, l, config);
    if (rows) rows->push_back(std::move(r));
  }
}

/// The paper's evaluation array: 16x16 PEs, 320 MHz, 32 GB/s, INT16.
inline stt::ArrayConfig paperArray() { return stt::ArrayConfig{}; }

/// Merges one `"section": {...}` property into the line-oriented
/// BENCH_hotpaths.json (each section lives on its own line). Replaces an
/// existing line for the same section; starts a fresh document if the file
/// is absent or malformed. `sectionLine` must be the full property, e.g.
/// `"service": {...}` with no trailing comma.
inline void mergeJsonSection(const std::string& path,
                             const std::string& sectionKey,
                             const std::string& sectionLine) {
  const std::string match = "\"" + sectionKey + "\":";
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      const auto firstChar = line.find_first_not_of(" \t");
      if (firstChar != std::string::npos &&
          line.compare(firstChar, match.size(), match) == 0)
        continue;  // replaced below
      lines.push_back(line);
    }
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  // A document without at least one property line ("{" "}") would leave the
  // splice below appending a comma to the opening brace; reset it too.
  if (lines.size() < 3 || lines.front() != "{" || lines.back() != "}")
    lines = {"{", "  \"bench\": \"hotpaths\",", "}"};

  // Re-terminate the final property with a comma, then splice in ours.
  std::string& lastProp = lines[lines.size() - 2];
  if (!lastProp.empty() && lastProp.back() == ',') lastProp.pop_back();
  lastProp += ",";
  lines.insert(lines.end() - 1, "  " + sectionLine);

  std::ofstream out(path);
  TL_CHECK(static_cast<bool>(out), "cannot write " + path);
  for (const auto& l : lines) out << l << "\n";
}

}  // namespace tensorlib::bench
