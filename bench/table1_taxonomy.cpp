// Table I: the dataflow taxonomy, demonstrated live. For a set of
// (algebra, selection, T) triples covering every reuse-subspace case, print
// each tensor's reuse rank, classification and label letter.
#include <cstdio>

#include "stt/spec.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  namespace wl = tensor::workloads;
  std::printf("\n=== Table I  dataflow analysis with STT ===\n");

  struct Case {
    const char* note;
    tensor::TensorAlgebra algebra;
    std::vector<std::string> loops;
    linalg::IntMatrix t;
  };
  const std::vector<Case> cases = {
      {"GEMM, Fig.1(b) transform (output stationary)", wl::gemm(16, 16, 16),
       {"m", "n", "k"},
       linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}},
      {"GEMM, identity transform (dual multicast)", wl::gemm(16, 16, 16),
       {"m", "n", "k"},
       linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}},
      {"Batched-GEMV (unicast A)", wl::batchedGemv(16, 16, 16),
       {"m", "n", "k"},
       linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}},
      {"TTMc (broadcast / multicast+stationary planes)",
       wl::ttmc(16, 16, 16, 16, 16),
       {"i", "j", "k"},
       linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}},
      {"TTMc skewed (systolic+multicast plane)", wl::ttmc(16, 16, 16, 16, 16),
       {"i", "j", "k"},
       linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}},
  };

  for (const auto& c : cases) {
    const auto sel = stt::LoopSelection::byNames(c.algebra, c.loops);
    const auto spec =
        stt::analyzeDataflow(c.algebra, sel, stt::SpaceTimeTransform(c.t));
    std::printf("\n  %s\n    label %s, T=%s\n", c.note, spec.label().c_str(),
                spec.transform().str().c_str());
    for (const auto& role : spec.tensors()) {
      std::printf("    %-2s rank=%zu  class=%-24s letter=%c", role.tensor.c_str(),
                  role.dataflow.reuseRank,
                  stt::dataflowClassName(role.dataflow.dataflowClass).c_str(),
                  stt::dataflowLetter(role.dataflow.dataflowClass));
      if (role.dataflow.reuseRank == 1)
        std::printf("  dir=%s", linalg::str(role.dataflow.direction).c_str());
      std::printf("\n");
    }
  }
  return 0;
}
