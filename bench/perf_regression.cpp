// Perf-regression harness for the three hot paths (the perf trajectory
// anchor for this repo):
//
//   1. Design-space enumeration: enumerateDesignSpace on the GEMM algebra,
//      maxEntry=2 — legacy decode-all-and-filter (the seed implementation,
//      EnumerationOptions::useLegacyEnumeration) vs the direct-canonical
//      engine, cold (first call, cache empty) and warm (memoized).
//   2. RTL simulation: node-evals/sec on the fig5a GEMM accelerator netlist
//      (MNK-SST on 16x16 PEs) — legacy interpreter vs compiled tape, with a
//      running output checksum proving bit-identical behavior.
//   3. Tile-trace construction: functional dataflow simulation with trace
//      memoization off (rebuild per tile per outer iteration, the seed
//      behavior) vs on (TileTraceCache).
//
// Emits BENCH_hotpaths.json. Gates (full mode only): enumeration cold
// speedup >= 5x, RTL speedup >= 2x; exit status 1 if a gate fails.
//
// Usage: bench_perf_regression [--smoke] [--out <path>]
//   --smoke   small sizes, correctness asserts only, no timing gates (CI)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "arch/generator.hpp"
#include "bench_util.hpp"
#include "hwir/rtlsim.hpp"
#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "tensor/reference.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct EnumReport {
  std::size_t specs = 0;
  double seedMs = 0, fastColdMs = 0, fastWarmMs = 0;
  double speedupCold() const { return seedMs / fastColdMs; }
  double speedupWarm() const { return seedMs / fastWarmMs; }
};

EnumReport benchEnumeration(int maxEntry) {
  const auto g = tensor::workloads::gemm(16, 16, 16);
  stt::EnumerationOptions seed;
  seed.maxEntry = maxEntry;
  seed.useLegacyEnumeration = true;
  seed.cacheCandidates = false;
  seed.parallelAnalyze = false;
  stt::EnumerationOptions fast;
  fast.maxEntry = maxEntry;

  EnumReport r;
  auto t = Clock::now();
  const auto seedSpecs = stt::enumerateDesignSpace(g, seed);
  r.seedMs = msSince(t);

  t = Clock::now();
  const auto fastSpecs = stt::enumerateDesignSpace(g, fast);
  r.fastColdMs = msSince(t);

  t = Clock::now();
  const auto warmSpecs = stt::enumerateDesignSpace(g, fast);
  r.fastWarmMs = msSince(t);

  TL_CHECK(seedSpecs.size() == fastSpecs.size() &&
               fastSpecs.size() == warmSpecs.size(),
           "enumeration engines disagree on design-space size");
  for (std::size_t i = 0; i < seedSpecs.size(); ++i)
    TL_CHECK(seedSpecs[i].label() == fastSpecs[i].label() &&
                 seedSpecs[i].signature() == fastSpecs[i].signature(),
             "enumeration engines disagree at spec " + std::to_string(i));
  r.specs = fastSpecs.size();
  return r;
}

struct RtlReport {
  std::size_t nodes = 0;
  std::int64_t cycles = 0;
  double legacyMs = 0, compiledMs = 0;
  double evalsPerSec(double ms) const {
    return static_cast<double>(nodes) * static_cast<double>(cycles) /
           (ms / 1000.0);
  }
  double speedup() const { return legacyMs / compiledMs; }
};

/// Drives the netlist for `cycles` with identical PRNG stimulus on both
/// engines and returns a checksum of every output port every cycle.
std::uint64_t driveNetlist(const hwir::Netlist& netlist, hwir::SimEngine engine,
                           std::int64_t cycles, double* elapsedMs) {
  hwir::RtlSimulator sim(netlist, engine);
  Prng rng(0xfeedULL);
  std::uint64_t checksum = 0;
  const auto t = Clock::now();
  for (std::int64_t c = 0; c < cycles; ++c) {
    for (hwir::NodeId in : netlist.inputs()) sim.poke(in, rng.next());
    sim.evaluate();
    for (hwir::NodeId out : netlist.outputs())
      checksum = checksum * 1099511628211ull + sim.peek(out);
    sim.step();
  }
  *elapsedMs = msSince(t);
  return checksum;
}

RtlReport benchRtl(std::int64_t rows, std::int64_t cols, std::int64_t cycles) {
  // The fig5a workload: GEMM, paper array geometry, MNK-SST (systolic A and
  // B, stationary accumulators) — the densest netlist of the named designs.
  const auto g = tensor::workloads::gemm(256, 256, 256);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  TL_CHECK(spec.has_value(), "MNK-SST not realizable?");
  stt::ArrayConfig config;
  config.rows = rows;
  config.cols = cols;
  const auto acc = arch::generateAccelerator(*spec, config);

  RtlReport r;
  r.nodes = acc.netlist.size();
  r.cycles = cycles;
  const std::uint64_t legacySum =
      driveNetlist(acc.netlist, hwir::SimEngine::Legacy, cycles, &r.legacyMs);
  const std::uint64_t compiledSum =
      driveNetlist(acc.netlist, hwir::SimEngine::Compiled, cycles, &r.compiledMs);
  TL_CHECK(legacySum == compiledSum,
           "compiled tape diverged from legacy interpreter");
  return r;
}

struct TraceReport {
  double rebuildMs = 0, memoMs = 0;
  double speedup() const { return rebuildMs / memoMs; }
};

TraceReport benchTileTrace(std::int64_t dim, std::int64_t rows) {
  // Small array + larger extents = many tiles and outer iterations, the
  // regime where per-tile trace rebuilding dominated sim::simulate.
  const auto g = tensor::workloads::gemm(dim, dim, dim);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  TL_CHECK(spec.has_value(), "MNK-SST not realizable?");
  const stt::ArrayConfig config{rows, rows, 320.0, 32.0, 2};
  tensor::TensorEnv env = tensor::makeRandomInputs(g, 3);

  sim::SimOptions rebuild;
  rebuild.reuseTraces = false;
  sim::SimOptions memo;  // reuseTraces = true

  TraceReport r;
  auto t = Clock::now();
  const sim::SimResult a = sim::simulate(*spec, config, &env, rebuild);
  r.rebuildMs = msSince(t);
  t = Clock::now();
  const sim::SimResult b = sim::simulate(*spec, config, &env, memo);
  r.memoMs = msSince(t);

  TL_CHECK(a.cycles == b.cycles && a.macs == b.macs &&
               a.trafficWords == b.trafficWords,
           "trace memoization changed simulation results");
  TL_CHECK(a.output.sameShape(b.output) && a.output.maxAbsDiff(b.output) == 0.0,
           "trace memoization changed functional output");
  return r;
}

void writeJson(const std::string& path, bool smoke, const EnumReport& e,
               const RtlReport& rtl, const TraceReport& tr, bool enumPass,
               bool rtlPass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  TL_CHECK(f != nullptr, "cannot write " + path);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hotpaths\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"enumeration\": {\"workload\": \"gemm16\", \"max_entry\": "
               "%d, \"specs\": %zu, \"seed_ms\": %.2f, \"fast_cold_ms\": "
               "%.2f, \"fast_warm_ms\": %.3f, \"speedup_cold\": %.2f, "
               "\"speedup_warm\": %.1f, \"gate_min_speedup\": 5.0, \"pass\": "
               "%s},\n",
               smoke ? 1 : 2, e.specs, e.seedMs, e.fastColdMs, e.fastWarmMs,
               e.speedupCold(), e.speedupWarm(), enumPass ? "true" : "false");
  std::fprintf(f,
               "  \"rtl\": {\"netlist\": \"fig5a_gemm_mnk_sst\", \"nodes\": "
               "%zu, \"cycles\": %lld, \"legacy_evals_per_sec\": %.0f, "
               "\"compiled_evals_per_sec\": %.0f, \"speedup\": %.2f, "
               "\"gate_min_speedup\": 2.0, \"pass\": %s},\n",
               rtl.nodes, static_cast<long long>(rtl.cycles),
               rtl.evalsPerSec(rtl.legacyMs), rtl.evalsPerSec(rtl.compiledMs),
               rtl.speedup(), rtlPass ? "true" : "false");
  std::fprintf(f,
               "  \"tile_trace\": {\"workload\": \"gemm_mnk_sst\", "
               "\"rebuild_ms\": %.2f, \"memo_ms\": %.2f, \"speedup\": %.2f}\n",
               tr.rebuildMs, tr.memoMs, tr.speedup());
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int runBench(bool smoke, const std::string& out);

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }
  try {
    return runBench(smoke, out);
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

int runBench(bool smoke, const std::string& out) {
  bench::printHeader(smoke ? "Hot-path perf regression (smoke)"
                           : "Hot-path perf regression");

  const EnumReport e = benchEnumeration(smoke ? 1 : 2);
  std::printf(
      "  enumeration  seed %.1f ms | fast cold %.1f ms (%.1fx) | warm %.3f ms "
      "(%.0fx)  [%zu specs]\n",
      e.seedMs, e.fastColdMs, e.speedupCold(), e.fastWarmMs, e.speedupWarm(),
      e.specs);

  const RtlReport rtl = smoke ? benchRtl(4, 4, 256) : benchRtl(16, 16, 2000);
  std::printf(
      "  rtl sim      legacy %.0f evals/s | compiled %.0f evals/s (%.2fx)  "
      "[%zu nodes x %lld cycles, checksums equal]\n",
      rtl.evalsPerSec(rtl.legacyMs), rtl.evalsPerSec(rtl.compiledMs),
      rtl.speedup(), rtl.nodes, static_cast<long long>(rtl.cycles));

  const TraceReport tr = smoke ? benchTileTrace(12, 4) : benchTileTrace(48, 8);
  std::printf(
      "  tile traces  rebuild %.1f ms | memoized %.1f ms (%.1fx)  [outputs "
      "equal]\n",
      tr.rebuildMs, tr.memoMs, tr.speedup());

  // Timing gates only in full mode: smoke runs (CI shared runners) assert
  // correctness above but never fail on wall-clock.
  const bool enumPass = smoke || e.speedupCold() >= 5.0;
  const bool rtlPass = smoke || rtl.speedup() >= 2.0;
  writeJson(out, smoke, e, rtl, tr, enumPass, rtlPass);
  std::printf("  wrote %s\n", out.c_str());

  if (!enumPass)
    std::printf("  GATE FAIL: enumeration cold speedup %.2f < 5.0\n",
                e.speedupCold());
  if (!rtlPass)
    std::printf("  GATE FAIL: rtl speedup %.2f < 2.0\n", rtl.speedup());
  return enumPass && rtlPass ? 0 : 1;
}
