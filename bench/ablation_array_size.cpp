// Ablation: PE-array scaling. Larger arrays amortize control but deepen
// systolic fill and stress bandwidth — the trade TensorLib's design space
// exposes.
#include <cstdio>

#include "cost/asic.hpp"
#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  std::printf("\n=== Ablation  array size sweep, GEMM 512^3, SST ===\n");
  std::printf("  %-8s %-10s %-10s %-12s %s\n", "array", "util", "cycles",
              "area(mm2)", "power(mW)");
  const auto g = tensor::workloads::gemm(512, 512, 512);
  for (std::int64_t p : {4, 8, 16, 32}) {
    stt::ArrayConfig cfg;
    cfg.rows = cfg.cols = p;
    const auto spec = *stt::findDataflowByLabel(g, "MNK-SST");
    const auto perf = sim::estimatePerformance(spec, cfg);
    const auto asic = cost::estimateAsic(spec, cfg, 16);
    std::printf("  %-2lldx%-5lld %-10.3f %-10lld %-12.3f %.1f\n",
                static_cast<long long>(p), static_cast<long long>(p),
                perf.utilization, static_cast<long long>(perf.totalCycles),
                asic.areaMm2, asic.powerMw);
  }
  return 0;
}
