// Network-level co-exploration benchmark (the PR-5 perf anchor).
//
// Maps one multi-layer model onto a shared PE array two ways and asserts
// the network frontiers are bit-identical:
//
//   naive     one COLD exhaustive service per layer (pruning off, mapping
//             memo off, no cross-layer sharing) — the cost of treating a
//             model as independent per-operator queries — then the same
//             frontier composition.
//   composed  driver::NetworkExplorer — every layer in ONE service batch,
//             so repeated layer shapes hit the cross-query cache, the
//             tile-mapping memo collapses sign-relative transforms, and
//             the lower-bound dominance cut skips dominated evaluations.
//
// Full mode uses a serving-size transformer slice (attention-64 twice,
// GEMM-256 twice, GEMM-128) at maxEntry=2 and gates the composed-vs-naive
// speedup >= 1.5x; smoke mode runs the built-in mlp-3 model at maxEntry=1
// with correctness asserts only. Merges a "network" section into
// BENCH_hotpaths.json next to the PR-1/3/4 gates (see docs/ARCHITECTURE.md
// for the bench/gate workflow).
//
// Usage: bench_network_bench [--smoke] [--out <path>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/network_explorer.hpp"
#include "support/error.hpp"
#include "tensor/network.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr double kGateMinSpeedup = 1.5;

driver::ServiceOptions naiveOptions() {
  driver::ServiceOptions o;
  o.enablePruning = false;
  o.mappingCacheCapacity = 0;
  return o;
}

/// Full mode: a transformer slice at serving sizes — the repeated layer
/// shapes every real model has are exactly what composed exploration
/// amortizes. Smoke mode: the built-in mlp-3 model.
driver::NetworkQuery benchQuery(bool smoke) {
  namespace wl = tensor::workloads;
  if (smoke) {
    driver::NetworkQuery q(*wl::findNetwork("mlp-3"));
    q.arrays = {stt::ArrayConfig{}};
    q.enumeration.maxEntry = 1;
    return q;
  }
  driver::NetworkQuery q(tensor::NetworkSpec(
      "transformer-slice",
      {tensor::NetworkLayer{"qk-scores", wl::attention(64, 64, 64), false},
       tensor::NetworkLayer{"av", wl::attention(64, 64, 64), false},
       tensor::NetworkLayer{"proj", wl::gemm(256, 256, 256), false},
       tensor::NetworkLayer{"ffn1", wl::gemm(256, 256, 256), false},
       tensor::NetworkLayer{"ffn2", wl::gemm(128, 128, 128), false}}));
  q.arrays = {stt::ArrayConfig{}};  // the paper's 16x16 array
  q.enumeration.maxEntry = 2;
  return q;
}

void checkSameNetworkResult(const driver::NetworkResult& a,
                            const driver::NetworkResult& b) {
  TL_CHECK(a.designs == b.designs, "design-space sizes diverged");
  TL_CHECK(a.frontier.size() == b.frontier.size(),
           "network frontier sizes diverged");
  for (std::size_t i = 0; i < a.frontier.size(); ++i) {
    const driver::NetworkDesign& x = a.frontier[i];
    const driver::NetworkDesign& y = b.frontier[i];
    TL_CHECK(x.arrayIndex == y.arrayIndex && x.order == y.order &&
                 x.cost.cycles == y.cost.cycles &&
                 x.cost.powerMw == y.cost.powerMw && x.cost.area == y.cost.area,
             "network frontier design #" + std::to_string(i) + " diverged");
    TL_CHECK(x.layers.size() == y.layers.size(), "assignment arity diverged");
    for (std::size_t l = 0; l < x.layers.size(); ++l)
      TL_CHECK(x.layers[l].dataflow == y.layers[l].dataflow,
               "layer assignment diverged at " + x.layers[l].layer);
  }
  TL_CHECK(a.best.has_value() == b.best.has_value(), "winner presence diverged");
  if (a.best)
    TL_CHECK(a.best->order == b.best->order &&
                 a.best->arrayIndex == b.best->arrayIndex,
             "network winner diverged");
}

struct NetworkBenchReport {
  std::string model;
  std::size_t layers = 0;
  std::size_t designEvals = 0;  ///< design points summed over layer queries
  std::size_t frontier = 0;     ///< network frontier residents
  double naiveMs = 0, composedMs = 0;
  std::uint64_t cacheHits = 0, pruned = 0;
  double speedup() const { return naiveMs / composedMs; }
};

NetworkBenchReport benchNetwork(bool smoke) {
  const driver::NetworkQuery query = benchQuery(smoke);
  NetworkBenchReport r;
  r.model = query.network.name();
  r.layers = query.network.layerCount();

  // Warm the process-wide candidate-matrix memo so neither side pays
  // one-time matrix generation inside its timed region.
  (void)stt::enumerateDesignSpace(query.network.layers()[0].algebra,
                                  query.enumeration);

  // --- naive: one cold exhaustive service per layer, then compose.
  driver::NetworkResult naive;
  {
    const auto t = Clock::now();
    std::vector<std::vector<driver::QueryResult>> perLayer(query.arrays.size());
    for (std::size_t a = 0; a < query.arrays.size(); ++a)
      for (const auto& layer : query.network.layers()) {
        driver::ExplorationService fresh(naiveOptions());
        perLayer[a].push_back(
            fresh.run(driver::layerQuery(query, query.arrays[a], layer)));
      }
    naive = driver::composeLayerFrontiers(query, perLayer);
    r.naiveMs = msSince(t);
  }

  // --- composed: one NetworkExplorer, one batch, shared caches.
  driver::NetworkResult composed;
  {
    driver::NetworkExplorer explorer{driver::ServiceOptions{}};
    const auto t = Clock::now();
    composed = explorer.explore(query);
    r.composedMs = msSince(t);
    r.cacheHits = explorer.service().cacheStats().hits;
  }

  checkSameNetworkResult(naive, composed);
  r.designEvals = composed.designs;
  r.frontier = composed.frontier.size();
  for (const auto& s : composed.layers) r.pruned += s.cache.pruned;
  TL_CHECK(r.cacheHits > 0,
           "composed exploration never hit the cross-layer cache");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Network co-exploration (smoke)"
                             : "Network co-exploration: composed vs naive");
    const NetworkBenchReport r = benchNetwork(smoke);
    std::printf(
        "  %s (%zu layers)  naive %.1f ms | composed %.1f ms (%.2fx)\n"
        "  [%zu design evals, frontier %zu, %llu cache hits, %llu pruned, "
        "frontiers bit-identical]\n",
        r.model.c_str(), r.layers, r.naiveMs, r.composedMs, r.speedup(),
        r.designEvals, r.frontier,
        static_cast<unsigned long long>(r.cacheHits),
        static_cast<unsigned long long>(r.pruned));

    const bool pass = smoke || r.speedup() >= kGateMinSpeedup;
    std::ostringstream line;
    line << "\"network\": {\"model\": \"" << r.model << "\", \"layers\": "
         << r.layers << ", \"design_evals\": " << r.designEvals
         << ", \"frontier_size\": " << r.frontier << ", \"naive_ms\": "
         << r.naiveMs << ", \"composed_ms\": " << r.composedMs
         << ", \"speedup\": " << r.speedup() << ", \"cache_hits\": "
         << r.cacheHits << ", \"pruned\": " << r.pruned
         << ", \"gate_min_speedup\": " << kGateMinSpeedup
         << ", \"pass\": " << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "network", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass)
      std::printf("  GATE FAIL: composed-vs-naive speedup %.2f < %.1f\n",
                  r.speedup(), kGateMinSpeedup);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
