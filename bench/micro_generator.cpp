// google-benchmark microbenchmarks of the toolchain itself: STT analysis,
// design-space enumeration, netlist generation, RTL simulation and the
// behavioral simulator — the productivity claim of the paper ("TensorLib
// remarkably improves the productivity for development and optimization")
// quantified as generator throughput.
#include <benchmark/benchmark.h>

#include "arch/testbench.hpp"
#include "hwir/verilog.hpp"
#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
namespace wl = tensor::workloads;

void BM_AnalyzeDataflow(benchmark::State& state) {
  const auto g = wl::gemm(256, 256, 256);
  const stt::LoopSelection sel(g, {0, 1, 2});
  const stt::SpaceTimeTransform t(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});
  for (auto _ : state)
    benchmark::DoNotOptimize(stt::analyzeDataflow(g, sel, t));
}
BENCHMARK(BM_AnalyzeDataflow);

void BM_EnumerateGemmSpace(benchmark::State& state) {
  const auto g = wl::gemm(256, 256, 256);
  const stt::LoopSelection sel(g, {0, 1, 2});
  for (auto _ : state)
    benchmark::DoNotOptimize(stt::enumerateTransforms(g, sel));
}
BENCHMARK(BM_EnumerateGemmSpace)->Unit(benchmark::kMillisecond);

void BM_GenerateAccelerator(benchmark::State& state) {
  const auto g = wl::gemm(16, 16, 16);
  const auto spec = *stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;
  for (auto _ : state)
    benchmark::DoNotOptimize(arch::generateAccelerator(spec, cfg));
}
BENCHMARK(BM_GenerateAccelerator)->Unit(benchmark::kMillisecond);

void BM_EmitVerilog16x16(benchmark::State& state) {
  const auto g = wl::gemm(16, 16, 16);
  const auto spec = *stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;
  const auto acc = arch::generateAccelerator(spec, cfg);
  for (auto _ : state) benchmark::DoNotOptimize(hwir::emitVerilog(acc.netlist));
}
BENCHMARK(BM_EmitVerilog16x16)->Unit(benchmark::kMillisecond);

void BM_RtlSimulateTile(benchmark::State& state) {
  const auto g = wl::gemm(8, 8, 8);
  const auto spec = *stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;
  cfg.rows = cfg.cols = 8;
  const auto acc = arch::generateAccelerator(spec, cfg);
  const auto env = tensor::makeRandomInputs(g, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(arch::runAcceleratorTile(acc, env));
}
BENCHMARK(BM_RtlSimulateTile)->Unit(benchmark::kMillisecond);

void BM_BehavioralSimGemm(benchmark::State& state) {
  const auto g = wl::gemm(64, 64, 64);
  const auto spec = *stt::findDataflowByLabel(g, "MNK-SST");
  stt::ArrayConfig cfg;
  sim::SimOptions opts;
  opts.functional = false;
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate(spec, cfg, nullptr, opts));
}
BENCHMARK(BM_BehavioralSimGemm)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
