// Stitched model execution: compiled RTL tape vs legacy interpreter (the
// PR-10 perf anchor).
//
// Builds the mlp-3 builtin model the same way the model oracle does — one
// realizable design per layer, stitched into ONE merged netlist with
// planner-sized inter-layer buffers — then executes the identical stitched
// top under both RTL engines:
//
//   compiled  the flattened evaluation tape (hwir::SimEngine::Compiled),
//             the engine the model oracle and the daemon run on.
//   legacy    the node-walking interpreter (hwir::SimEngine::Legacy), the
//             semantics reference.
//
// Element-exactness is asserted every run, gates or not: both engines must
// match the composed dense reference bit for bit (the same contract
// verify_model_conformance_test enforces). Gate: compiled >= 2x legacy on
// the full run (full mode only).
//
// Merges a "model_rtl" section into BENCH_hotpaths.json next to the
// earlier gates.
//
// Usage: bench_model_rtl [--smoke] [--out <path>]
//   --smoke   one rep, correctness asserts only, no timing gates
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "arch/model.hpp"
#include "bench_util.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/network.hpp"
#include "tensor/reference.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr double kGateMinSpeedup = 2.0;
constexpr const char* kModel = "mlp-3";

/// First enumerated design the netlist generator can realize — the same
/// cheap spec source the buffer-property tests use (no cost models, no
/// exploration service; engine time is what this bench measures).
stt::DataflowSpec firstRealizableSpec(const tensor::TensorAlgebra& algebra,
                                      bool allowAllUnicast,
                                      const arch::ModelBuildOptions& options) {
  stt::EnumerationOptions enumeration;
  enumeration.dropAllUnicast = !allowAllUnicast;
  arch::HardwareConfig hw = options.hw;
  hw.injectEverywhere = true;
  for (const stt::DataflowSpec& spec :
       stt::enumerateDesignSpace(algebra, enumeration)) {
    try {
      (void)arch::generateAccelerator(spec, options.array, hw);
      return spec;
    } catch (const Error&) {
      continue;
    }
  }
  fail("no realizable design for " + algebra.str());
}

struct ModelRtlReport {
  std::size_t layers = 0;
  std::int64_t cycles = 0;  ///< stitched schedule length (both engines)
  double compiledMs = 0, legacyMs = 0;
  double speedup() const { return legacyMs / compiledMs; }
};

ModelRtlReport benchModelRtl(int reps) {
  const tensor::NetworkSpec* network = tensor::workloads::findNetwork(kModel);
  if (network == nullptr) fail(std::string("missing builtin model ") + kModel);

  arch::ModelBuildOptions options;
  std::vector<std::pair<std::string, stt::DataflowSpec>> layerSpecs;
  for (const auto& layer : network->layers())
    layerSpecs.emplace_back(
        layer.name,
        firstRealizableSpec(layer.algebra, layer.allowAllUnicast, options));
  const arch::ModelAccelerator model =
      arch::buildModelAccelerator(layerSpecs, options);

  std::vector<tensor::TensorEnv> envs;
  for (std::size_t l = 0; l < model.layers.size(); ++l)
    envs.push_back(
        tensor::makeRandomInputs(model.layers[l].acc.spec.algebra(), l + 1));
  const std::vector<tensor::DenseTensor> golden =
      arch::composedReference(model, envs);

  ModelRtlReport r;
  r.layers = model.layers.size();
  for (const hwir::SimEngine engine :
       {hwir::SimEngine::Compiled, hwir::SimEngine::Legacy}) {
    double bestMs = 0;
    for (int rep = 0; rep < reps; ++rep) {
      arch::ModelRunOptions runOptions;
      runOptions.engine = engine;
      const auto t = Clock::now();
      const arch::ModelRunResult run =
          arch::runModelAccelerator(model, envs, runOptions);
      const double ms = msSince(t);
      if (rep == 0 || ms < bestMs) bestMs = ms;
      r.cycles = run.cyclesRun;
      // Element-exactness on every rep: the speed comparison is only
      // meaningful while both engines compute the same model.
      if (run.outputs.size() != golden.size())
        fail("stitched run returned the wrong layer count");
      for (std::size_t l = 0; l < golden.size(); ++l)
        if (golden[l].maxAbsDiff(run.outputs[l]) != 0.0)
          fail("stitched engine diverged from the composed reference at "
               "layer " +
               std::to_string(l));
    }
    (engine == hwir::SimEngine::Compiled ? r.compiledMs : r.legacyMs) = bestMs;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Stitched model RTL engines (smoke)"
                             : "Stitched model: compiled tape vs legacy");
    const ModelRtlReport r = benchModelRtl(smoke ? 1 : 3);
    std::printf(
        "  %s  compiled %.1f ms | legacy %.1f ms (%.2fx)  [%zu layers, %lld "
        "cycles, both engines element-exact vs composed reference]\n",
        kModel, r.compiledMs, r.legacyMs, r.speedup(), r.layers,
        static_cast<long long>(r.cycles));

    const bool pass = smoke || r.speedup() >= kGateMinSpeedup;
    if (!smoke) {
      std::ostringstream line;
      line << "\"model_rtl\": {\"model\": \"" << kModel
           << "\", \"layers\": " << r.layers << ", \"cycles\": " << r.cycles
           << ", \"compiled_ms\": " << r.compiledMs
           << ", \"legacy_ms\": " << r.legacyMs
           << ", \"speedup\": " << r.speedup()
           << ", \"gate_min_speedup\": " << kGateMinSpeedup
           << ", \"pass\": " << (pass ? "true" : "false") << "}";
      bench::mergeJsonSection(out, "model_rtl", line.str());
      std::printf("  merged into %s\n", out.c_str());
    }

    if (!pass)
      std::printf("  GATE FAIL: compiled speedup %.2f < %.1f\n", r.speedup(),
                  kGateMinSpeedup);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
