// Batched-vs-naive exploration benchmark (the service-layer perf anchor).
//
// Runs a batch of 10 overlapping queries — the paper-geometry GEMM under
// three objectives on the ASIC backend and two on the FPGA backend, an
// attention kernel under three objectives, plus two exact duplicates (the
// realistic heavy-traffic case) — two ways:
//
//   naive    one fresh ExplorationService per query: every query pays its
//            own enumeration + full design-space evaluation, the
//            one-query-at-a-time Session::exploreAll regime.
//   batched  one service, one runBatch: overlapping queries share the
//            enumerated spec list and every design-point evaluation
//            through the sharded cross-query cache.
//
// Asserts the two produce bit-identical frontiers and winners, then merges
// a "service" section (with the batched/naive speedup gate) into
// BENCH_hotpaths.json next to the PR-1 hot-path gates.
//
// Usage: bench_explore_service [--smoke] [--out <path>]
//   --smoke   maxEntry=1 spaces, correctness asserts only, no timing gate
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/explore_service.hpp"
#include "service_scenario.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr double kGateMinSpeedup = 1.5;

struct ServiceReport {
  std::size_t queries = 0;
  std::size_t designs = 0;  ///< design points across the batch (with repeats)
  double naiveMs = 0, batchedMs = 0;
  std::uint64_t hits = 0, misses = 0;
  double speedup() const { return naiveMs / batchedMs; }
};

ServiceReport benchService(int maxEntry) {
  const auto batch = bench::serviceScenarioBatch(maxEntry);
  ServiceReport r;
  r.queries = batch.size();

  // Naive: a cold service per query — no cross-query reuse anywhere.
  std::vector<driver::QueryResult> naive;
  auto t = Clock::now();
  for (const auto& q : batch) {
    driver::ExplorationService service;
    naive.push_back(service.run(q));
  }
  r.naiveMs = msSince(t);

  // Batched: one service, one batch.
  driver::ExplorationService service;
  t = Clock::now();
  const auto batched = service.runBatch(batch);
  r.batchedMs = msSince(t);

  bench::checkSameResults(naive, batched);
  for (const auto& res : batched) {
    r.designs += res.designs;
    r.hits += res.cache.hits;
    r.misses += res.cache.misses;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Exploration service (smoke)"
                             : "Exploration service batched-vs-naive");
    const ServiceReport r = benchService(smoke ? 1 : 2);
    std::printf(
        "  %zu queries (%zu design evals)  naive %.1f ms | batched %.1f ms "
        "(%.2fx)  cache %llu hits / %llu misses  [results bit-identical]\n",
        r.queries, r.designs, r.naiveMs, r.batchedMs, r.speedup(),
        static_cast<unsigned long long>(r.hits),
        static_cast<unsigned long long>(r.misses));

    const bool pass = smoke || r.speedup() >= kGateMinSpeedup;
    std::ostringstream line;
    line << "\"service\": {\"workloads\": \"gemm256+attention64\", \"queries\": "
         << r.queries << ", \"design_evals\": " << r.designs
         << ", \"naive_ms\": " << r.naiveMs << ", \"batched_ms\": "
         << r.batchedMs << ", \"speedup\": " << r.speedup()
         << ", \"cache_hits\": " << r.hits << ", \"cache_misses\": " << r.misses
         << ", \"gate_min_speedup\": " << kGateMinSpeedup << ", \"pass\": "
         << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "service", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass)
      std::printf("  GATE FAIL: batched speedup %.2f < %.1f\n", r.speedup(),
                  kGateMinSpeedup);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
