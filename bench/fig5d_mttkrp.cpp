// Fig. 5(d): MTTKRP dataflows, D[i,j] += A[i,k,l] * B[k,j] * C[l,j].
//
// Paper shape: the IKL selection makes the 3-D tensor A unicast
// ("IKL-UBBB"), which saturates scratchpad bandwidth and loses badly to
// the selections that keep A systolic.
#include "bench_util.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  bench::printHeader("Fig. 5(d)  MTTKRP 64^4, 16x16 PEs, INT16");
  const auto mt = tensor::workloads::mttkrp(64, 64, 64, 64);
  std::vector<bench::PerfRow> rows;
  bench::evalAll(mt, {"IJK-SSBT", "IJL-SBST", "JKL-SSTB", "IKL-UBBB"},
                 bench::paperArray(), &rows);

  double unicast = 1.0, others = 0.0;
  for (const auto& r : rows) {
    if (r.perf.totalCycles == 0) continue;
    if (r.label == "IKL-UBBB")
      unicast = r.perf.utilization;
    else
      others = std::max(others, r.perf.utilization);
  }
  std::printf("\n  shape check: unicast IKL-UBBB %.1f%% < best reuse %.1f%% : %s\n",
              100 * unicast, 100 * others,
              unicast < others ? "OK" : "MISMATCH");
  return 0;
}
