// Fig. 5(f)/(g): Conv2D dataflows on ResNet layer-2 (64ch, 56x56, 3x3) and
// layer-5 (512ch, 7x7, 3x3).
//
// Paper shapes: (1) KCX selections (conv as GEMM over large channel loops)
// win on both layers; (2) selections that map the 3-wide kernel loop
// spatially idle 1/16 of the array; (3) layer-5's small 7x7 maps hurt the
// XY-spatial selections further.
#include "bench_util.hpp"
#include "tensor/workloads.hpp"

namespace {

double runLayer(const char* title, const tensorlib::tensor::TensorAlgebra& conv,
                double* kcxBest, double* xyBest) {
  using namespace tensorlib;
  bench::printHeader(title);
  std::vector<bench::PerfRow> rows;
  bench::evalAll(conv,
                 {"KCX-SST", "KCX-STS", "KCX-STM", "KXY-SBU", "KPX-MST",
                  "KPX-MMT", "XPQ-MMB", "YXP-MBM", "CPQ-UUB"},
                 bench::paperArray(), &rows);
  double best = 0;
  for (const auto& r : rows) {
    if (r.perf.totalCycles == 0) continue;
    best = std::max(best, r.perf.utilization);
    if (r.label.rfind("KCX", 0) == 0)
      *kcxBest = std::max(*kcxBest, r.perf.utilization);
    if (r.label == "XPQ-MMB" || r.label == "YXP-MBM")
      *xyBest = std::max(*xyBest, r.perf.utilization);
  }
  return best;
}

}  // namespace

int main() {
  using namespace tensorlib;
  double kcx2 = 0, xy2 = 0, kcx5 = 0, xy5 = 0;
  runLayer("Fig. 5(f)  Conv2D ResNet layer-2 (64ch 56x56 3x3)",
           tensor::workloads::conv2dResNetLayer2(), &kcx2, &xy2);
  runLayer("Fig. 5(g)  Conv2D ResNet layer-5 (512ch 7x7 3x3)",
           tensor::workloads::conv2dResNetLayer5(), &kcx5, &xy5);

  std::printf("\n  shape checks:\n");
  std::printf("    KCX beats XY-spatial on layer-2: %.1f%% > %.1f%% : %s\n",
              100 * kcx2, 100 * xy2, kcx2 > xy2 ? "OK" : "MISMATCH");
  std::printf("    KCX beats XY-spatial on layer-5: %.1f%% > %.1f%% : %s\n",
              100 * kcx5, 100 * xy5, kcx5 > xy5 ? "OK" : "MISMATCH");
  std::printf("    XY-spatial drops from layer-2 to layer-5: %.1f%% > %.1f%% : %s\n",
              100 * xy2, 100 * xy5, xy2 > xy5 ? "OK" : "MISMATCH");
  return 0;
}
