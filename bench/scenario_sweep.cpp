// Scenario sweep: design-space size and best achievable utilization for
// every workload registered in tensor/workloads.hpp allWorkloads() — the
// same table the property sweep, the conformance oracle and
// tools/conformance_runner iterate. One row per scenario:
//
//   name  selections  specs  best-label  best-util  cycles  enum+sim ms
//
// A quick pulse on how each newly added scenario stresses the enumerator
// and the performance model; not gated (see bench_perf_regression for the
// gated hot-path harness).
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/perf.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  namespace wl = tensor::workloads;

  bench::printHeader("Scenario sweep: allWorkloads() design spaces, 16x16 PEs");
  std::printf("  %-20s %5s %6s  %-12s %9s %10s %8s\n", "scenario", "sels",
              "specs", "best", "util", "cycles", "ms");

  const stt::ArrayConfig array;  // paper configuration
  for (const auto& w : wl::allWorkloads()) {
    const auto start = std::chrono::steady_clock::now();
    stt::EnumerationOptions options;
    options.dropAllUnicast = !w.allowAllUnicast;

    std::size_t selections = 0, specCount = 0;
    std::string bestLabel = "-";
    sim::PerfResult best{};
    for (const auto& sel : stt::allLoopSelections(w.algebra)) {
      ++selections;
      for (const auto& spec : stt::enumerateTransforms(w.algebra, sel, options)) {
        ++specCount;
        const sim::PerfResult perf = sim::estimatePerformance(spec, array);
        if (perf.utilization > best.utilization) {
          best = perf;
          bestLabel = spec.label();
        }
      }
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("  %-20s %5zu %6zu  %-12s %8.1f%% %10lld %8.1f\n",
                w.name.c_str(), selections, specCount, bestLabel.c_str(),
                100.0 * best.utilization,
                static_cast<long long>(best.totalCycles), ms);
  }
  return 0;
}
