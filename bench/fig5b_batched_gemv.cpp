// Fig. 5(b): Batched-GEMV dataflows. Tensor A is accessed exactly once per
// MAC (no reuse), forcing unicast A in every design; the shared scratchpad
// bandwidth (32 GB/s) caps performance well below the array peak.
#include "bench_util.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  bench::printHeader("Fig. 5(b)  Batched-GEMV 256x256x256, 16x16 PEs, INT16");
  const auto bg = tensor::workloads::batchedGemv(256, 256, 256);
  std::vector<bench::PerfRow> rows;
  bench::evalAll(bg,
                 {"MNK-USS", "MNK-UST", "MNK-UTS", "MNK-UMM", "MNK-UMT",
                  "MNK-UMS"},
                 bench::paperArray(), &rows);

  bool allBandwidthBound = true;
  for (const auto& r : rows)
    if (r.perf.totalCycles > 0 && !r.perf.bandwidthBound)
      allBandwidthBound = false;
  std::printf("\n  shape check: every dataflow bandwidth-bound: %s\n",
              allBandwidthBound ? "OK" : "MISMATCH");
  return 0;
}
