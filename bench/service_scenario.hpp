// The shared 10-query overlapping exploration scenario gated by both the
// "service" (batched-vs-naive) and "pruning" (pruned-vs-exhaustive)
// sections of BENCH_hotpaths.json — one definition so the two gates can
// never drift onto different traffic. Also the result comparator both
// benches use to assert bit-identical frontiers.
#pragma once

#include <string>
#include <vector>

#include "driver/explore_service.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::bench {

/// Paper-geometry GEMM under three ASIC and two FPGA objectives, an
/// attention kernel under three, plus two exact duplicates (the realistic
/// heavy-traffic case).
inline std::vector<driver::ExploreQuery> serviceScenarioBatch(int maxEntry) {
  const auto gemm = tensor::workloads::gemm(256, 256, 256);
  const auto attn = tensor::workloads::attention(64, 64, 64);
  auto query = [&](const tensor::TensorAlgebra& algebra,
                   driver::Objective objective, cost::BackendKind backend) {
    driver::ExploreQuery q(algebra);
    q.objective = objective;
    q.backend = backend;
    q.enumeration.maxEntry = maxEntry;
    return q;
  };
  using O = driver::Objective;
  using B = cost::BackendKind;
  return {
      query(gemm, O::Performance, B::Asic),
      query(gemm, O::Power, B::Asic),
      query(gemm, O::EnergyDelay, B::Asic),
      query(gemm, O::Performance, B::Fpga),
      query(gemm, O::EnergyDelay, B::Fpga),
      query(attn, O::Performance, B::Asic),
      query(attn, O::Power, B::Asic),
      query(attn, O::EnergyDelay, B::Asic),
      query(gemm, O::Performance, B::Asic),  // duplicate traffic
      query(attn, O::Performance, B::Asic),  // duplicate traffic
  };
}

/// Throws unless the two runs produced bit-identical frontiers and winners.
inline void checkSameResults(const std::vector<driver::QueryResult>& a,
                             const std::vector<driver::QueryResult>& b) {
  TL_CHECK(a.size() == b.size(), "result count mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    TL_CHECK(a[i].designs == b[i].designs, "designs mismatch");
    TL_CHECK(a[i].frontier.size() == b[i].frontier.size(),
             "frontier size mismatch at query " + std::to_string(i));
    for (std::size_t j = 0; j < a[i].frontier.size(); ++j) {
      const auto& ra = a[i].frontier[j];
      const auto& rb = b[i].frontier[j];
      const auto fa = ra.figures(), fb = rb.figures();
      TL_CHECK(ra.spec.label() == rb.spec.label() &&
                   ra.spec.transform().str() == rb.spec.transform().str() &&
                   ra.perf.totalCycles == rb.perf.totalCycles &&
                   fa.powerMw == fb.powerMw && fa.area == fb.area,
               "frontier divergence at query " + std::to_string(i));
    }
    TL_CHECK(a[i].best.has_value() == b[i].best.has_value(), "best mismatch");
    if (a[i].best)
      TL_CHECK(a[i].best->spec.label() == b[i].best->spec.label(),
               "best label mismatch at query " + std::to_string(i));
  }
}

}  // namespace tensorlib::bench
