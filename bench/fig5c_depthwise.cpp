// Fig. 5(c): Depthwise-Conv2D dataflows (64 channels, 56x56 maps, 3x3).
//
// Paper shape: depthwise conv has no large reduction dimension, so the
// GEMM-ized KCX-style mappings don't exist; selections that keep a kernel
// loop spatial cap utilization at 15/16; channel-parallel multicast
// dataflows (the paper's KPX-MMM / XYP-MMM) do best; fully-unicast
// selections are bandwidth-bound.
//
// Note on labels: we print our strict Table-I letters, where any rank-2
// reuse is 'B'; the paper's figure writes the dominant rank-1 component
// (its XPQ-MMT is our XPQ-MMB, etc.). See EXPERIMENTS.md.
#include "bench_util.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  bench::printHeader("Fig. 5(c)  Depthwise-Conv 64ch 56x56 3x3, 16x16 PEs");
  const auto dw = tensor::workloads::depthwiseConv(64, 56, 56, 3, 3);
  std::vector<bench::PerfRow> rows;
  bench::evalAll(dw,
                 {"KYX-UBU", "KPQ-UUB", "XPQ-MMB", "XPQ-SSB", "YXP-MBM",
                  "YXP-SBT", "KYP-SST", "KYP-MST", "KYP-MMM"},
                 bench::paperArray(), &rows);

  double bestMulticast = 0, bestUnicast = 1;
  for (const auto& r : rows) {
    if (r.perf.totalCycles == 0) continue;
    if (r.label == "KYP-MMM" || r.label == "YXP-MBM")
      bestMulticast = std::max(bestMulticast, r.perf.utilization);
    if (r.label == "KYX-UBU" || r.label == "KPQ-UUB")
      bestUnicast = std::min(bestUnicast, r.perf.utilization);
  }
  std::printf("\n  shape check: multicast-style %.1f%% > unicast-style %.1f%% : %s\n",
              100 * bestMulticast, 100 * bestUnicast,
              bestMulticast > bestUnicast ? "OK" : "MISMATCH");
  return 0;
}
