// Bound-first branch-and-bound enumeration vs the classic
// enumerate → dedupe → analyze → bound → prune pipeline — the PR-9 perf
// anchor: breaking the maxEntry wall.
//
// The classic pipeline materializes a DataflowSpec for every canonical
// candidate (80k+ at maxEntry=3) before any bound can cut it. The
// bound-first search prices each candidate's PARTIAL transform (space rows
// only) against the streaming incumbent frontier first, quotients the
// survivors by evaluation class, and packs them straight into
// SpecBlockSet windows — so dominated subtrees never become specs at all.
//
// Three measurements:
//   diff2   gemm-256, maxEntry=2: bound-first frontier value set must equal
//           the classic one (the exhaustive-space differential).
//   diff3   gemm-8, maxEntry=3: same differential against the UNCUT
//           classic sweep of the full maxEntry=3 space (small workload).
//   enum3   gemm-256, maxEntry=3: the gate — bound-first exploration must
//           finish inside the committed wall-clock budget; classic time and
//           speedup are recorded beside it.
//
// Representatives differ across modes by design (class quotient vs
// signature dedupe), so differentials compare the frontier's unique
// (label, cycles, power, area, utilization) value tuples, never transform
// strings.
//
// Merges an "enum3" section into BENCH_hotpaths.json.
//
// Usage: bench_enum3 [--smoke] [--out <path>]
//   --smoke   maxEntry<=2 spaces, correctness asserts only, no timing gates
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "driver/explore_service.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Committed budget for the gated maxEntry=3 gemm-256 bound-first
/// exploration (cold service, cold candidate memo). Measured ~1.8 s on the
/// reference container (classic ~3.7 s); the budget carries ~1.7x headroom
/// for CI noise while staying under the classic pipeline's time.
constexpr double kGateMaxBoundFirstE3Ms = 3000.0;

driver::ExploreQuery gemmQuery(std::int64_t extent, int maxEntry,
                               bool boundFirst) {
  driver::ExploreQuery q(tensor::workloads::gemm(extent, extent, extent));
  q.enumeration.maxEntry = maxEntry;
  q.enumeration.boundFirst = boundFirst;
  return q;
}

using FrontierValue = std::tuple<std::string, double, double, double, double>;

std::set<FrontierValue> frontierValues(const driver::QueryResult& r) {
  std::set<FrontierValue> values;
  for (const driver::DesignReport& d : r.frontier) {
    const auto f = d.figures();
    values.insert({d.spec.label(), static_cast<double>(d.perf.totalCycles),
                   f.powerMw, f.area, d.perf.utilization});
  }
  return values;
}

/// Cross-mode frontier equality: unique value tuples plus the winner's
/// figures (representative choice and tie multiplicity legitimately differ
/// between signature dedupe and the evaluation-class quotient).
void checkSameValueSets(const driver::QueryResult& a,
                        const driver::QueryResult& b, const char* what) {
  TL_CHECK(!a.timedOut && !b.timedOut, std::string(what) + ": timed out");
  TL_CHECK(frontierValues(a) == frontierValues(b),
           std::string(what) + ": frontier value sets differ");
  TL_CHECK(a.best.has_value() == b.best.has_value(),
           std::string(what) + ": best presence differs");
  if (a.best) {
    TL_CHECK(a.best->perf.totalCycles == b.best->perf.totalCycles &&
                 a.best->figures().powerMw == b.best->figures().powerMw &&
                 a.best->figures().area == b.best->figures().area,
             std::string(what) + ": best figures differ");
  }
}

driver::QueryResult runCold(const driver::ExploreQuery& q, double* ms) {
  stt::clearCandidateCache();
  driver::ExplorationService service{driver::ServiceOptions{}};
  const auto t = Clock::now();
  driver::QueryResult r = service.run(q);
  if (ms) *ms = msSince(t);
  return r;
}

struct Enum3Report {
  double classicE3Ms = 0, boundE3Ms = 0;
  std::size_t classicDesigns = 0, boundDesigns = 0;
  std::uint64_t boundPruned = 0;
  double speedup() const { return classicE3Ms / boundE3Ms; }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  try {
    bench::printHeader(smoke ? "Bound-first enumeration (smoke)"
                             : "Bound-first branch-and-bound vs classic");

    // diff2 — exhaustive-space differential at maxEntry=2 (gemm-16 in
    // smoke mode keeps CI fast; gemm-256 in full mode).
    const std::int64_t diff2Extent = smoke ? 16 : 256;
    checkSameValueSets(runCold(gemmQuery(diff2Extent, 2, false), nullptr),
                       runCold(gemmQuery(diff2Extent, 2, true), nullptr),
                       "diff2");
    std::printf("  diff2   gemm-%lld maxEntry=2: frontier value sets equal\n",
                static_cast<long long>(diff2Extent));

    if (smoke) {
      std::ostringstream line;
      line << "\"enum3\": {\"mode\": \"smoke\", \"section\": \"enum3\", "
           << "\"pass\": true}";
      bench::mergeJsonSection(out, "enum3", line.str());
      std::printf("  merged into %s\n", out.c_str());
      return 0;
    }

    // diff3 — maxEntry=3 differential against the uncut classic sweep on a
    // small workload.
    checkSameValueSets(runCold(gemmQuery(8, 3, false), nullptr),
                       runCold(gemmQuery(8, 3, true), nullptr), "diff3");
    std::printf("  diff3   gemm-8 maxEntry=3: frontier value sets equal\n");

    // enum3 — the gated timing: cold bound-first vs cold classic, gemm-256.
    Enum3Report r;
    const driver::QueryResult classic =
        runCold(gemmQuery(256, 3, false), &r.classicE3Ms);
    const driver::QueryResult bound =
        runCold(gemmQuery(256, 3, true), &r.boundE3Ms);
    checkSameValueSets(classic, bound, "enum3");
    r.classicDesigns = classic.designs;
    r.boundDesigns = bound.designs;
    r.boundPruned = bound.cache.pruned;
    std::printf(
        "  enum3   gemm-256 maxEntry=3: classic %.1f ms (%zu designs) | "
        "bound-first %.1f ms (%zu designs, %llu pruned) | %.2fx\n",
        r.classicE3Ms, r.classicDesigns, r.boundE3Ms, r.boundDesigns,
        static_cast<unsigned long long>(r.boundPruned), r.speedup());

    const bool pass = r.boundE3Ms <= kGateMaxBoundFirstE3Ms;
    std::ostringstream line;
    line << "\"enum3\": {\"workload\": \"gemm256\", \"max_entry\": 3"
         << ", \"classic_ms\": " << r.classicE3Ms
         << ", \"boundfirst_ms\": " << r.boundE3Ms
         << ", \"speedup\": " << r.speedup()
         << ", \"classic_designs\": " << r.classicDesigns
         << ", \"boundfirst_designs\": " << r.boundDesigns
         << ", \"boundfirst_pruned\": " << r.boundPruned
         << ", \"gate_max_boundfirst_ms\": " << kGateMaxBoundFirstE3Ms
         << ", \"pass\": " << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "enum3", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass)
      std::printf("  GATE FAIL: bound-first maxEntry=3 %.1f ms > %.1f ms\n",
                  r.boundE3Ms, kGateMaxBoundFirstE3Ms);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
