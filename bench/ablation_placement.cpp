// Ablation (§VI-C): AutoBridge-style floorplanning. The paper reports the
// MM design's frequency rising from 263 to 328 MHz with manual placement;
// the FPGA model exposes the same knob.
#include <cstdio>

#include "cost/fpga.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  std::printf("\n=== Ablation  placement optimization (AutoBridge-style) ===\n");
  const auto g = tensor::workloads::gemm(1024, 1024, 1024);
  const auto spec = *stt::findDataflowByLabel(g, "MNK-STS");
  stt::ArrayConfig arr;
  arr.rows = 10;
  arr.cols = 16;
  arr.bandwidthGBps = 512.0;
  arr.dataBytes = 4;

  for (bool opt : {false, true}) {
    cost::FpgaConfig fc;
    fc.placementOptimized = opt;
    const auto rep = cost::estimateFpga(spec, arr, fc);
    std::printf("  placement %-3s: %.0f MHz, %.0f Gop/s\n", opt ? "on" : "off",
                rep.frequencyMHz, rep.gops);
  }
  std::printf("  paper: 263 MHz -> 328 MHz on VU9P\n");
  return 0;
}
