// Ablation: the bandwidth cliff behind Fig. 5(b)/(d)'s unicast losses.
// Sweeps scratchpad bandwidth for a unicast-input design vs a systolic one.
#include <cstdio>

#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  std::printf("\n=== Ablation  scratchpad bandwidth sweep (GB/s) ===\n");
  const auto bg = tensor::workloads::batchedGemv(256, 256, 256);
  const auto g = tensor::workloads::gemm(256, 256, 256);
  const auto unicast = *stt::findDataflowByLabel(bg, "MNK-UMM");
  const auto systolic = *stt::findDataflowByLabel(g, "MNK-SST");

  std::printf("  %-8s %-22s %s\n", "GB/s", "Batched-GEMV UMM util",
              "GEMM SST util");
  for (double bw : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
    stt::ArrayConfig cfg;
    cfg.bandwidthGBps = bw;
    const auto u = sim::estimatePerformance(unicast, cfg);
    const auto s = sim::estimatePerformance(systolic, cfg);
    std::printf("  %-8.0f %-22.3f %.3f\n", bw, u.utilization, s.utilization);
  }
  std::printf("  shape: unicast scales with bandwidth; systolic is flat\n");
  return 0;
}
