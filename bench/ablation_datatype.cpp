// Ablation: datapath width. The paper evaluates INT16 (Fig. 6) and FP32
// (Table III); sweeping the width through the ASIC model shows the
// quadratic multiplier term dominating area and the near-linear power
// scaling of the movement structures.
#include <cstdio>

#include "cost/asic.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  std::printf("\n=== Ablation  datapath width, GEMM 16x16 array ===\n");
  const auto g = tensor::workloads::gemm(256, 256, 256);
  stt::ArrayConfig cfg;
  std::printf("  %-7s %-12s %-12s %-12s %s\n", "bits", "SST area", "SST power",
              "MMT area", "MMT power");
  const auto sst = *stt::findDataflowByLabel(g, "MNK-SST");
  const auto mmt = *stt::findDataflowByLabel(g, "MNK-MMT");
  for (int w : {8, 16, 32}) {
    const auto a = cost::estimateAsic(sst, cfg, w);
    const auto b = cost::estimateAsic(mmt, cfg, w);
    std::printf("  %-7d %-12.3f %-12.1f %-12.3f %.1f\n", w, a.areaMm2,
                a.powerMw, b.areaMm2, b.powerMw);
  }
  std::printf("  shape: area grows ~quadratically (multipliers), power of\n"
              "  multicast designs keeps its bus premium at every width\n");
  return 0;
}
