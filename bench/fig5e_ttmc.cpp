// Fig. 5(e): TTMc dataflows, D[i,j,k] += A[i,l,m] * B[l,j] * C[m,k].
//
// Paper shape: designs that stream a tensor with no reuse (IJK-BBBU's
// unicast output D, ILM-UBBB's unicast input A) pay for it in bandwidth;
// selections giving every tensor reuse sustain higher utilization.
#include "bench_util.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  bench::printHeader("Fig. 5(e)  TTMc 48^5-ish, 16x16 PEs, INT16");
  const auto tt = tensor::workloads::ttmc(48, 48, 48, 48, 48);
  std::vector<bench::PerfRow> rows;
  bench::evalAll(tt, {"IJK-BBBU", "IJL-SSBT", "IKL-SBBS", "JKL-BSBS",
                      "ILM-UBBB"},
                 bench::paperArray(), &rows);

  double unicastA = 1.0, best = 0.0;
  for (const auto& r : rows) {
    if (r.perf.totalCycles == 0) continue;
    if (r.label == "ILM-UBBB") unicastA = r.perf.utilization;
    best = std::max(best, r.perf.utilization);
  }
  std::printf("\n  shape check: unicast-A ILM-UBBB %.1f%% < best %.1f%% : %s\n",
              100 * unicastA, 100 * best, unicastA < best ? "OK" : "MISMATCH");
  return 0;
}
