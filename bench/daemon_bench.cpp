// Snapshot restore vs cold start benchmark (the resident-daemon anchor).
//
// Runs the shared 10-query overlapping service scenario three ways:
//
//   cold      fresh service, empty candidate memo — every design point
//             enumerated, mapped and evaluated from scratch.
//   restored  fresh service + empty candidate memo that first restores a
//             snapshot written by the cold run, then serves the same
//             traffic (timed INCLUDING the restore — the daemon's real
//             restart-to-answer latency).
//
// plus the restored run again at 1 and 8 worker threads. All frontiers and
// winners are asserted bit-identical to the cold run — a snapshot may only
// change how fast answers arrive, never what they are.
//
// Merges a "daemon" section into BENCH_hotpaths.json next to the
// service/pruning gates (gate: restored >= 1.3x cold, full mode only).
//
// Usage: bench_daemon [--smoke] [--out <path>]
//   --smoke   maxEntry=1 spaces, correctness asserts only, no timing gates
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/explore_service.hpp"
#include "service_scenario.hpp"
#include "stt/enumerate.hpp"
#include "support/error.hpp"

namespace {

using namespace tensorlib;
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// Was 2.0 when the cold start ran the scalar pipeline. With blockSpecs=64
// the default cold start is itself ~3x faster and the block path skips the
// tile-mapping memo entirely (snapshots carry 0 mappings), so the restore's
// remaining win is the eval cache + candidate lists: measured 1.70x
// (cold ~740 ms, restored ~435 ms) on the reference container.
constexpr double kGateMinSpeedup = 1.3;

struct DaemonReport {
  std::size_t designs = 0;  ///< design points across the batch
  double coldMs = 0, restoredMs = 0;
  std::size_t evalEntries = 0, mappingEntries = 0, candidateLists = 0;
  double speedup() const { return coldMs / restoredMs; }
};

DaemonReport benchDaemon(int maxEntry, const std::string& snapshotPath) {
  DaemonReport r;
  const auto batch = bench::serviceScenarioBatch(maxEntry);
  const std::string fingerprint =
      driver::snapshot::cacheSchemaFingerprint(batch[0].enumeration);

  // --- cold: empty process-wide candidate memo, fresh service.
  std::vector<driver::QueryResult> cold;
  {
    stt::clearCandidateCache();
    driver::ExplorationService service;
    const auto t = Clock::now();
    cold = service.runBatch(batch);
    r.coldMs = msSince(t);
    TL_CHECK(service.saveSnapshot(snapshotPath, fingerprint),
             "snapshot write failed");
  }
  for (const auto& res : cold) r.designs += res.designs;

  // --- restored: restart-to-answer latency = restore + serve.
  {
    stt::clearCandidateCache();
    driver::ExplorationService service;
    const auto t = Clock::now();
    const auto restore = service.restoreSnapshot(snapshotPath, fingerprint);
    const auto warm = service.runBatch(batch);
    r.restoredMs = msSince(t);
    TL_CHECK(restore.restored(),
             "restore failed: " +
                 driver::snapshot::restoreStatusName(restore.status) +
                 " " + restore.message);
    r.evalEntries = restore.evalEntries;
    r.mappingEntries = restore.mappingEntries;
    r.candidateLists = restore.candidateLists;
    bench::checkSameResults(cold, warm);
  }

  // --- bit-identity of the restored service across thread counts.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    stt::clearCandidateCache();
    driver::ServiceOptions options;
    options.threads = threads;
    driver::ExplorationService service(options);
    TL_CHECK(service.restoreSnapshot(snapshotPath, fingerprint).restored(),
             "restore failed at " + std::to_string(threads) + " threads");
    bench::checkSameResults(cold, service.runBatch(batch));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_hotpaths.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::string snapshotPath = "bench_daemon.snap.tmp";
  try {
    bench::printHeader(smoke ? "Snapshot restore (smoke)"
                             : "Snapshot restore vs cold start");
    const DaemonReport r = benchDaemon(smoke ? 1 : 2, snapshotPath);
    std::remove(snapshotPath.c_str());
    std::printf(
        "  cold %.1f ms | restored %.1f ms (%.2fx)  [%zu design evals; "
        "snapshot: %zu evals, %zu mappings, %zu candidate lists; frontiers "
        "bit-identical at 1 and 8 threads]\n",
        r.coldMs, r.restoredMs, r.speedup(), r.designs, r.evalEntries,
        r.mappingEntries, r.candidateLists);

    const bool pass = smoke || r.speedup() >= kGateMinSpeedup;
    std::ostringstream line;
    line << "\"daemon\": {\"workloads\": \"gemm256+attention64\", "
         << "\"batch_design_evals\": " << r.designs
         << ", \"cold_ms\": " << r.coldMs
         << ", \"restored_ms\": " << r.restoredMs
         << ", \"restored_speedup\": " << r.speedup()
         << ", \"snapshot_evals\": " << r.evalEntries
         << ", \"snapshot_mappings\": " << r.mappingEntries
         << ", \"snapshot_candidate_lists\": " << r.candidateLists
         << ", \"threads_checked\": \"1,8\""
         << ", \"gate_min_restored_speedup\": " << kGateMinSpeedup
         << ", \"pass\": " << (pass ? "true" : "false") << "}";
    bench::mergeJsonSection(out, "daemon", line.str());
    std::printf("  merged into %s\n", out.c_str());

    if (!pass)
      std::printf("  GATE FAIL: restored speedup %.2f < %.1f\n", r.speedup(),
                  kGateMinSpeedup);
    return pass ? 0 : 1;
  } catch (const tensorlib::Error& e) {
    std::remove(snapshotPath.c_str());
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
