// Extensibility: define a tensor algebra that is NOT one of the paper's
// Table-II workloads — the score part of attention,
//     S[h,i,j] += Q[h,i,d] * K[h,j,d]
// (batched by head h) — directly through the public IR, then let TensorLib
// find dataflows, simulate them, and verify functional correctness.
#include <cstdio>

#include "sim/dfsim.hpp"
#include "stt/enumerate.hpp"
#include "tensor/reference.hpp"

int main() {
  using namespace tensorlib;
  using tensor::accessFromTerms;

  // loops: h=0, i=1, j=2, d=3
  const tensor::TensorAlgebra attention(
      "AttentionScore",
      {{"h", 4}, {"i", 32}, {"j", 32}, {"d", 16}},
      /*output=*/{"S", accessFromTerms(4, {{0}, {1}, {2}})},
      /*inputs=*/
      {{"Q", accessFromTerms(4, {{0}, {1}, {3}})},
       {"K", accessFromTerms(4, {{0}, {2}, {3}})}});
  std::printf("algebra: %s\n", attention.str().c_str());

  // Enumerate dataflows over the (i, j, d) selection — h stays sequential.
  const auto sel = stt::LoopSelection::byNames(attention, {"i", "j", "d"});
  const auto specs = stt::enumerateTransforms(attention, sel);
  std::printf("found %zu distinct dataflows; first few:\n", specs.size());

  stt::ArrayConfig array;
  array.rows = array.cols = 8;
  const auto env = tensor::makeRandomInputs(attention);
  const auto golden = tensor::referenceExecute(attention, env);

  int shown = 0;
  for (const auto& spec : specs) {
    const auto result = sim::simulate(spec, array, &env);
    const bool ok = result.output.maxAbsDiff(golden) == 0.0;
    std::printf("  %-10s  cycles %-8lld util %5.1f%%  functional %s\n",
                spec.label().c_str(),
                static_cast<long long>(result.cycles),
                100.0 * result.utilization, ok ? "PASS" : "FAIL");
    if (!ok) return 1;
    if (++shown >= 8) break;
  }
  std::printf("every simulated dataflow matches the software reference.\n");
  return 0;
}
