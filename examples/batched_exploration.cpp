// Batched exploration walkthrough: many queries, one service.
//
// Submits an overlapping batch — the same GEMM under three objectives and
// two cost backends, plus an attention kernel — to an ExplorationService
// and prints each query's Pareto frontier, its objective winner, and the
// cache traffic that shows the overlap being amortized: the three ASIC
// GEMM queries evaluate the design space once, the other two objectives
// ride entirely on cache hits.
#include <cstdio>

#include "driver/explore_service.hpp"
#include "tensor/workloads.hpp"

using namespace tensorlib;

namespace {

driver::ExploreQuery gemmQuery(driver::Objective objective,
                               cost::BackendKind backend) {
  driver::ExploreQuery q(tensor::workloads::gemm(64, 64, 64));
  q.array.rows = q.array.cols = 8;
  q.objective = objective;
  q.backend = backend;
  return q;
}

}  // namespace

int main() {
  std::vector<driver::ExploreQuery> batch;
  batch.push_back(gemmQuery(driver::Objective::Performance, cost::BackendKind::Asic));
  batch.push_back(gemmQuery(driver::Objective::Power, cost::BackendKind::Asic));
  batch.push_back(gemmQuery(driver::Objective::EnergyDelay, cost::BackendKind::Asic));
  batch.push_back(gemmQuery(driver::Objective::Performance, cost::BackendKind::Fpga));
  batch.push_back(gemmQuery(driver::Objective::Power, cost::BackendKind::Fpga));
  {
    driver::ExploreQuery attn(tensor::workloads::attention(32, 32, 32));
    attn.array.rows = attn.array.cols = 8;
    attn.objective = driver::Objective::Performance;
    batch.push_back(attn);
  }

  driver::ExplorationService service;
  const auto results = service.runBatch(batch);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& q = batch[i];
    const auto& r = results[i];
    std::printf("query %zu: %s / %s / %s — %zu designs, frontier %zu, "
                "cache %llu hits / %llu misses\n",
                i, q.algebra.name().c_str(),
                cost::backendKindName(q.backend).c_str(),
                driver::objectiveName(q.objective).c_str(), r.designs, r.frontier.size(),
                static_cast<unsigned long long>(r.cache.hits),
                static_cast<unsigned long long>(r.cache.misses));
    for (const auto& rep : r.frontier) std::printf("  %s\n", rep.summary().c_str());
    if (r.best) std::printf("  best: %s\n", r.best->summary().c_str());
  }

  const auto stats = service.cacheStats();
  std::printf("service cache: %s\n", stats.str().c_str());

  // An async one-off rides the same cache: this repeat of the first query
  // costs only lookups.
  auto future = service.submit(batch[0]);
  const auto again = future.get();
  std::printf("async repeat: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(again.cache.hits),
              static_cast<unsigned long long>(again.cache.misses));
  return 0;
}
