// Design-space exploration: enumerate every dataflow for a workload,
// evaluate performance (cycle model), power and area (ASIC model), and
// print the Pareto frontier — the paper's "rich design space with
// trade-offs in performance, area, and power" in one loop.
//
// Usage: ./examples/design_space_exploration [gemm|depthwise]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "cost/asic.hpp"
#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main(int argc, char** argv) {
  using namespace tensorlib;
  const bool depthwise = argc > 1 && std::strcmp(argv[1], "depthwise") == 0;
  const auto algebra = depthwise
                           ? tensor::workloads::depthwiseConv(64, 56, 56, 3, 3)
                           : tensor::workloads::gemm(256, 256, 256);
  std::printf("exploring %s\n", algebra.str().c_str());

  stt::ArrayConfig array;  // 16x16 @ 320MHz
  struct Candidate {
    std::string label;
    double utilization, powerMw, areaMm2;
  };
  std::vector<Candidate> all;
  for (const auto& sel : stt::allLoopSelections(algebra)) {
    for (const auto& spec : stt::enumerateTransforms(algebra, sel)) {
      const auto perf = sim::estimatePerformance(spec, array);
      const auto asic = cost::estimateAsic(spec, array, 16);
      all.push_back({spec.label(), perf.utilization, asic.powerMw,
                     asic.areaMm2});
    }
  }
  std::printf("%zu design points\n", all.size());

  // Pareto frontier on (maximize utilization, minimize power).
  std::sort(all.begin(), all.end(), [](const Candidate& a, const Candidate& b) {
    return a.utilization > b.utilization ||
           (a.utilization == b.utilization && a.powerMw < b.powerMw);
  });
  std::printf("\nPareto frontier (utilization vs power):\n");
  std::printf("  %-14s %-8s %-10s %s\n", "dataflow", "util%", "power(mW)",
              "area(mm2)");
  double bestPower = 1e30;
  int shown = 0;
  for (const auto& c : all) {
    if (c.powerMw >= bestPower) continue;
    bestPower = c.powerMw;
    std::printf("  %-14s %-8.1f %-10.1f %.3f\n", c.label.c_str(),
                100 * c.utilization, c.powerMw, c.areaMm2);
    if (++shown >= 12) break;
  }
  return 0;
}
