// Reproducing a famous design point: an Eyeriss-style row-stationary
// convolution mapping (paper Fig. 4(c)) — filter rows map to PE rows,
// output rows to PE columns, and the input activations travel along the
// array *diagonals* as a multicast; weights broadcast then stay resident.
//
// This demonstrates that named accelerators from the literature fall out of
// the STT design space as single matrices.
#include <cstdio>

#include "cost/asic.hpp"
#include "sim/perf.hpp"
#include "stt/spec.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;
  const auto conv = tensor::workloads::conv2d(16, 16, 14, 14, 3, 3);

  // Selection (y, x, p): PE row = p (filter row), PE column = y (output
  // row), time = x.
  const auto sel = stt::LoopSelection::byNames(conv, {"y", "x", "p"});
  const stt::SpaceTimeTransform t(
      linalg::IntMatrix{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}});
  const auto spec = stt::analyzeDataflow(conv, sel, t);
  std::printf("%s\n\n", spec.describe().c_str());

  // The signature Eyeriss structure:
  const auto& act = spec.tensors()[0];     // A: input activations
  const auto& weight = spec.tensors()[1];  // B: weights
  std::printf("input activations: %s along direction %s  <- diagonal multicast\n",
              stt::dataflowClassName(act.dataflow.dataflowClass).c_str(),
              linalg::str(act.dataflow.direction).c_str());
  std::printf("weights:           %s  <- broadcast, then resident in PE\n",
              stt::dataflowClassName(weight.dataflow.dataflowClass).c_str());

  stt::ArrayConfig array;
  const auto perf = sim::estimatePerformance(spec, array);
  const auto asic = cost::estimateAsic(spec, array, 16);
  std::printf("\non a 16x16 array: %.1f%% utilization, %.1f mW, %.3f mm2\n",
              100 * perf.utilization, asic.powerMw, asic.areaMm2);

  const bool diagonal =
      act.dataflow.direction[0] != 0 && act.dataflow.direction[1] != 0 &&
      act.dataflow.direction[2] == 0;
  std::printf("diagonal-multicast check: %s\n", diagonal ? "PASS" : "FAIL");
  return diagonal ? 0 : 1;
}
