// Full-workload RTL execution: the generated accelerator runs an ENTIRE
// problem — multiple tiles, remainder tiles, sequential outer loops — on
// one netlist, with the controller's wrapping stage counter reloading the
// stationary double buffers, clearing accumulators and draining outputs
// between tiles. The collected result is checked against the complete
// software reference.
//
// Usage: ./examples/full_workload_rtl [LABEL]   (default MNK-STS)
#include <cstdio>

#include "arch/testbench.hpp"
#include "cost/netlist_cost.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main(int argc, char** argv) {
  using namespace tensorlib;
  const std::string label = argc > 1 ? argv[1] : "MNK-STS";

  // 7x9x6 GEMM on a 4x4 array: remainder tiles in both spatial dimensions.
  const auto gemm = tensor::workloads::gemm(7, 9, 6);
  const auto spec = stt::findDataflowByLabel(gemm, label);
  if (!spec) {
    std::printf("no transform realizes %s\n", label.c_str());
    return 1;
  }
  stt::ArrayConfig array;
  array.rows = array.cols = 4;
  arch::HardwareConfig hw;
  hw.injectEverywhere = true;  // remainder tiles inject at interior PEs

  const auto acc = arch::generateAccelerator(*spec, array, hw);
  std::printf("%s on a 4x4 array: stage period %lld cycles "
              "(load %lld + compute %lld + tail %lld)\n",
              spec->label().c_str(), static_cast<long long>(acc.stagePeriod),
              static_cast<long long>(acc.loadCycles),
              static_cast<long long>(acc.computeCycles),
              static_cast<long long>(acc.drainCycles));

  const auto price = cost::priceNetlist(acc.netlist);
  std::printf("netlist: %zu nodes (%lld multipliers, %lld adders, %lld reg "
              "bits)\n",
              acc.netlist.size(), static_cast<long long>(price.multipliers),
              static_cast<long long>(price.adders),
              static_cast<long long>(price.regBits));

  const auto env = tensor::makeRandomInputs(gemm);
  const auto run = arch::runAcceleratorFull(acc, env);
  const auto golden = tensor::referenceExecute(gemm, env);

  std::printf("ran %lld RTL cycles across all tiles\n",
              static_cast<long long>(run.cyclesRun));
  std::printf("vs full software reference: max |diff| = %g -> %s\n",
              run.collected.maxAbsDiff(golden),
              run.collected.maxAbsDiff(golden) == 0.0 ? "PASS" : "FAIL");
  return run.collected.maxAbsDiff(golden) == 0.0 ? 0 : 1;
}
