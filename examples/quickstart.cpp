// Quickstart: the 60-second tour of TensorLib-cpp.
//
//  1. Define a tensor algebra (GEMM).
//  2. Pick a space-time transformation (the paper's Fig. 1(b) matrix).
//  3. Analyze it: reuse subspaces -> per-tensor dataflow classes (Table I).
//  4. Map it onto a 16x16 PE array and simulate cycle-accurately.
//  5. Verify the simulated output against the software reference.
//
// Build & run:  ./examples/quickstart  (from the build directory)
#include <cstdio>

#include "sim/dfsim.hpp"
#include "stt/spec.hpp"
#include "tensor/workloads.hpp"

int main() {
  using namespace tensorlib;

  // 1. GEMM: C[m,n] += A[m,k] * B[n,k], 64x64x64.
  const auto gemm = tensor::workloads::gemm(64, 64, 64);
  std::printf("algebra: %s\n", gemm.str().c_str());

  // 2. The paper's example transform: PE = (m, n), cycle = m + n + k.
  const stt::SpaceTimeTransform transform(
      linalg::IntMatrix{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}});

  // 3. Dataflow analysis (Equation (2) + Table I).
  const auto spec = stt::analyzeDataflow(
      gemm, stt::LoopSelection(gemm, {0, 1, 2}), transform);
  std::printf("\ndataflow: %s\n", spec.describe().c_str());

  // 4+5. Simulate on a 16x16 array @ 320 MHz, 32 GB/s and verify.
  stt::ArrayConfig array;  // paper defaults
  const auto inputs = tensor::makeRandomInputs(gemm);
  const auto result = sim::simulate(spec, array, &inputs);
  const auto golden = tensor::referenceExecute(gemm, inputs);

  std::printf("\nsimulated %lld MACs in %lld cycles (utilization %.1f%%)\n",
              static_cast<long long>(result.macs),
              static_cast<long long>(result.cycles),
              100.0 * result.utilization);
  std::printf("functional check vs reference: max |diff| = %g  -> %s\n",
              result.output.maxAbsDiff(golden),
              result.output.maxAbsDiff(golden) == 0.0 ? "PASS" : "FAIL");
  return result.output.maxAbsDiff(golden) == 0.0 ? 0 : 1;
}
