// Generate real hardware: pick a dataflow by its paper-style label, build
// the accelerator netlist (PE templates + interconnect + controller),
// verify it cycle-by-cycle at register level against golden values, and
// write synthesizable Verilog to disk — the artifact a user would hand to
// Vivado or Design Compiler.
//
// Usage: ./examples/emit_verilog [LABEL] [ROWS] [COLS]
//        default: MNK-SST 8 8
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "arch/testbench.hpp"
#include "hwir/verilog.hpp"
#include "stt/enumerate.hpp"
#include "tensor/workloads.hpp"

int main(int argc, char** argv) {
  using namespace tensorlib;
  const std::string label = argc > 1 ? argv[1] : "MNK-SST";
  const std::int64_t rows = argc > 2 ? std::atoll(argv[2]) : 8;
  const std::int64_t cols = argc > 3 ? std::atoll(argv[3]) : 8;

  const auto gemm = tensor::workloads::gemm(rows, cols, 16);
  const auto spec = stt::findDataflowByLabel(gemm, label);
  if (!spec) {
    std::printf("no transform realizes %s for GEMM\n", label.c_str());
    return 1;
  }

  stt::ArrayConfig array;
  array.rows = rows;
  array.cols = cols;
  const auto acc = arch::generateAccelerator(*spec, array);
  std::printf("generated %s: %zu netlist nodes, %lld register bits, "
              "%lldx%lld PEs\n",
              spec->label().c_str(), acc.netlist.size(),
              static_cast<long long>(acc.netlist.regBits()),
              static_cast<long long>(acc.grid.p1Span),
              static_cast<long long>(acc.grid.p2Span));

  // RTL-level verification (the paper's VCS step).
  const auto env = tensor::makeRandomInputs(gemm);
  const auto run = arch::runAcceleratorTile(acc, env);
  std::printf("RTL simulation: %lld cycles, max |diff| vs golden = %g -> %s\n",
              static_cast<long long>(run.cyclesRun), run.maxAbsDiff,
              run.matches() ? "PASS" : "FAIL");

  const std::string verilog = hwir::emitVerilog(acc.netlist);
  const std::string path = "tensorlib_" + label + ".v";
  std::ofstream(path) << verilog;
  std::printf("wrote %zu bytes of Verilog to %s\n", verilog.size(),
              path.c_str());
  return run.matches() ? 0 : 1;
}
