#include "stt/spec.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tensorlib::stt {

namespace {

/// Accumulating 64-bit hasher: each value is avalanche-mixed (splitmix64
/// finalizer) then folded FNV-style, so structurally different token
/// sequences land far apart.
struct Hash64 {
  std::uint64_t state = 0xcbf29ce484222325ull;

  void add(std::uint64_t v) {
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    v ^= v >> 31;
    state = (state ^ v) * 0x100000001b3ull;
  }
  void add(std::int64_t v) { add(static_cast<std::uint64_t>(v)); }
};

}  // namespace

SpecContext::SpecContext(tensor::TensorAlgebra a, LoopSelection s)
    : algebra(std::move(a)), selection(std::move(s)) {
  for (const tensor::TensorRef* ref : algebra.tensorsInLabelOrder())
    restrictedAccesses.push_back(ref->access.restrictedTo(selection.indices()));
}

SpecContextPtr makeSpecContext(tensor::TensorAlgebra algebra,
                               LoopSelection selection) {
  return std::make_shared<const SpecContext>(std::move(algebra),
                                             std::move(selection));
}

DataflowSpec::DataflowSpec(SpecContextPtr context, SpaceTimeTransform transform,
                           std::vector<TensorRole> tensors)
    : context_(std::move(context)),
      transform_(std::move(transform)),
      tensors_(std::move(tensors)) {
  TL_CHECK(context_ != nullptr, "DataflowSpec: null context");
  TL_CHECK(tensors_.size() == context_->algebra.inputs().size() + 1,
           "DataflowSpec: tensor role count mismatch");
  TL_CHECK(tensors_.back().isOutput, "DataflowSpec: output role must be last");
  letters_.reserve(tensors_.size());
  for (const auto& t : tensors_)
    letters_ += dataflowLetter(t.dataflow.dataflowClass);
}

DataflowSpec::DataflowSpec(tensor::TensorAlgebra algebra, LoopSelection selection,
                           SpaceTimeTransform transform,
                           std::vector<TensorRole> tensors)
    : DataflowSpec(makeSpecContext(std::move(algebra), std::move(selection)),
                   std::move(transform), std::move(tensors)) {}

std::string DataflowSpec::label() const {
  return selection().label() + "-" + letters_;
}

std::string DataflowSpec::signature() const {
  std::ostringstream os;
  os << selection().label();
  for (const auto& t : tensors_) {
    os << "|" << t.tensor << ":" << static_cast<int>(t.dataflow.dataflowClass);
    if (t.dataflow.reuseRank == 1) {
      os << ":" << linalg::str(t.dataflow.direction);
    } else if (t.dataflow.reuseRank >= 2) {
      // Canonicalize the plane: row-reduce the basis transpose so any basis
      // of the same subspace yields the same string.
      const auto red = linalg::rref(
          linalg::toRational(t.dataflow.reuseBasis.transposed()));
      os << ":";
      for (std::size_t i = 0; i < red.rank; ++i) {
        linalg::RatVector row = red.matrix.row(i);
        os << linalg::str(linalg::clearDenominators(row));
      }
    }
  }
  return os.str();
}

std::uint64_t DataflowSpec::signatureHash() const {
  // Hashes exactly the canonical content signature() renders: the selection
  // plus, per tensor in label order, the dataflow class and (rank-1) the
  // primitive direction / (rank-2+) the RREF-canonicalized reuse basis.
  Hash64 h;
  for (std::size_t idx : selection().indices()) h.add(idx);
  for (const auto& t : tensors_) {
    h.add(static_cast<std::uint64_t>(t.dataflow.dataflowClass));
    h.add(t.dataflow.reuseRank);
    if (t.dataflow.reuseRank == 1) {
      for (std::int64_t v : t.dataflow.direction) h.add(v);
    } else if (t.dataflow.reuseRank >= 2) {
      const auto red = linalg::rref(
          linalg::toRational(t.dataflow.reuseBasis.transposed()));
      for (std::size_t i = 0; i < red.rank; ++i) {
        linalg::RatVector row = red.matrix.row(i);
        for (std::int64_t v : linalg::clearDenominators(row)) h.add(v);
      }
    }
  }
  return h.state;
}

std::string DataflowSpec::describe() const {
  std::ostringstream os;
  os << label() << "  T=" << transform_.str();
  for (const auto& t : tensors_) {
    os << "\n  " << t.tensor << (t.isOutput ? " (out)" : "      ") << ": "
       << dataflowClassName(t.dataflow.dataflowClass);
    if (t.dataflow.reuseRank == 1)
      os << " dir=" << linalg::str(t.dataflow.direction);
  }
  return os.str();
}

DataflowSpec analyzeDataflow(const SpecContextPtr& context,
                             const SpaceTimeTransform& transform) {
  TL_CHECK(context != nullptr, "analyzeDataflow: null context");
  const auto refs = context->algebra.tensorsInLabelOrder();
  std::vector<TensorRole> roles;
  roles.reserve(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const tensor::TensorRef* ref = refs[i];
    TensorRole role;
    role.tensor = ref->tensor;
    role.isOutput = (ref == &context->algebra.output());
    role.fullAccess = ref->access;
    role.access = context->restrictedAccesses[i];
    role.dataflow = classify(analyzeReuse(role.access, transform));
    roles.push_back(std::move(role));
  }
  return DataflowSpec(context, transform, std::move(roles));
}

DataflowSpec analyzeDataflow(const tensor::TensorAlgebra& algebra,
                             const LoopSelection& selection,
                             const SpaceTimeTransform& transform) {
  return analyzeDataflow(makeSpecContext(algebra, selection), transform);
}

}  // namespace tensorlib::stt
