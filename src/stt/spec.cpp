#include "stt/spec.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tensorlib::stt {

DataflowSpec::DataflowSpec(tensor::TensorAlgebra algebra, LoopSelection selection,
                           SpaceTimeTransform transform,
                           std::vector<TensorRole> tensors)
    : algebra_(std::move(algebra)),
      selection_(std::move(selection)),
      transform_(std::move(transform)),
      tensors_(std::move(tensors)) {
  TL_CHECK(tensors_.size() == algebra_.inputs().size() + 1,
           "DataflowSpec: tensor role count mismatch");
  TL_CHECK(tensors_.back().isOutput, "DataflowSpec: output role must be last");
}

std::string DataflowSpec::label() const { return selection_.label() + "-" + letters(); }

std::string DataflowSpec::letters() const {
  std::string out;
  for (const auto& t : tensors_) out += dataflowLetter(t.dataflow.dataflowClass);
  return out;
}

std::string DataflowSpec::signature() const {
  std::ostringstream os;
  os << selection_.label();
  for (const auto& t : tensors_) {
    os << "|" << t.tensor << ":" << static_cast<int>(t.dataflow.dataflowClass);
    if (t.dataflow.reuseRank == 1) {
      os << ":" << linalg::str(t.dataflow.direction);
    } else if (t.dataflow.reuseRank >= 2) {
      // Canonicalize the plane: row-reduce the basis transpose so any basis
      // of the same subspace yields the same string.
      const auto red = linalg::rref(
          linalg::toRational(t.dataflow.reuseBasis.transposed()));
      os << ":";
      for (std::size_t i = 0; i < red.rank; ++i) {
        linalg::RatVector row = red.matrix.row(i);
        os << linalg::str(linalg::clearDenominators(row));
      }
    }
  }
  return os.str();
}

bool DataflowSpec::hasLetter(char letter) const {
  return letters().find(letter) != std::string::npos;
}

std::string DataflowSpec::describe() const {
  std::ostringstream os;
  os << label() << "  T=" << transform_.str();
  for (const auto& t : tensors_) {
    os << "\n  " << t.tensor << (t.isOutput ? " (out)" : "      ") << ": "
       << dataflowClassName(t.dataflow.dataflowClass);
    if (t.dataflow.reuseRank == 1)
      os << " dir=" << linalg::str(t.dataflow.direction);
  }
  return os.str();
}

DataflowSpec analyzeDataflow(const tensor::TensorAlgebra& algebra,
                             const LoopSelection& selection,
                             const SpaceTimeTransform& transform) {
  std::vector<TensorRole> roles;
  for (const tensor::TensorRef* ref : algebra.tensorsInLabelOrder()) {
    TensorRole role;
    role.tensor = ref->tensor;
    role.isOutput = (ref == &algebra.output());
    role.fullAccess = ref->access;
    role.access = ref->access.restrictedTo(selection.indices());
    role.dataflow = classify(analyzeReuse(role.access, transform));
    roles.push_back(std::move(role));
  }
  return DataflowSpec(algebra, selection, transform, std::move(roles));
}

}  // namespace tensorlib::stt
