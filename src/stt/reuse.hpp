// Reuse-subspace computation (Equations (2)/(3) of the paper).
//
// For a tensor with (selection-restricted) access matrix A and transform T,
// two space-time points (p,t), (p',t') touch the same tensor element iff
// A·T⁻¹·(p,t) == A·T⁻¹·(p',t'), i.e. their difference lies in
// null(A·T⁻¹) = T·null(A). We compute that subspace exactly and hand its
// basis to the Table-I classifier. This is mathematically equivalent to the
// paper's Equation (3) (eigenvectors of E − (AT⁻¹)⁻(AT⁻¹), which is the
// projector onto the same nullspace) but needs no pseudoinverse.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "stt/transform.hpp"
#include "tensor/access.hpp"

namespace tensorlib::stt {

/// Reuse subspace of one tensor in space-time coordinates.
struct ReuseAnalysis {
  /// Basis of null(A_sel) in selected-loop coordinates; 3 x r, columns are
  /// primitive integer vectors.
  linalg::IntMatrix loopBasis;
  /// The same basis mapped to space-time: columns of T * loopBasis, each
  /// reduced to primitive form. 3 x r. Used for classification (Table I
  /// cares about directions only).
  linalg::IntMatrix spaceTimeBasis;
  /// Exact lattice basis T * loopBasis without primitive reduction: the true
  /// reuse lattice in space-time, whose strides the simulators must honor
  /// (a reuse step can move more than one PE / more than one cycle).
  linalg::IntMatrix latticeBasis;
  /// r = dim of the reuse subspace (0..3).
  std::size_t rank = 0;
};

/// Computes the reuse subspace of `access` (already restricted to the three
/// selected loops) under transform `t`.
ReuseAnalysis analyzeReuse(const tensor::AffineAccess& access,
                           const SpaceTimeTransform& t);

}  // namespace tensorlib::stt
