// Struct-of-arrays packing of an enumerated design space.
//
// The scalar evaluation path walks pointer-rich DataflowSpec objects one
// candidate at a time; every bound, mapping search and cost model re-reads
// the same transform matrix, extents and access coefficients through
// shared_ptr indirections. A SpecBlockSet packs the read sets of those
// models — |transform| entries, selected extents, outer-iteration product,
// per-tensor |access| coefficients, dataflow class tags — into contiguous
// arrays built once per enumerated list, so block-shaped bound/perf/cost
// entry points (sim::cyclesLowerBound over a set, cost::CostBackend's
// block overloads) run as tight loops with no per-candidate allocation.
//
// The packed arrays store *absolute values*: every consumer (tile-mapping
// search, cycle lower bound, structural inventory) is provably
// sign-invariant, which is also why the mapping-class partition below is
// coarser than spec identity. Packing never changes results: the packed
// mapping search and the packed models are pinned bit-identical to their
// scalar counterparts by tests/block_eval_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stt/mapping.hpp"

namespace tensorlib::stt {

/// Contiguous struct-of-arrays view of one enumerated design space. All
/// specs of one list share an algebra, so per-list facts (tensor count,
/// per-tensor rank, total MACs) are stored once. Tensors keep label order:
/// inputs in formula order, the output last.
struct SpecBlockSet {
  /// The source specs (aliased, not copied): the driver still needs real
  /// DataflowSpecs for frontier reports and for the scalar fallback.
  std::shared_ptr<const std::vector<DataflowSpec>> source;

  std::size_t count = 0;           ///< specs in the set
  std::size_t tensorsPerSpec = 0;  ///< uniform across the list
  std::size_t inputCount = 0;      ///< algebra().inputs().size()
  std::int64_t algebraMacs = 0;    ///< algebra().totalMacs()

  // Per spec, contiguous.
  std::vector<std::int64_t> extents;  ///< 3/spec: selected loop extents
  std::vector<std::int64_t> outer;    ///< 1/spec: outer-iteration product
  std::vector<std::int64_t> absT;     ///< 9/spec: |transform|, row-major
  std::vector<std::string> labels;    ///< spec.label(), for frontier entries

  // Per (spec, tensor).
  std::vector<std::uint8_t> classTag;    ///< DataflowClass, 1/tensor
  std::vector<std::int64_t> absDir;      ///< 2/tensor: |dp1|,|dp2| (rank-1)
  std::vector<std::int64_t> systolicDt;  ///< |lattice dt| (Systolic only)

  // Per tensor, uniform across the list.
  std::vector<std::uint8_t> tensorIsOutput;  ///< role.isOutput flags
  std::vector<std::size_t> tensorRank;       ///< restricted-access rank
  std::size_t rankStride = 0;                ///< max rank: absC row block

  /// |restricted access| coefficients: per (spec, tensor) a rankStride x 3
  /// row-major block, rows beyond the tensor's rank zero-padded.
  std::vector<std::int64_t> absC;

  /// Mapping-class partition: specs whose packed mapping read set
  /// (extents, outer, |T|, |C|) is identical share an id in
  /// [0, mapClassCount) — they provably map identically on every array,
  /// so a block evaluation runs one tile search per class, not per spec.
  std::vector<std::uint32_t> mapClass;
  std::size_t mapClassCount = 0;

  const std::int64_t* specExtents(std::size_t i) const {
    return extents.data() + i * 3;
  }
  const std::int64_t* specAbsT(std::size_t i) const { return absT.data() + i * 9; }
  std::size_t tensorIndex(std::size_t i, std::size_t k) const {
    return i * tensorsPerSpec + k;
  }
  const std::int64_t* tensorAbsC(std::size_t i, std::size_t k) const {
    return absC.data() + tensorIndex(i, k) * rankStride * 3;
  }
};

/// Scratch-size ceilings for the allocation-free block loops. Generously
/// above anything a real tensor algebra produces (the paper's widest
/// workload has 4 tensors of rank <= 3); packing fails loudly if exceeded.
inline constexpr std::size_t kBlockMaxTensors = 8;
inline constexpr std::size_t kBlockMaxRank = 8;

/// Packs an enumerated list into a SpecBlockSet (built once per list and
/// shared by every query over it). The returned set aliases `specs`.
std::shared_ptr<const SpecBlockSet> packSpecBlocks(
    std::shared_ptr<const std::vector<DataflowSpec>> specs);

/// Everything the packed models read that is fixed by the (algebra,
/// selection) pair alone — i.e. the transform-independent slice of a
/// SpecBlockSet. Built once per selection, it lets the bound-first search
/// price partial matrices and pack survivors without ever materializing a
/// DataflowSpec.
struct SelectionGeometry {
  std::array<std::int64_t, 3> extents{};  ///< selected loop extents
  std::int64_t outer = 1;                 ///< outer-iteration product
  std::int64_t macs = 0;                  ///< algebra().totalMacs()
  std::size_t inputCount = 0;
  std::size_t tensorCount = 0;
  std::size_t rankStride = 1;             ///< max rank: absC row block
  std::vector<std::size_t> tensorRank;      ///< per tensor, label order
  std::vector<std::uint8_t> tensorIsOutput;
  /// |restricted access| coefficients: per tensor a rankStride x 3 row-major
  /// block, rows beyond the tensor's rank zero-padded (SpecBlockSet layout).
  std::vector<std::int64_t> absC;
  std::string selectionLabel;  ///< selection().label(), e.g. "MNK"

  const std::int64_t* tensorAbsC(std::size_t k) const {
    return absC.data() + k * rankStride * 3;
  }
};

SelectionGeometry makeSelectionGeometry(const SpecContext& context);

/// A partially placed transform: both space rows fixed (as absolute
/// values), the time row still free. Every packed model term that prices
/// cycles reads only |space rows| and the selection geometry, so a bound
/// computed from a PartialTransform is a provable lower bound over EVERY
/// time-row completion — the branch-and-bound cut predicate.
struct PartialTransform {
  const SelectionGeometry* geometry = nullptr;
  std::array<std::int64_t, 3> absRow0{};  ///< |row p1|
  std::array<std::int64_t, 3> absRow1{};  ///< |row p2|
};

/// Initializes `set` as an empty bound-first window over one selection:
/// per-list constants come from the geometry, `source` stays null (no
/// DataflowSpec exists yet — the driver materializes specs lazily, only for
/// frontier keepers). Clears any previous window contents, so one set is
/// reused across windows without reallocation.
void resetSpecBlocks(SpecBlockSet& set, const SelectionGeometry& geometry);

/// Appends one survivor of the bound-first search: |T| from its matrix,
/// per-tensor class data from the fast classifier (`classTag` has
/// tensorCount entries, `absDir` 2 per tensor, `systolicDt` 1 per tensor),
/// selection constants replicated from the geometry. Returns its index.
/// Call assignSpecBlockClasses once per window before evaluating.
std::size_t appendSpecBlock(SpecBlockSet& set, const SelectionGeometry& geometry,
                            const linalg::IntMatrix& matrix,
                            const std::uint8_t* classTag,
                            const std::int64_t* absDir,
                            const std::int64_t* systolicDt, std::string label);

/// (Re)builds the mapping-class partition of a window in place, keyed on
/// exactly the same read set as packSpecBlocks (extents, outer, |T|, |C|).
void assignSpecBlockClasses(SpecBlockSet& set);

/// computeMapping on packed data: bit-identical to
/// computeMapping((*set.source)[i], config) — pinned by tests — but
/// allocation-free until the winning mapping is materialized, and with
/// monotone early exits in the tile search (spatial spans only grow with
/// tile extents, so the first non-fitting candidate ends its loop).
TileMapping computeMappingPacked(const SpecBlockSet& set, std::size_t i,
                                 const ArrayConfig& config);

/// Per-query mapping store for block evaluation: one slot per mapping
/// class (times the backend's operating-point fan-out), each computed once
/// under a once_flag on first use. Unlike the keyed MappingCache there is
/// no string key, no lock contention and no eviction — a slot index is the
/// whole lookup.
class BlockMappingStore {
 public:
  explicit BlockMappingStore(std::size_t slots);

  /// The mapping for packed spec `i` under `config`, memoized in `slot`.
  /// Callers must use a consistent (spec class, config) per slot.
  const TileMapping& get(const SpecBlockSet& set, std::size_t i,
                         const ArrayConfig& config, std::size_t slot);

  std::size_t slots() const { return count_; }

 private:
  struct Slot {
    std::once_flag once;
    TileMapping mapping;
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t count_ = 0;
};

}  // namespace tensorlib::stt
