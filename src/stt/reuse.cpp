#include "stt/reuse.hpp"

#include "support/error.hpp"

namespace tensorlib::stt {

ReuseAnalysis analyzeReuse(const tensor::AffineAccess& access,
                           const SpaceTimeTransform& t) {
  TL_CHECK(access.loopCount() == 3,
           "analyzeReuse expects an access restricted to the 3 selected loops");
  ReuseAnalysis out;
  out.loopBasis = linalg::nullspaceBasis(access.coeff());
  out.rank = out.loopBasis.cols();

  out.spaceTimeBasis = linalg::IntMatrix(3, out.rank);
  out.latticeBasis = linalg::IntMatrix(3, out.rank);
  for (std::size_t j = 0; j < out.rank; ++j) {
    const linalg::IntVector exact = t.matrix() * out.loopBasis.col(j);
    const linalg::IntVector mapped = linalg::primitive(exact);
    TL_CHECK(!linalg::isZeroVector(mapped),
             "full-rank T mapped a nonzero reuse vector to zero");
    for (std::size_t i = 0; i < 3; ++i) {
      out.spaceTimeBasis.at(i, j) = mapped[i];
      out.latticeBasis.at(i, j) = exact[i];
    }
  }
  return out;
}

}  // namespace tensorlib::stt
