// Table-I dataflow classification.
//
// Maps a tensor's reuse subspace (rank + basis in space-time) to one of the
// paper's dataflow classes. Rank-1 classes depend on the reuse direction
// (dp, dt); rank-2 classes on the plane's relationship with the time axis.
// Output tensors reinterpret Multicast as a reduction tree but keep the same
// class (and the same 'M' letter in labels).
#pragma once

#include <string>

#include "linalg/matrix.hpp"
#include "stt/reuse.hpp"

namespace tensorlib::stt {

/// Dataflow classes from Table I of the paper. The first four are the rank-0
/// and rank-1 cases; the next three are the rank-2 cases (all written as 'B'
/// in dataflow labels); FullReuse covers the degenerate rank-3 case (tensor
/// invariant over all three selected loops).
enum class DataflowClass {
  Unicast,              // rank 0: no reuse
  Stationary,           // rank 1, dp=0, dt!=0
  Systolic,             // rank 1, dp!=0, dt!=0
  Multicast,            // rank 1, dp!=0, dt=0 (reduction tree for outputs)
  Broadcast2D,          // rank 2, plane orthogonal to t-axis (all dt = 0)
  MulticastStationary,  // rank 2, plane contains the t-axis
  SystolicMulticast,    // rank 2, plane intersects the t-axis obliquely
  FullReuse,            // rank 3
};

/// Classified dataflow of one tensor.
struct TensorDataflow {
  DataflowClass dataflowClass = DataflowClass::Unicast;
  std::size_t reuseRank = 0;
  /// Basis of the reuse subspace in space-time (3 x rank), primitive columns.
  linalg::IntMatrix reuseBasis;
  /// Exact reuse lattice basis (3 x rank), strides preserved (see
  /// ReuseAnalysis::latticeBasis).
  linalg::IntMatrix latticeBasis;
  /// Rank-1 only: the primitive reuse direction (dp1, dp2, dt), sign-
  /// canonicalized so dt >= 0 (and the first nonzero spatial component > 0
  /// when dt == 0).
  linalg::IntVector direction;

  bool isSystolicLike() const {
    return dataflowClass == DataflowClass::Systolic ||
           dataflowClass == DataflowClass::SystolicMulticast;
  }
  bool hasStationaryComponent() const {
    return dataflowClass == DataflowClass::Stationary ||
           dataflowClass == DataflowClass::MulticastStationary ||
           dataflowClass == DataflowClass::FullReuse;
  }
  bool hasMulticastComponent() const {
    return dataflowClass == DataflowClass::Multicast ||
           dataflowClass == DataflowClass::Broadcast2D ||
           dataflowClass == DataflowClass::MulticastStationary ||
           dataflowClass == DataflowClass::SystolicMulticast ||
           dataflowClass == DataflowClass::FullReuse;
  }
};

/// Classifies a reuse analysis result per Table I.
TensorDataflow classify(const ReuseAnalysis& reuse);

/// Paper letter for labels: U, T (stationary), S, M, B (any rank>=2 class).
char dataflowLetter(DataflowClass c);

/// Human-readable class name ("Systolic & Multicast", ...).
std::string dataflowClassName(DataflowClass c);

}  // namespace tensorlib::stt
