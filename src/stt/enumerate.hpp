// Design-space enumeration (the engine behind Fig. 6 and dataflow search).
//
// Enumerates 3x3 integer STT matrices with entries in [-maxEntry, maxEntry],
// filters to full-rank (optionally unimodular), canonicalizes symmetries
// that do not change the hardware (row sign flips = array mirror / time
// reversal; spatial row swap = array transpose), and deduplicates by
// dataflow signature. Also provides label-directed search used to construct
// every named dataflow in the paper (e.g. "MNK-MTM", "KCX-STS").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "stt/spec.hpp"

namespace tensorlib::stt {

/// Traffic through the process-wide candidate-matrix memo (see
/// EnumerationOptions::cacheCandidates). The memo is bounded: once more
/// distinct option keys than the capacity have been seen, the oldest list
/// is evicted FIFO (in-flight holders keep evicted lists alive through
/// their shared_ptr).
struct CandidateCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

CandidateCacheStats candidateCacheStats();

/// Drops every memoized candidate list (stats are preserved).
void clearCandidateCache();

/// Sets the memo's capacity (distinct option keys kept); returns the
/// previous capacity. Values below 1 clamp to 1.
std::size_t setCandidateCacheCapacity(std::size_t capacity);

/// One memoized candidate-matrix list together with the option key that
/// produced it — the unit of candidate-memo snapshot/restore (see
/// driver/snapshot.*). The four key fields are exactly the
/// EnumerationOptions knobs candidateMatrices() is keyed by.
struct CandidateCacheEntry {
  int maxEntry = 1;
  bool requireUnimodular = true;
  bool canonicalize = true;
  bool legacyEngine = false;
  std::shared_ptr<const std::vector<linalg::IntMatrix>> matrices;
};

/// The memo's current contents in FIFO (insertion) order.
std::vector<CandidateCacheEntry> exportCandidateCache();

/// Re-inserts exported entries, oldest first (insert-if-absent: a resident
/// list for the same key wins, and capacity-driven FIFO eviction still
/// applies). Counts as neither hit nor miss; returns how many entries were
/// actually inserted.
std::size_t importCandidateCache(const std::vector<CandidateCacheEntry>& entries);

/// Design-space generation controls. The first six knobs define WHICH
/// specs exist; the performance knobs below never change the spec list.
/// docs/TUNING.md documents each one with defaults and flip-guidance.
struct EnumerationOptions {
  int maxEntry = 1;               ///< entry range [-maxEntry, maxEntry]
  bool requireUnimodular = true;  ///< |det| == 1 (integral inverse)
  bool canonicalize = true;       ///< quotient mirror/transpose symmetries
  bool dedupeBySignature = true;  ///< one spec per dataflow signature
  /// Drop specs containing a FullReuse (rank-3) tensor: the tensor would be
  /// a single scalar for the whole pass, a degenerate design.
  bool dropFullReuse = true;
  /// Drop specs whose *output* is Unicast AND some input is Unicast too —
  /// such designs stream everything and reuse nothing.
  bool dropAllUnicast = true;

  // --- performance knobs. These never change WHAT is enumerated (the spec
  // list is byte-identical across all settings), only how fast it appears.
  /// Decode-all-and-filter candidate generation (the original reference
  /// implementation), kept for differential testing and perf baselines.
  /// The default engine generates matrices directly in canonical form with
  /// an incremental cross-product determinant.
  bool useLegacyEnumeration = false;
  /// Memoize the candidate-matrix list in a process-wide cache keyed by
  /// (maxEntry, requireUnimodular, canonicalize, engine). Repeated
  /// enumerations and every findDataflow/findDataflowByLabel lookup then
  /// skip generation entirely.
  bool cacheCandidates = true;
  /// Fan analyzeDataflow over the support/threadpool. Results are filled
  /// into per-candidate slots, so output order stays deterministic.
  bool parallelAnalyze = true;
};

/// All 3-loop selections of the algebra in nest order (C(n,3) of them).
std::vector<LoopSelection> allLoopSelections(const tensor::TensorAlgebra& algebra);

/// Enumerate the transform design space for one selection.
std::vector<DataflowSpec> enumerateTransforms(const tensor::TensorAlgebra& algebra,
                                              const LoopSelection& selection,
                                              const EnumerationOptions& options = {});

/// Enumerate over all selections of the algebra.
std::vector<DataflowSpec> enumerateDesignSpace(const tensor::TensorAlgebra& algebra,
                                               const EnumerationOptions& options = {});

/// Finds the simplest transform whose per-tensor letters match `letters`
/// (e.g. "SST"); among matches prefers fewest nonzero entries, then
/// lexicographically smallest matrix, which keeps results deterministic.
std::optional<DataflowSpec> findDataflow(const tensor::TensorAlgebra& algebra,
                                         const LoopSelection& selection,
                                         const std::string& letters,
                                         const EnumerationOptions& options = {});

/// findDataflow with a paper-style full label "XPQ-MMT": parses the loop
/// initials and the letters. Throws if the label is malformed or no loop
/// matches an initial; returns nullopt if no transform realizes the letters.
std::optional<DataflowSpec> findDataflowByLabel(const tensor::TensorAlgebra& algebra,
                                                const std::string& label,
                                                const EnumerationOptions& options = {});

}  // namespace tensorlib::stt
