// Design-space enumeration (the engine behind Fig. 6 and dataflow search).
//
// The default engine builds 3x3 integer STT matrices with entries in
// [-maxEntry, maxEntry] DIRECTLY in canonical form, row by row with an
// incremental cross-product determinant: exactly one representative per
// orbit of the STT symmetry group (row sign flips = array mirror / time
// reversal; spatial row swap = array transpose) is ever materialized — no
// decode-everything pass, no dedupe set. The original
// decode-all-filter-canonicalize engine is kept behind
// EnumerationOptions::useLegacyEnumeration as the differential/perf
// baseline. On top of the candidate stream sit two consumers: the classic
// analyze-then-dedupe sweep (enumerateTransforms) and the bound-first
// branch-and-bound search (enumerateBoundFirst), which cuts candidates
// against admissible partial-transform cost bounds and quotients by
// evaluation class before any DataflowSpec exists. Also provides
// label-directed search used to construct every named dataflow in the
// paper (e.g. "MNK-MTM", "KCX-STS").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "stt/block.hpp"
#include "stt/spec.hpp"

namespace tensorlib::stt {

/// Traffic through the process-wide candidate-matrix memo (see
/// EnumerationOptions::cacheCandidates). The memo is bounded: once more
/// distinct option keys than the capacity have been seen, the oldest list
/// is evicted FIFO (in-flight holders keep evicted lists alive through
/// their shared_ptr).
struct CandidateCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

CandidateCacheStats candidateCacheStats();

/// Drops every memoized candidate list (stats are preserved).
void clearCandidateCache();

/// Sets the memo's capacity (distinct option keys kept); returns the
/// previous capacity. Values below 1 clamp to 1.
std::size_t setCandidateCacheCapacity(std::size_t capacity);

/// One memoized candidate-matrix list together with the option key that
/// produced it — the unit of candidate-memo snapshot/restore (see
/// driver/snapshot.*). The five key fields are exactly the
/// EnumerationOptions knobs candidateMatrices() is keyed by (boundFirst
/// lists are byte-identical to their classic siblings today, but the key
/// keeps the memo honest if the bound-first generator ever specializes —
/// and makes differently-bounded snapshots degrade to a clean cold start).
struct CandidateCacheEntry {
  int maxEntry = 1;
  bool requireUnimodular = true;
  bool canonicalize = true;
  bool legacyEngine = false;
  bool boundFirst = false;
  std::shared_ptr<const std::vector<linalg::IntMatrix>> matrices;
};

/// The memo's current contents in FIFO (insertion) order.
std::vector<CandidateCacheEntry> exportCandidateCache();

/// Re-inserts exported entries, oldest first (insert-if-absent: a resident
/// list for the same key wins, and capacity-driven FIFO eviction still
/// applies). Counts as neither hit nor miss; returns how many entries were
/// actually inserted.
std::size_t importCandidateCache(const std::vector<CandidateCacheEntry>& entries);

/// Design-space generation controls. The first six knobs define WHICH
/// specs exist; the performance knobs below never change the spec list.
/// docs/TUNING.md documents each one with defaults and flip-guidance.
struct EnumerationOptions {
  int maxEntry = 1;               ///< entry range [-maxEntry, maxEntry]
  bool requireUnimodular = true;  ///< |det| == 1 (integral inverse)
  bool canonicalize = true;       ///< quotient mirror/transpose symmetries
  bool dedupeBySignature = true;  ///< one spec per dataflow signature
  /// Drop specs containing a FullReuse (rank-3) tensor: the tensor would be
  /// a single scalar for the whole pass, a degenerate design.
  bool dropFullReuse = true;
  /// Drop specs whose *output* is Unicast AND some input is Unicast too —
  /// such designs stream everything and reuse nothing.
  bool dropAllUnicast = true;
  /// Bound-first branch-and-bound enumeration: candidates are classified
  /// without materializing a DataflowSpec, cut against admissible
  /// partial-transform cost bounds (when the caller supplies them), and —
  /// when dedupeBySignature is on — quotiented by EVALUATION class
  /// (|T| plus per-tensor class/|direction|/|dt|, the exact read set of
  /// the packed models) instead of by dataflow signature. With
  /// dedupeBySignature off the surviving list is identical to the classic
  /// engine's. Spec-defining: the quotient keeps different representatives
  /// than signature dedupe (same evaluated figures, pinned by tests).
  bool boundFirst = false;

  // --- performance knobs. These never change WHAT is enumerated (the spec
  // list is byte-identical across all settings), only how fast it appears.
  /// Decode-all-and-filter candidate generation (the original reference
  /// implementation), kept for differential testing and perf baselines.
  /// The default engine generates matrices directly in canonical form with
  /// an incremental cross-product determinant.
  bool useLegacyEnumeration = false;
  /// Memoize the candidate-matrix list in a process-wide cache keyed by
  /// (maxEntry, requireUnimodular, canonicalize, engine). Repeated
  /// enumerations and every findDataflow/findDataflowByLabel lookup then
  /// skip generation entirely.
  bool cacheCandidates = true;
  /// Fan analyzeDataflow over the support/threadpool. Results are filled
  /// into per-candidate slots, so output order stays deterministic.
  bool parallelAnalyze = true;
};

/// All 3-loop selections of the algebra in nest order (C(n,3) of them).
std::vector<LoopSelection> allLoopSelections(const tensor::TensorAlgebra& algebra);

/// Enumerate the transform design space for one selection.
std::vector<DataflowSpec> enumerateTransforms(const tensor::TensorAlgebra& algebra,
                                              const LoopSelection& selection,
                                              const EnumerationOptions& options = {});

/// Enumerate over all selections of the algebra.
std::vector<DataflowSpec> enumerateDesignSpace(const tensor::TensorAlgebra& algebra,
                                               const EnumerationOptions& options = {});

/// Finds the simplest transform whose per-tensor letters match `letters`
/// (e.g. "SST"); among matches prefers fewest nonzero entries, then
/// lexicographically smallest matrix, which keeps results deterministic.
std::optional<DataflowSpec> findDataflow(const tensor::TensorAlgebra& algebra,
                                         const LoopSelection& selection,
                                         const std::string& letters,
                                         const EnumerationOptions& options = {});

/// findDataflow with a paper-style full label "XPQ-MMT": parses the loop
/// initials and the letters. Throws if the label is malformed or no loop
/// matches an initial; returns nullopt if no transform realizes the letters.
std::optional<DataflowSpec> findDataflowByLabel(const tensor::TensorAlgebra& algebra,
                                                const std::string& label,
                                                const EnumerationOptions& options = {});

// ---- orbit quotient -----------------------------------------------------

/// The canonical representative of `m`'s orbit under the STT symmetry
/// group (row sign flips x space-row swap): sign-canonicalize all three
/// rows, then order the space rows lexicographically. Idempotent; the
/// direct engine only ever materializes matrices with
/// canonicalTransform(m) == m.
linalg::IntMatrix canonicalTransform(const linalg::IntMatrix& m);

/// The full orbit of `m` under the 16-element STT symmetry group, as a
/// deduplicated list (orbits of matrices with zero rows or equal space
/// rows are smaller than 16). Every element of an orbit describes the
/// same hardware; summing orbit sizes over all representatives recovers
/// the full-cube count — the orbit-accounting proof of true quotienting.
std::vector<linalg::IntMatrix> symmetryOrbit(const linalg::IntMatrix& m);

/// The memoized candidate-matrix list for `options` (canonical
/// representatives, sorted simplest-first) — the exact stream both
/// enumerateTransforms and enumerateBoundFirst iterate, exposed for the
/// orbit-soundness tests and benches.
std::shared_ptr<const std::vector<linalg::IntMatrix>> candidateTransformMatrices(
    const EnumerationOptions& options = {});

// ---- bound-first branch-and-bound search --------------------------------

/// One survivor of the bound-first search, handed to BoundFirstHooks::emit.
/// Every pointer borrows search-internal storage valid ONLY during the
/// callback — consumers must copy what they keep (appendSpecBlock does).
struct BoundFirstCandidate {
  const linalg::IntMatrix* matrix = nullptr;  ///< canonical representative
  const std::uint8_t* classTag = nullptr;     ///< DataflowClass, 1/tensor
  const std::int64_t* absDir = nullptr;       ///< 2/tensor: |dp1|,|dp2|
  const std::int64_t* systolicDt = nullptr;   ///< 1/tensor: |dt| (Systolic)
  const char* letters = nullptr;              ///< NUL-terminated, 1/tensor
};

/// Caller-supplied hooks of the bound-first search. All optional.
struct BoundFirstHooks {
  /// Cut predicate, called once per candidate with both space rows placed
  /// (time row free). Return true to discard the candidate unseen. The
  /// caller must only cut when an admissible bound proves every completion
  /// dominated (see cost::CostBackend::lowerBoundPartial) — the search
  /// itself never second-guesses the predicate.
  std::function<bool(const PartialTransform&)> cut;
  /// Receives each surviving representative in deterministic
  /// (simplest-first) candidate order.
  std::function<void(const BoundFirstCandidate&)> emit;
  /// Polled every few hundred candidates; returning true stops the search
  /// cleanly (BoundFirstStats::stopped reports it). Deadline hook.
  std::function<bool()> shouldStop;
};

/// Accounting of one bound-first sweep: visited == cut + deduped + emitted
/// (+ candidates never reached when stopped).
struct BoundFirstStats {
  std::size_t visited = 0;  ///< candidates considered
  std::size_t cut = 0;      ///< discarded by the cut predicate
  std::size_t deduped = 0;  ///< quotiented into an emitted class
  std::size_t emitted = 0;  ///< survivors handed to emit
  bool stopped = false;     ///< shouldStop ended the sweep early
};

/// Bound-first branch-and-bound sweep over one selection: iterates the
/// memoized canonical candidate list, prices each candidate's partial
/// transform through hooks.cut BEFORE any classification, fast-classifies
/// survivors straight from precomputed nullspace bases (no DataflowSpec,
/// no SpecContext copy, no matrix inverse), applies the
/// dropFullReuse/dropAllUnicast filters (both selection-level facts) and
/// the evaluation-class quotient (when options.dedupeBySignature), and
/// emits the remainder. `geometry` must be makeSelectionGeometry(*context).
BoundFirstStats enumerateBoundFirst(const SpecContextPtr& context,
                                    const SelectionGeometry& geometry,
                                    const EnumerationOptions& options,
                                    const BoundFirstHooks& hooks);

}  // namespace tensorlib::stt
