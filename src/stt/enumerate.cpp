#include "stt/enumerate.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <tuple>

#include "linalg/solve.hpp"
#include "support/error.hpp"
#include "support/threadpool.hpp"

namespace tensorlib::stt {

namespace {

/// Flips a row's sign so its first nonzero entry is positive.
void canonicalizeRowSign(linalg::IntMatrix& m, std::size_t row) {
  for (std::size_t j = 0; j < 3; ++j) {
    const std::int64_t v = m.at(row, j);
    if (v == 0) continue;
    if (v < 0)
      for (std::size_t k = 0; k < 3; ++k) m.at(row, k) = -m.at(row, k);
    return;
  }
}

/// Mirror symmetry (negating a space row), time reversal (negating the time
/// row) and array transpose (swapping space rows) all describe the same
/// hardware; pick one representative.
linalg::IntMatrix canonicalize(linalg::IntMatrix m) {
  canonicalizeRowSign(m, 0);
  canonicalizeRowSign(m, 1);
  canonicalizeRowSign(m, 2);
  const linalg::IntVector r0 = m.row(0);
  const linalg::IntVector r1 = m.row(1);
  if (std::lexicographical_compare(r1.begin(), r1.end(), r0.begin(), r0.end())) {
    m.setRow(0, r1);
    m.setRow(1, r0);
  }
  return m;
}

int nonzeroCount(const linalg::IntMatrix& m) {
  int n = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      if (m.at(i, j) != 0) ++n;
  return n;
}

std::int64_t absSum(const linalg::IntMatrix& m) {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) s += std::abs(m.at(i, j));
  return s;
}

std::array<std::int64_t, 9> flat(const linalg::IntMatrix& m) {
  std::array<std::int64_t, 9> out{};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) out[i * 3 + j] = m.at(i, j);
  return out;
}

/// Simplest-first total order shared by both engines; the flat() tie-break
/// makes the sorted candidate list independent of generation order.
bool simplerThan(const linalg::IntMatrix& a, const linalg::IntMatrix& b) {
  const int na = nonzeroCount(a), nb = nonzeroCount(b);
  if (na != nb) return na < nb;
  const std::int64_t sa = absSum(a), sb = absSum(b);
  if (sa != sb) return sa < sb;
  return flat(a) < flat(b);
}

/// Reference engine (the original implementation): decode every matrix in
/// the (2*maxEntry+1)^9 cube, filter by exact rational determinant,
/// canonicalize, dedupe through a set. Kept behind
/// EnumerationOptions::useLegacyEnumeration for differential tests and as
/// the perf baseline in bench/perf_regression.cpp.
std::vector<linalg::IntMatrix> legacyCandidateMatrices(
    const EnumerationOptions& options) {
  const std::int64_t lo = -options.maxEntry;
  const std::int64_t hi = options.maxEntry;
  const std::int64_t radix = hi - lo + 1;
  std::int64_t total = 1;
  for (int i = 0; i < 9; ++i) total *= radix;

  std::set<std::array<std::int64_t, 9>> seen;
  std::vector<linalg::IntMatrix> out;
  for (std::int64_t code = 0; code < total; ++code) {
    linalg::IntMatrix m(3, 3);
    std::int64_t c = code;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        m.at(i, j) = lo + (c % radix);
        c /= radix;
      }
    const std::int64_t det = linalg::determinant(m);
    if (det == 0) continue;
    if (options.requireUnimodular && det != 1 && det != -1) continue;
    if (options.canonicalize) m = canonicalize(m);
    if (!seen.insert(flat(m)).second) continue;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(), simplerThan);
  return out;
}

using Row3 = std::array<std::int64_t, 3>;

/// All nonzero rows with entries in [-maxEntry, maxEntry], lexicographically
/// ascending. When signCanonical, only rows whose first nonzero entry is
/// positive (the representative canonicalizeRowSign() picks) — exactly half.
std::vector<Row3> rowPool(int maxEntry, bool signCanonical) {
  std::vector<Row3> rows;
  const std::int64_t e = maxEntry;
  for (std::int64_t a = -e; a <= e; ++a)
    for (std::int64_t b = -e; b <= e; ++b)
      for (std::int64_t c = -e; c <= e; ++c) {
        if (a == 0 && b == 0 && c == 0) continue;
        if (signCanonical) {
          const std::int64_t first = a != 0 ? a : (b != 0 ? b : c);
          if (first < 0) continue;
        }
        rows.push_back({a, b, c});
      }
  return rows;
}

/// Direct engine: builds matrices row-by-row so only canonical
/// representatives are ever materialized (sign-canonical rows, space rows
/// in lex order), with an incremental determinant — the cross product of
/// the two space rows is computed once per pair and dotted with each time
/// row. No decode, no rational arithmetic, no dedupe set; for maxEntry=2
/// this visits ~120k row triples instead of ~1.95M full decodes.
std::vector<linalg::IntMatrix> directCandidateMatrices(
    const EnumerationOptions& options) {
  const std::vector<Row3> rows = rowPool(options.maxEntry, options.canonicalize);
  const std::size_t n = rows.size();
  std::vector<linalg::IntMatrix> out;
  for (std::size_t i = 0; i < n; ++i) {
    const Row3& r0 = rows[i];
    // Canonical form also requires row0 <= row1 lexicographically; the pool
    // is lex-ascending, so start row1 past row0 (equal rows are singular).
    for (std::size_t j = options.canonicalize ? i + 1 : 0; j < n; ++j) {
      if (j == i) continue;
      const Row3& r1 = rows[j];
      const Row3 cross{r0[1] * r1[2] - r0[2] * r1[1],
                       r0[2] * r1[0] - r0[0] * r1[2],
                       r0[0] * r1[1] - r0[1] * r1[0]};
      if (cross[0] == 0 && cross[1] == 0 && cross[2] == 0) continue;
      for (const Row3& r2 : rows) {
        const std::int64_t det =
            cross[0] * r2[0] + cross[1] * r2[1] + cross[2] * r2[2];
        if (det == 0) continue;
        if (options.requireUnimodular && det != 1 && det != -1) continue;
        linalg::IntMatrix m(3, 3);
        for (std::size_t k = 0; k < 3; ++k) {
          m.at(0, k) = r0[k];
          m.at(1, k) = r1[k];
          m.at(2, k) = r2[k];
        }
        out.push_back(std::move(m));
      }
    }
  }
  std::sort(out.begin(), out.end(), simplerThan);
  return out;
}

using CandidateList = std::shared_ptr<const std::vector<linalg::IntMatrix>>;

/// Process-wide bounded memo of candidate-matrix lists, FIFO-evicted and
/// instrumented (mirrors the exploration service's cache pattern): distinct
/// EnumerationOptions keys no longer grow the process footprint forever.
struct CandidateCache {
  using Key = std::tuple<int, bool, bool, bool, bool>;
  std::mutex mutex;
  std::map<Key, CandidateList> map;
  std::deque<Key> fifo;
  std::size_t capacity = 16;
  CandidateCacheStats stats;

  static CandidateCache& instance() {
    static CandidateCache cache;
    return cache;
  }
};

/// All full-rank (optionally unimodular) matrices in entry range, canonical
/// representatives only, sorted simplest-first for deterministic search.
/// Memoized process-wide: both findDataflow lookups and repeated
/// enumerations hit the same immutable list.
CandidateList candidateMatrices(const EnumerationOptions& options) {
  const CandidateCache::Key key =
      std::make_tuple(options.maxEntry, options.requireUnimodular,
                      options.canonicalize, options.useLegacyEnumeration,
                      options.boundFirst);
  CandidateCache& cache = CandidateCache::instance();
  if (options.cacheCandidates) {
    std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) {
      ++cache.stats.hits;
      return it->second;
    }
    ++cache.stats.misses;
  }
  CandidateList list = std::make_shared<const std::vector<linalg::IntMatrix>>(
      options.useLegacyEnumeration ? legacyCandidateMatrices(options)
                                   : directCandidateMatrices(options));
  if (options.cacheCandidates) {
    // If another thread raced us here, both lists are identical; keep the
    // first one inserted. Eviction is FIFO on insertion order; holders of
    // an evicted list keep it alive through the shared_ptr.
    std::lock_guard<std::mutex> lock(cache.mutex);
    const auto [it, inserted] = cache.map.try_emplace(key, std::move(list));
    list = it->second;
    if (inserted) {
      cache.fifo.push_back(key);
      while (cache.map.size() > cache.capacity) {
        cache.map.erase(cache.fifo.front());
        cache.fifo.pop_front();
        ++cache.stats.evictions;
      }
    }
  }
  return list;
}

/// Flat open-addressing set of 64-bit signature hashes: the dedupe hot path
/// makes no string, no node allocation, and no tree comparison. Power-of-2
/// capacity, linear probing, 0 reserved as the empty sentinel (a real hash
/// of 0 is remapped to a fixed nonzero constant).
class HashSet64 {
 public:
  /// True if newly inserted, false if already present.
  bool insert(std::uint64_t h) {
    if (h == 0) h = 0x9e3779b97f4a7c15ull;
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t i = index(h);
    while (slots_[i] != 0) {
      if (slots_[i] == h) return false;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = h;
    ++size_;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  std::size_t index(std::uint64_t h) const {
    // Multiplicative spread: inserted values are already well mixed, but a
    // cheap re-scramble keeps clustered inputs from probing long runs.
    return static_cast<std::size_t>((h * 0x9e3779b97f4a7c15ull) >>
                                    (64 - shift_)) &
           (slots_.size() - 1);
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    shift_ += 1;
    slots_.assign(std::size_t{1} << shift_, 0);
    for (std::uint64_t h : old) {
      if (h == 0) continue;
      std::size_t i = index(h);
      while (slots_[i] != 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = h;
    }
  }

  std::size_t shift_ = 6;
  std::vector<std::uint64_t> slots_ = std::vector<std::uint64_t>(64, 0);
  std::size_t size_ = 0;
};

/// T-independent slice of analyzeReuse: a tensor's reuse nullspace basis
/// depends only on the restricted access, so one bound-first sweep computes
/// it once per tensor instead of once per (tensor, candidate).
struct TensorReuseBasis {
  std::size_t rank = 0;
  std::array<std::array<std::int64_t, 3>, 3> cols{};  ///< basis columns
};

std::int64_t gcd3(std::int64_t a, std::int64_t b, std::int64_t c) {
  return std::gcd(std::gcd(a, b), c);
}

/// classify(analyzeReuse(access, T)) without materializing either: the
/// same arithmetic on the same integers, specialized to the packed-model
/// read set (class tag, |primitive direction| spatial components, |exact
/// dt| for Systolic). Rank-1 zero patterns survive primitivization and the
/// rank-2 tests are rational-span facts (inSpan reduces to the 2x2
/// determinant below for independent columns), so every branch lands on
/// exactly the class classify() assigns — pinned by the differential tests.
void classifyFast(const linalg::IntMatrix& m, const TensorReuseBasis& basis,
                  std::uint8_t& classTag, std::int64_t* absDir,
                  std::int64_t& systolicDt) {
  absDir[0] = 0;
  absDir[1] = 0;
  systolicDt = 0;
  switch (basis.rank) {
    case 0:
      classTag = static_cast<std::uint8_t>(DataflowClass::Unicast);
      return;
    case 1: {
      std::int64_t e[3];
      for (std::size_t i = 0; i < 3; ++i)
        e[i] = m.at(i, 0) * basis.cols[0][0] + m.at(i, 1) * basis.cols[0][1] +
               m.at(i, 2) * basis.cols[0][2];
      const bool spatialZero = e[0] == 0 && e[1] == 0;
      const bool timeZero = e[2] == 0;
      DataflowClass cls;
      if (spatialZero)
        cls = DataflowClass::Stationary;
      else if (timeZero)
        cls = DataflowClass::Multicast;
      else
        cls = DataflowClass::Systolic;
      classTag = static_cast<std::uint8_t>(cls);
      const std::int64_t g =
          gcd3(std::abs(e[0]), std::abs(e[1]), std::abs(e[2]));
      absDir[0] = std::abs(e[0]) / g;
      absDir[1] = std::abs(e[1]) / g;
      if (cls == DataflowClass::Systolic) systolicDt = std::abs(e[2]);
      return;
    }
    case 2: {
      std::int64_t e0[3], e1[3];
      for (std::size_t i = 0; i < 3; ++i) {
        e0[i] = m.at(i, 0) * basis.cols[0][0] + m.at(i, 1) * basis.cols[0][1] +
                m.at(i, 2) * basis.cols[0][2];
        e1[i] = m.at(i, 0) * basis.cols[1][0] + m.at(i, 1) * basis.cols[1][1] +
                m.at(i, 2) * basis.cols[1][2];
      }
      if (e0[2] == 0 && e1[2] == 0)
        classTag = static_cast<std::uint8_t>(DataflowClass::Broadcast2D);
      else if (e0[0] * e1[1] - e0[1] * e1[0] == 0)
        classTag = static_cast<std::uint8_t>(DataflowClass::MulticastStationary);
      else
        classTag = static_cast<std::uint8_t>(DataflowClass::SystolicMulticast);
      return;
    }
    default:
      classTag = static_cast<std::uint8_t>(DataflowClass::FullReuse);
      return;
  }
}

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

bool passesFilters(const DataflowSpec& spec, const EnumerationOptions& options) {
  if (options.dropFullReuse) {
    for (const auto& t : spec.tensors())
      if (t.dataflow.dataflowClass == DataflowClass::FullReuse) return false;
  }
  if (options.dropAllUnicast) {
    const bool outputUnicast =
        spec.outputRole().dataflow.dataflowClass == DataflowClass::Unicast;
    if (outputUnicast) {
      for (const auto& t : spec.tensors())
        if (!t.isOutput && t.dataflow.dataflowClass == DataflowClass::Unicast)
          return false;
    }
  }
  return true;
}

/// Core of enumerateTransforms over a prebuilt shared context.
std::vector<DataflowSpec> enumerateTransformsOn(const SpecContextPtr& context,
                                                const EnumerationOptions& options) {
  if (options.boundFirst) {
    // Uncut bound-first sweep materialized as a scalar list: the class
    // quotient (or, with dedupeBySignature off, the raw filtered stream)
    // analyzed into real specs. Keeps every scalar consumer coherent with
    // what the bound-first service path evaluates.
    const SelectionGeometry geometry = makeSelectionGeometry(*context);
    std::vector<DataflowSpec> out;
    BoundFirstHooks hooks;
    hooks.emit = [&](const BoundFirstCandidate& c) {
      out.push_back(analyzeDataflow(context, SpaceTimeTransform(*c.matrix)));
    };
    enumerateBoundFirst(context, geometry, options, hooks);
    return out;
  }
  const CandidateList candidates = candidateMatrices(options);
  const std::size_t n = candidates->size();

  // Analyze a bounded window of candidates into per-index slots
  // (parallel-safe), then filter and dedupe serially in candidate order —
  // output is byte-identical to a serial run, and peak memory stays at one
  // window of unfiltered specs even for huge candidate lists.
  constexpr std::size_t kWindow = 2048;
  std::vector<DataflowSpec> out;
  HashSet64 signatures;
  std::vector<std::optional<DataflowSpec>> analyzed(std::min(n, kWindow));
  for (std::size_t base = 0; base < n; base += kWindow) {
    const std::size_t count = std::min(kWindow, n - base);
    const auto analyzeAt = [&](std::size_t i) {
      analyzed[i].emplace(
          analyzeDataflow(context, SpaceTimeTransform((*candidates)[base + i])));
    };
    if (options.parallelAnalyze && count > 1) {
      parallelFor(count, analyzeAt);
    } else {
      for (std::size_t i = 0; i < count; ++i) analyzeAt(i);
    }
    for (std::size_t i = 0; i < count; ++i) {
      DataflowSpec& spec = *analyzed[i];
      if (!passesFilters(spec, options)) continue;
      if (options.dedupeBySignature && !signatures.insert(spec.signatureHash()))
        continue;
      out.push_back(std::move(spec));
      analyzed[i].reset();
    }
  }
  return out;
}

}  // namespace

CandidateCacheStats candidateCacheStats() {
  CandidateCache& cache = CandidateCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  CandidateCacheStats stats = cache.stats;
  stats.entries = cache.map.size();
  return stats;
}

void clearCandidateCache() {
  CandidateCache& cache = CandidateCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  cache.map.clear();
  cache.fifo.clear();
}

std::vector<CandidateCacheEntry> exportCandidateCache() {
  CandidateCache& cache = CandidateCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  std::vector<CandidateCacheEntry> out;
  out.reserve(cache.fifo.size());
  for (const CandidateCache::Key& key : cache.fifo) {
    const auto it = cache.map.find(key);
    if (it == cache.map.end()) continue;
    CandidateCacheEntry entry;
    std::tie(entry.maxEntry, entry.requireUnimodular, entry.canonicalize,
             entry.legacyEngine, entry.boundFirst) = key;
    entry.matrices = it->second;
    out.push_back(std::move(entry));
  }
  return out;
}

std::size_t importCandidateCache(const std::vector<CandidateCacheEntry>& entries) {
  CandidateCache& cache = CandidateCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  std::size_t inserted = 0;
  for (const CandidateCacheEntry& entry : entries) {
    if (!entry.matrices) continue;
    const CandidateCache::Key key = std::make_tuple(
        entry.maxEntry, entry.requireUnimodular, entry.canonicalize,
        entry.legacyEngine, entry.boundFirst);
    if (!cache.map.try_emplace(key, entry.matrices).second) continue;
    cache.fifo.push_back(key);
    ++inserted;
    while (cache.map.size() > cache.capacity) {
      cache.map.erase(cache.fifo.front());
      cache.fifo.pop_front();
      ++cache.stats.evictions;
    }
  }
  return inserted;
}

std::size_t setCandidateCacheCapacity(std::size_t capacity) {
  CandidateCache& cache = CandidateCache::instance();
  std::lock_guard<std::mutex> lock(cache.mutex);
  const std::size_t previous = cache.capacity;
  cache.capacity = capacity > 0 ? capacity : 1;
  while (cache.map.size() > cache.capacity) {
    cache.map.erase(cache.fifo.front());
    cache.fifo.pop_front();
    ++cache.stats.evictions;
  }
  return previous;
}

std::vector<LoopSelection> allLoopSelections(const tensor::TensorAlgebra& algebra) {
  const std::size_t n = algebra.loopCount();
  TL_CHECK(n >= 3, "algebra needs at least 3 loops for a 2D PE array");
  std::vector<LoopSelection> out;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      for (std::size_t c = b + 1; c < n; ++c)
        out.emplace_back(algebra, std::vector<std::size_t>{a, b, c});
  return out;
}

std::vector<DataflowSpec> enumerateTransforms(const tensor::TensorAlgebra& algebra,
                                              const LoopSelection& selection,
                                              const EnumerationOptions& options) {
  return enumerateTransformsOn(makeSpecContext(algebra, selection), options);
}

std::vector<DataflowSpec> enumerateDesignSpace(const tensor::TensorAlgebra& algebra,
                                               const EnumerationOptions& options) {
  std::vector<DataflowSpec> out;
  for (const auto& sel : allLoopSelections(algebra)) {
    auto specs = enumerateTransformsOn(makeSpecContext(algebra, sel), options);
    out.insert(out.end(), std::make_move_iterator(specs.begin()),
               std::make_move_iterator(specs.end()));
  }
  return out;
}

std::optional<DataflowSpec> findDataflow(const tensor::TensorAlgebra& algebra,
                                         const LoopSelection& selection,
                                         const std::string& letters,
                                         const EnumerationOptions& options) {
  TL_CHECK(letters.size() == algebra.inputs().size() + 1,
           "findDataflow: need one letter per tensor (inputs then output)");
  // Serial scan with early exit: candidates are sorted simplest-first, so
  // named dataflows are found near the head of the (memoized) list. The
  // shared_ptr must outlive the loop — *candidateMatrices(...) inline in the
  // range-for would dangle.
  const CandidateList candidates = candidateMatrices(options);
  const SpecContextPtr context = makeSpecContext(algebra, selection);
  for (const auto& m : *candidates) {
    DataflowSpec spec = analyzeDataflow(context, SpaceTimeTransform(m));
    if (spec.letters() == letters) return spec;
  }
  return std::nullopt;
}

linalg::IntMatrix canonicalTransform(const linalg::IntMatrix& m) {
  return canonicalize(m);
}

std::vector<linalg::IntMatrix> symmetryOrbit(const linalg::IntMatrix& m) {
  // All 16 group elements: destination-row sign flips (8) composed with the
  // space-row swap (2); duplicates collapse for matrices fixed by a
  // nontrivial element (equal space rows never occur in full-rank inputs,
  // but the helper stays total).
  std::set<std::array<std::int64_t, 9>> seen;
  std::vector<linalg::IntMatrix> out;
  for (int signs = 0; signs < 8; ++signs)
    for (int swap = 0; swap < 2; ++swap) {
      linalg::IntMatrix g(3, 3);
      for (std::size_t r = 0; r < 3; ++r) {
        const std::size_t src = (swap != 0 && r < 2) ? 1 - r : r;
        const std::int64_t s = ((signs >> r) & 1) != 0 ? -1 : 1;
        for (std::size_t j = 0; j < 3; ++j) g.at(r, j) = s * m.at(src, j);
      }
      if (seen.insert(flat(g)).second) out.push_back(std::move(g));
    }
  return out;
}

std::shared_ptr<const std::vector<linalg::IntMatrix>> candidateTransformMatrices(
    const EnumerationOptions& options) {
  return candidateMatrices(options);
}

BoundFirstStats enumerateBoundFirst(const SpecContextPtr& context,
                                    const SelectionGeometry& geometry,
                                    const EnumerationOptions& options,
                                    const BoundFirstHooks& hooks) {
  BoundFirstStats stats;
  const std::size_t T = context->restrictedAccesses.size();
  TL_CHECK(T >= 1 && T <= kBlockMaxTensors,
           "bound-first enumeration: tensor count out of range");

  std::array<TensorReuseBasis, kBlockMaxTensors> bases;
  for (std::size_t k = 0; k < T; ++k) {
    const linalg::IntMatrix b =
        linalg::nullspaceBasis(context->restrictedAccesses[k].coeff());
    TL_CHECK(b.cols() <= 3, "reuse nullspace rank out of range");
    bases[k].rank = b.cols();
    for (std::size_t j = 0; j < b.cols(); ++j)
      for (std::size_t i = 0; i < 3; ++i) bases[k].cols[j][i] = b.at(i, j);
  }

  // The spec-level filters are selection-level facts here: Unicast (rank 0)
  // and FullReuse (rank 3) are transform-independent, so either every
  // candidate of this selection passes them or none does.
  if (options.dropFullReuse)
    for (std::size_t k = 0; k < T; ++k)
      if (bases[k].rank == 3) return stats;
  if (options.dropAllUnicast && bases[T - 1].rank == 0)
    for (std::size_t k = 0; k + 1 < T; ++k)
      if (bases[k].rank == 0) return stats;

  const CandidateList candidates = candidateMatrices(options);
  PartialTransform partial;
  partial.geometry = &geometry;
  std::uint8_t classTag[kBlockMaxTensors];
  std::int64_t absDir[kBlockMaxTensors * 2];
  std::int64_t systolicDt[kBlockMaxTensors];
  char letters[kBlockMaxTensors + 1];
  letters[T] = '\0';
  HashSet64 classes;

  for (std::size_t i = 0; i < candidates->size(); ++i) {
    if ((i & 255u) == 0 && hooks.shouldStop && hooks.shouldStop()) {
      stats.stopped = true;
      break;
    }
    const linalg::IntMatrix& m = (*candidates)[i];
    ++stats.visited;

    for (std::size_t j = 0; j < 3; ++j) {
      partial.absRow0[j] = std::abs(m.at(0, j));
      partial.absRow1[j] = std::abs(m.at(1, j));
    }
    if (hooks.cut && hooks.cut(partial)) {
      ++stats.cut;
      continue;
    }

    for (std::size_t k = 0; k < T; ++k) {
      classifyFast(m, bases[k], classTag[k], absDir + k * 2, systolicDt[k]);
      letters[k] = dataflowLetter(static_cast<DataflowClass>(classTag[k]));
    }

    if (options.dedupeBySignature) {
      // Evaluation-class quotient: two candidates hashing equal here have
      // identical packed read sets (|T|, class tags, |direction|, |dt| —
      // extents/outer/|C| are selection constants), so every packed model
      // evaluates them bit-identically and keeping one representative
      // loses nothing the frontier could see.
      std::uint64_t h = 0xcbf29ce484222325ull;
      for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t j = 0; j < 3; ++j)
          h = mix64(h, static_cast<std::uint64_t>(std::abs(m.at(r, j))));
      for (std::size_t k = 0; k < T; ++k) {
        h = mix64(h, classTag[k]);
        h = mix64(h, static_cast<std::uint64_t>(absDir[k * 2 + 0]));
        h = mix64(h, static_cast<std::uint64_t>(absDir[k * 2 + 1]));
        h = mix64(h, static_cast<std::uint64_t>(systolicDt[k]));
      }
      if (!classes.insert(h)) {
        ++stats.deduped;
        continue;
      }
    }

    if (hooks.emit) {
      BoundFirstCandidate c;
      c.matrix = &m;
      c.classTag = classTag;
      c.absDir = absDir;
      c.systolicDt = systolicDt;
      c.letters = letters;
      hooks.emit(c);
    }
    ++stats.emitted;
  }
  return stats;
}

std::optional<DataflowSpec> findDataflowByLabel(const tensor::TensorAlgebra& algebra,
                                                const std::string& label,
                                                const EnumerationOptions& options) {
  const auto dash = label.find('-');
  TL_CHECK(dash != std::string::npos && dash == 3,
           "label must look like 'MNK-SST': " + label);
  const std::string sel = label.substr(0, dash);
  const std::string letters = label.substr(dash + 1);

  std::vector<std::size_t> indices;
  for (char ch : sel) {
    const char want = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    std::optional<std::size_t> found;
    for (std::size_t i = 0; i < algebra.loopCount(); ++i) {
      if (algebra.loops()[i].name[0] == want) {
        TL_CHECK(!found.has_value(),
                 std::string("ambiguous loop initial '") + ch + "' in " + label);
        found = i;
      }
    }
    TL_CHECK(found.has_value(), std::string("no loop with initial '") + ch +
                                    "' in algebra " + algebra.name());
    indices.push_back(*found);
  }
  return findDataflow(algebra, LoopSelection(algebra, indices), letters, options);
}

}  // namespace tensorlib::stt
