#include "stt/enumerate.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <set>

#include "support/error.hpp"

namespace tensorlib::stt {

namespace {

/// Flips a row's sign so its first nonzero entry is positive.
void canonicalizeRowSign(linalg::IntMatrix& m, std::size_t row) {
  for (std::size_t j = 0; j < 3; ++j) {
    const std::int64_t v = m.at(row, j);
    if (v == 0) continue;
    if (v < 0)
      for (std::size_t k = 0; k < 3; ++k) m.at(row, k) = -m.at(row, k);
    return;
  }
}

/// Mirror symmetry (negating a space row), time reversal (negating the time
/// row) and array transpose (swapping space rows) all describe the same
/// hardware; pick one representative.
linalg::IntMatrix canonicalize(linalg::IntMatrix m) {
  canonicalizeRowSign(m, 0);
  canonicalizeRowSign(m, 1);
  canonicalizeRowSign(m, 2);
  const linalg::IntVector r0 = m.row(0);
  const linalg::IntVector r1 = m.row(1);
  if (std::lexicographical_compare(r1.begin(), r1.end(), r0.begin(), r0.end())) {
    m.setRow(0, r1);
    m.setRow(1, r0);
  }
  return m;
}

int nonzeroCount(const linalg::IntMatrix& m) {
  int n = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      if (m.at(i, j) != 0) ++n;
  return n;
}

std::int64_t absSum(const linalg::IntMatrix& m) {
  std::int64_t s = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) s += std::abs(m.at(i, j));
  return s;
}

std::array<std::int64_t, 9> flat(const linalg::IntMatrix& m) {
  std::array<std::int64_t, 9> out{};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) out[i * 3 + j] = m.at(i, j);
  return out;
}

/// All full-rank (optionally unimodular) matrices in entry range, canonical
/// representatives only, sorted simplest-first for deterministic search.
std::vector<linalg::IntMatrix> candidateMatrices(const EnumerationOptions& options) {
  const std::int64_t lo = -options.maxEntry;
  const std::int64_t hi = options.maxEntry;
  const std::int64_t radix = hi - lo + 1;
  std::int64_t total = 1;
  for (int i = 0; i < 9; ++i) total *= radix;

  std::set<std::array<std::int64_t, 9>> seen;
  std::vector<linalg::IntMatrix> out;
  for (std::int64_t code = 0; code < total; ++code) {
    linalg::IntMatrix m(3, 3);
    std::int64_t c = code;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        m.at(i, j) = lo + (c % radix);
        c /= radix;
      }
    const std::int64_t det = linalg::determinant(m);
    if (det == 0) continue;
    if (options.requireUnimodular && det != 1 && det != -1) continue;
    if (options.canonicalize) m = canonicalize(m);
    if (!seen.insert(flat(m)).second) continue;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const linalg::IntMatrix& a, const linalg::IntMatrix& b) {
              const int na = nonzeroCount(a), nb = nonzeroCount(b);
              if (na != nb) return na < nb;
              const std::int64_t sa = absSum(a), sb = absSum(b);
              if (sa != sb) return sa < sb;
              return flat(a) < flat(b);
            });
  return out;
}

bool passesFilters(const DataflowSpec& spec, const EnumerationOptions& options) {
  if (options.dropFullReuse) {
    for (const auto& t : spec.tensors())
      if (t.dataflow.dataflowClass == DataflowClass::FullReuse) return false;
  }
  if (options.dropAllUnicast) {
    const bool outputUnicast =
        spec.outputRole().dataflow.dataflowClass == DataflowClass::Unicast;
    if (outputUnicast) {
      for (const auto& t : spec.tensors())
        if (!t.isOutput && t.dataflow.dataflowClass == DataflowClass::Unicast)
          return false;
    }
  }
  return true;
}

}  // namespace

std::vector<LoopSelection> allLoopSelections(const tensor::TensorAlgebra& algebra) {
  const std::size_t n = algebra.loopCount();
  TL_CHECK(n >= 3, "algebra needs at least 3 loops for a 2D PE array");
  std::vector<LoopSelection> out;
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a + 1; b < n; ++b)
      for (std::size_t c = b + 1; c < n; ++c)
        out.emplace_back(algebra, std::vector<std::size_t>{a, b, c});
  return out;
}

std::vector<DataflowSpec> enumerateTransforms(const tensor::TensorAlgebra& algebra,
                                              const LoopSelection& selection,
                                              const EnumerationOptions& options) {
  std::vector<DataflowSpec> out;
  std::set<std::string> signatures;
  for (const auto& m : candidateMatrices(options)) {
    DataflowSpec spec =
        analyzeDataflow(algebra, selection, SpaceTimeTransform(m));
    if (!passesFilters(spec, options)) continue;
    if (options.dedupeBySignature && !signatures.insert(spec.signature()).second)
      continue;
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<DataflowSpec> enumerateDesignSpace(const tensor::TensorAlgebra& algebra,
                                               const EnumerationOptions& options) {
  std::vector<DataflowSpec> out;
  for (const auto& sel : allLoopSelections(algebra)) {
    auto specs = enumerateTransforms(algebra, sel, options);
    out.insert(out.end(), std::make_move_iterator(specs.begin()),
               std::make_move_iterator(specs.end()));
  }
  return out;
}

std::optional<DataflowSpec> findDataflow(const tensor::TensorAlgebra& algebra,
                                         const LoopSelection& selection,
                                         const std::string& letters,
                                         const EnumerationOptions& options) {
  TL_CHECK(letters.size() == algebra.inputs().size() + 1,
           "findDataflow: need one letter per tensor (inputs then output)");
  for (const auto& m : candidateMatrices(options)) {
    DataflowSpec spec =
        analyzeDataflow(algebra, selection, SpaceTimeTransform(m));
    if (spec.letters() == letters) return spec;
  }
  return std::nullopt;
}

std::optional<DataflowSpec> findDataflowByLabel(const tensor::TensorAlgebra& algebra,
                                                const std::string& label,
                                                const EnumerationOptions& options) {
  const auto dash = label.find('-');
  TL_CHECK(dash != std::string::npos && dash == 3,
           "label must look like 'MNK-SST': " + label);
  const std::string sel = label.substr(0, dash);
  const std::string letters = label.substr(dash + 1);

  std::vector<std::size_t> indices;
  for (char ch : sel) {
    const char want = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    std::optional<std::size_t> found;
    for (std::size_t i = 0; i < algebra.loopCount(); ++i) {
      if (algebra.loops()[i].name[0] == want) {
        TL_CHECK(!found.has_value(),
                 std::string("ambiguous loop initial '") + ch + "' in " + label);
        found = i;
      }
    }
    TL_CHECK(found.has_value(), std::string("no loop with initial '") + ch +
                                    "' in algebra " + algebra.name());
    indices.push_back(*found);
  }
  return findDataflow(algebra, LoopSelection(algebra, indices), letters, options);
}

}  // namespace tensorlib::stt
