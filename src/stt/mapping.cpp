#include "stt/mapping.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "support/error.hpp"

namespace tensorlib::stt {

namespace {

/// Spatial span of a tile shape along space row r: the number of distinct
/// coordinates the row's affine form takes over the tile box.
std::int64_t rowSpan(const linalg::IntMatrix& t, std::size_t r,
                     const linalg::IntVector& shape) {
  std::int64_t span = 1;
  for (std::size_t j = 0; j < 3; ++j)
    span += std::abs(t.at(r, j)) * (shape[j] - 1);
  return span;
}

std::int64_t timeSpan(const linalg::IntMatrix& t, const linalg::IntVector& shape) {
  std::int64_t span = 1;
  for (std::size_t j = 0; j < 3; ++j)
    span += std::abs(t.at(2, j)) * (shape[j] - 1);
  return span;
}

TileCost makeTileCost(const DataflowSpec& spec, linalg::IntVector shape,
                      std::int64_t count) {
  TileCost tc;
  tc.shape = shape;
  tc.count = count;
  tc.macs = shape[0] * shape[1] * shape[2];
  tc.computeCycles = timeSpan(spec.transform().matrix(), shape);
  for (const auto& role : spec.tensors()) {
    const std::int64_t fp = accessFootprint(role.access, shape);
    tc.tensorFootprints.push_back(fp);
    tc.trafficWords += fp;
  }
  return tc;
}

}  // namespace

/// Per dimension the affine form sweeps an interval; dims are charged as
/// independent (exact for all Table-II workloads).
std::int64_t accessFootprint(const tensor::AffineAccess& access,
                             const linalg::IntVector& shape) {
  std::int64_t total = 1;
  for (std::size_t d = 0; d < access.tensorRank(); ++d) {
    std::int64_t range = 1;
    for (std::size_t j = 0; j < 3; ++j)
      range += std::abs(access.coeff().at(d, j)) * (shape[j] - 1);
    total = linalg::checkedMul(total, range);
  }
  return total;
}

std::int64_t TileMapping::totalMacs() const {
  std::int64_t total = 0;
  for (const auto& t : tiles) total += t.count * t.macs;
  return total * outerIterations;
}

std::int64_t TileMapping::totalTrafficWords() const {
  std::int64_t total = 0;
  for (const auto& t : tiles) total += t.count * t.trafficWords;
  return total * outerIterations;
}

std::int64_t TileMapping::serialComputeCycles() const {
  std::int64_t total = 0;
  for (const auto& t : tiles) total += t.count * t.computeCycles;
  return total * outerIterations;
}

TileMapping computeMapping(const DataflowSpec& spec, const ArrayConfig& config) {
  const linalg::IntMatrix& t = spec.transform().matrix();
  const linalg::IntVector extents = spec.selection().extents();

  // --- Choose the full tile. Loops with no spatial coefficient take their
  // full extent (they only stretch the time axis). Spatially-involved loops
  // are chosen by exhaustive search (their candidate sizes are bounded by
  // the array side), maximizing steady-state MACs per cycle — skewed space
  // rows make greedy allocation badly suboptimal here.
  const std::int64_t maxSide = std::max(config.rows, config.cols);
  std::vector<std::vector<std::int64_t>> candidates(3);
  for (std::size_t j = 0; j < 3; ++j) {
    const bool spatial = t.at(0, j) != 0 || t.at(1, j) != 0;
    if (!spatial) {
      candidates[j] = {extents[j]};
    } else {
      const std::int64_t cap = std::min(extents[j], maxSide);
      for (std::int64_t g = 1; g <= cap; ++g) candidates[j].push_back(g);
    }
  }
  linalg::IntVector tile(3, 1);
  double bestRate = -1.0;
  std::int64_t bestMacs = 0;
  const double wordsPerCycle = config.wordsPerCycle();
  for (std::int64_t g0 : candidates[0])
    for (std::int64_t g1 : candidates[1])
      for (std::int64_t g2 : candidates[2]) {
        const linalg::IntVector g{g0, g1, g2};
        if (rowSpan(t, 0, g) > config.rows || rowSpan(t, 1, g) > config.cols)
          continue;
        const std::int64_t macs = g0 * g1 * g2;
        // Steady-state cycles per tile: compute span or memory service
        // time, whichever binds (a 1-cycle tile that moves 300 words is no
        // bargain).
        std::int64_t traffic = 0;
        for (const auto& role : spec.tensors())
          traffic += accessFootprint(role.access, g);
        const double cycles = std::max(
            static_cast<double>(timeSpan(t, g)),
            static_cast<double>(traffic) / wordsPerCycle);
        const double rate = static_cast<double>(macs) / cycles;
        if (rate > bestRate || (rate == bestRate && macs > bestMacs)) {
          bestRate = rate;
          bestMacs = macs;
          tile = g;
        }
      }
  TL_CHECK(bestRate > 0, "no feasible tile fits the array");

  TileMapping out;
  out.fullTile = tile;
  out.spatialRowsUsed = rowSpan(t, 0, tile);
  out.spatialColsUsed = rowSpan(t, 1, tile);
  TL_CHECK(out.spatialRowsUsed <= config.rows && out.spatialColsUsed <= config.cols,
           "tile footprint exceeds array");

  // --- Replication: pack multiple tile copies when the footprint is small
  // (the paper's 15-of-16-rows utilization case for 3-wide kernel loops).
  const std::int64_t repRows = config.rows / out.spatialRowsUsed;
  const std::int64_t repCols = config.cols / out.spatialColsUsed;
  out.replication = std::max<std::int64_t>(1, repRows) *
                    std::max<std::int64_t>(1, repCols);

  // --- Outer (non-selected) loops run sequentially.
  out.outerIterations = 1;
  for (std::size_t idx : spec.selection().outerIndices())
    out.outerIterations = linalg::checkedMul(
        out.outerIterations, spec.algebra().loops()[idx].extent);

  // --- Tile grid grouped by shape: full and remainder extents per loop give
  // at most 2^3 distinct shapes.
  std::int64_t fullCount[3], rem[3];
  for (std::size_t j = 0; j < 3; ++j) {
    fullCount[j] = extents[j] / tile[j];
    rem[j] = extents[j] % tile[j];
  }
  for (int mask = 0; mask < 8; ++mask) {
    linalg::IntVector shape(3);
    std::int64_t count = 1;
    bool valid = true;
    for (std::size_t j = 0; j < 3; ++j) {
      if (mask & (1 << j)) {
        if (rem[j] == 0) { valid = false; break; }
        shape[j] = rem[j];
      } else {
        if (fullCount[j] == 0) { valid = false; break; }
        shape[j] = tile[j];
        count *= fullCount[j];
      }
    }
    if (!valid || count == 0) continue;
    out.tiles.push_back(makeTileCost(spec, shape, count));
  }
  TL_CHECK(!out.tiles.empty(), "mapping produced no tiles");
  return out;
}

namespace {

/// Canonical cache key: exactly the values computeMapping reads, nothing
/// more. The tile search and tile costing consume only ABSOLUTE transform
/// and access coefficients (row/time spans and footprints are
/// magnitude-based), the selected extents, the product of the outer loop
/// extents, and the array configuration — so two specs whose transforms
/// differ only in entry signs (e.g. mirror/time-reversal relatives that
/// survive canonicalization through different dataflow letters) share one
/// entry. On a maxEntry=2 GEMM space this collapses ~4k specs onto ~1.6k
/// distinct tile searches. No hashing shortcut: equal keys provably mean
/// equal mappings, so a collision can never hand back the wrong result.
std::string mappingKey(const DataflowSpec& spec, const ArrayConfig& config) {
  std::string key;
  key.reserve(160);
  const auto addInt = [&key](std::int64_t v) {
    key += std::to_string(v);
    key += ',';
  };
  for (std::int64_t e : spec.selection().extents()) addInt(e);
  key += ';';
  std::int64_t outer = 1;
  for (std::size_t idx : spec.selection().outerIndices())
    outer = linalg::checkedMul(outer, spec.algebra().loops()[idx].extent);
  addInt(outer);
  key += ';';
  const linalg::IntMatrix& t = spec.transform().matrix();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) addInt(std::abs(t.at(i, j)));
  for (const auto& role : spec.tensors()) {
    key += '|';
    const auto& coeff = role.access.coeff();
    addInt(static_cast<std::int64_t>(coeff.rows()));
    for (std::size_t d = 0; d < coeff.rows(); ++d)
      for (std::size_t j = 0; j < coeff.cols(); ++j)
        addInt(std::abs(coeff.at(d, j)));
  }
  key += '@';
  addInt(config.rows);
  addInt(config.cols);
  addInt(config.dataBytes);
  // Exact bit patterns, not decimal renderings: std::to_string's fixed six
  // decimals would collide configs differing below 1e-6 and hand one the
  // other's mapping.
  const auto addDoubleBits = [&addInt](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    addInt(static_cast<std::int64_t>(bits));
  };
  addDoubleBits(config.frequencyMHz);
  addDoubleBits(config.bandwidthGBps);
  return key;
}

}  // namespace

std::string MappingCacheStats::str() const {
  return "hits=" + std::to_string(hits) + " misses=" + std::to_string(misses) +
         " evictions=" + std::to_string(evictions) +
         " entries=" + std::to_string(entries);
}

MappingCache::MappingCache(std::size_t capacity, std::size_t shardCount)
    : shards_(shardCount > 0 ? shardCount : 1) {
  perShardCapacity_ = std::max<std::size_t>(1, capacity / shards_.size());
}

std::shared_ptr<const TileMapping> MappingCache::get(const DataflowSpec& spec,
                                                     const ArrayConfig& config) {
  std::string key = mappingKey(spec, config);
  Shard& shard = shards_[std::hash<std::string>{}(key) % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      return it->second;
    }
  }
  // Compute outside the lock: concurrent misses on one key may both compute
  // (identical results; first insert wins), but no caller ever blocks on
  // another's tile search. Both racers count misses — `misses` reports tile
  // searches actually performed, `hits` searches served from the cache.
  auto mapping = std::make_shared<const TileMapping>(computeMapping(spec, config));
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;
  const auto [it, inserted] = shard.map.try_emplace(std::move(key), std::move(mapping));
  if (inserted) {
    shard.fifo.push_back(it->first);
    while (shard.map.size() > perShardCapacity_) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++shard.evictions;
    }
  }
  return it->second;
}

MappingCacheStats MappingCache::stats() const {
  MappingCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.map.size();
  }
  return out;
}

void MappingCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.fifo.clear();
    shard.hits = shard.misses = shard.evictions = 0;
  }
}

std::vector<std::pair<std::string, std::shared_ptr<const TileMapping>>>
MappingCache::exportEntries() const {
  std::vector<std::pair<std::string, std::shared_ptr<const TileMapping>>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::string& key : shard.fifo) {
      const auto it = shard.map.find(key);
      if (it != shard.map.end()) out.emplace_back(key, it->second);
    }
  }
  return out;
}

std::size_t MappingCache::importEntries(
    const std::vector<std::pair<std::string, std::shared_ptr<const TileMapping>>>&
        entries) {
  std::size_t inserted = 0;
  for (const auto& [key, mapping] : entries) {
    if (!mapping) continue;
    Shard& shard = shards_[std::hash<std::string>{}(key) % shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, fresh] = shard.map.try_emplace(key, mapping);
    if (!fresh) continue;
    shard.fifo.push_back(it->first);
    ++inserted;
    while (shard.map.size() > perShardCapacity_) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++shard.evictions;
    }
  }
  return inserted;
}

std::shared_ptr<const TileMapping> computeMappingCached(
    const DataflowSpec& spec, const ArrayConfig& config, MappingCache* cache) {
  if (cache != nullptr) return cache->get(spec, config);
  return std::make_shared<const TileMapping>(computeMapping(spec, config));
}

std::int64_t spatialSpan(const linalg::IntVector& direction, std::int64_t rows,
                         std::int64_t cols) {
  TL_CHECK(direction.size() >= 2, "spatialSpan needs a 2-D spatial direction");
  const std::int64_t d1 = std::abs(direction[0]);
  const std::int64_t d2 = std::abs(direction[1]);
  TL_CHECK(d1 != 0 || d2 != 0, "spatialSpan of a zero direction");
  std::int64_t steps = INT64_MAX;
  if (d1 != 0) steps = std::min(steps, (rows - 1) / d1);
  if (d2 != 0) steps = std::min(steps, (cols - 1) / d2);
  return steps + 1;
}

}  // namespace tensorlib::stt
