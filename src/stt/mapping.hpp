// Mapping a DataflowSpec onto a physical PE array.
//
// The selected loops are tiled so the tile's image under the space rows of T
// fits the rows x cols array (Section IV: "when PE and memory sizes are
// determined, the loops are performed tiling to fit the hardware").
// A tile whose spatial footprint is smaller than the array is replicated
// (the paper's trick that keeps 15 of 16 rows busy when a kernel loop of
// extent 3 is mapped spatially). The mapping also derives, per tile shape,
// the cycle count of one pass and the per-tensor memory traffic, which the
// performance model combines with the bandwidth budget.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stt/spec.hpp"

namespace tensorlib::stt {

/// Physical array + memory-system configuration (paper Section VI-A:
/// 16x16 PEs, 320 MHz, 32 GB/s on-chip bandwidth).
struct ArrayConfig {
  std::int64_t rows = 16;
  std::int64_t cols = 16;
  double frequencyMHz = 320.0;
  double bandwidthGBps = 32.0;
  std::int64_t dataBytes = 2;  ///< INT16 by default; 4 for FP32

  /// Memory words deliverable per cycle at the configured bandwidth.
  double wordsPerCycle() const {
    return bandwidthGBps * 1e9 / (frequencyMHz * 1e6) /
           static_cast<double>(dataBytes);
  }
};

/// One tile shape (extents of the three selected loops) plus derived costs.
struct TileCost {
  linalg::IntVector shape;       ///< extents of the selected loops in a tile
  std::int64_t count = 0;        ///< how many tiles of this shape exist
  std::int64_t macs = 0;         ///< MACs per tile = product(shape)
  std::int64_t computeCycles = 0;  ///< time-row extent of the tile image
  std::int64_t trafficWords = 0;   ///< per-tensor footprints summed
  std::vector<std::int64_t> tensorFootprints;  ///< label order
};

/// Complete mapping of a spec to an array.
struct TileMapping {
  linalg::IntVector fullTile;        ///< chosen tile extents (selected loops)
  std::int64_t spatialRowsUsed = 0;  ///< p1 span of a full tile
  std::int64_t spatialColsUsed = 0;  ///< p2 span of a full tile
  std::int64_t replication = 1;      ///< concurrent tile copies on the array
  std::int64_t outerIterations = 1;  ///< product of non-selected loop extents
  std::vector<TileCost> tiles;       ///< grouped by shape (<= 8 groups)

  std::int64_t totalMacs() const;
  std::int64_t totalTrafficWords() const;
  /// Sum over tiles of computeCycles (ignoring replication/bandwidth).
  std::int64_t serialComputeCycles() const;
};

/// Computes the tile mapping for a spec on an array. Throws if even a 1x1x1
/// tile does not fit (cannot happen for full-rank T on a >=1x1 array).
TileMapping computeMapping(const DataflowSpec& spec, const ArrayConfig& config);

/// Number of distinct tensor elements the model charges when the selected
/// loops sweep a box of the given shape (the per-dimension interval-product
/// footprint computeMapping uses for tile traffic).
std::int64_t accessFootprint(const tensor::AffineAccess& access,
                             const linalg::IntVector& shape);

struct MappingCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::string str() const;
};

/// Sharded, bounded (FIFO per shard) memo for computeMapping results, keyed
/// by computeMapping's exact read set — selected extents, outer-iteration
/// product, |transform| and per-tensor |restricted access| coefficients,
/// and the array configuration — so two specs share an entry iff
/// computeMapping would provably return identical mappings (sign-relative
/// transforms collapse: a maxEntry=2 GEMM space needs ~2.5x fewer tile
/// searches). Thread-safe; intended to be owned by whoever batches
/// evaluations (one per exploration service), keeping cold one-shot
/// callers honest about their cost.
class MappingCache {
 public:
  explicit MappingCache(std::size_t capacity = 1u << 14,
                        std::size_t shardCount = 8);

  /// The memoized mapping of (spec, config); computes and inserts on miss.
  std::shared_ptr<const TileMapping> get(const DataflowSpec& spec,
                                         const ArrayConfig& config);

  MappingCacheStats stats() const;
  void clear();

  /// The memo's resident records as opaque (key, mapping) pairs, in shard
  /// then insertion order — the unit of snapshot/restore (see
  /// driver/snapshot.*). Keys are produced internally by the exact-read-set
  /// key function, so a restored record only ever answers a lookup that
  /// would have recomputed the identical mapping.
  std::vector<std::pair<std::string, std::shared_ptr<const TileMapping>>>
  exportEntries() const;

  /// Re-inserts exported records (insert-if-absent: resident entries win,
  /// and per-shard FIFO capacity still applies). Counts as neither hit nor
  /// miss; returns how many records were actually inserted.
  std::size_t importEntries(
      const std::vector<std::pair<std::string, std::shared_ptr<const TileMapping>>>&
          entries);

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<const TileMapping>> map;
    std::deque<std::string> fifo;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  std::size_t perShardCapacity_;
  std::vector<Shard> shards_;
};

/// computeMapping through an optional cache: memoized when `cache` is
/// non-null, a fresh computation otherwise. Results are bit-identical
/// either way (computeMapping is deterministic).
std::shared_ptr<const TileMapping> computeMappingCached(
    const DataflowSpec& spec, const ArrayConfig& config, MappingCache* cache);

/// Spatial span (number of distinct positions) of the array along a rank-1
/// reuse direction (dp1, dp2) — the multicast group size / systolic chain
/// length for that tensor on a rows x cols array.
std::int64_t spatialSpan(const linalg::IntVector& direction, std::int64_t rows,
                         std::int64_t cols);

}  // namespace tensorlib::stt
