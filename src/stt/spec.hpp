// DataflowSpec: a fully analyzed (algebra, loop selection, STT) triple —
// the unit of TensorLib's design space. Produces paper-style labels such as
// "MNK-SST" (selected loops, then one dataflow letter per tensor: inputs in
// formula order followed by the output).
//
// Specs are cheap to copy: the algebra and selection live in an immutable
// SpecContext shared (via shared_ptr) by every spec of one enumeration
// sweep, so a spec carries only the small-value transform, the per-tensor
// roles, and the cached letter string. Enumerating ~4k transforms of one
// selection no longer deep-copies the TensorAlgebra 4k times.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stt/classify.hpp"
#include "stt/transform.hpp"
#include "tensor/algebra.hpp"

namespace tensorlib::stt {

/// Dataflow of one tensor within a spec.
struct TensorRole {
  std::string tensor;
  bool isOutput = false;
  tensor::AffineAccess access;           ///< restricted to the selected loops
  tensor::AffineAccess fullAccess;       ///< over the whole nest
  TensorDataflow dataflow;
};

/// The immutable (algebra, selection) pair shared by every spec of one
/// enumeration sweep, plus the per-tensor restricted accesses (computed once
/// per selection instead of once per candidate transform).
struct SpecContext {
  SpecContext(tensor::TensorAlgebra algebra, LoopSelection selection);

  tensor::TensorAlgebra algebra;
  LoopSelection selection;
  /// Accesses restricted to the selected loops, in label order (inputs in
  /// formula order, output last).
  std::vector<tensor::AffineAccess> restrictedAccesses;
};

using SpecContextPtr = std::shared_ptr<const SpecContext>;

/// Builds the shared immutable context for one (algebra, selection) pair.
SpecContextPtr makeSpecContext(tensor::TensorAlgebra algebra,
                               LoopSelection selection);

/// A complete analyzed dataflow design point.
class DataflowSpec {
 public:
  DataflowSpec(SpecContextPtr context, SpaceTimeTransform transform,
               std::vector<TensorRole> tensors);
  /// Compatibility constructor: wraps the pair into a fresh context.
  DataflowSpec(tensor::TensorAlgebra algebra, LoopSelection selection,
               SpaceTimeTransform transform, std::vector<TensorRole> tensors);

  const tensor::TensorAlgebra& algebra() const { return context_->algebra; }
  const LoopSelection& selection() const { return context_->selection; }
  const SpaceTimeTransform& transform() const { return transform_; }
  /// The shared (algebra, selection) context this spec aliases.
  const SpecContextPtr& context() const { return context_; }
  /// Tensors in label order: inputs in formula order, output last.
  const std::vector<TensorRole>& tensors() const { return tensors_; }
  const TensorRole& outputRole() const { return tensors_.back(); }

  /// Paper-style label, e.g. "MNK-SST", "KCX-STS", "IKL-UBBB".
  std::string label() const;
  /// Just the per-tensor letters, e.g. "SST" (cached at construction).
  const std::string& letters() const { return letters_; }

  /// Canonical signature for design-space deduplication: per tensor, the
  /// dataflow class plus (rank-1) direction / (rank-2) canonicalized basis.
  /// Kept for debug/describe output; the hot dedupe path hashes the same
  /// canonical content via signatureHash() without building strings.
  std::string signature() const;

  /// 64-bit hash of the canonical signature content (selection indices plus
  /// per-tensor class and canonicalized reuse geometry). Two specs with
  /// equal signatures hash equal; distinct signatures collide with
  /// probability ~2^-64.
  std::uint64_t signatureHash() const;

  /// True if any tensor's dataflow class is among the given letters.
  bool hasLetter(char letter) const {
    return letters_.find(letter) != std::string::npos;
  }

  std::string describe() const;

 private:
  SpecContextPtr context_;
  SpaceTimeTransform transform_;
  std::vector<TensorRole> tensors_;
  std::string letters_;
};

/// Runs the full analysis pipeline: restrict accesses to the selection,
/// compute reuse subspaces under T, classify each tensor (Table I).
DataflowSpec analyzeDataflow(const tensor::TensorAlgebra& algebra,
                             const LoopSelection& selection,
                             const SpaceTimeTransform& transform);

/// Zero-copy variant: analyzes one transform against a shared context. All
/// specs produced from the same context alias one algebra/selection.
DataflowSpec analyzeDataflow(const SpecContextPtr& context,
                             const SpaceTimeTransform& transform);

}  // namespace tensorlib::stt
