// DataflowSpec: a fully analyzed (algebra, loop selection, STT) triple —
// the unit of TensorLib's design space. Produces paper-style labels such as
// "MNK-SST" (selected loops, then one dataflow letter per tensor: inputs in
// formula order followed by the output).
#pragma once

#include <string>
#include <vector>

#include "stt/classify.hpp"
#include "stt/transform.hpp"
#include "tensor/algebra.hpp"

namespace tensorlib::stt {

/// Dataflow of one tensor within a spec.
struct TensorRole {
  std::string tensor;
  bool isOutput = false;
  tensor::AffineAccess access;           ///< restricted to the selected loops
  tensor::AffineAccess fullAccess;       ///< over the whole nest
  TensorDataflow dataflow;
};

/// A complete analyzed dataflow design point.
class DataflowSpec {
 public:
  DataflowSpec(tensor::TensorAlgebra algebra, LoopSelection selection,
               SpaceTimeTransform transform, std::vector<TensorRole> tensors);

  const tensor::TensorAlgebra& algebra() const { return algebra_; }
  const LoopSelection& selection() const { return selection_; }
  const SpaceTimeTransform& transform() const { return transform_; }
  /// Tensors in label order: inputs in formula order, output last.
  const std::vector<TensorRole>& tensors() const { return tensors_; }
  const TensorRole& outputRole() const { return tensors_.back(); }

  /// Paper-style label, e.g. "MNK-SST", "KCX-STS", "IKL-UBBB".
  std::string label() const;
  /// Just the per-tensor letters, e.g. "SST".
  std::string letters() const;

  /// Canonical signature for design-space deduplication: per tensor, the
  /// dataflow class plus (rank-1) direction / (rank-2) canonicalized basis.
  std::string signature() const;

  /// True if any tensor's dataflow class is among the given letters.
  bool hasLetter(char letter) const;

  std::string describe() const;

 private:
  tensor::TensorAlgebra algebra_;
  LoopSelection selection_;
  SpaceTimeTransform transform_;
  std::vector<TensorRole> tensors_;
};

/// Runs the full analysis pipeline: restrict accesses to the selection,
/// compute reuse subspaces under T, classify each tensor (Table I).
DataflowSpec analyzeDataflow(const tensor::TensorAlgebra& algebra,
                             const LoopSelection& selection,
                             const SpaceTimeTransform& transform);

}  // namespace tensorlib::stt
