// Space-Time Transformation (Section II of the paper).
//
// A 3x3 full-rank integer matrix T maps a selected triple of loop iterators
// x = (i1,i2,i3) to hardware coordinates (p1, p2, t): two PE-array axes and
// a cycle timestamp. Full rank gives a one-to-one mapping between loop
// points and space-time points; we additionally track unimodularity
// (|det| == 1), which guarantees the inverse is integral so every occupied
// (PE, cycle) pair maps back to a unique loop iteration.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "tensor/algebra.hpp"

namespace tensorlib::stt {

/// The ordered triple of loops selected for space-time mapping. The order
/// defines the iterator basis for the transform and the selection part of
/// dataflow labels ("MNK-", "KCX-", ...). Remaining loops run sequentially.
class LoopSelection {
 public:
  LoopSelection(const tensor::TensorAlgebra& algebra,
                std::vector<std::size_t> loopIndices);

  /// Builds a selection from loop names (paper-style, e.g. {"x","p","q"}).
  static LoopSelection byNames(const tensor::TensorAlgebra& algebra,
                               const std::vector<std::string>& names);

  const std::vector<std::size_t>& indices() const { return indices_; }
  /// Extents of the three selected loops, in selection order.
  const linalg::IntVector& extents() const { return extents_; }
  /// Loop indices NOT selected (sequential/outer loops), in nest order.
  const std::vector<std::size_t>& outerIndices() const { return outer_; }

  /// Uppercased initials of the selected loops, e.g. "MNK".
  std::string label() const { return label_; }

 private:
  std::vector<std::size_t> indices_;
  std::vector<std::size_t> outer_;
  linalg::IntVector extents_;
  std::string label_;
};

/// A validated space-time transform over a 3-loop selection.
class SpaceTimeTransform {
 public:
  /// Throws if T is not 3x3 full-rank.
  explicit SpaceTimeTransform(linalg::IntMatrix t);

  const linalg::IntMatrix& matrix() const { return t_; }
  const linalg::RatMatrix& inverse() const { return inv_; }
  std::int64_t det() const { return det_; }
  bool isUnimodular() const { return det_ == 1 || det_ == -1; }

  /// Space rows (first two) and time row (third).
  linalg::IntVector spaceRow(std::size_t which) const { return t_.row(which); }
  linalg::IntVector timeRow() const { return t_.row(2); }

  /// Maps a selected-loop iteration (size 3) to (p1, p2, t).
  linalg::IntVector apply(const linalg::IntVector& x) const;

  /// Inverse map; nullopt when (p1,p2,t) is not the image of an integer
  /// iteration (possible only for non-unimodular transforms).
  std::optional<linalg::IntVector> invert(const linalg::IntVector& spaceTime) const;

  std::string str() const { return t_.str(); }

 private:
  linalg::IntMatrix t_;
  linalg::RatMatrix inv_;
  std::int64_t det_ = 0;
};

}  // namespace tensorlib::stt
