#include "stt/transform.hpp"

#include <cctype>

#include "support/error.hpp"

namespace tensorlib::stt {

LoopSelection::LoopSelection(const tensor::TensorAlgebra& algebra,
                             std::vector<std::size_t> loopIndices)
    : indices_(std::move(loopIndices)) {
  TL_CHECK(indices_.size() == 3, "LoopSelection must pick exactly 3 loops");
  std::vector<bool> used(algebra.loopCount(), false);
  for (std::size_t idx : indices_) {
    TL_CHECK(idx < algebra.loopCount(), "LoopSelection: loop index out of range");
    TL_CHECK(!used[idx], "LoopSelection: duplicate loop");
    used[idx] = true;
  }
  for (std::size_t i = 0; i < algebra.loopCount(); ++i)
    if (!used[i]) outer_.push_back(i);
  extents_.resize(3);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& loop = algebra.loops()[indices_[i]];
    extents_[i] = loop.extent;
    label_ += static_cast<char>(std::toupper(static_cast<unsigned char>(loop.name[0])));
  }
}

LoopSelection LoopSelection::byNames(const tensor::TensorAlgebra& algebra,
                                     const std::vector<std::string>& names) {
  TL_CHECK(names.size() == 3, "LoopSelection::byNames needs 3 names");
  std::vector<std::size_t> idx;
  idx.reserve(3);
  for (const auto& n : names) idx.push_back(algebra.loopIndex(n));
  return LoopSelection(algebra, std::move(idx));
}

SpaceTimeTransform::SpaceTimeTransform(linalg::IntMatrix t) : t_(std::move(t)) {
  TL_CHECK(t_.rows() == 3 && t_.cols() == 3, "STT matrix must be 3x3");
  det_ = linalg::determinant(t_);
  TL_CHECK(det_ != 0, "STT matrix must be full rank (paper Section II): " + t_.str());
  auto inv = linalg::inverse(t_);
  TL_CHECK(inv.has_value(), "STT matrix inversion failed");
  inv_ = *inv;
}

linalg::IntVector SpaceTimeTransform::apply(const linalg::IntVector& x) const {
  TL_CHECK(x.size() == 3, "STT apply: iteration must have 3 components");
  return t_ * x;
}

std::optional<linalg::IntVector> SpaceTimeTransform::invert(
    const linalg::IntVector& spaceTime) const {
  TL_CHECK(spaceTime.size() == 3, "STT invert: vector must have 3 components");
  linalg::RatVector st(3);
  for (std::size_t i = 0; i < 3; ++i) st[i] = linalg::Rational(spaceTime[i]);
  const linalg::RatVector x = inv_ * st;
  linalg::IntVector out(3);
  for (std::size_t i = 0; i < 3; ++i) {
    if (!x[i].isInteger()) return std::nullopt;
    out[i] = x[i].toInteger();
  }
  return out;
}

}  // namespace tensorlib::stt
