#include "stt/classify.hpp"

#include "support/error.hpp"

namespace tensorlib::stt {

namespace {

/// Sign-canonicalizes a rank-1 direction: prefer dt > 0; for dt == 0 make the
/// first nonzero spatial component positive.
linalg::IntVector canonicalDirection(linalg::IntVector v) {
  if (v[2] != 0) {
    if (v[2] < 0)
      for (auto& x : v) x = -x;
    return v;
  }
  for (auto x : v) {
    if (x == 0) continue;
    if (x < 0)
      for (auto& y : v) y = -y;
    break;
  }
  return v;
}

/// True if the time axis e_t = (0,0,1) lies in the span of the basis.
bool containsTimeAxis(const linalg::IntMatrix& basis) {
  return linalg::inSpan(basis, linalg::IntVector{0, 0, 1});
}

/// True if every vector in the span has zero time component, i.e. all basis
/// columns have dt == 0.
bool orthogonalToTimeAxis(const linalg::IntMatrix& basis) {
  for (std::size_t j = 0; j < basis.cols(); ++j)
    if (basis.at(2, j) != 0) return false;
  return true;
}

}  // namespace

TensorDataflow classify(const ReuseAnalysis& reuse) {
  TensorDataflow out;
  out.reuseRank = reuse.rank;
  out.reuseBasis = reuse.spaceTimeBasis;
  out.latticeBasis = reuse.latticeBasis;

  switch (reuse.rank) {
    case 0:
      out.dataflowClass = DataflowClass::Unicast;
      break;
    case 1: {
      out.direction = canonicalDirection(reuse.spaceTimeBasis.col(0));
      const bool spatialZero = out.direction[0] == 0 && out.direction[1] == 0;
      const bool timeZero = out.direction[2] == 0;
      TL_CHECK(!(spatialZero && timeZero), "rank-1 reuse with zero direction");
      if (spatialZero)
        out.dataflowClass = DataflowClass::Stationary;
      else if (timeZero)
        out.dataflowClass = DataflowClass::Multicast;
      else
        out.dataflowClass = DataflowClass::Systolic;
      break;
    }
    case 2: {
      if (orthogonalToTimeAxis(reuse.spaceTimeBasis))
        out.dataflowClass = DataflowClass::Broadcast2D;
      else if (containsTimeAxis(reuse.spaceTimeBasis))
        out.dataflowClass = DataflowClass::MulticastStationary;
      else
        out.dataflowClass = DataflowClass::SystolicMulticast;
      break;
    }
    case 3:
      out.dataflowClass = DataflowClass::FullReuse;
      break;
    default:
      fail("impossible reuse rank");
  }
  return out;
}

char dataflowLetter(DataflowClass c) {
  switch (c) {
    case DataflowClass::Unicast: return 'U';
    case DataflowClass::Stationary: return 'T';
    case DataflowClass::Systolic: return 'S';
    case DataflowClass::Multicast: return 'M';
    case DataflowClass::Broadcast2D:
    case DataflowClass::MulticastStationary:
    case DataflowClass::SystolicMulticast:
    case DataflowClass::FullReuse: return 'B';
  }
  fail("unknown dataflow class");
}

std::string dataflowClassName(DataflowClass c) {
  switch (c) {
    case DataflowClass::Unicast: return "Unicast";
    case DataflowClass::Stationary: return "Stationary";
    case DataflowClass::Systolic: return "Systolic";
    case DataflowClass::Multicast: return "Multicast";
    case DataflowClass::Broadcast2D: return "Broadcast";
    case DataflowClass::MulticastStationary: return "Multicast & Stationary";
    case DataflowClass::SystolicMulticast: return "Systolic & Multicast";
    case DataflowClass::FullReuse: return "Full reuse";
  }
  fail("unknown dataflow class");
}

}  // namespace tensorlib::stt
