#include "stt/block.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "support/error.hpp"

namespace tensorlib::stt {

namespace {

/// Appends the raw bytes of `n` int64s to `key` (mapping-class hashing).
void appendWords(std::string& key, const std::int64_t* words, std::size_t n) {
  key.append(reinterpret_cast<const char*>(words), n * sizeof(std::int64_t));
}

}  // namespace

std::shared_ptr<const SpecBlockSet> packSpecBlocks(
    std::shared_ptr<const std::vector<DataflowSpec>> specs) {
  auto set = std::make_shared<SpecBlockSet>();
  set->source = specs;
  const std::vector<DataflowSpec>& list = *specs;
  set->count = list.size();
  if (list.empty()) return set;

  const DataflowSpec& first = list.front();
  const std::size_t T = first.tensors().size();
  TL_CHECK(T >= 1 && T <= kBlockMaxTensors,
           "block packing: tensor count out of range");
  set->tensorsPerSpec = T;
  set->inputCount = first.algebra().inputs().size();
  set->algebraMacs = first.algebra().totalMacs();

  set->tensorIsOutput.resize(T);
  set->tensorRank.resize(T);
  for (std::size_t k = 0; k < T; ++k) {
    const TensorRole& role = first.tensors()[k];
    const std::size_t rank = role.access.coeff().rows();
    TL_CHECK(rank <= kBlockMaxRank, "block packing: tensor rank out of range");
    set->tensorIsOutput[k] = role.isOutput ? 1 : 0;
    set->tensorRank[k] = rank;
    set->rankStride = std::max(set->rankStride, rank);
  }
  if (set->rankStride == 0) set->rankStride = 1;

  const std::size_t n = set->count;
  set->extents.resize(n * 3);
  set->outer.resize(n);
  set->absT.resize(n * 9);
  set->labels.reserve(n);
  set->classTag.resize(n * T);
  set->absDir.assign(n * T * 2, 0);
  set->systolicDt.assign(n * T, 0);
  set->absC.assign(n * T * set->rankStride * 3, 0);
  set->mapClass.resize(n);

  // Mapping-class partition: key on the packed tile-search read set.
  std::unordered_map<std::string, std::uint32_t> classes;
  std::string key;
  key.reserve((3 + 1 + 9 + T * set->rankStride * 3) * sizeof(std::int64_t));

  for (std::size_t i = 0; i < n; ++i) {
    const DataflowSpec& spec = list[i];
    TL_CHECK(spec.tensors().size() == T,
             "block packing: tensor count varies within one list");

    const linalg::IntVector& e = spec.selection().extents();
    for (std::size_t j = 0; j < 3; ++j) set->extents[i * 3 + j] = e[j];

    std::int64_t outer = 1;
    for (std::size_t idx : spec.selection().outerIndices())
      outer = linalg::checkedMul(outer, spec.algebra().loops()[idx].extent);
    set->outer[i] = outer;

    const linalg::IntMatrix& t = spec.transform().matrix();
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t j = 0; j < 3; ++j)
        set->absT[i * 9 + r * 3 + j] = std::abs(t.at(r, j));

    set->labels.push_back(spec.label());

    for (std::size_t k = 0; k < T; ++k) {
      const TensorRole& role = spec.tensors()[k];
      TL_CHECK(role.access.coeff().rows() == set->tensorRank[k] &&
                   (role.isOutput ? 1 : 0) == set->tensorIsOutput[k],
               "block packing: tensor layout varies within one list");
      const std::size_t ti = set->tensorIndex(i, k);
      set->classTag[ti] = static_cast<std::uint8_t>(role.dataflow.dataflowClass);
      if (role.dataflow.direction.size() >= 2) {
        set->absDir[ti * 2 + 0] = std::abs(role.dataflow.direction[0]);
        set->absDir[ti * 2 + 1] = std::abs(role.dataflow.direction[1]);
      }
      if (role.dataflow.dataflowClass == DataflowClass::Systolic)
        set->systolicDt[ti] = std::abs(role.dataflow.latticeBasis.at(2, 0));
      const linalg::IntMatrix& c = role.access.coeff();
      std::int64_t* absC = set->absC.data() + ti * set->rankStride * 3;
      for (std::size_t d = 0; d < set->tensorRank[k]; ++d)
        for (std::size_t j = 0; j < 3; ++j)
          absC[d * 3 + j] = std::abs(c.at(d, j));
    }

    key.clear();
    appendWords(key, set->specExtents(i), 3);
    appendWords(key, &set->outer[i], 1);
    appendWords(key, set->specAbsT(i), 9);
    appendWords(key, set->tensorAbsC(i, 0), T * set->rankStride * 3);
    const auto [it, inserted] =
        classes.emplace(key, static_cast<std::uint32_t>(classes.size()));
    (void)inserted;
    set->mapClass[i] = it->second;
  }
  set->mapClassCount = classes.size();
  return set;
}

SelectionGeometry makeSelectionGeometry(const SpecContext& context) {
  SelectionGeometry g;
  const linalg::IntVector& e = context.selection.extents();
  for (std::size_t j = 0; j < 3; ++j) g.extents[j] = e[j];
  g.outer = 1;
  for (std::size_t idx : context.selection.outerIndices())
    g.outer = linalg::checkedMul(g.outer, context.algebra.loops()[idx].extent);
  g.macs = context.algebra.totalMacs();
  g.inputCount = context.algebra.inputs().size();
  g.tensorCount = context.restrictedAccesses.size();
  TL_CHECK(g.tensorCount >= 1 && g.tensorCount <= kBlockMaxTensors,
           "selection geometry: tensor count out of range");
  g.tensorRank.resize(g.tensorCount);
  g.tensorIsOutput.resize(g.tensorCount);
  g.rankStride = 0;
  for (std::size_t k = 0; k < g.tensorCount; ++k) {
    const std::size_t rank = context.restrictedAccesses[k].coeff().rows();
    TL_CHECK(rank <= kBlockMaxRank,
             "selection geometry: tensor rank out of range");
    g.tensorRank[k] = rank;
    g.tensorIsOutput[k] = k + 1 == g.tensorCount ? 1 : 0;
    g.rankStride = std::max(g.rankStride, rank);
  }
  if (g.rankStride == 0) g.rankStride = 1;
  g.absC.assign(g.tensorCount * g.rankStride * 3, 0);
  for (std::size_t k = 0; k < g.tensorCount; ++k) {
    const linalg::IntMatrix& c = context.restrictedAccesses[k].coeff();
    std::int64_t* absC = g.absC.data() + k * g.rankStride * 3;
    for (std::size_t d = 0; d < g.tensorRank[k]; ++d)
      for (std::size_t j = 0; j < 3; ++j)
        absC[d * 3 + j] = std::abs(c.at(d, j));
  }
  g.selectionLabel = context.selection.label();
  return g;
}

void resetSpecBlocks(SpecBlockSet& set, const SelectionGeometry& geometry) {
  set.source.reset();
  set.count = 0;
  set.tensorsPerSpec = geometry.tensorCount;
  set.inputCount = geometry.inputCount;
  set.algebraMacs = geometry.macs;
  set.tensorIsOutput = geometry.tensorIsOutput;
  set.tensorRank = geometry.tensorRank;
  set.rankStride = geometry.rankStride;
  set.extents.clear();
  set.outer.clear();
  set.absT.clear();
  set.labels.clear();
  set.classTag.clear();
  set.absDir.clear();
  set.systolicDt.clear();
  set.absC.clear();
  set.mapClass.clear();
  set.mapClassCount = 0;
}

std::size_t appendSpecBlock(SpecBlockSet& set, const SelectionGeometry& geometry,
                            const linalg::IntMatrix& matrix,
                            const std::uint8_t* classTag,
                            const std::int64_t* absDir,
                            const std::int64_t* systolicDt, std::string label) {
  const std::size_t i = set.count++;
  const std::size_t T = geometry.tensorCount;
  set.extents.insert(set.extents.end(), geometry.extents.begin(),
                     geometry.extents.end());
  set.outer.push_back(geometry.outer);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t j = 0; j < 3; ++j)
      set.absT.push_back(std::abs(matrix.at(r, j)));
  set.labels.push_back(std::move(label));
  set.classTag.insert(set.classTag.end(), classTag, classTag + T);
  set.absDir.insert(set.absDir.end(), absDir, absDir + T * 2);
  set.systolicDt.insert(set.systolicDt.end(), systolicDt, systolicDt + T);
  set.absC.insert(set.absC.end(), geometry.absC.begin(), geometry.absC.end());
  return i;
}

void assignSpecBlockClasses(SpecBlockSet& set) {
  const std::size_t n = set.count;
  const std::size_t T = set.tensorsPerSpec;
  set.mapClass.resize(n);
  std::unordered_map<std::string, std::uint32_t> classes;
  std::string key;
  key.reserve((3 + 1 + 9 + T * set.rankStride * 3) * sizeof(std::int64_t));
  for (std::size_t i = 0; i < n; ++i) {
    key.clear();
    appendWords(key, set.specExtents(i), 3);
    appendWords(key, &set.outer[i], 1);
    appendWords(key, set.specAbsT(i), 9);
    appendWords(key, set.tensorAbsC(i, 0), T * set.rankStride * 3);
    const auto [it, inserted] =
        classes.emplace(key, static_cast<std::uint32_t>(classes.size()));
    (void)inserted;
    set.mapClass[i] = it->second;
  }
  set.mapClassCount = classes.size();
}

TileMapping computeMappingPacked(const SpecBlockSet& set, std::size_t i,
                                 const ArrayConfig& config) {
  const std::int64_t* absT = set.specAbsT(i);
  const std::int64_t* extents = set.specExtents(i);
  const std::size_t T = set.tensorsPerSpec;

  const std::int64_t maxSide = std::max(config.rows, config.cols);
  std::int64_t caps[3];
  bool spatial[3];
  for (std::size_t j = 0; j < 3; ++j) {
    spatial[j] = absT[0 * 3 + j] != 0 || absT[1 * 3 + j] != 0;
    caps[j] = spatial[j] ? std::min(extents[j], maxSide) : extents[j];
  }
  const double wordsPerCycle = config.wordsPerCycle();
  std::int64_t tile[3] = {1, 1, 1};
  double bestRate = -1.0;
  std::int64_t bestMacs = 0;

  // Same candidate grid as computeMapping — spatial loops scan 1..cap,
  // non-spatial loops take the full extent — but with the fit check
  // hoisted: spatial spans are monotone nondecreasing in every tile
  // extent, so once the *minimal* remaining coordinates overflow the
  // array, every later candidate in that loop overflows too (the scalar
  // search merely `continue`s those same candidates, so skipping them
  // cannot change the winner). Per-tensor footprint factors fixed by the
  // outer two loops are hoisted into `base`.
  std::int64_t base[kBlockMaxTensors * kBlockMaxRank];
  for (std::int64_t g0 = spatial[0] ? 1 : caps[0]; g0 <= caps[0]; ++g0) {
    const std::int64_t s0r = 1 + absT[0] * (g0 - 1);
    const std::int64_t s0c = 1 + absT[3] * (g0 - 1);
    {
      const std::int64_t g1m = spatial[1] ? 1 : caps[1];
      const std::int64_t g2m = spatial[2] ? 1 : caps[2];
      if (s0r + absT[1] * (g1m - 1) + absT[2] * (g2m - 1) > config.rows ||
          s0c + absT[4] * (g1m - 1) + absT[5] * (g2m - 1) > config.cols)
        break;
    }
    for (std::int64_t g1 = spatial[1] ? 1 : caps[1]; g1 <= caps[1]; ++g1) {
      const std::int64_t s01r = s0r + absT[1] * (g1 - 1);
      const std::int64_t s01c = s0c + absT[4] * (g1 - 1);
      {
        const std::int64_t g2m = spatial[2] ? 1 : caps[2];
        if (s01r + absT[2] * (g2m - 1) > config.rows ||
            s01c + absT[5] * (g2m - 1) > config.cols)
          break;
      }
      const std::int64_t t01 = 1 + absT[6] * (g0 - 1) + absT[7] * (g1 - 1);
      for (std::size_t k = 0; k < T; ++k) {
        const std::int64_t* absC = set.tensorAbsC(i, k);
        for (std::size_t d = 0; d < set.tensorRank[k]; ++d)
          base[k * kBlockMaxRank + d] =
              1 + absC[d * 3 + 0] * (g0 - 1) + absC[d * 3 + 1] * (g1 - 1);
      }
      const std::int64_t macs01 = g0 * g1;
      for (std::int64_t g2 = spatial[2] ? 1 : caps[2]; g2 <= caps[2]; ++g2) {
        if (s01r + absT[2] * (g2 - 1) > config.rows ||
            s01c + absT[5] * (g2 - 1) > config.cols)
          break;
        const std::int64_t macs = macs01 * g2;
        std::int64_t traffic = 0;
        for (std::size_t k = 0; k < T; ++k) {
          const std::int64_t* absC = set.tensorAbsC(i, k);
          std::int64_t fp = 1;
          for (std::size_t d = 0; d < set.tensorRank[k]; ++d)
            fp = linalg::checkedMul(
                fp, base[k * kBlockMaxRank + d] + absC[d * 3 + 2] * (g2 - 1));
          traffic += fp;
        }
        const double cycles =
            std::max(static_cast<double>(t01 + absT[8] * (g2 - 1)),
                     static_cast<double>(traffic) / wordsPerCycle);
        const double rate = static_cast<double>(macs) / cycles;
        if (rate > bestRate || (rate == bestRate && macs > bestMacs)) {
          bestRate = rate;
          bestMacs = macs;
          tile[0] = g0;
          tile[1] = g1;
          tile[2] = g2;
        }
      }
    }
  }
  TL_CHECK(bestRate > 0, "no feasible tile fits the array");

  TileMapping out;
  out.fullTile = {tile[0], tile[1], tile[2]};
  out.spatialRowsUsed = 1 + absT[0] * (tile[0] - 1) + absT[1] * (tile[1] - 1) +
                        absT[2] * (tile[2] - 1);
  out.spatialColsUsed = 1 + absT[3] * (tile[0] - 1) + absT[4] * (tile[1] - 1) +
                        absT[5] * (tile[2] - 1);
  const std::int64_t repRows = config.rows / out.spatialRowsUsed;
  const std::int64_t repCols = config.cols / out.spatialColsUsed;
  out.replication =
      std::max<std::int64_t>(1, repRows) * std::max<std::int64_t>(1, repCols);
  out.outerIterations = set.outer[i];

  // The <=8 tile-shape groups of the remainder grid, in mask order exactly
  // as computeMapping emits them.
  std::int64_t fullCount[3], rem[3];
  for (std::size_t j = 0; j < 3; ++j) {
    fullCount[j] = extents[j] / tile[j];
    rem[j] = extents[j] % tile[j];
  }
  for (int mask = 0; mask < 8; ++mask) {
    std::int64_t shape[3];
    std::int64_t count = 1;
    bool valid = true;
    for (std::size_t j = 0; j < 3; ++j) {
      if (mask & (1 << j)) {
        if (rem[j] == 0) {
          valid = false;
          break;
        }
        shape[j] = rem[j];
      } else {
        if (fullCount[j] == 0) {
          valid = false;
          break;
        }
        shape[j] = tile[j];
        count *= fullCount[j];
      }
    }
    if (!valid || count == 0) continue;
    TileCost tc;
    tc.shape = {shape[0], shape[1], shape[2]};
    tc.count = count;
    tc.macs = shape[0] * shape[1] * shape[2];
    tc.computeCycles = 1 + absT[6] * (shape[0] - 1) + absT[7] * (shape[1] - 1) +
                       absT[8] * (shape[2] - 1);
    tc.tensorFootprints.reserve(T);
    for (std::size_t k = 0; k < T; ++k) {
      const std::int64_t* absC = set.tensorAbsC(i, k);
      std::int64_t fp = 1;
      for (std::size_t d = 0; d < set.tensorRank[k]; ++d)
        fp = linalg::checkedMul(fp, 1 + absC[d * 3 + 0] * (shape[0] - 1) +
                                        absC[d * 3 + 1] * (shape[1] - 1) +
                                        absC[d * 3 + 2] * (shape[2] - 1));
      tc.tensorFootprints.push_back(fp);
      tc.trafficWords += fp;
    }
    out.tiles.push_back(std::move(tc));
  }
  TL_CHECK(!out.tiles.empty(), "mapping produced no tiles");
  return out;
}

BlockMappingStore::BlockMappingStore(std::size_t slots)
    : slots_(slots > 0 ? std::make_unique<Slot[]>(slots) : nullptr),
      count_(slots) {}

const TileMapping& BlockMappingStore::get(const SpecBlockSet& set,
                                          std::size_t i,
                                          const ArrayConfig& config,
                                          std::size_t slot) {
  TL_CHECK(slot < count_, "block mapping slot out of range");
  Slot& s = slots_[slot];
  std::call_once(s.once, [&] { s.mapping = computeMappingPacked(set, i, config); });
  return s.mapping;
}

}  // namespace tensorlib::stt
