#include "support/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "support/error.hpp"

namespace tensorlib::support {

namespace {

struct ArmedFault {
  std::string point;
  FaultAction action;
  std::int64_t occurrence = 1;  ///< 1-based trigger call; 0 = every call
  bool spent = false;
};

}  // namespace

struct FaultInjector::Impl {
  mutable std::mutex mutex;
  std::vector<ArmedFault> faults;
  std::map<std::string, std::uint64_t> calls;      ///< fire() invocations
  std::map<std::string, std::uint64_t> triggers;   ///< actual triggers
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  if (const char* env = std::getenv("TENSORLIB_FAULTS"))
    if (*env != '\0') arm(env);
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& spec) {
  // point=action[:value][@occurrence], comma separated.
  std::vector<ArmedFault> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    if (item.find_first_not_of(" \t") == std::string::npos) continue;

    const std::size_t eq = item.find('=');
    require(eq != std::string::npos && eq > 0,
            "fault spec '" + item + "' missing 'point=action'");
    ArmedFault f;
    f.point = item.substr(0, eq);
    std::string rest = item.substr(eq + 1);

    const std::size_t at = rest.find('@');
    if (at != std::string::npos) {
      const std::string occ = rest.substr(at + 1);
      try {
        f.occurrence = std::stoll(occ);
      } catch (const std::exception&) {
        fail("fault spec '" + item + "' has malformed occurrence '" + occ + "'");
      }
      require(f.occurrence >= 0,
              "fault spec '" + item + "' occurrence must be >= 0");
      rest = rest.substr(0, at);
    }
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      const std::string value = rest.substr(colon + 1);
      try {
        f.action.value = std::stoll(value);
      } catch (const std::exception&) {
        fail("fault spec '" + item + "' has malformed value '" + value + "'");
      }
      rest = rest.substr(0, colon);
    }
    require(!rest.empty(), "fault spec '" + item + "' has empty action");
    f.action.action = rest;
    parsed.push_back(std::move(f));
  }

  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& f : parsed) impl_->faults.push_back(std::move(f));
  armed_.store(!impl_->faults.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->faults.clear();
  impl_->calls.clear();
  impl_->triggers.clear();
  armed_.store(false, std::memory_order_release);
}

std::optional<FaultAction> FaultInjector::fire(const std::string& point) {
  if (!armed_.load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::uint64_t call = ++impl_->calls[point];
  for (ArmedFault& f : impl_->faults) {
    if (f.spent || f.point != point) continue;
    const bool hits = f.occurrence == 0 ||
                      call == static_cast<std::uint64_t>(f.occurrence);
    if (!hits) continue;
    if (f.occurrence != 0) f.spent = true;
    ++impl_->triggers[point];
    return f.action;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::triggered(const std::string& point) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->triggers.find(point);
  return it == impl_->triggers.end() ? 0 : it->second;
}

}  // namespace tensorlib::support
