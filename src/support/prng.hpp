// Deterministic pseudo-random number generation for tests and workload data.
//
// Benchmarks and functional tests need reproducible tensor contents; this
// wraps a SplitMix64/xoshiro-style generator with convenience samplers so
// that every run of the test suite and every bench table is deterministic.
#pragma once

#include <cstdint>
#include <vector>

namespace tensorlib {

/// Small, fast, deterministic PRNG (SplitMix64).
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniformDouble();

  /// Fills a vector with small integers in [-bound, bound], useful as exact
  /// tensor data (sums stay exactly representable in double and int64).
  std::vector<double> smallIntVector(std::size_t n, std::int64_t bound = 8);

 private:
  std::uint64_t state_;
};

}  // namespace tensorlib
