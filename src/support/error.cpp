#include "support/error.hpp"

namespace tensorlib {

void fail(const std::string& message) { throw Error(message); }

void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace tensorlib
