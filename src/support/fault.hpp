// Deterministic fault injection for robustness testing.
//
// Long-running services survive because their failure paths are rehearsed,
// not discovered. The FaultInjector lets tests and the chaos harness arm
// named fault points that production code fires at its failure-prone
// boundaries (snapshot writes, work units); a disarmed injector costs one
// relaxed atomic load per fire, so the hooks stay in release builds.
//
// Fault points currently wired into the library:
//   snapshot_write   in driver/snapshot atomic file write
//                      actions: fail (write reports failure),
//                               corrupt (one payload byte flipped),
//                               truncate (half the file dropped)
//   work_unit        per scheduled evaluation work unit in
//                      ExplorationService::runBatch
//                      actions: sleep (value = milliseconds),
//                               throw (tensorlib::Error),
//                               exit (immediate _Exit(value), simulating a
//                                     crash mid-batch)
//
// Arming is programmatic (arm()) or via the TENSORLIB_FAULTS environment
// variable, read once at first use so spawned child processes inherit
// their faults:
//
//   TENSORLIB_FAULTS="snapshot_write=fail,work_unit=sleep:20@0"
//
// Grammar: comma-separated `point=action[:value][@occurrence]`.
//   value       integer parameter (milliseconds, exit code); default 0.
//   occurrence  1-based call index at which the fault fires once
//               (default 1 = first call); `@0` fires on EVERY call.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace tensorlib::support {

/// The action a fired fault point must carry out.
struct FaultAction {
  std::string action;      ///< "fail", "corrupt", "sleep", "throw", ...
  std::int64_t value = 0;  ///< action parameter (ms, exit code, ...)
};

class FaultInjector {
 public:
  /// Process-wide injector; TENSORLIB_FAULTS is parsed on first call.
  static FaultInjector& instance();

  /// Parses and arms a fault spec (see grammar above). Throws
  /// tensorlib::Error on malformed specs. Arming appends — existing armed
  /// faults stay armed.
  void arm(const std::string& spec);

  /// Clears every armed fault and every call counter.
  void disarm();

  /// Fires a fault point: increments the point's call counter and returns
  /// the armed action whose occurrence matches, if any. One-shot faults
  /// (occurrence >= 1) trigger exactly once; `@0` faults trigger on every
  /// call. Near-free when nothing is armed.
  std::optional<FaultAction> fire(const std::string& point);

  /// How many times `point` has triggered (not merely been called) since
  /// the last disarm().
  std::uint64_t triggered(const std::string& point) const;

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;
  std::atomic<bool> armed_{false};
};

/// Convenience: FaultInjector::instance().fire(point).
inline std::optional<FaultAction> fireFault(const std::string& point) {
  return FaultInjector::instance().fire(point);
}

}  // namespace tensorlib::support
