#include "support/threadpool.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace tensorlib {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stop = false;

  void workerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    impl_->workers.emplace_back([this] { impl_->workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  delete impl_;
}

std::size_t ThreadPool::workerCount() const { return impl_->workers.size(); }

void ThreadPool::enqueue(std::function<void()> task) {
  if (impl_->workers.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->cv.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
  }());
  return pool;
}

namespace {
/// True while this thread is executing a parallelFor body. A nested
/// parallelFor would block its caller on tasks queued behind every other
/// busy worker — a pool-wide deadlock — so nested calls run inline instead.
thread_local bool tInParallelRegion = false;
}  // namespace

void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  parallelForOn(ThreadPool::global(), count, body);
}

void parallelForOn(ThreadPool& pool, std::size_t count,
                   const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t helpers =
      count > 1 && !tInParallelRegion ? std::min(pool.workerCount(), count - 1)
                                      : 0;
  if (helpers == 0) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared dynamic-claim state; the caller participates alongside helpers.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->pending.store(helpers, std::memory_order_relaxed);

  auto drain = [shared, count, &body] {
    const bool wasInRegion = tInParallelRegion;
    tInParallelRegion = true;
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
    }
    tInParallelRegion = wasInRegion;
  };

  for (std::size_t h = 0; h < helpers; ++h) {
    pool.enqueue([shared, drain] {
      drain();
      if (shared->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        shared->done.notify_all();
      }
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock(shared->mutex);
    shared->done.wait(lock, [&] {
      return shared->pending.load(std::memory_order_acquire) == 0;
    });
    if (shared->error) std::rethrow_exception(shared->error);
  }
}

}  // namespace tensorlib
