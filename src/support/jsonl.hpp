// Minimal flat-JSON-object codec for line-oriented tool protocols.
//
// tools/explore_server reads one query per line:
//   {"workload": "gemm", "rows": 8, "objective": "power", "backend": "fpga"}
// This parser covers exactly that shape — one object per line, string /
// number / boolean values, no nesting — and throws tensorlib::Error with
// the offending text for anything else, so batch files fail loudly instead
// of silently dropping fields.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace tensorlib::support {

/// A parsed flat JSON object: field name -> decoded scalar (strings are
/// unescaped; numbers and booleans kept as their source text).
class JsonObject {
 public:
  explicit JsonObject(std::map<std::string, std::string> fields)
      : fields_(std::move(fields)) {}

  bool has(const std::string& key) const { return fields_.count(key) > 0; }
  const std::map<std::string, std::string>& fields() const { return fields_; }

  /// Typed accessors: nullopt when the key is absent; throw on a value of
  /// the wrong shape (e.g. getInt of "abc").
  std::optional<std::string> getString(const std::string& key) const;
  std::optional<std::int64_t> getInt(const std::string& key) const;
  std::optional<double> getDouble(const std::string& key) const;
  std::optional<bool> getBool(const std::string& key) const;

 private:
  std::map<std::string, std::string> fields_;
};

/// Parses one `{...}` line. Throws tensorlib::Error on malformed input,
/// nested values, or duplicate keys.
JsonObject parseJsonLine(const std::string& line);

/// Escapes a string for embedding in emitted JSON (quotes, backslashes,
/// control characters).
std::string jsonEscape(const std::string& s);

}  // namespace tensorlib::support
