// Minimal flat-JSON-object codec for line-oriented tool protocols.
//
// tools/explore_server reads one query per line:
//   {"workload": "gemm", "rows": 8, "objective": "power", "backend": "fpga"}
// This parser covers exactly that shape — one object per line, string /
// number / boolean values, no nesting — and throws tensorlib::Error with
// the offending text for anything else, so batch files fail loudly instead
// of silently dropping fields.
//
// Values carry their parsed KIND (string / number / bool), recorded at
// parse time, and every typed accessor rejects a kind mismatch with the
// offending text: {"rows": "8"} fails getInt("rows") as the wrong kind
// instead of silently satisfying it, and {"deadline_ms": "abc"} fails at
// the accessor that names the field, not at some later use site.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace tensorlib::support {

/// A parsed flat JSON object: field name -> decoded scalar tagged with the
/// value kind seen at parse time (strings are unescaped; numbers and
/// booleans kept as their source text).
class JsonObject {
 public:
  enum class Kind { String, Number, Bool };

  struct Value {
    std::string text;
    Kind kind;
  };

  explicit JsonObject(std::map<std::string, Value> fields)
      : fields_(std::move(fields)) {}

  bool has(const std::string& key) const { return fields_.count(key) > 0; }
  const std::map<std::string, Value>& fields() const { return fields_; }

  /// Typed accessors: nullopt when the key is absent; throw on a kind
  /// mismatch (e.g. getInt of "8"-the-string) or an unrepresentable value
  /// (e.g. getInt of 8.5 or an out-of-range literal). getDouble accepts
  /// values that underflow to zero/subnormal (1e-320 is a legal double)
  /// and only rejects overflow.
  std::optional<std::string> getString(const std::string& key) const;
  std::optional<std::int64_t> getInt(const std::string& key) const;
  std::optional<double> getDouble(const std::string& key) const;
  std::optional<bool> getBool(const std::string& key) const;

 private:
  /// Kind-checked lookup behind every typed accessor: nullptr when absent,
  /// throws when present with a different kind.
  const Value* find(const std::string& key, Kind kind,
                    const char* wanted) const;

  std::map<std::string, Value> fields_;
};

/// "string" / "number" / "boolean".
std::string jsonKindName(JsonObject::Kind kind);

/// Parses one `{...}` line. Throws tensorlib::Error on malformed input,
/// nested values, unsupported literals (including `null`), or duplicate
/// keys.
JsonObject parseJsonLine(const std::string& line);

/// Escapes a string for embedding in emitted JSON (quotes, backslashes,
/// control characters).
std::string jsonEscape(const std::string& s);

}  // namespace tensorlib::support
