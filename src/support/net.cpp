#include "support/net.hpp"

#include <cerrno>
#include <cstring>

extern "C" {
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
}

namespace tensorlib::support::net {

namespace {

bool fillIpv4(const std::string& host, int port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

bool fillUnix(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

int connectTcp(const std::string& host, int port) {
  sockaddr_in addr;
  if (port < 0 || port > 65535 || !fillIpv4(host, port, &addr)) {
    errno = EINVAL;
    return -1;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  // Request/response lines are small; batching them behind Nagle only adds
  // latency.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connectUnix(const std::string& path) {
  sockaddr_un addr;
  if (!fillUnix(path, &addr)) {
    errno = EINVAL;
    return -1;
  }
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int listenTcp(const std::string& host, int port, int backlog, int* boundPort) {
  sockaddr_in addr;
  if (port < 0 || port > 65535 || !fillIpv4(host, port, &addr)) {
    errno = EINVAL;
    return -1;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, backlog) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  if (boundPort != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    *boundPort =
        getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0
            ? ntohs(bound.sin_port)
            : port;
  }
  return fd;
}

int listenUnix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!fillUnix(path, &addr)) {
    errno = EINVAL;
    return -1;
  }
  unlink(path.c_str());  // a stale socket file from a crashed server
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, backlog) != 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

bool sendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    // Pipes reject send(); fall back to write() so the client can use one
    // code path for both transports (its SIGPIPE handling covers this).
    if (n < 0 && errno == ENOTSOCK) n = write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<Line> LineReader::next() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      Line line{buffer_.substr(0, newline), true};
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (eof_) {
      if (buffer_.empty()) return std::nullopt;
      Line line{std::move(buffer_), false};
      buffer_.clear();
      return line;
    }
    char chunk[4096];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // Clean EOF and hard errors (ECONNRESET after a drop) end the stream
    // the same way: whatever is buffered is the partial final line.
    eof_ = true;
  }
}

}  // namespace tensorlib::support::net
