#include "support/jsonl.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace tensorlib::support {

namespace {

void skipSpace(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

[[noreturn]] void bad(const std::string& line, const std::string& why) {
  fail("malformed JSON line (" + why + "): " + line);
}

std::string parseQuoted(const std::string& s, std::size_t& i,
                        const std::string& line) {
  if (i >= s.size() || s[i] != '"') bad(line, "expected string");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) bad(line, "dangling escape");
      const char e = s[i++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: bad(line, std::string("unsupported escape \\") + e);
      }
    } else {
      out += c;
    }
  }
  if (i >= s.size()) bad(line, "unterminated string");
  ++i;  // closing quote
  return out;
}

/// True iff `text` is a complete JSON-shaped number (strtod consumes it
/// all). Range is NOT checked here — the accessors own representability so
/// they can report the field name; parse time only decides the kind. The
/// character screen keeps strtod's extensions (hex, nan, inf) out of the
/// accepted subset.
bool looksNumeric(const std::string& text) {
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '-' && c != '+' &&
        c != '.' && c != 'e' && c != 'E')
      return false;
  }
  char* end = nullptr;
  errno = 0;
  (void)std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

JsonObject::Value parseScalar(const std::string& s, std::size_t& i,
                              const std::string& line) {
  if (i >= s.size()) bad(line, "expected value");
  if (s[i] == '{' || s[i] == '[') bad(line, "nested values unsupported");
  std::string out;
  while (i < s.size() && s[i] != ',' && s[i] != '}' &&
         !std::isspace(static_cast<unsigned char>(s[i])))
    out += s[i++];
  if (out.empty()) bad(line, "expected value");
  if (out == "true" || out == "false")
    return JsonObject::Value{std::move(out), JsonObject::Kind::Bool};
  if (!looksNumeric(out))
    bad(line, "unsupported value '" + out + "'");
  return JsonObject::Value{std::move(out), JsonObject::Kind::Number};
}

}  // namespace

std::string jsonKindName(JsonObject::Kind kind) {
  switch (kind) {
    case JsonObject::Kind::String: return "string";
    case JsonObject::Kind::Number: return "number";
    case JsonObject::Kind::Bool: return "boolean";
  }
  return "unknown";
}

JsonObject parseJsonLine(const std::string& line) {
  std::map<std::string, JsonObject::Value> fields;
  std::size_t i = 0;
  skipSpace(line, i);
  if (i >= line.size() || line[i] != '{') bad(line, "expected '{'");
  ++i;
  skipSpace(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skipSpace(line, i);
      const std::string key = parseQuoted(line, i, line);
      skipSpace(line, i);
      if (i >= line.size() || line[i] != ':') bad(line, "expected ':'");
      ++i;
      skipSpace(line, i);
      JsonObject::Value value =
          line[i] == '"'
              ? JsonObject::Value{parseQuoted(line, i, line),
                                  JsonObject::Kind::String}
              : parseScalar(line, i, line);
      if (!fields.emplace(key, std::move(value)).second)
        bad(line, "duplicate key " + key);
      skipSpace(line, i);
      if (i >= line.size()) bad(line, "expected ',' or '}'");
      if (line[i] == ',') { ++i; continue; }
      if (line[i] == '}') { ++i; break; }
      bad(line, "expected ',' or '}'");
    }
  }
  skipSpace(line, i);
  if (i != line.size()) bad(line, "trailing characters");
  return JsonObject(std::move(fields));
}

const JsonObject::Value* JsonObject::find(const std::string& key, Kind kind,
                                          const char* wanted) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return nullptr;
  if (it->second.kind != kind)
    fail("field '" + key + "' is a " + jsonKindName(it->second.kind) +
         ", not a " + wanted + ": " + it->second.text);
  return &it->second;
}

std::optional<std::string> JsonObject::getString(const std::string& key) const {
  const Value* v = find(key, Kind::String, "string");
  if (v == nullptr) return std::nullopt;
  return v->text;
}

std::optional<std::int64_t> JsonObject::getInt(const std::string& key) const {
  const Value* value = find(key, Kind::Number, "number");
  if (value == nullptr) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value->text.c_str(), &end, 10);
  if (end == value->text.c_str() || *end != '\0' || errno == ERANGE)
    fail("field '" + key + "' is not a representable integer: " + value->text);
  return static_cast<std::int64_t>(v);
}

std::optional<double> JsonObject::getDouble(const std::string& key) const {
  const Value* value = find(key, Kind::Number, "number");
  if (value == nullptr) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value->text.c_str(), &end);
  if (end == value->text.c_str() || *end != '\0')
    fail("field '" + key + "' is not a representable number: " + value->text);
  // ERANGE covers both directions: overflow returns ±HUGE_VAL and is a real
  // loss; underflow returns zero or a subnormal, which IS the nearest
  // representable double for a legal literal like 1e-320 — accept it.
  if (errno == ERANGE && std::fabs(v) == HUGE_VAL)
    fail("field '" + key + "' overflows a double: " + value->text);
  return v;
}

std::optional<bool> JsonObject::getBool(const std::string& key) const {
  const Value* value = find(key, Kind::Bool, "boolean");
  if (value == nullptr) return std::nullopt;
  return value->text == "true";
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tensorlib::support
