#include "support/jsonl.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace tensorlib::support {

namespace {

void skipSpace(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

[[noreturn]] void bad(const std::string& line, const std::string& why) {
  fail("malformed JSON line (" + why + "): " + line);
}

std::string parseQuoted(const std::string& s, std::size_t& i,
                        const std::string& line) {
  if (i >= s.size() || s[i] != '"') bad(line, "expected string");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) bad(line, "dangling escape");
      const char e = s[i++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: bad(line, std::string("unsupported escape \\") + e);
      }
    } else {
      out += c;
    }
  }
  if (i >= s.size()) bad(line, "unterminated string");
  ++i;  // closing quote
  return out;
}

std::string parseScalar(const std::string& s, std::size_t& i,
                        const std::string& line) {
  if (i >= s.size()) bad(line, "expected value");
  if (s[i] == '{' || s[i] == '[') bad(line, "nested values unsupported");
  std::string out;
  while (i < s.size() && s[i] != ',' && s[i] != '}' &&
         !std::isspace(static_cast<unsigned char>(s[i])))
    out += s[i++];
  if (out.empty()) bad(line, "expected value");
  return out;
}

}  // namespace

JsonObject parseJsonLine(const std::string& line) {
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  skipSpace(line, i);
  if (i >= line.size() || line[i] != '{') bad(line, "expected '{'");
  ++i;
  skipSpace(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skipSpace(line, i);
      const std::string key = parseQuoted(line, i, line);
      skipSpace(line, i);
      if (i >= line.size() || line[i] != ':') bad(line, "expected ':'");
      ++i;
      skipSpace(line, i);
      const std::string value = line[i] == '"' ? parseQuoted(line, i, line)
                                               : parseScalar(line, i, line);
      if (!fields.emplace(key, value).second) bad(line, "duplicate key " + key);
      skipSpace(line, i);
      if (i >= line.size()) bad(line, "expected ',' or '}'");
      if (line[i] == ',') { ++i; continue; }
      if (line[i] == '}') { ++i; break; }
      bad(line, "expected ',' or '}'");
    }
  }
  skipSpace(line, i);
  if (i != line.size()) bad(line, "trailing characters");
  return JsonObject(std::move(fields));
}

std::optional<std::string> JsonObject::getString(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> JsonObject::getInt(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE)
    fail("field '" + key + "' is not a representable integer: " + it->second);
  return static_cast<std::int64_t>(v);
}

std::optional<double> JsonObject::getDouble(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0' || errno == ERANGE)
    fail("field '" + key + "' is not a representable number: " + it->second);
  return v;
}

std::optional<bool> JsonObject::getBool(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) return std::nullopt;
  if (it->second == "true") return true;
  if (it->second == "false") return false;
  fail("field '" + key + "' is not a boolean: " + it->second);
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tensorlib::support
