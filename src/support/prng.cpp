#include "support/prng.hpp"

namespace tensorlib {

std::uint64_t Prng::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::int64_t Prng::uniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Prng::uniformDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<double> Prng::smallIntVector(std::size_t n, std::int64_t bound) {
  std::vector<double> v(n);
  for (auto& x : v) x = static_cast<double>(uniformInt(-bound, bound));
  return v;
}

}  // namespace tensorlib
