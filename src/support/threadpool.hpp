// Process-wide worker pool for data-parallel hot paths.
//
// Design-space enumeration analyzes thousands of independent candidate
// transforms; the pool lets those fan out across cores while callers keep
// deterministic output by indexing results (never by completion order).
// The pool is lazily constructed once per process and sized to the
// hardware; on single-core machines parallelFor degrades to an inline loop
// with no thread traffic.
#pragma once

#include <cstddef>
#include <functional>

namespace tensorlib {

class ThreadPool {
 public:
  /// `workers` threads; 0 means run everything inline on the caller.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workerCount() const;

  /// Enqueues a task; it runs on some worker (or inline when workerCount
  /// is 0). Tasks must not throw — wrap exceptions before enqueueing.
  void enqueue(std::function<void()> task);

  /// The shared process-wide pool, sized hardware_concurrency() - 1
  /// (the caller thread participates in parallelFor).
  static ThreadPool& global();

 private:
  struct Impl;
  Impl* impl_;
};

/// Runs body(0..count-1) using the global pool plus the calling thread.
/// Iterations are claimed dynamically; the call returns after ALL
/// iterations finish. The first exception thrown by any iteration is
/// rethrown on the caller. Callers must only write to per-index slots to
/// keep results deterministic. Reentrant calls (parallelFor from inside a
/// body) are safe: they run inline on the calling thread rather than
/// queueing tasks the blocked outer call could deadlock on.
void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body);

/// parallelFor against an explicit pool instead of the process-wide one —
/// the exploration service sizes its own pool so batch results can be
/// checked for determinism at exact worker counts. Same contract as
/// parallelFor (dynamic claiming, indexed slots, first exception rethrown,
/// nested calls run inline).
void parallelForOn(ThreadPool& pool, std::size_t count,
                   const std::function<void(std::size_t)>& body);

}  // namespace tensorlib
