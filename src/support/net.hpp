// Raw-fd networking helpers shared by the socket front-end
// (driver/socket_server.*) and the socket transport of
// driver::ExploreClient.
//
// Everything here works on plain file descriptors and owns the two fiddly
// parts of a line protocol over sockets that stdio used to hide:
//
//   * EINTR / short I/O: sendAll() retries interrupted and partial writes;
//     LineReader retries interrupted reads and reassembles lines across
//     arbitrary read boundaries.
//   * Partial final lines: a peer that dies mid-write leaves a line with
//     no terminating '\n'. LineReader surfaces it with complete = false
//     instead of silently discarding the bytes — the caller decides
//     whether a truncated line is diagnostic text (client side) or a
//     request that must NOT be executed (server side).
//
// Address handling is deliberately minimal: numeric IPv4 addresses only
// (no DNS), plus unix-domain sockets by path.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace tensorlib::support::net {

/// Connects a blocking TCP socket to a numeric IPv4 address. Returns the
/// fd, or -1 (the reason is in errno).
int connectTcp(const std::string& host, int port);

/// Connects a blocking unix-domain stream socket. Returns the fd or -1.
int connectUnix(const std::string& path);

/// Binds + listens on a numeric IPv4 address. `port` 0 picks an ephemeral
/// port; `boundPort`, when non-null, receives the actual one. Returns the
/// listening fd or -1.
int listenTcp(const std::string& host, int port, int backlog, int* boundPort);

/// Binds + listens on a unix-domain path (unlinking any stale socket file
/// first). Returns the listening fd or -1.
int listenUnix(const std::string& path, int backlog);

/// Writes all of `data`, retrying EINTR and short writes. False on any
/// hard error (EPIPE, ECONNRESET, ...).
bool sendAll(int fd, const char* data, std::size_t size);

/// One decoded line from a LineReader. `complete` is false iff EOF (or a
/// hard read error) cut the line off before its '\n'.
struct Line {
  std::string text;
  bool complete = true;
};

/// Buffered '\n'-framed reader over a raw fd. Handles EINTR, short reads,
/// and lines split across reads; does not own or close the fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next line (without its '\n'). nullopt on clean EOF or on an error
  /// with nothing buffered; a trailing unterminated line comes back once
  /// with complete = false before the nullopt.
  std::optional<Line> next();

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

}  // namespace tensorlib::support::net
