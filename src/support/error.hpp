// Error handling utilities shared across TensorLib.
//
// TensorLib is a generator: almost every error is a programming or
// specification error (a singular STT matrix, a malformed access function),
// so we fail fast with an exception type that carries a formatted message.
#pragma once

#include <stdexcept>
#include <string>

namespace tensorlib {

/// Exception thrown for all TensorLib specification / internal errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Throws tensorlib::Error with the given message.
[[noreturn]] void fail(const std::string& message);

/// Checks a precondition; throws Error with context when violated.
void require(bool condition, const std::string& message);

}  // namespace tensorlib

/// Internal invariant check. Unlike assert(), always enabled: a generator
/// that silently emits wrong hardware is worse than one that stops.
#define TL_CHECK(cond, msg) ::tensorlib::require((cond), (msg))
