#include "baselines/baselines.hpp"

namespace tensorlib::baselines {

SystolicOnlyGenerator susy() {
  // Susy (ICCAD'20) programs systolic arrays from an STT-like notation but,
  // like PolySA, is restricted to the systolic/stationary subspace.
  return SystolicOnlyGenerator("Susy", true);
}

}  // namespace tensorlib::baselines
