// Prior-work comparators for Table III and the generality comparison
// (Section VI-C): PolySA (ICCAD'18) and Susy (ICCAD'20).
//
// Both generate systolic arrays only. We model them two ways:
//  1. capability models — which dataflows/algebras each can generate,
//     implemented as restrictions over TensorLib's own design space
//     (systolic/stationary letters only, no multicast/reduction/unicast,
//     no rank-2 reuse); used for design-space-coverage comparisons.
//  2. reported metrics — the published Table III numbers (device, LUT/DSP/
//     BRAM utilization, frequency, Gop/s), carried as literature constants
//     since the closed-source toolchains cannot be rerun here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "stt/spec.hpp"

namespace tensorlib::baselines {

/// Published Table III row.
struct ReportedMetrics {
  std::string generator;
  std::string device;
  std::string workload;  // "MM" or "Conv"
  double lutPct = 0.0, dspPct = 0.0, bramPct = 0.0;
  double frequencyMHz = 0.0;
  double gops = 0.0;
};

/// The paper's Table III constants for PolySA and Susy.
std::vector<ReportedMetrics> reportedBaselineMetrics();

/// Capability model shared by both systolic-only generators.
class SystolicOnlyGenerator {
 public:
  SystolicOnlyGenerator(std::string name, bool supportsConv)
      : name_(std::move(name)), supportsConv_(supportsConv) {}

  const std::string& name() const { return name_; }

  /// True if the generator can realize this dataflow: every tensor must be
  /// systolic or stationary (the classic systolic-array space; no multicast
  /// buses, no reduction trees, no unicast fabrics, no 2-D reuse).
  bool supportsDataflow(const stt::DataflowSpec& spec) const;

  /// True if the generator handles the algebra at all (PolySA/Susy target
  /// GEMM-like kernels and convolution; neither handles depthwise conv
  /// efficiently — the paper's generality argument).
  bool supportsAlgebra(const tensor::TensorAlgebra& algebra) const;

  /// Counts how many of `specs` the generator could have produced.
  std::size_t coverageOf(const std::vector<stt::DataflowSpec>& specs) const;

 private:
  std::string name_;
  bool supportsConv_;
};

SystolicOnlyGenerator polysa();
SystolicOnlyGenerator susy();

}  // namespace tensorlib::baselines
