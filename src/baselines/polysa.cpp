#include "baselines/baselines.hpp"

namespace tensorlib::baselines {

std::vector<ReportedMetrics> reportedBaselineMetrics() {
  // Table III of the paper (Susy on Arria-10, PolySA on VU9P).
  return {
      {"Susy", "Arria-10", "MM", 40.0, 93.0, 32.0, 202.0, 547.0},
      {"Susy", "Arria-10", "Conv", 35.0, 84.0, 30.0, 220.0, 551.0},
      {"PolySA", "VU9P", "MM", 49.0, 89.0, 89.0, 229.0, 555.0},
      {"PolySA", "VU9P", "Conv", 49.0, 89.0, 71.0, 229.0, 548.0},
  };
}

bool SystolicOnlyGenerator::supportsDataflow(const stt::DataflowSpec& spec) const {
  for (const auto& role : spec.tensors()) {
    switch (role.dataflow.dataflowClass) {
      case stt::DataflowClass::Systolic:
      case stt::DataflowClass::Stationary:
        continue;
      default:
        return false;
    }
  }
  return true;
}

bool SystolicOnlyGenerator::supportsAlgebra(
    const tensor::TensorAlgebra& algebra) const {
  if (algebra.name() == "GEMM") return true;
  if (algebra.name() == "Conv2D") return supportsConv_;
  // Depthwise conv, batched GEMV, MTTKRP, TTMc: no pure systolic/stationary
  // mapping keeps the array busy (paper: "they fail to generate hardware for
  // algorithms that don't fit well in systolic architecture").
  return false;
}

std::size_t SystolicOnlyGenerator::coverageOf(
    const std::vector<stt::DataflowSpec>& specs) const {
  std::size_t n = 0;
  for (const auto& s : specs)
    if (supportsDataflow(s)) ++n;
  return n;
}

SystolicOnlyGenerator polysa() { return SystolicOnlyGenerator("PolySA", true); }

}  // namespace tensorlib::baselines
