#include "cost/backend.hpp"

#include <sstream>

namespace tensorlib::cost {

std::string backendKindName(BackendKind kind) {
  return kind == BackendKind::Asic ? "asic" : "fpga";
}

std::optional<BackendKind> parseBackendKind(const std::string& name) {
  if (name == "asic") return BackendKind::Asic;
  if (name == "fpga") return BackendKind::Fpga;
  return std::nullopt;
}

std::string CostReport::str() const { return fpga ? fpga->str() : asic.str(); }

// Base-class block entry points: scalar fallback through set.source, so a
// backend without packed overrides still answers block calls correctly
// (zero slots — the fallback never touches the store).
std::size_t CostBackend::blockSlotCount(const stt::SpecBlockSet&) const {
  return 0;
}

CostBound CostBackend::lowerBoundPartial(const stt::PartialTransform&,
                                         const stt::ArrayConfig&) const {
  // Trivial-but-admissible: every evaluation costs >= 1 cycle and >= 0
  // power/area, and no frontier point strictly dominates all three, so a
  // backend without a real partial bound simply never cuts.
  CostBound b;
  b.cycles = 1.0;
  return b;
}

void CostBackend::lowerBoundBlock(const stt::SpecBlockSet& set,
                                  const std::size_t* indices,
                                  std::size_t count,
                                  const stt::ArrayConfig& array,
                                  CostBound* out) const {
  for (std::size_t n = 0; n < count; ++n)
    out[n] = lowerBound((*set.source)[indices[n]], array);
}

BlockEval CostBackend::evaluateBlock(const stt::SpecBlockSet& set,
                                     std::size_t i,
                                     const stt::ArrayConfig& array,
                                     stt::BlockMappingStore&) const {
  const stt::DataflowSpec& spec = (*set.source)[i];
  BlockEval e;
  e.perf = estimatePerf(spec, array);
  e.cost = evaluate(spec, array);
  return e;
}

namespace {

class AsicBackend final : public CostBackend {
 public:
  AsicBackend(int dataWidth, AsicCostTable table)
      : dataWidth_(dataWidth), table_(table) {}

  BackendKind kind() const override { return BackendKind::Asic; }
  std::string name() const override { return "asic"; }

  std::string cacheKey() const override {
    // Every field of the cost table is fingerprinted: equal keys must mean
    // identical reports, and ablations vary single unit costs.
    std::ostringstream os;
    os << "asic:w" << dataWidth_;
    for (double v :
         {table_.mulAreaPerBit2, table_.addAreaPerBit, table_.regAreaPerBit,
          table_.muxAreaPerBit, table_.ctrlAreaPerPe,
          table_.ctrlAreaStationaryPe, table_.busAreaPerTap,
          table_.memPortArea, table_.peOverheadArea, table_.mulPowerPerBit2,
          table_.addPowerPerBit, table_.regPowerPerBit, table_.muxPowerPerBit,
          table_.ctrlPowerPerPe, table_.ctrlPowerStationaryPe,
          table_.busPowerPerTapBit, table_.memPortPower,
          table_.clockTreePowerPerPe})
      os << ":" << v;
    return os.str();
  }

  CostReport evaluate(const stt::DataflowSpec& spec,
                      const stt::ArrayConfig& array,
                      stt::MappingCache* /*mappings*/) const override {
    CostReport rep;
    rep.asic = estimateAsic(spec, array, dataWidth_, table_);
    rep.figures = rep.asic.figures();
    return rep;
  }

  sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& array,
                               stt::MappingCache* mappings) const override {
    return sim::estimatePerformance(spec, array, mappings);
  }

  CostBound lowerBound(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array) const override {
    // The ASIC area/power model is mapping-free, so the bound's figures are
    // the exact evaluation; only cycles is a (provable) lower bound.
    CostBound b;
    b.cycles = static_cast<double>(sim::cyclesLowerBound(spec, array));
    b.figures = estimateAsic(spec, array, dataWidth_, table_).figures();
    return b;
  }

  CostBound lowerBoundPartial(const stt::PartialTransform& partial,
                              const stt::ArrayConfig& array) const override {
    // Cycles: the partial packed bound equals the packed bound of every
    // completion (the formula never reads the time row). Figures: the
    // class-independent inventory floor — addTensorStructures only
    // increments fields and asicFromInventory is monotone in all of them,
    // so this never exceeds any completion's exact figures.
    CostBound b;
    b.cycles = static_cast<double>(sim::cyclesLowerBound(partial, array));
    b.figures = asicFromInventory(
                    baseStructureInventory(partial.geometry->inputCount, array),
                    dataWidth_, table_)
                    .figures();
    return b;
  }

  // The ASIC array runs as configured: one mapping slot per mapping class.
  std::size_t blockSlotCount(const stt::SpecBlockSet& set) const override {
    return set.mapClassCount;
  }

  void lowerBoundBlock(const stt::SpecBlockSet& set, const std::size_t* indices,
                       std::size_t count, const stt::ArrayConfig& array,
                       CostBound* out) const override {
    for (std::size_t n = 0; n < count; ++n) {
      const std::size_t i = indices[n];
      out[n].cycles = static_cast<double>(sim::cyclesLowerBound(set, i, array));
      out[n].figures =
          asicFromInventory(deriveInventory(set, i, array, dataWidth_),
                            dataWidth_, table_)
              .figures();
    }
  }

  BlockEval evaluateBlock(const stt::SpecBlockSet& set, std::size_t i,
                          const stt::ArrayConfig& array,
                          stt::BlockMappingStore& store) const override {
    BlockEval e;
    const stt::TileMapping& mapping =
        store.get(set, i, array, set.mapClass[i]);
    e.perf = sim::perfFromMapping(mapping, array);
    e.cost.asic =
        asicFromInventory(deriveInventory(set, i, array, dataWidth_),
                          dataWidth_, table_);
    e.cost.figures = e.cost.asic.figures();
    return e;
  }

 private:
  int dataWidth_;
  AsicCostTable table_;
};

class FpgaBackend final : public CostBackend {
 public:
  explicit FpgaBackend(FpgaConfig config) : config_(std::move(config)) {}

  BackendKind kind() const override { return BackendKind::Fpga; }
  std::string name() const override { return "fpga"; }

  std::string cacheKey() const override {
    std::ostringstream os;
    os << "fpga:" << config_.device.name << ":" << config_.device.luts << ":"
       << config_.device.dsps << ":" << config_.device.bram36 << ":"
       << (config_.fp32 ? "fp32" : "int16") << ":v" << config_.vectorLanes
       << (config_.placementOptimized ? ":placed" : "");
    return os.str();
  }

  CostReport evaluate(const stt::DataflowSpec& spec,
                      const stt::ArrayConfig& array,
                      stt::MappingCache* mappings) const override {
    CostReport rep;
    rep.fpga = estimateFpga(spec, array, config_, mappings);
    rep.figures = rep.fpga->figures();
    return rep;
  }

  sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& array,
                               stt::MappingCache* mappings) const override {
    return sim::estimatePerformance(spec, fpgaPerfConfig(spec, array, config_),
                                    mappings);
  }

  CostBound lowerBound(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array) const override {
    // Resources, frequency and power are mapping-free (estimateFpga only
    // needs the mapping for gops), so the figures are exact; cycles is
    // bounded at the FPGA operating point (post-route frequency, real word
    // size) because that is what estimatePerf reports.
    CostBound b;
    b.cycles = static_cast<double>(
        sim::cyclesLowerBound(spec, fpgaPerfConfig(spec, array, config_)));
    b.figures = estimateFpgaResources(spec, array, config_).figures();
    return b;
  }

  CostBound lowerBoundPartial(const stt::PartialTransform& partial,
                              const stt::ArrayConfig& array) const override {
    // A completion's frequency tier depends on class tags that don't exist
    // yet, so price at tier 2 — the lowest post-route frequency, which
    // maximizes wordsPerCycle (smallest admissible cycle bound) and
    // minimizes the frequency-scaled power term; tier frequencies only
    // grow from there (221 < 231 < 263 MHz). Resources use the
    // class-independent inventory floor, monotone under completion.
    CostBound b;
    b.cycles = static_cast<double>(
        sim::cyclesLowerBound(partial, tierPerfConfig(array, 2)));
    const std::int64_t pes = array.rows * array.cols;
    b.figures = fpgaFromInventory(
                    baseStructureInventory(partial.geometry->inputCount, array),
                    fpgaTierFrequencyMHz(2, config_), pes, config_)
                    .figures();
    return b;
  }

  // FPGA performance runs at the tier's post-route frequency and the real
  // word size, so each mapping class fans out over the three tiers.
  std::size_t blockSlotCount(const stt::SpecBlockSet& set) const override {
    return set.mapClassCount * 3;
  }

  void lowerBoundBlock(const stt::SpecBlockSet& set, const std::size_t* indices,
                       std::size_t count, const stt::ArrayConfig& array,
                       CostBound* out) const override {
    const std::int64_t pes = array.rows * array.cols;
    const int w = config_.fp32 ? 32 : 16;
    for (std::size_t n = 0; n < count; ++n) {
      const std::size_t i = indices[n];
      const int tier = fpgaFrequencyTier(set, i);
      out[n].cycles = static_cast<double>(
          sim::cyclesLowerBound(set, i, tierPerfConfig(array, tier)));
      out[n].figures = fpgaFromInventory(deriveInventory(set, i, array, w),
                                         fpgaTierFrequencyMHz(tier, config_),
                                         pes, config_)
                           .figures();
    }
  }

  BlockEval evaluateBlock(const stt::SpecBlockSet& set, std::size_t i,
                          const stt::ArrayConfig& array,
                          stt::BlockMappingStore& store) const override {
    const int tier = fpgaFrequencyTier(set, i);
    const stt::ArrayConfig perfCfg = tierPerfConfig(array, tier);
    BlockEval e;
    const stt::TileMapping& mapping = store.get(
        set, i, perfCfg, set.mapClass[i] * 3 + static_cast<std::size_t>(tier));
    e.perf = sim::perfFromMapping(mapping, perfCfg);
    const std::int64_t pes = array.rows * array.cols;
    const int w = config_.fp32 ? 32 : 16;
    FpgaReport rep =
        fpgaFromInventory(deriveInventory(set, i, array, w),
                          fpgaTierFrequencyMHz(tier, config_), pes, config_);
    const std::int64_t lanes = pes * config_.vectorLanes;
    rep.gops = 2.0 * static_cast<double>(lanes) * rep.frequencyMHz * 1e6 *
               e.perf.utilization / 1e9;
    e.cost.fpga = std::move(rep);
    e.cost.figures = e.cost.fpga->figures();
    return e;
  }

 private:
  /// fpgaPerfConfig factored through the tier (see fpga.hpp).
  stt::ArrayConfig tierPerfConfig(const stt::ArrayConfig& array,
                                  int tier) const {
    stt::ArrayConfig perfCfg = array;
    perfCfg.frequencyMHz = fpgaTierFrequencyMHz(tier, config_);
    perfCfg.dataBytes = config_.fp32 ? 4 : 2;
    return perfCfg;
  }

  FpgaConfig config_;
};

}  // namespace

CostBound boundFigures(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array,
                       const CostBackend& backend) {
  return backend.lowerBound(spec, array);
}

std::shared_ptr<const CostBackend> makeAsicBackend(int dataWidth,
                                                   AsicCostTable table) {
  return std::make_shared<AsicBackend>(dataWidth, table);
}

std::shared_ptr<const CostBackend> makeFpgaBackend(FpgaConfig config) {
  return std::make_shared<FpgaBackend>(std::move(config));
}

}  // namespace tensorlib::cost
