#include "cost/backend.hpp"

#include <sstream>

namespace tensorlib::cost {

std::string backendKindName(BackendKind kind) {
  return kind == BackendKind::Asic ? "asic" : "fpga";
}

std::optional<BackendKind> parseBackendKind(const std::string& name) {
  if (name == "asic") return BackendKind::Asic;
  if (name == "fpga") return BackendKind::Fpga;
  return std::nullopt;
}

std::string CostReport::str() const { return fpga ? fpga->str() : asic.str(); }

namespace {

class AsicBackend final : public CostBackend {
 public:
  AsicBackend(int dataWidth, AsicCostTable table)
      : dataWidth_(dataWidth), table_(table) {}

  BackendKind kind() const override { return BackendKind::Asic; }
  std::string name() const override { return "asic"; }

  std::string cacheKey() const override {
    // Every field of the cost table is fingerprinted: equal keys must mean
    // identical reports, and ablations vary single unit costs.
    std::ostringstream os;
    os << "asic:w" << dataWidth_;
    for (double v :
         {table_.mulAreaPerBit2, table_.addAreaPerBit, table_.regAreaPerBit,
          table_.muxAreaPerBit, table_.ctrlAreaPerPe,
          table_.ctrlAreaStationaryPe, table_.busAreaPerTap,
          table_.memPortArea, table_.peOverheadArea, table_.mulPowerPerBit2,
          table_.addPowerPerBit, table_.regPowerPerBit, table_.muxPowerPerBit,
          table_.ctrlPowerPerPe, table_.ctrlPowerStationaryPe,
          table_.busPowerPerTapBit, table_.memPortPower,
          table_.clockTreePowerPerPe})
      os << ":" << v;
    return os.str();
  }

  CostReport evaluate(const stt::DataflowSpec& spec,
                      const stt::ArrayConfig& array,
                      stt::MappingCache* /*mappings*/) const override {
    CostReport rep;
    rep.asic = estimateAsic(spec, array, dataWidth_, table_);
    rep.figures = rep.asic.figures();
    return rep;
  }

  sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& array,
                               stt::MappingCache* mappings) const override {
    return sim::estimatePerformance(spec, array, mappings);
  }

  CostBound lowerBound(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array) const override {
    // The ASIC area/power model is mapping-free, so the bound's figures are
    // the exact evaluation; only cycles is a (provable) lower bound.
    CostBound b;
    b.cycles = static_cast<double>(sim::cyclesLowerBound(spec, array));
    b.figures = estimateAsic(spec, array, dataWidth_, table_).figures();
    return b;
  }

 private:
  int dataWidth_;
  AsicCostTable table_;
};

class FpgaBackend final : public CostBackend {
 public:
  explicit FpgaBackend(FpgaConfig config) : config_(std::move(config)) {}

  BackendKind kind() const override { return BackendKind::Fpga; }
  std::string name() const override { return "fpga"; }

  std::string cacheKey() const override {
    std::ostringstream os;
    os << "fpga:" << config_.device.name << ":" << config_.device.luts << ":"
       << config_.device.dsps << ":" << config_.device.bram36 << ":"
       << (config_.fp32 ? "fp32" : "int16") << ":v" << config_.vectorLanes
       << (config_.placementOptimized ? ":placed" : "");
    return os.str();
  }

  CostReport evaluate(const stt::DataflowSpec& spec,
                      const stt::ArrayConfig& array,
                      stt::MappingCache* mappings) const override {
    CostReport rep;
    rep.fpga = estimateFpga(spec, array, config_, mappings);
    rep.figures = rep.fpga->figures();
    return rep;
  }

  sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& array,
                               stt::MappingCache* mappings) const override {
    return sim::estimatePerformance(spec, fpgaPerfConfig(spec, array, config_),
                                    mappings);
  }

  CostBound lowerBound(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array) const override {
    // Resources, frequency and power are mapping-free (estimateFpga only
    // needs the mapping for gops), so the figures are exact; cycles is
    // bounded at the FPGA operating point (post-route frequency, real word
    // size) because that is what estimatePerf reports.
    CostBound b;
    b.cycles = static_cast<double>(
        sim::cyclesLowerBound(spec, fpgaPerfConfig(spec, array, config_)));
    b.figures = estimateFpgaResources(spec, array, config_).figures();
    return b;
  }

 private:
  FpgaConfig config_;
};

}  // namespace

CostBound boundFigures(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array,
                       const CostBackend& backend) {
  return backend.lowerBound(spec, array);
}

std::shared_ptr<const CostBackend> makeAsicBackend(int dataWidth,
                                                   AsicCostTable table) {
  return std::make_shared<AsicBackend>(dataWidth, table);
}

std::shared_ptr<const CostBackend> makeFpgaBackend(FpgaConfig config) {
  return std::make_shared<FpgaBackend>(std::move(config));
}

}  // namespace tensorlib::cost
