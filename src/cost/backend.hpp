// Pluggable cost backends: one objective surface over the ASIC model
// (Fig. 6 / Synopsys-DC role) and the FPGA model (Table III / Vivado role).
//
// The exploration service evaluates every design point through a
// CostBackend, so a query selects its implementation target the same way it
// selects an objective; both backends report CostFigures (power mW + an
// area axis) and keep their full native report alongside. Backends are
// stateless and cheap to construct; cacheKey() makes evaluations from
// differently-configured backends distinguishable in the cross-query cache.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cost/fpga.hpp"
#include "sim/perf.hpp"

namespace tensorlib::cost {

enum class BackendKind { Asic, Fpga };

/// "asic" / "fpga" (the names accepted by tools and batch files).
std::string backendKindName(BackendKind kind);
/// Parses "asic"/"fpga"; nullopt for anything else.
std::optional<BackendKind> parseBackendKind(const std::string& name);

/// One evaluated cost: the backend-neutral figures plus whichever native
/// report the backend produced.
struct CostReport {
  CostFigures figures;
  AsicReport asic;                 ///< populated when kind == Asic
  std::optional<FpgaReport> fpga;  ///< populated when kind == Fpga
  std::string str() const;
};

/// Provable lower bound on one design point's Pareto axes, computable
/// without the tile-mapping search: `figures` (power, area) derive from the
/// structural inventory alone and are exact; `cycles` is the perf model's
/// cyclesLowerBound at this backend's operating point. If an incumbent
/// frontier point strictly dominates (cycles, powerMw, area), the true
/// evaluation is guaranteed to be dominated too, so the full evaluation can
/// be skipped without changing the frontier.
struct CostBound {
  double cycles = 0.0;
  CostFigures figures;
};

class CostBackend {
 public:
  virtual ~CostBackend() = default;
  virtual BackendKind kind() const = 0;
  virtual std::string name() const = 0;
  /// Distinguishes evaluations in the cross-query cache: two backends with
  /// the same cacheKey must produce identical reports for every spec.
  virtual std::string cacheKey() const = 0;
  /// `mappings`, when non-null, memoizes the tile-mapping searches behind
  /// the estimate; results are bit-identical with or without it.
  virtual CostReport evaluate(const stt::DataflowSpec& spec,
                              const stt::ArrayConfig& array,
                              stt::MappingCache* mappings = nullptr) const = 0;
  /// Performance of `spec` under this backend's operating point — the ASIC
  /// backend runs the array as configured; the FPGA backend models the
  /// achieved post-route frequency and the datapath's word size, so
  /// cycles/utilization on a frontier always match the cost model beside
  /// them.
  virtual sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                                       const stt::ArrayConfig& array,
                                       stt::MappingCache* mappings = nullptr) const = 0;
  /// Cheap provable lower bound on what evaluate/estimatePerf would report
  /// (see CostBound). Never exceeds the true figures in any axis.
  virtual CostBound lowerBound(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& array) const = 0;
};

/// Free-function face of CostBackend::lowerBound: provable lower bounds on
/// (cycles, power, area) for `spec` on `array` priced by `backend`.
CostBound boundFigures(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array,
                       const CostBackend& backend);

std::shared_ptr<const CostBackend> makeAsicBackend(int dataWidth = 16,
                                                   AsicCostTable table = {});
std::shared_ptr<const CostBackend> makeFpgaBackend(FpgaConfig config = {});

}  // namespace tensorlib::cost
