// Pluggable cost backends: one objective surface over the ASIC model
// (Fig. 6 / Synopsys-DC role) and the FPGA model (Table III / Vivado role).
//
// The exploration service evaluates every design point through a
// CostBackend, so a query selects its implementation target the same way it
// selects an objective; both backends report CostFigures (power mW + an
// area axis) and keep their full native report alongside. Backends are
// stateless and cheap to construct; cacheKey() makes evaluations from
// differently-configured backends distinguishable in the cross-query cache.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cost/fpga.hpp"
#include "sim/perf.hpp"

namespace tensorlib::cost {

enum class BackendKind { Asic, Fpga };

/// "asic" / "fpga" (the names accepted by tools and batch files).
std::string backendKindName(BackendKind kind);
/// Parses "asic"/"fpga"; nullopt for anything else.
std::optional<BackendKind> parseBackendKind(const std::string& name);

/// One evaluated cost: the backend-neutral figures plus whichever native
/// report the backend produced.
struct CostReport {
  CostFigures figures;
  AsicReport asic;                 ///< populated when kind == Asic
  std::optional<FpgaReport> fpga;  ///< populated when kind == Fpga
  std::string str() const;
};

/// Provable lower bound on one design point's Pareto axes, computable
/// without the tile-mapping search: `figures` (power, area) derive from the
/// structural inventory alone and are exact; `cycles` is the perf model's
/// cyclesLowerBound at this backend's operating point. If an incumbent
/// frontier point strictly dominates (cycles, powerMw, area), the true
/// evaluation is guaranteed to be dominated too, so the full evaluation can
/// be skipped without changing the frontier.
struct CostBound {
  double cycles = 0.0;
  CostFigures figures;
};

/// One block-path evaluation: exactly what estimatePerf + evaluate would
/// have produced for the same spec (the scalar/block equivalence contract —
/// see docs/ARCHITECTURE.md and tests/block_eval_test.cpp).
struct BlockEval {
  sim::PerfResult perf;
  CostReport cost;
};

class CostBackend {
 public:
  virtual ~CostBackend() = default;
  virtual BackendKind kind() const = 0;
  virtual std::string name() const = 0;
  /// Distinguishes evaluations in the cross-query cache: two backends with
  /// the same cacheKey must produce identical reports for every spec.
  virtual std::string cacheKey() const = 0;
  /// `mappings`, when non-null, memoizes the tile-mapping searches behind
  /// the estimate; results are bit-identical with or without it.
  virtual CostReport evaluate(const stt::DataflowSpec& spec,
                              const stt::ArrayConfig& array,
                              stt::MappingCache* mappings = nullptr) const = 0;
  /// Performance of `spec` under this backend's operating point — the ASIC
  /// backend runs the array as configured; the FPGA backend models the
  /// achieved post-route frequency and the datapath's word size, so
  /// cycles/utilization on a frontier always match the cost model beside
  /// them.
  virtual sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                                       const stt::ArrayConfig& array,
                                       stt::MappingCache* mappings = nullptr) const = 0;
  /// Cheap provable lower bound on what evaluate/estimatePerf would report
  /// (see CostBound). Never exceeds the true figures in any axis.
  virtual CostBound lowerBound(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& array) const = 0;

  /// Lower bound over EVERY full-rank completion of a partial transform
  /// (both space rows placed, time row free): for any completion c,
  /// lowerBoundPartial(p) <= lowerBound(c) <= true figures, in every axis.
  /// This is the bound-first enumeration's subtree cut predicate — it runs
  /// before a DataflowSpec or SpecContext exists. The base implementation
  /// returns the trivial bound (1 cycle, zero figures), which no incumbent
  /// can strictly dominate, so custom backends stay correct without
  /// opting in (they just never cut).
  virtual CostBound lowerBoundPartial(const stt::PartialTransform& partial,
                                      const stt::ArrayConfig& array) const;

  // ---- block-shaped entry points -------------------------------------
  // The struct-of-arrays siblings of lowerBound/estimatePerf/evaluate:
  // same results bit for bit, but reading packed SpecBlockSet arrays in
  // tight loops with no per-candidate allocation, and sharing one tile
  // search per mapping class through a BlockMappingStore. The base class
  // falls back to the scalar path, so custom backends stay correct
  // without opting in.

  /// Mapping-store slots a block evaluation of `set` needs (mapping
  /// classes times this backend's operating-point fan-out).
  virtual std::size_t blockSlotCount(const stt::SpecBlockSet& set) const;

  /// Lower bounds for `count` packed candidates (indices into `set`),
  /// written to out[0..count): each equals lowerBound on the same spec.
  virtual void lowerBoundBlock(const stt::SpecBlockSet& set,
                               const std::size_t* indices, std::size_t count,
                               const stt::ArrayConfig& array,
                               CostBound* out) const;

  /// Full evaluation of packed candidate `i`, memoizing its tile search in
  /// `store`; equals {estimatePerf(spec, array), evaluate(spec, array)}.
  virtual BlockEval evaluateBlock(const stt::SpecBlockSet& set, std::size_t i,
                                  const stt::ArrayConfig& array,
                                  stt::BlockMappingStore& store) const;
};

/// Free-function face of CostBackend::lowerBound: provable lower bounds on
/// (cycles, power, area) for `spec` on `array` priced by `backend`.
CostBound boundFigures(const stt::DataflowSpec& spec,
                       const stt::ArrayConfig& array,
                       const CostBackend& backend);

std::shared_ptr<const CostBackend> makeAsicBackend(int dataWidth = 16,
                                                   AsicCostTable table = {});
std::shared_ptr<const CostBackend> makeFpgaBackend(FpgaConfig config = {});

}  // namespace tensorlib::cost
