// Pluggable cost backends: one objective surface over the ASIC model
// (Fig. 6 / Synopsys-DC role) and the FPGA model (Table III / Vivado role).
//
// The exploration service evaluates every design point through a
// CostBackend, so a query selects its implementation target the same way it
// selects an objective; both backends report CostFigures (power mW + an
// area axis) and keep their full native report alongside. Backends are
// stateless and cheap to construct; cacheKey() makes evaluations from
// differently-configured backends distinguishable in the cross-query cache.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cost/fpga.hpp"
#include "sim/perf.hpp"

namespace tensorlib::cost {

enum class BackendKind { Asic, Fpga };

/// "asic" / "fpga" (the names accepted by tools and batch files).
std::string backendKindName(BackendKind kind);
/// Parses "asic"/"fpga"; nullopt for anything else.
std::optional<BackendKind> parseBackendKind(const std::string& name);

/// One evaluated cost: the backend-neutral figures plus whichever native
/// report the backend produced.
struct CostReport {
  CostFigures figures;
  AsicReport asic;                 ///< populated when kind == Asic
  std::optional<FpgaReport> fpga;  ///< populated when kind == Fpga
  std::string str() const;
};

class CostBackend {
 public:
  virtual ~CostBackend() = default;
  virtual BackendKind kind() const = 0;
  virtual std::string name() const = 0;
  /// Distinguishes evaluations in the cross-query cache: two backends with
  /// the same cacheKey must produce identical reports for every spec.
  virtual std::string cacheKey() const = 0;
  virtual CostReport evaluate(const stt::DataflowSpec& spec,
                              const stt::ArrayConfig& array) const = 0;
  /// Performance of `spec` under this backend's operating point — the ASIC
  /// backend runs the array as configured; the FPGA backend models the
  /// achieved post-route frequency and the datapath's word size, so
  /// cycles/utilization on a frontier always match the cost model beside
  /// them.
  virtual sim::PerfResult estimatePerf(const stt::DataflowSpec& spec,
                                       const stt::ArrayConfig& array) const = 0;
};

std::shared_ptr<const CostBackend> makeAsicBackend(int dataWidth = 16,
                                                   AsicCostTable table = {});
std::shared_ptr<const CostBackend> makeFpgaBackend(FpgaConfig config = {});

}  // namespace tensorlib::cost
