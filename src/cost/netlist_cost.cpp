#include "cost/netlist_cost.hpp"

namespace tensorlib::cost {

NetlistAsicReport priceNetlist(const hwir::Netlist& netlist,
                               const AsicCostTable& t) {
  NetlistAsicReport rep;
  double areaUm2 = 0.0;
  double mw = 0.0;
  for (const auto& node : netlist.nodes()) {
    const double w = node.width;
    switch (node.op) {
      case hwir::Op::Mul:
        ++rep.multipliers;
        areaUm2 += t.mulAreaPerBit2 * w * w;
        mw += t.mulPowerPerBit2 * w * w;
        break;
      case hwir::Op::Add:
      case hwir::Op::Sub:
        ++rep.adders;
        areaUm2 += t.addAreaPerBit * w;
        mw += t.addPowerPerBit * w;
        break;
      case hwir::Op::Reg:
        rep.regBits += node.width;
        areaUm2 += t.regAreaPerBit * w;
        mw += t.regPowerPerBit * w;
        break;
      case hwir::Op::Mux:
        ++rep.muxes;
        areaUm2 += t.muxAreaPerBit * w;
        mw += t.muxPowerPerBit * w;
        break;
      case hwir::Op::Eq:
      case hwir::Op::Lt:
      case hwir::Op::And:
      case hwir::Op::Or:
      case hwir::Op::Not:
        ++rep.gateOps;
        // Comparator/logic fabric: priced like a narrow adder.
        areaUm2 += t.addAreaPerBit * w * 0.5;
        mw += t.addPowerPerBit * w * 0.5;
        break;
      case hwir::Op::Input:
      case hwir::Op::Output:
      case hwir::Op::Const:
        break;
    }
  }
  rep.areaMm2 = areaUm2 / 1e6;
  rep.powerMw = mw;
  return rep;
}

}  // namespace tensorlib::cost
