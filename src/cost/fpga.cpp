#include "cost/fpga.hpp"

#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace tensorlib::cost {

namespace {

/// Per-MAC-lane primitive costs (Xilinx UltraScale+ class).
struct LaneCosts {
  std::int64_t dsp;
  std::int64_t lut;
};

LaneCosts laneCosts(bool fp32) {
  // FP32: mul = 3 DSP + wrapper LUTs, add = 1 DSP + alignment logic —
  // 4 DSP/lane total, matching the paper's 75% DSP at 1280 lanes on VU9P.
  if (fp32) return {4, 520};
  return {1, 90};  // INT16 MAC packs into one DSP48
}

bool hasClass(const stt::DataflowSpec& spec, stt::DataflowClass cls) {
  for (const auto& t : spec.tensors())
    if (t.dataflow.dataflowClass == cls) return true;
  return false;
}

}  // namespace

std::string FpgaReport::str() const {
  std::ostringstream os;
  os << "LUT " << luts << " (" << lutPct << "%), DSP " << dsps << " ("
     << dspPct << "%), BRAM " << bram << " (" << bramPct << "%), "
     << frequencyMHz << " MHz, " << gops << " Gop/s";
  return os.str();
}

FpgaReport estimateFpga(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& arrayConfig,
                        const FpgaConfig& cfg) {
  FpgaReport rep;
  const std::int64_t pes = arrayConfig.rows * arrayConfig.cols;
  const std::int64_t lanes = pes * cfg.vectorLanes;
  const LaneCosts lane = laneCosts(cfg.fp32);
  const int w = cfg.fp32 ? 32 : 16;

  const StructureInventory inv = deriveInventory(spec, arrayConfig, w);

  rep.dsps = lanes * lane.dsp;
  // LUTs: MAC wrappers + movement structures + per-PE control + platform.
  rep.luts = lanes * lane.lut + inv.dataRegBits / 2 + inv.muxes * w +
             inv.busTaps * 8 + pes * 480 + inv.memPorts * 700 + 48000;

  // BRAM: double-buffered global tile buffers (dominant; sized to keep the
  // array busy across off-chip tiles) + per-port distributed banks.
  const double bufferBitsPerPe = 30.0 * 8192.0;  // ~30 KB/PE, double-buffered
  const double bankBits = static_cast<double>(inv.memPorts) * 4096.0 * w;
  rep.bram = static_cast<std::int64_t>(
      std::ceil((pes * bufferBitsPerPe + bankBits) / 36864.0));

  // Frequency: systolic arrays close timing highest (neighbor-only wires);
  // multicast broadcast nets and unicast port fabrics cost routing slack.
  double freq = 263.0;
  if (hasClass(spec, stt::DataflowClass::Multicast) ||
      hasClass(spec, stt::DataflowClass::Broadcast2D) ||
      hasClass(spec, stt::DataflowClass::MulticastStationary))
    freq = 231.0;
  if (hasClass(spec, stt::DataflowClass::Unicast)) freq = std::min(freq, 221.0);
  if (cfg.placementOptimized) freq *= 1.247;  // AutoBridge-style floorplan
  rep.frequencyMHz = freq;

  // Throughput: lanes * utilization at the achieved frequency.
  stt::ArrayConfig perfCfg = arrayConfig;
  perfCfg.frequencyMHz = freq;
  const sim::PerfResult perf = sim::estimatePerformance(spec, perfCfg);
  rep.gops = 2.0 * static_cast<double>(lanes) * freq * 1e6 * perf.utilization / 1e9;

  rep.lutPct = 100.0 * static_cast<double>(rep.luts) /
               static_cast<double>(cfg.device.luts);
  rep.dspPct = 100.0 * static_cast<double>(rep.dsps) /
               static_cast<double>(cfg.device.dsps);
  rep.bramPct = 100.0 * static_cast<double>(rep.bram) /
                static_cast<double>(cfg.device.bram36);
  return rep;
}

}  // namespace tensorlib::cost
