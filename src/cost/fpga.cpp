#include "cost/fpga.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace tensorlib::cost {

namespace {

/// Per-MAC-lane primitive costs (Xilinx UltraScale+ class).
struct LaneCosts {
  std::int64_t dsp;
  std::int64_t lut;
};

LaneCosts laneCosts(bool fp32) {
  // FP32: mul = 3 DSP + wrapper LUTs, add = 1 DSP + alignment logic —
  // 4 DSP/lane total, matching the paper's 75% DSP at 1280 lanes on VU9P.
  if (fp32) return {4, 520};
  return {1, 90};  // INT16 MAC packs into one DSP48
}

bool hasClass(const stt::DataflowSpec& spec, stt::DataflowClass cls) {
  for (const auto& t : spec.tensors())
    if (t.dataflow.dataflowClass == cls) return true;
  return false;
}

}  // namespace

double fpgaTierFrequencyMHz(int tier, const FpgaConfig& cfg) {
  double freq = tier == 2 ? 221.0 : tier == 1 ? 231.0 : 263.0;
  if (cfg.placementOptimized) freq *= 1.247;  // AutoBridge-style floorplan
  return freq;
}

double fpgaFrequencyMHz(const stt::DataflowSpec& spec, const FpgaConfig& cfg) {
  // Systolic arrays close timing highest (neighbor-only wires); multicast
  // broadcast nets and unicast port fabrics cost routing slack. The unicast
  // tier wins over the broadcast tier because 221 < 231.
  int tier = 0;
  if (hasClass(spec, stt::DataflowClass::Multicast) ||
      hasClass(spec, stt::DataflowClass::Broadcast2D) ||
      hasClass(spec, stt::DataflowClass::MulticastStationary))
    tier = 1;
  if (hasClass(spec, stt::DataflowClass::Unicast)) tier = 2;
  return fpgaTierFrequencyMHz(tier, cfg);
}

int fpgaFrequencyTier(const stt::SpecBlockSet& set, std::size_t i) {
  int tier = 0;
  for (std::size_t k = 0; k < set.tensorsPerSpec; ++k) {
    const auto cls =
        static_cast<stt::DataflowClass>(set.classTag[set.tensorIndex(i, k)]);
    if (cls == stt::DataflowClass::Unicast) return 2;
    if (cls == stt::DataflowClass::Multicast ||
        cls == stt::DataflowClass::Broadcast2D ||
        cls == stt::DataflowClass::MulticastStationary)
      tier = 1;
  }
  return tier;
}

stt::ArrayConfig fpgaPerfConfig(const stt::DataflowSpec& spec,
                                const stt::ArrayConfig& arrayConfig,
                                const FpgaConfig& cfg) {
  stt::ArrayConfig perfCfg = arrayConfig;
  perfCfg.frequencyMHz = fpgaFrequencyMHz(spec, cfg);
  perfCfg.dataBytes = cfg.fp32 ? 4 : 2;
  return perfCfg;
}

double FpgaReport::utilizationFraction() const {
  return std::max(lutPct, std::max(dspPct, bramPct)) / 100.0;
}

std::string FpgaReport::str() const {
  std::ostringstream os;
  os << "LUT " << luts << " (" << lutPct << "%), DSP " << dsps << " ("
     << dspPct << "%), BRAM " << bram << " (" << bramPct << "%), "
     << frequencyMHz << " MHz, " << gops << " Gop/s, " << powerMw << " mW";
  return os.str();
}

FpgaReport fpgaFromInventory(const StructureInventory& inv,
                             double frequencyMHz, std::int64_t pes,
                             const FpgaConfig& cfg) {
  FpgaReport rep;
  const std::int64_t lanes = pes * cfg.vectorLanes;
  const LaneCosts lane = laneCosts(cfg.fp32);
  const int w = cfg.fp32 ? 32 : 16;
  rep.inventory = inv;

  rep.dsps = lanes * lane.dsp;
  // LUTs: MAC wrappers + movement structures + per-PE control + platform.
  rep.luts = lanes * lane.lut + inv.dataRegBits / 2 + inv.muxes * w +
             inv.busTaps * 8 + pes * 480 + inv.memPorts * 700 + 48000;

  // BRAM: double-buffered global tile buffers (dominant; sized to keep the
  // array busy across off-chip tiles) + per-port distributed banks.
  const double bufferBitsPerPe = 30.0 * 8192.0;  // ~30 KB/PE, double-buffered
  const double bankBits = static_cast<double>(inv.memPorts) * 4096.0 * w;
  rep.bram = static_cast<std::int64_t>(
      std::ceil((pes * bufferBitsPerPe + bankBits) / 36864.0));

  rep.frequencyMHz = frequencyMHz;

  // Power: activity-weighted dynamic contribution per resource at the
  // achieved frequency (UltraScale+-class: DSP columns dominate, LUT power
  // is mostly routing, BRAM ports toggle every cycle) plus the device's
  // static floor. Lands a Table-III-scale design (~5k DSP, ~800k LUT,
  // ~1.1k BRAM at 263 MHz) near 20 W, the regime Vivado reports for VU9P
  // accelerators of that size.
  const double dynUwPerMHz = static_cast<double>(rep.dsps) * 2.2 +
                             static_cast<double>(rep.luts) * 0.055 +
                             static_cast<double>(rep.bram) * 7.5;
  const double staticMw = 3200.0;
  rep.powerMw = dynUwPerMHz * frequencyMHz * 1e-3 + staticMw;

  rep.lutPct = 100.0 * static_cast<double>(rep.luts) /
               static_cast<double>(cfg.device.luts);
  rep.dspPct = 100.0 * static_cast<double>(rep.dsps) /
               static_cast<double>(cfg.device.dsps);
  rep.bramPct = 100.0 * static_cast<double>(rep.bram) /
                static_cast<double>(cfg.device.bram36);
  return rep;
}

FpgaReport estimateFpgaResources(const stt::DataflowSpec& spec,
                                 const stt::ArrayConfig& arrayConfig,
                                 const FpgaConfig& cfg) {
  const int w = cfg.fp32 ? 32 : 16;
  const std::int64_t pes = arrayConfig.rows * arrayConfig.cols;
  return fpgaFromInventory(deriveInventory(spec, arrayConfig, w),
                           fpgaFrequencyMHz(spec, cfg), pes, cfg);
}

FpgaReport estimateFpga(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& arrayConfig,
                        const FpgaConfig& cfg, stt::MappingCache* mappings) {
  FpgaReport rep = estimateFpgaResources(spec, arrayConfig, cfg);

  // Throughput: lanes * utilization at the achieved frequency and the
  // datapath's real word size (see fpgaPerfConfig).
  const std::int64_t lanes = arrayConfig.rows * arrayConfig.cols * cfg.vectorLanes;
  const sim::PerfResult perf = sim::estimatePerformance(
      spec, fpgaPerfConfig(spec, arrayConfig, cfg), mappings);
  rep.gops = 2.0 * static_cast<double>(lanes) * rep.frequencyMHz * 1e6 *
             perf.utilization / 1e9;
  return rep;
}

}  // namespace tensorlib::cost
