// FPGA resource / frequency / throughput model (the Vivado role for
// Table III).
//
// Targets the paper's board, a Xilinx VU9P (1182k LUTs, 6840 DSPs, 2160
// BRAM36). Resource counts derive from the same structural inventory as the
// ASIC model plus a floating-point unit cost table; frequency comes from a
// simple interconnect-style model with the paper's AutoBridge-style
// placement optimization as an opt-in (+25% on systolic designs, §VI-C).
#pragma once

#include <string>

#include "cost/asic.hpp"
#include "sim/perf.hpp"

namespace tensorlib::cost {

struct FpgaDevice {
  std::string name = "VU9P";
  std::int64_t luts = 1182000;
  std::int64_t dsps = 6840;
  std::int64_t bram36 = 2160;
};

struct FpgaConfig {
  FpgaDevice device;
  bool fp32 = true;       ///< FP32 datapath (Table III) vs INT16
  std::int64_t vectorLanes = 8;  ///< per-PE SIMD vectorization (paper: 8)
  bool placementOptimized = false;  ///< AutoBridge-style floorplanning
};

struct FpgaReport {
  std::int64_t luts = 0;
  std::int64_t dsps = 0;
  std::int64_t bram = 0;
  double lutPct = 0.0, dspPct = 0.0, bramPct = 0.0;
  double frequencyMHz = 0.0;
  double gops = 0.0;  ///< 2 * MACs/s at achieved frequency and utilization
  /// Activity-weighted dynamic power at the achieved frequency plus the
  /// device static floor — same axis (mW) as AsicReport::powerMw so the
  /// two backends present one objective surface.
  double powerMw = 0.0;
  /// The structural inventory the resource counts were derived from
  /// (mirrors AsicReport::inventory).
  StructureInventory inventory;
  /// Fraction of the limiting device resource consumed (0..1); the FPGA
  /// "area" axis for objectives and Pareto frontiers.
  double utilizationFraction() const;
  CostFigures figures() const { return {powerMw, utilizationFraction()}; }
  std::string str() const;
};

/// Post-route clock the interconnect model predicts for `spec` under `cfg`
/// (systolic designs close timing highest; broadcast nets and unicast
/// fabrics cost routing slack; placement optimization lifts the result).
double fpgaFrequencyMHz(const stt::DataflowSpec& spec, const FpgaConfig& cfg);

/// The interconnect model's frequency tiers, exposed for the block path:
/// tier 0 = neighbor-only wiring (263 MHz), 1 = broadcast nets (231),
/// 2 = unicast port fabric (221). fpgaFrequencyMHz(spec, cfg) ==
/// fpgaTierFrequencyMHz(fpgaFrequencyTier(...), cfg) by construction.
int fpgaFrequencyTier(const stt::SpecBlockSet& set, std::size_t i);
double fpgaTierFrequencyMHz(int tier, const FpgaConfig& cfg);

/// The array configuration FPGA performance must be modeled at: the caller's
/// geometry/bandwidth with the frequency forced to fpgaFrequencyMHz and the
/// word size forced to match the fp32 flag (a stale INT16 dataBytes would
/// double the deliverable words/cycle for FP32 designs).
stt::ArrayConfig fpgaPerfConfig(const stt::DataflowSpec& spec,
                                const stt::ArrayConfig& arrayConfig,
                                const FpgaConfig& cfg);

/// The mapping-free part of the estimate: resources, frequency and power
/// derive from the structural inventory alone, so this costs microseconds
/// and is exact — it is what the exploration service's lower-bound pruning
/// pass prices. `gops` is left at 0 (it needs the performance model).
FpgaReport estimateFpgaResources(const stt::DataflowSpec& spec,
                                 const stt::ArrayConfig& arrayConfig,
                                 const FpgaConfig& cfg);

/// Prices an already-derived inventory at an already-decided frequency —
/// the single arithmetic core behind estimateFpgaResources and the block
/// evaluation path (`gops` is left at 0, exactly as estimateFpgaResources
/// leaves it). `pes` is the physical array size rows * cols.
FpgaReport fpgaFromInventory(const StructureInventory& inventory,
                             double frequencyMHz, std::int64_t pes,
                             const FpgaConfig& cfg);

/// Estimates the FPGA implementation of `spec` mapped on `arrayConfig`
/// (rows x cols PEs, each with cfg.vectorLanes MAC lanes) running the
/// spec's own workload for utilization. `mappings` optionally memoizes the
/// tile-mapping search behind the throughput model.
FpgaReport estimateFpga(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& arrayConfig,
                        const FpgaConfig& cfg,
                        stt::MappingCache* mappings = nullptr);

}  // namespace tensorlib::cost
