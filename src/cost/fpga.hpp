// FPGA resource / frequency / throughput model (the Vivado role for
// Table III).
//
// Targets the paper's board, a Xilinx VU9P (1182k LUTs, 6840 DSPs, 2160
// BRAM36). Resource counts derive from the same structural inventory as the
// ASIC model plus a floating-point unit cost table; frequency comes from a
// simple interconnect-style model with the paper's AutoBridge-style
// placement optimization as an opt-in (+25% on systolic designs, §VI-C).
#pragma once

#include <string>

#include "cost/asic.hpp"
#include "sim/perf.hpp"

namespace tensorlib::cost {

struct FpgaDevice {
  std::string name = "VU9P";
  std::int64_t luts = 1182000;
  std::int64_t dsps = 6840;
  std::int64_t bram36 = 2160;
};

struct FpgaConfig {
  FpgaDevice device;
  bool fp32 = true;       ///< FP32 datapath (Table III) vs INT16
  std::int64_t vectorLanes = 8;  ///< per-PE SIMD vectorization (paper: 8)
  bool placementOptimized = false;  ///< AutoBridge-style floorplanning
};

struct FpgaReport {
  std::int64_t luts = 0;
  std::int64_t dsps = 0;
  std::int64_t bram = 0;
  double lutPct = 0.0, dspPct = 0.0, bramPct = 0.0;
  double frequencyMHz = 0.0;
  double gops = 0.0;  ///< 2 * MACs/s at achieved frequency and utilization
  std::string str() const;
};

/// Estimates the FPGA implementation of `spec` mapped on `arrayConfig`
/// (rows x cols PEs, each with cfg.vectorLanes MAC lanes) running the
/// spec's own workload for utilization.
FpgaReport estimateFpga(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& arrayConfig,
                        const FpgaConfig& cfg);

}  // namespace tensorlib::cost
