// ASIC area/power model (the Synopsys-DC role for Fig. 6).
//
// The model prices the *structure* the generator would emit: multipliers,
// accumulation adders, pipeline/double-buffer registers, injection muxes,
// multicast bus wiring (length x fanout), reduction-tree adders and
// per-PE control — derived analytically from the dataflow spec (and
// cross-checked against generated netlist inventories in tests). Unit
// costs are 55nm-class constants calibrated so a 16x16 INT16 GEMM design
// space lands in the paper's reported ranges (area 0.75-0.88 mm², power
// 35-63 mW @ 320 MHz); what matters for Fig. 6 is the *relative* cost of
// dataflow choices, which comes from real structural differences.
#pragma once

#include <cstdint>
#include <string>

#include "stt/block.hpp"
#include "stt/mapping.hpp"

namespace tensorlib::cost {

/// Structural inventory of one generated design on a rows x cols array.
struct StructureInventory {
  std::int64_t pes = 0;
  std::int64_t multipliers = 0;     ///< (inputs-1) per PE
  std::int64_t accumAdders = 0;     ///< stationary/systolic output adders
  std::int64_t treeAdders = 0;      ///< reduction-tree adders
  std::int64_t dataRegBits = 0;     ///< pipeline + double-buffer + psum regs
  std::int64_t muxes = 0;           ///< injection / drain / swap muxes
  std::int64_t busLines = 0;        ///< multicast/broadcast bus count
  std::int64_t busTaps = 0;         ///< total PE taps on buses
  std::int64_t memPorts = 0;        ///< parallel scratchpad ports
  std::int64_t stationaryPes = 0;   ///< PEs holding stationary data (control)
  std::int64_t unicastPorts = 0;    ///< per-PE private memory ports
};

/// Derives the inventory from the dataflow classes (Fig. 3 templates).
StructureInventory deriveInventory(const stt::DataflowSpec& spec,
                                   const stt::ArrayConfig& config,
                                   int dataWidth);

/// Packed overload: the same per-class template arithmetic over
/// SpecBlockSet slot `i` (class tags, |direction|, |lattice dt|), touching
/// no DataflowSpec — bit-identical to the scalar overload by tests.
StructureInventory deriveInventory(const stt::SpecBlockSet& set, std::size_t i,
                                   const stt::ArrayConfig& config,
                                   int dataWidth);

/// The class-independent floor of deriveInventory: PEs and multipliers,
/// which every design on the array pays before any per-tensor structure is
/// added. addTensorStructures only ever *increments* inventory fields, so
/// pricing this base is a provable lower bound on the figures of every
/// spec of the (algebra, array) pair — the partial-transform cost floor of
/// the bound-first enumeration.
StructureInventory baseStructureInventory(std::size_t inputCount,
                                          const stt::ArrayConfig& config);

/// 55nm-class unit costs. Defaults are the calibrated values used by the
/// Fig. 6 bench; exposed so ablations can vary them.
struct AsicCostTable {
  // area, um^2
  double mulAreaPerBit2 = 5.2;     ///< multiplier ~ k * w^2
  double addAreaPerBit = 14.0;
  double regAreaPerBit = 6.0;
  double muxAreaPerBit = 5.0;
  double ctrlAreaPerPe = 180.0;
  double ctrlAreaStationaryPe = 200.0;  ///< extra for double-buffer control
  double busAreaPerTap = 36.0;
  double memPortArea = 350.0;
  double peOverheadArea = 320.0;  ///< local routing/clocking per PE
  // power, mW at 320 MHz (switching-activity-weighted)
  double mulPowerPerBit2 = 3.4e-4;
  double addPowerPerBit = 6.5e-4;
  double regPowerPerBit = 3.5e-4;
  double muxPowerPerBit = 1.2e-4;
  double ctrlPowerPerPe = 8.0e-3;
  double ctrlPowerStationaryPe = 1.4e-2;
  double busPowerPerTapBit = 2.0e-3;  ///< long-wire broadcast toggling
  double memPortPower = 4.2e-2;       ///< bank port incl. addressing
  double clockTreePowerPerPe = 1.1e-2;
};

/// Backend-neutral cost figures shared by the ASIC and FPGA reports — the
/// two axes objectives and Pareto frontiers optimize besides cycles. `area`
/// is mm² for ASIC and device-resource fraction (0..1 of the limiting
/// resource) for FPGA; within one query the backend is fixed, so the
/// frontier never mixes units.
struct CostFigures {
  double powerMw = 0.0;
  double area = 0.0;
};

struct AsicReport {
  double areaMm2 = 0.0;
  double powerMw = 0.0;
  StructureInventory inventory;
  CostFigures figures() const { return {powerMw, areaMm2}; }
  std::string str() const;
};

/// Full ASIC estimate of a design point (Fig. 6 axes).
AsicReport estimateAsic(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& config, int dataWidth,
                        const AsicCostTable& table = {});

/// Prices an already-derived inventory — the single arithmetic core behind
/// estimateAsic and the block evaluation path, so the two agree bit for
/// bit by construction.
AsicReport asicFromInventory(StructureInventory inventory, int dataWidth,
                             const AsicCostTable& table = {});

}  // namespace tensorlib::cost
