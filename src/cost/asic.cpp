#include "cost/asic.hpp"

#include <cmath>
#include <sstream>

#include "arch/memory.hpp"
#include "support/error.hpp"

namespace tensorlib::cost {

namespace {

/// Lines along a spatial direction covering a rows x cols grid.
std::int64_t lineCountAbs(std::int64_t d1, std::int64_t d2, std::int64_t rows,
                          std::int64_t cols) {
  if (d1 == 0) return rows;
  if (d2 == 0) return cols;
  return rows * d2 + cols * d1 - d1 * d2;
}

std::int64_t lineCount(const linalg::IntVector& dir, std::int64_t rows,
                       std::int64_t cols) {
  return lineCountAbs(std::abs(dir[0]), std::abs(dir[1]), rows, cols);
}

/// Adds one tensor's movement structures to the inventory — the per-class
/// template arithmetic shared by the scalar and packed derivations.
/// `dirLines` is the line count of the tensor's reuse direction (rank-1
/// classes); `dt` the |lattice time stride| (Systolic only).
void addTensorStructures(StructureInventory& inv, stt::DataflowClass cls,
                         bool isOut, std::int64_t dirLines, std::int64_t dt,
                         const stt::ArrayConfig& config, std::int64_t w) {
  using stt::DataflowClass;
  switch (cls) {
    case DataflowClass::Systolic: {
      const std::int64_t heads = dirLines;
      // Module (a)/(b): dt-deep data (+1-bit valid) pipeline per hop; the
      // chain heads consume ports, interior PEs the registers. The output
      // variant also owns the accumulation adder per PE.
      inv.dataRegBits += (inv.pes - heads) * dt * (w + 1);
      if (isOut) inv.accumAdders += inv.pes;
      inv.muxes += heads;  // injection muxes at chain heads
      inv.memPorts += heads;
      break;
    }
    case DataflowClass::Stationary: {
      // Module (c)/(d): double buffer per PE.
      inv.dataRegBits += inv.pes * 2 * w;
      inv.muxes += inv.pes;  // swap / drain-shift muxing
      inv.stationaryPes += inv.pes;
      if (isOut) inv.accumAdders += inv.pes;
      inv.memPorts += config.rows;  // row load/drain buses
      break;
    }
    case DataflowClass::Multicast: {
      const std::int64_t lines = dirLines;
      inv.memPorts += lines;
      if (isOut) {
        // Reduction tree (Fig. 4(d)): local adder wiring, not a broadcast
        // net — the paper observes trees are cheap relative to multicast.
        inv.treeAdders += inv.pes - lines;
        inv.dataRegBits += lines * 2 * w;  // widened tree root registers
      } else {
        inv.busLines += lines;
        inv.busTaps += inv.pes;
      }
      break;
    }
    case DataflowClass::Unicast: {
      inv.unicastPorts += inv.pes;
      inv.memPorts += inv.pes;
      if (isOut) inv.dataRegBits += inv.pes * w;  // output registers
      break;
    }
    case DataflowClass::Broadcast2D: {
      inv.busLines += 1;
      inv.busTaps += inv.pes;
      inv.memPorts += 1;
      if (isOut) inv.treeAdders += inv.pes - 1;
      break;
    }
    case DataflowClass::MulticastStationary: {
      // Broadcast into stationary registers: bus + double buffer.
      const std::int64_t lines = std::max(config.rows, config.cols);
      inv.busLines += lines;
      inv.busTaps += inv.pes;
      inv.dataRegBits += inv.pes * 2 * w;
      inv.stationaryPes += inv.pes;
      inv.memPorts += lines;
      if (isOut) inv.accumAdders += inv.pes;
      break;
    }
    case DataflowClass::SystolicMulticast: {
      // Broadcast into a line of registers, then systolic traversal.
      const std::int64_t lines = std::max(config.rows, config.cols);
      inv.busLines += lines;
      inv.busTaps += inv.pes;
      inv.dataRegBits += inv.pes * (w + 1);
      inv.memPorts += lines;
      if (isOut) inv.accumAdders += inv.pes;
      break;
    }
    case DataflowClass::FullReuse: {
      inv.busLines += 1;
      inv.busTaps += inv.pes;
      inv.memPorts += 1;
      break;
    }
  }
}

StructureInventory baseInventory(std::size_t inputCount,
                                 const stt::ArrayConfig& config) {
  StructureInventory inv;
  inv.pes = config.rows * config.cols;
  // A k-input product needs k-1 multipliers per PE (at least one).
  const std::int64_t mulsPerPe = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(inputCount) - 1);
  inv.multipliers = inv.pes * mulsPerPe;
  return inv;
}

}  // namespace

StructureInventory baseStructureInventory(std::size_t inputCount,
                                          const stt::ArrayConfig& config) {
  return baseInventory(inputCount, config);
}

StructureInventory deriveInventory(const stt::DataflowSpec& spec,
                                   const stt::ArrayConfig& config,
                                   int dataWidth) {
  using stt::DataflowClass;
  StructureInventory inv = baseInventory(spec.algebra().inputs().size(), config);
  const std::int64_t w = dataWidth;
  for (const auto& role : spec.tensors()) {
    const auto& df = role.dataflow;
    const bool rank1 = df.dataflowClass == DataflowClass::Systolic ||
                       df.dataflowClass == DataflowClass::Multicast;
    const std::int64_t dirLines =
        rank1 ? lineCount(df.direction, config.rows, config.cols) : 0;
    const std::int64_t dt = df.dataflowClass == DataflowClass::Systolic
                                ? std::abs(df.latticeBasis.at(2, 0))
                                : 0;
    addTensorStructures(inv, df.dataflowClass, role.isOutput, dirLines, dt,
                        config, w);
  }
  return inv;
}

StructureInventory deriveInventory(const stt::SpecBlockSet& set, std::size_t i,
                                   const stt::ArrayConfig& config,
                                   int dataWidth) {
  using stt::DataflowClass;
  StructureInventory inv = baseInventory(set.inputCount, config);
  const std::int64_t w = dataWidth;
  for (std::size_t k = 0; k < set.tensorsPerSpec; ++k) {
    const std::size_t ti = set.tensorIndex(i, k);
    const auto cls = static_cast<DataflowClass>(set.classTag[ti]);
    const bool rank1 =
        cls == DataflowClass::Systolic || cls == DataflowClass::Multicast;
    const std::int64_t dirLines =
        rank1 ? lineCountAbs(set.absDir[ti * 2 + 0], set.absDir[ti * 2 + 1],
                             config.rows, config.cols)
              : 0;
    addTensorStructures(inv, cls, set.tensorIsOutput[k] != 0, dirLines,
                        set.systolicDt[ti], config, w);
  }
  return inv;
}

std::string AsicReport::str() const {
  std::ostringstream os;
  os << "area=" << areaMm2 << "mm2 power=" << powerMw << "mW (pes="
     << inventory.pes << ", regBits=" << inventory.dataRegBits
     << ", busTaps=" << inventory.busTaps << ", treeAdders="
     << inventory.treeAdders << ")";
  return os.str();
}

AsicReport asicFromInventory(StructureInventory inventory, int dataWidth,
                             const AsicCostTable& t) {
  AsicReport rep;
  rep.inventory = inventory;
  const auto& inv = rep.inventory;
  const double w = dataWidth;
  const double accW = 2.0 * w;  // widened accumulators

  double areaUm2 = 0.0;
  areaUm2 += inv.multipliers * t.mulAreaPerBit2 * w * w;
  areaUm2 += inv.accumAdders * t.addAreaPerBit * accW;
  areaUm2 += inv.treeAdders * t.addAreaPerBit * accW;
  areaUm2 += inv.dataRegBits * t.regAreaPerBit;
  areaUm2 += inv.muxes * t.muxAreaPerBit * w;
  areaUm2 += inv.pes * t.ctrlAreaPerPe + inv.stationaryPes * t.ctrlAreaStationaryPe;
  areaUm2 += inv.busTaps * t.busAreaPerTap;
  areaUm2 += inv.memPorts * t.memPortArea;
  areaUm2 += inv.pes * t.peOverheadArea;
  rep.areaMm2 = areaUm2 / 1e6;

  double mw = 0.0;
  mw += inv.multipliers * t.mulPowerPerBit2 * w * w;
  mw += inv.accumAdders * t.addPowerPerBit * accW;
  mw += inv.treeAdders * t.addPowerPerBit * accW;
  mw += inv.dataRegBits * t.regPowerPerBit;
  mw += inv.muxes * t.muxPowerPerBit * w;
  mw += inv.pes * t.ctrlPowerPerPe + inv.stationaryPes * t.ctrlPowerStationaryPe;
  mw += inv.busTaps * w * t.busPowerPerTapBit;
  mw += inv.memPorts * t.memPortPower;
  mw += inv.pes * t.clockTreePowerPerPe;
  rep.powerMw = mw;
  return rep;
}

AsicReport estimateAsic(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& config, int dataWidth,
                        const AsicCostTable& t) {
  return asicFromInventory(deriveInventory(spec, config, dataWidth), dataWidth,
                           t);
}

}  // namespace tensorlib::cost
