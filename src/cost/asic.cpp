#include "cost/asic.hpp"

#include <cmath>
#include <sstream>

#include "arch/memory.hpp"
#include "support/error.hpp"

namespace tensorlib::cost {

namespace {

/// Lines along a spatial direction covering a rows x cols grid.
std::int64_t lineCount(const linalg::IntVector& dir, std::int64_t rows,
                       std::int64_t cols) {
  const std::int64_t d1 = std::abs(dir[0]);
  const std::int64_t d2 = std::abs(dir[1]);
  if (d1 == 0) return rows;
  if (d2 == 0) return cols;
  return rows * d2 + cols * d1 - d1 * d2;
}

}  // namespace

StructureInventory deriveInventory(const stt::DataflowSpec& spec,
                                   const stt::ArrayConfig& config,
                                   int dataWidth) {
  using stt::DataflowClass;
  StructureInventory inv;
  inv.pes = config.rows * config.cols;
  // A k-input product needs k-1 multipliers per PE (at least one).
  const std::int64_t mulsPerPe = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(spec.algebra().inputs().size()) - 1);
  inv.multipliers = inv.pes * mulsPerPe;

  const std::int64_t w = dataWidth;

  for (const auto& role : spec.tensors()) {
    const auto& df = role.dataflow;
    const bool isOut = role.isOutput;
    switch (df.dataflowClass) {
      case DataflowClass::Systolic: {
        const std::int64_t dt = std::abs(df.latticeBasis.at(2, 0));
        const std::int64_t heads = lineCount(df.direction, config.rows, config.cols);
        // Module (a)/(b): dt-deep data (+1-bit valid) pipeline per hop; the
        // chain heads consume ports, interior PEs the registers. The output
        // variant also owns the accumulation adder per PE.
        inv.dataRegBits += (inv.pes - heads) * dt * (w + 1);
        if (isOut) inv.accumAdders += inv.pes;
        inv.muxes += heads;  // injection muxes at chain heads
        inv.memPorts += heads;
        break;
      }
      case DataflowClass::Stationary: {
        // Module (c)/(d): double buffer per PE.
        inv.dataRegBits += inv.pes * 2 * w;
        inv.muxes += inv.pes;  // swap / drain-shift muxing
        inv.stationaryPes += inv.pes;
        if (isOut) inv.accumAdders += inv.pes;
        inv.memPorts += config.rows;  // row load/drain buses
        break;
      }
      case DataflowClass::Multicast: {
        const std::int64_t lines =
            lineCount(df.direction, config.rows, config.cols);
        inv.memPorts += lines;
        if (isOut) {
          // Reduction tree (Fig. 4(d)): local adder wiring, not a broadcast
          // net — the paper observes trees are cheap relative to multicast.
          inv.treeAdders += inv.pes - lines;
          inv.dataRegBits += lines * 2 * w;  // widened tree root registers
        } else {
          inv.busLines += lines;
          inv.busTaps += inv.pes;
        }
        break;
      }
      case DataflowClass::Unicast: {
        inv.unicastPorts += inv.pes;
        inv.memPorts += inv.pes;
        if (isOut) inv.dataRegBits += inv.pes * w;  // output registers
        break;
      }
      case DataflowClass::Broadcast2D: {
        inv.busLines += 1;
        inv.busTaps += inv.pes;
        inv.memPorts += 1;
        if (isOut) inv.treeAdders += inv.pes - 1;
        break;
      }
      case DataflowClass::MulticastStationary: {
        // Broadcast into stationary registers: bus + double buffer.
        const std::int64_t lines = std::max(config.rows, config.cols);
        inv.busLines += lines;
        inv.busTaps += inv.pes;
        inv.dataRegBits += inv.pes * 2 * w;
        inv.stationaryPes += inv.pes;
        inv.memPorts += lines;
        if (isOut) inv.accumAdders += inv.pes;
        break;
      }
      case DataflowClass::SystolicMulticast: {
        // Broadcast into a line of registers, then systolic traversal.
        const std::int64_t lines = std::max(config.rows, config.cols);
        inv.busLines += lines;
        inv.busTaps += inv.pes;
        inv.dataRegBits += inv.pes * (w + 1);
        inv.memPorts += lines;
        if (isOut) inv.accumAdders += inv.pes;
        break;
      }
      case DataflowClass::FullReuse: {
        inv.busLines += 1;
        inv.busTaps += inv.pes;
        inv.memPorts += 1;
        break;
      }
    }
  }
  return inv;
}

std::string AsicReport::str() const {
  std::ostringstream os;
  os << "area=" << areaMm2 << "mm2 power=" << powerMw << "mW (pes="
     << inventory.pes << ", regBits=" << inventory.dataRegBits
     << ", busTaps=" << inventory.busTaps << ", treeAdders="
     << inventory.treeAdders << ")";
  return os.str();
}

AsicReport estimateAsic(const stt::DataflowSpec& spec,
                        const stt::ArrayConfig& config, int dataWidth,
                        const AsicCostTable& t) {
  AsicReport rep;
  rep.inventory = deriveInventory(spec, config, dataWidth);
  const auto& inv = rep.inventory;
  const double w = dataWidth;
  const double accW = 2.0 * w;  // widened accumulators

  double areaUm2 = 0.0;
  areaUm2 += inv.multipliers * t.mulAreaPerBit2 * w * w;
  areaUm2 += inv.accumAdders * t.addAreaPerBit * accW;
  areaUm2 += inv.treeAdders * t.addAreaPerBit * accW;
  areaUm2 += inv.dataRegBits * t.regAreaPerBit;
  areaUm2 += inv.muxes * t.muxAreaPerBit * w;
  areaUm2 += inv.pes * t.ctrlAreaPerPe + inv.stationaryPes * t.ctrlAreaStationaryPe;
  areaUm2 += inv.busTaps * t.busAreaPerTap;
  areaUm2 += inv.memPorts * t.memPortArea;
  areaUm2 += inv.pes * t.peOverheadArea;
  rep.areaMm2 = areaUm2 / 1e6;

  double mw = 0.0;
  mw += inv.multipliers * t.mulPowerPerBit2 * w * w;
  mw += inv.accumAdders * t.addPowerPerBit * accW;
  mw += inv.treeAdders * t.addPowerPerBit * accW;
  mw += inv.dataRegBits * t.regPowerPerBit;
  mw += inv.muxes * t.muxPowerPerBit * w;
  mw += inv.pes * t.ctrlPowerPerPe + inv.stationaryPes * t.ctrlPowerStationaryPe;
  mw += inv.busTaps * w * t.busPowerPerTapBit;
  mw += inv.memPorts * t.memPortPower;
  mw += inv.pes * t.clockTreePowerPerPe;
  rep.powerMw = mw;
  return rep;
}

}  // namespace tensorlib::cost
