// Netlist-derived ASIC pricing: an independent cross-check of the analytic
// structural inventory. Where deriveInventory() predicts what the generator
// *will* build, this walks what it *did* build (the hwir netlist) and
// prices the primitives directly. The two disagree only on structures the
// netlist doesn't carry (bus wire length, bank internals), which tests
// bound explicitly.
#pragma once

#include "cost/asic.hpp"
#include "hwir/module.hpp"

namespace tensorlib::cost {

struct NetlistAsicReport {
  double areaMm2 = 0.0;
  double powerMw = 0.0;
  std::int64_t multipliers = 0;
  std::int64_t adders = 0;
  std::int64_t muxes = 0;
  std::int64_t regBits = 0;
  std::int64_t gateOps = 0;  ///< comparators / logic (controller fabric)
};

/// Prices a generated netlist with the same unit-cost table as the
/// analytic model (datapath primitives only; no bus/bank terms).
NetlistAsicReport priceNetlist(const hwir::Netlist& netlist,
                               const AsicCostTable& table = {});

}  // namespace tensorlib::cost
