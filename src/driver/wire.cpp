#include "driver/wire.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "stt/enumerate.hpp"
#include "support/error.hpp"
#include "tensor/network.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::driver::wire {

namespace {

Objective requireObjective(const std::string& name) {
  const auto o = parseObjective(name);
  if (!o)
    fail("unknown objective '" + name +
         "' (expected performance|power|energy-delay)");
  return *o;
}

/// Applies the array fields every request kind shares.
void parseArrayFields(const support::JsonObject& obj, stt::ArrayConfig* array) {
  if (const auto v = obj.getInt("rows")) array->rows = *v;
  if (const auto v = obj.getInt("cols")) array->cols = *v;
  if (const auto v = obj.getDouble("bandwidth_gbps")) array->bandwidthGBps = *v;
  if (const auto v = obj.getDouble("frequency_mhz")) array->frequencyMHz = *v;
  if (const auto v = obj.getInt("data_bytes")) array->dataBytes = *v;
}

ExploreQuery parseQuery(const support::JsonObject& obj) {
  const auto workload = obj.getString("workload");
  if (!workload) fail("query missing required field 'workload'");

  tensor::TensorAlgebra algebra = [&] {
    if (*workload == "gemm" && (obj.has("m") || obj.has("n") || obj.has("k")))
      return tensor::workloads::gemm(obj.getInt("m").value_or(64),
                                     obj.getInt("n").value_or(64),
                                     obj.getInt("k").value_or(64));
    const auto* named = tensor::workloads::findWorkload(*workload);
    if (!named)
      fail("unknown workload '" + *workload + "' (try --list-workloads)");
    return named->algebra;
  }();

  ExploreQuery q(std::move(algebra));
  if (const auto* named = tensor::workloads::findWorkload(*workload))
    q.enumeration.dropAllUnicast = !named->allowAllUnicast;

  if (const auto v = obj.getString("objective"))
    q.objective = requireObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  parseArrayFields(obj, &q.array);
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getInt("deadline_ms")) q.deadlineMs = *v;
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

NetworkQuery parseNetworkQuery(const support::JsonObject& obj) {
  tensor::NetworkSpec network = [&] {
    if (const auto name = obj.getString("network")) {
      const auto* builtin = tensor::workloads::findNetwork(*name);
      if (!builtin)
        fail("unknown network '" + *name +
             "' (see network_explorer --list-models)");
      return *builtin;
    }
    const auto file = obj.getString("network_file");
    if (!file) fail("network request needs 'network' or 'network_file'");
    return tensor::workloads::loadNetworkJsonl(*file);
  }();

  NetworkQuery q(std::move(network));
  stt::ArrayConfig base;
  parseArrayFields(obj, &base);
  if (const auto v = obj.getString("arrays"))
    q.arrays = parseArrayList(*v, base);
  else
    q.arrays = {base};
  if (const auto v = obj.getString("objective"))
    q.objective = requireObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

/// Fills the ModelConformance fields of `request` from the line. The target
/// network comes from "model_conformance" (a builtin name) or, when that
/// field is `true`, from the usual "network" / "network_file" fields.
void parseModelConformance(const support::JsonObject& obj, Request* request) {
  request->kind = Request::Kind::ModelConformance;
  const auto name = obj.getString("model_conformance");
  if (name) {
    const auto* builtin = tensor::workloads::findNetwork(*name);
    if (!builtin)
      fail("unknown model '" + *name +
           "' (see network_explorer --list-models)");
    request->model = *builtin;
  } else if (const auto file = obj.getString("network_file")) {
    request->model = tensor::workloads::loadNetworkJsonl(*file);
  } else if (const auto net = obj.getString("network")) {
    const auto* builtin = tensor::workloads::findNetwork(*net);
    if (!builtin)
      fail("unknown network '" + *net +
           "' (see network_explorer --list-models)");
    request->model = *builtin;
  } else {
    fail("model_conformance request needs a model name, 'network', or "
         "'network_file'");
  }
  request->name = request->model->name();

  auto& o = request->modelOptions;
  parseArrayFields(obj, &o.array);
  if (const auto v = obj.getInt("data_seed"))
    o.dataSeed = static_cast<std::uint64_t>(*v);
  if (const auto v = obj.getInt("threads"))
    o.threads = static_cast<std::size_t>(std::max<std::int64_t>(1, *v));
  if (const auto v = obj.getInt("data_width"))
    o.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    o.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getBool("tamper_rtl_tape")) o.tamperRtlTape = *v;
  if (const auto v = obj.getBool("also_legacy")) o.alsoLegacy = *v;
}

void appendNetworkDesign(std::ostringstream& os, const NetworkQuery& q,
                         const NetworkDesign& d) {
  const auto& array = q.arrays[d.arrayIndex];
  os << "{\"array\": \"" << array.rows << "x" << array.cols
     << "\", \"cycles\": " << d.cost.cycles << ", \"power_mw\": "
     << d.cost.powerMw << ", \"area\": " << d.cost.area
     << ", \"utilization\": " << d.cost.utilization << ", \"assignments\": [";
  for (std::size_t l = 0; l < d.layers.size(); ++l) {
    const auto& layer = d.layers[l];
    os << (l ? ", " : "") << "{\"layer\": \""
       << support::jsonEscape(layer.layer) << "\", \"dataflow\": \""
       << support::jsonEscape(layer.dataflow) << "\", \"cycles\": "
       << layer.cycles << "}";
  }
  os << "]}";
}

}  // namespace

Request parseRequest(const support::JsonObject& obj) {
  Request request;
  if (obj.getBool("shutdown").value_or(false)) {
    request.kind = Request::Kind::Shutdown;
    return request;
  }
  if (obj.getBool("cache_stats").value_or(false)) {
    request.kind = Request::Kind::CacheStats;
    return request;
  }
  request.client = obj.getString("client").value_or("default");
  if (obj.has("model_conformance")) {
    parseModelConformance(obj, &request);
    return request;
  }
  if (obj.has("network") || obj.has("network_file")) {
    request.kind = Request::Kind::Network;
    request.network = parseNetworkQuery(obj);
    request.name = request.network->network.name();
    return request;
  }
  request.kind = Request::Kind::Query;
  request.query = parseQuery(obj);
  request.name = *obj.getString("workload");
  return request;
}

std::string errorLine(std::size_t index, const std::string& message) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"error\": \""
     << support::jsonEscape(message) << "\"}";
  return os.str();
}

std::string resultLine(std::size_t index, const std::string& workload,
                       const std::string& backend, const std::string& objective,
                       const QueryResult& r, std::size_t maxFrontier) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"workload\": \""
     << support::jsonEscape(workload) << "\", \"backend\": \"" << backend
     << "\", \"objective\": \"" << objective << "\", \"designs\": " << r.designs
     << ", \"frontier_size\": " << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& rep = r.frontier[i];
    const auto f = rep.figures();
    os << (i ? ", " : "") << "{\"label\": \""
       << support::jsonEscape(rep.spec.label()) << "\", \"cycles\": "
       << rep.perf.totalCycles << ", \"power_mw\": " << f.powerMw
       << ", \"area\": " << f.area << ", \"utilization\": "
       << rep.perf.utilization << "}";
  }
  os << "]";
  if (r.best)
    os << ", \"best\": \"" << support::jsonEscape(r.best->spec.label()) << "\"";
  if (r.timedOut) os << ", \"timed_out\": true";
  os << ", \"cache\": {\"hits\": " << r.cache.hits << ", \"misses\": "
     << r.cache.misses << ", \"pruned\": " << r.cache.pruned
     << ", \"skipped\": " << r.cache.skipped << "}}";
  return os.str();
}

std::string networkResultLine(std::size_t index, const std::string& name,
                              const NetworkQuery& q, const NetworkResult& r,
                              std::size_t maxFrontier) {
  QueryCacheCounts cache;
  for (const auto& s : r.layers) {
    cache.hits += s.cache.hits;
    cache.misses += s.cache.misses;
    cache.pruned += s.cache.pruned;
  }
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"network\": \""
     << support::jsonEscape(name) << "\", \"layers\": "
     << q.network.layerCount() << ", \"arrays\": " << q.arrays.size()
     << ", \"backend\": \"" << cost::backendKindName(q.backend)
     << "\", \"objective\": \"" << objectiveName(q.objective)
     << "\", \"designs\": " << r.designs << ", \"frontier_size\": "
     << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) os << ", ";
    appendNetworkDesign(os, q, r.frontier[i]);
  }
  os << "]";
  if (r.best) {
    os << ", \"best\": ";
    appendNetworkDesign(os, q, *r.best);
  }
  os << ", \"cache\": {\"hits\": " << cache.hits << ", \"misses\": "
     << cache.misses << ", \"pruned\": " << cache.pruned << "}}";
  return os.str();
}

std::string modelConformanceResultLine(
    std::size_t index, const verify::ModelConformanceReport& report) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"model_conformance\": \""
     << support::jsonEscape(report.model) << "\", \"pass\": "
     << (report.pass() ? "true" : "false") << ", \"layers\": "
     << report.picks.size() << ", \"data_seed\": " << report.dataSeed
     << ", \"threads\": " << report.threads;
  if (report.error.empty()) {
    os << ", \"cycles\": " << report.cyclesRun << ", \"stall_slots\": "
       << report.stallSlots << ", \"buffer_capacities\": [";
    for (std::size_t i = 0; i < report.bufferCapacities.size(); ++i)
      os << (i ? ", " : "") << report.bufferCapacities[i];
    os << "], \"assignments\": [";
    for (std::size_t i = 0; i < report.picks.size(); ++i) {
      const auto& pick = report.picks[i];
      os << (i ? ", " : "") << "{\"layer\": \""
         << support::jsonEscape(pick.layer) << "\", \"dataflow\": \""
         << support::jsonEscape(pick.used) << "\"";
      if (pick.substituted) os << ", \"substituted\": true";
      os << "}";
    }
    os << "]";
  }
  if (report.divergence) {
    const auto& d = *report.divergence;
    os << ", \"divergence\": {\"layer\": \"" << support::jsonEscape(d.layer)
       << "\", \"layer_index\": " << d.layerIndex << ", \"element\": [";
    for (std::size_t i = 0; i < d.element.size(); ++i)
      os << (i ? ", " : "") << d.element[i];
    os << "], \"cycle\": " << d.cycle << ", \"expected\": " << d.expected
       << ", \"actual\": " << d.actual << ", \"engine\": \""
       << support::jsonEscape(d.engine) << "\"}";
  }
  if (!report.error.empty())
    os << ", \"error\": \"" << support::jsonEscape(report.error) << "\"";
  os << "}";
  return os.str();
}

std::string cacheStatsJson(const CacheStats& stats) {
  const auto cand = stt::candidateCacheStats();
  std::ostringstream os;
  os << "{\"hits\": " << stats.hits << ", \"misses\": " << stats.misses
     << ", \"evictions\": " << stats.evictions << ", \"entries\": "
     << stats.entries << ", \"shards\": " << stats.shards
     << ", \"mappings\": {\"hits\": " << stats.mappings.hits
     << ", \"misses\": " << stats.mappings.misses << ", \"evictions\": "
     << stats.mappings.evictions << ", \"entries\": " << stats.mappings.entries
     << "}, \"candidates\": {\"hits\": " << cand.hits << ", \"misses\": "
     << cand.misses << ", \"evictions\": " << cand.evictions
     << ", \"entries\": " << cand.entries << "}}";
  return os.str();
}

std::string shutdownSummaryLine(const DaemonStats& stats,
                                const CacheStats& cache) {
  std::ostringstream os;
  os << "{\"shutdown\": {\"accepted\": " << stats.accepted
     << ", \"rejected_overloaded\": " << stats.rejectedOverloaded
     << ", \"completed\": " << stats.completed << ", \"failed\": "
     << stats.failed << ", \"timed_out\": " << stats.timedOut
     << ", \"cancelled\": " << stats.cancelled << ", \"snapshots_saved\": "
     << stats.snapshotsSaved << ", \"snapshot_failures\": "
     << stats.snapshotFailures << ", \"cache\": " << cacheStatsJson(cache)
     << "}}";
  return os.str();
}

}  // namespace tensorlib::driver::wire
