// Incremental Pareto frontier over (cycles, power, area) and objective
// selection on top of it.
//
// The exploration service streams every evaluated design point through a
// ParetoFrontier instead of materializing the whole design space: dominated
// points are dropped on arrival, newly dominated residents are pruned (the
// caller learns which, so it can free their reports). The kept set is a
// function of the inserted points only — insertion order never matters —
// which is what makes batched exploration bit-identical across thread
// counts and shard sizes: exact-cost ties are broken by the point's global
// enumeration index (`order`), not by arrival.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace tensorlib::driver {

/// What to optimize during exploration.
enum class Objective {
  Performance,  ///< max utilization (min cycles)
  Power,        ///< min mW among designs within 10% of best performance
  EnergyDelay,  ///< min (power x cycles) product
};

/// "performance" / "power" / "energy-delay" — the names every tool and
/// batch protocol accepts (see docs/PROTOCOL.md).
std::string objectiveName(Objective objective);

/// Parses an objective name; nullopt for anything else.
std::optional<Objective> parseObjective(const std::string& name);

/// The three minimized axes plus utilization (derived from cycles; carried
/// for objective selection, not a dominance dimension).
struct ParetoCost {
  double cycles = 0.0;
  double powerMw = 0.0;
  double area = 0.0;  ///< mm² (ASIC) or device fraction (FPGA)
  double utilization = 0.0;
};

struct ParetoEntry {
  ParetoCost cost;
  std::size_t order = 0;  ///< global enumeration index — the canonical tie-break
  std::string label;
};

/// True iff every cost dimension is finite (NaN and ±inf never enter a
/// frontier: a non-finite cost means the model failed, not a cheap design).
bool finiteCost(const ParetoCost& cost);

/// a dominates b: <= in all of (cycles, powerMw, area) and < in at least one.
bool dominates(const ParetoCost& a, const ParetoCost& b);

/// Bit-equality on the three dominance axes — the predicate behind the
/// canonical smallest-order collapse (utilization is not compared; it is
/// derived, not a dominance dimension).
bool equalCost(const ParetoCost& a, const ParetoCost& b);

class ParetoFrontier {
 public:
  /// Inserts if the cost is finite and no resident dominates it; prunes
  /// residents the new point dominates. Points with bit-equal costs are
  /// collapsed to the smallest `order`. Returns true iff the point was
  /// kept; the orders of pruned residents are appended to `*pruned` (the
  /// rejected point itself is never listed).
  bool insert(const ParetoEntry& entry,
              std::vector<std::size_t>* pruned = nullptr);

  /// Inserts every entry of `other` (set-union semantics).
  void merge(const ParetoFrontier& other,
             std::vector<std::size_t>* pruned = nullptr);

  /// True iff some resident strictly dominates `cost` (<= everywhere, < in
  /// at least one axis). This is the pruning oracle of the exploration
  /// service: when it holds for a candidate's *lower bound*, the candidate's
  /// true cost is dominated too and insert() would reject it, so the full
  /// evaluation can be skipped without changing the frontier. Equal-cost
  /// points never count — the order-collapse tie rule needs the real entry.
  bool strictlyDominates(const ParetoCost& cost) const;

  /// Residents in unspecified order.
  const std::vector<ParetoEntry>& entries() const { return entries_; }

  /// Residents sorted by (cycles, powerMw, area, order) — the canonical
  /// result order every thread count reproduces.
  std::vector<ParetoEntry> sorted() const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<ParetoEntry> entries_;
};

/// Index of the objective winner among `entries` with canonical tie-breaks
/// (independent of the entries' order):
///   Performance — max utilization; ties: min power, min area, min order.
///   Power       — min power among entries with utilization >= 0.9 * best
///                 utilization (band edge inclusive, matching
///                 Session::compileBest); ties: max utilization, min area,
///                 min order.
///   EnergyDelay — min powerMw * cycles; ties: min cycles, min area,
///                 min order.
/// nullopt iff `entries` is empty.
std::optional<std::size_t> pickBest(const std::vector<ParetoEntry>& entries,
                                    Objective objective);

}  // namespace tensorlib::driver
