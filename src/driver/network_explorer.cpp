#include "driver/network_explorer.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "support/error.hpp"

namespace tensorlib::driver {

namespace {

/// A partially composed assignment: the (sum, max, max) cost of the layers
/// chosen so far plus the chosen frontier index per layer.
struct Partial {
  ParetoCost cost;
  std::vector<std::uint32_t> picks;
};

LayerAssignment toAssignment(const std::string& layerName,
                             const DesignReport& report) {
  const auto figures = report.figures();
  LayerAssignment a;
  a.layer = layerName;
  a.dataflow = report.spec.label();
  a.cycles = report.perf.totalCycles;
  a.powerMw = figures.powerMw;
  a.area = figures.area;
  a.utilization = report.perf.utilization;
  return a;
}

bool beforeCanonical(const NetworkDesign& a, const NetworkDesign& b) {
  if (a.cost.cycles != b.cost.cycles) return a.cost.cycles < b.cost.cycles;
  if (a.cost.powerMw != b.cost.powerMw) return a.cost.powerMw < b.cost.powerMw;
  if (a.cost.area != b.cost.area) return a.cost.area < b.cost.area;
  if (a.arrayIndex != b.arrayIndex) return a.arrayIndex < b.arrayIndex;
  return a.order < b.order;
}

/// Composes one candidate array's per-layer frontiers, appending the
/// composed frontier residents (as NetworkDesigns) to `out`.
void composeOneArray(const NetworkQuery& query, std::size_t arrayIndex,
                     const std::vector<QueryResult>& layerResults,
                     std::vector<NetworkDesign>* out) {
  const auto& layers = query.network.layers();
  const stt::ArrayConfig& array = query.arrays[arrayIndex];

  for (std::size_t l = 0; l < layers.size(); ++l)
    require(!layerResults[l].frontier.empty(),
            "network '" + query.network.name() + "' layer '" +
                layers[l].name + "' has no realizable design on the " +
                std::to_string(array.rows) + "x" + std::to_string(array.cols) +
                " array");

  // Fold layer by layer through an intermediate frontier. Dominance between
  // partials is preserved by any completion (sum and max are monotone in
  // every axis), so pruning here is exact; equal-cost partials produce
  // equal-cost completions, so collapsing them to the smallest canonical
  // order keeps one canonical representative. std::map keeps the iteration
  // deterministic.
  std::map<std::size_t, Partial> partials;
  partials.emplace(0, Partial{});
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const auto& frontier = layerResults[l].frontier;  // canonically sorted
    ParetoFrontier next;
    std::map<std::size_t, Partial> nextPartials;
    std::vector<std::size_t> evicted;
    for (const auto& [order, partial] : partials) {
      // Orders are re-densified after every fold (below), so this radix
      // step cannot overflow unless the surviving-partials count itself
      // approaches SIZE_MAX / frontier size — guard it anyway.
      TL_CHECK(frontier.empty() ||
                   order <= (std::numeric_limits<std::size_t>::max() -
                             (frontier.size() - 1)) /
                                frontier.size(),
               "network composition order space overflow");
      for (std::size_t j = 0; j < frontier.size(); ++j) {
        const DesignReport& report = frontier[j];
        const auto figures = report.figures();
        ParetoCost cost;
        cost.cycles = partial.cost.cycles +
                      static_cast<double>(report.perf.totalCycles);
        cost.powerMw = std::max(partial.cost.powerMw, figures.powerMw);
        cost.area = std::max(partial.cost.area, figures.area);
        const std::size_t nextOrder = order * frontier.size() + j;
        evicted.clear();
        if (!next.insert({cost, nextOrder, {}}, &evicted)) continue;
        Partial extended;
        extended.cost = cost;
        extended.picks = partial.picks;
        extended.picks.push_back(static_cast<std::uint32_t>(j));
        nextPartials.emplace(nextOrder, std::move(extended));
        for (const std::size_t dead : evicted) nextPartials.erase(dead);
      }
    }
    // Re-densify the canonical orders: the fold's mixed-radix order is the
    // lexicographic order of the picks vectors, which a dense monotone
    // re-index preserves — and keeping orders < |partials| bounds the next
    // fold's radix product far below overflow regardless of model depth.
    partials.clear();
    std::size_t dense = 0;
    for (auto& [order, partial] : nextPartials) {
      (void)order;
      partials.emplace(dense++, std::move(partial));
    }
  }

  const double peCount = static_cast<double>(array.rows * array.cols);
  const double networkMacs = static_cast<double>(query.network.totalMacs());
  for (const auto& [order, partial] : partials) {
    NetworkDesign design;
    design.arrayIndex = arrayIndex;
    design.cost = partial.cost;
    design.cost.utilization =
        partial.cost.cycles > 0.0 && peCount > 0.0
            ? networkMacs / (peCount * partial.cost.cycles)
            : 0.0;
    design.order = order;
    design.layers.reserve(layers.size());
    for (std::size_t l = 0; l < layers.size(); ++l)
      design.layers.push_back(toAssignment(
          layers[l].name, layerResults[l].frontier[partial.picks[l]]));
    out->push_back(std::move(design));
  }
}

}  // namespace

std::vector<stt::ArrayConfig> parseArrayList(const std::string& list,
                                             const stt::ArrayConfig& base) {
  std::vector<stt::ArrayConfig> arrays;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(start, end - start);
    start = end + 1;
    const auto x = item.find('x');
    if (item.empty() || x == std::string::npos || x == 0 ||
        x + 1 >= item.size())
      fail("bad array-list entry '" + item + "' (expected RxC, e.g. 8x8)");
    stt::ArrayConfig config = base;
    // std::stoll alone would accept trailing garbage ("8x8x8" -> 8x8);
    // require every character of each dimension to be consumed.
    const auto parseDim = [&](const std::string& dim) {
      std::size_t consumed = 0;
      std::int64_t value = 0;
      try {
        value = std::stoll(dim, &consumed);
      } catch (const std::exception&) {
        consumed = std::string::npos;
      }
      if (consumed != dim.size())
        fail("bad array-list entry '" + item + "' (expected RxC, e.g. 8x8)");
      return value;
    };
    config.rows = parseDim(item.substr(0, x));
    config.cols = parseDim(item.substr(x + 1));
    require(config.rows > 0 && config.cols > 0,
            "array-list entry '" + item + "' must be positive");
    arrays.push_back(config);
  }
  return arrays;
}

ExploreQuery layerQuery(const NetworkQuery& query,
                        const stt::ArrayConfig& array,
                        const tensor::NetworkLayer& layer) {
  ExploreQuery q(layer.algebra);
  q.array = array;
  q.objective = query.objective;
  q.backend = query.backend;
  q.dataWidth = query.dataWidth;
  q.fpga = query.fpga;
  q.enumeration = query.enumeration;
  if (layer.allowAllUnicast) q.enumeration.dropAllUnicast = false;
  return q;
}

NetworkResult composeLayerFrontiers(
    const NetworkQuery& query,
    const std::vector<std::vector<QueryResult>>& layerResults) {
  require(!query.arrays.empty(),
          "network query needs at least one candidate array");
  TL_CHECK(layerResults.size() == query.arrays.size(),
           "layerResults must align with the candidate arrays");
  const std::size_t layerCount = query.network.layerCount();

  NetworkResult result;
  std::vector<NetworkDesign> candidates;
  for (std::size_t a = 0; a < query.arrays.size(); ++a) {
    TL_CHECK(layerResults[a].size() == layerCount,
             "layerResults must hold one QueryResult per network layer");
    composeOneArray(query, a, layerResults[a], &candidates);
    for (std::size_t l = 0; l < layerCount; ++l) {
      const QueryResult& r = layerResults[a][l];
      NetworkLayerStats stats;
      stats.arrayIndex = a;
      stats.layer = query.network.layers()[l].name;
      stats.designs = r.designs;
      stats.frontierSize = r.frontier.size();
      stats.cache = r.cache;
      result.designs += r.designs;
      result.layers.push_back(std::move(stats));
    }
  }

  // Cross-array Pareto filter with the canonical tie order (cost, then
  // arrayIndex, then composition order): equal-cost designs collapse to the
  // canonically first, dominated designs drop. The candidate list is the
  // union of small per-array frontiers, so the quadratic scan is cheap.
  std::sort(candidates.begin(), candidates.end(), beforeCanonical);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < candidates.size() && keep; ++j) {
      if (j == i) continue;
      if (dominates(candidates[j].cost, candidates[i].cost)) keep = false;
    }
    if (keep && !result.frontier.empty() &&
        equalCost(result.frontier.back().cost, candidates[i].cost))
      keep = false;  // canonical collapse: the earlier-sorted twin stays
    if (keep) result.frontier.push_back(std::move(candidates[i]));
  }

  std::vector<ParetoEntry> entries;
  entries.reserve(result.frontier.size());
  for (std::size_t i = 0; i < result.frontier.size(); ++i)
    entries.push_back({result.frontier[i].cost, i, {}});
  if (const auto best = pickBest(entries, query.objective))
    result.best = result.frontier[*best];
  return result;
}

NetworkExplorer::NetworkExplorer(ExplorationService& service)
    : service_(&service) {}

NetworkExplorer::NetworkExplorer(ServiceOptions options)
    : owned_(std::make_unique<ExplorationService>(options)),
      service_(owned_.get()) {}

NetworkExplorer::~NetworkExplorer() = default;

ExplorationService& NetworkExplorer::service() { return *service_; }

NetworkResult NetworkExplorer::explore(const NetworkQuery& query) {
  require(!query.arrays.empty(),
          "network query needs at least one candidate array");
  std::vector<ExploreQuery> batch;
  batch.reserve(query.arrays.size() * query.network.layerCount());
  for (const stt::ArrayConfig& array : query.arrays)
    for (const tensor::NetworkLayer& layer : query.network.layers())
      batch.push_back(layerQuery(query, array, layer));

  std::vector<QueryResult> flat = service_->runBatch(batch);

  std::vector<std::vector<QueryResult>> shaped(query.arrays.size());
  std::size_t cursor = 0;
  for (std::size_t a = 0; a < query.arrays.size(); ++a) {
    shaped[a].reserve(query.network.layerCount());
    for (std::size_t l = 0; l < query.network.layerCount(); ++l)
      shaped[a].push_back(std::move(flat[cursor++]));
  }
  return composeLayerFrontiers(query, shaped);
}

}  // namespace tensorlib::driver
