// Retrying JSONL client for a resident explore_server (--serve mode).
//
// Two transports behind one request() discipline:
//
//   * Pipe (default): the client owns the server as a child process —
//     spawns the configured command with pipes on stdin/stdout and speaks
//     one JSON object per line in each direction.
//   * Socket (port >= 0 or unixSocketPath set): request lines travel over
//     TCP or a unix-domain socket to a server started with --port /
//     --unix-socket. The child (when `command` is non-empty) is spawned
//     with stdio detached and the client connects to it, retrying while
//     the server binds; with an empty `command` the client is
//     connect-only and assumes somebody else runs the server.
//
// Either way the transport is wrapped in the retry discipline a resident
// daemon demands:
//
//   * Overload backoff: an `{"error": "overloaded", ...}` response is not a
//     failure — the daemon shed load. request() sleeps with exponential
//     backoff (initialBackoffMs doubling up to maxBackoffMs) and resends.
//   * Crash recovery: a dead transport (EOF, failed write, severed
//     connection) is detected and — when autoRestart is set — the child is
//     respawned / the socket reconnected before the request is retried. A
//     server restarted from its snapshot answers warm, which is what
//     tools/chaos_runner exercises end to end.
//   * Partial final lines: a server that dies mid-write leaves a line with
//     no trailing '\n'. readLine() surfaces it (lastLineComplete() turns
//     false) instead of silently discarding the bytes; request() treats it
//     as a failed attempt, never as a response.
//
// The transport is deliberately dumb (blocking line I/O, no threads) so
// its failure modes are enumerable; it is the reference client for
// docs/PROTOCOL.md and the harness chaos tests are built on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tensorlib::driver {

struct ClientOptions {
  /// argv for the server child, e.g. {"./explore_server", "--serve", ...}.
  /// May be empty in socket mode (connect-only client).
  std::vector<std::string> command;
  /// Extra KEY=VALUE environment entries for the child (appended to the
  /// parent environment; used to arm TENSORLIB_FAULTS in chaos runs).
  std::vector<std::string> env;
  /// request() attempts before giving up (spawn + send + read = 1 attempt).
  int maxAttempts = 8;
  std::int64_t initialBackoffMs = 10;
  std::int64_t maxBackoffMs = 1000;
  /// Re-establish a dead transport (respawn the child, reconnect the
  /// socket) on the next request instead of failing.
  bool autoRestart = true;

  /// Socket transport. unixSocketPath (preferred when set) or host:port;
  /// port -1 with an empty path selects the stdio pipe transport.
  std::string host = "127.0.0.1";
  int port = -1;
  std::string unixSocketPath;
  /// Connect retry budget while a freshly spawned server binds its socket.
  int connectAttempts = 100;
  std::int64_t connectBackoffMs = 20;
};

struct ClientStats {
  std::uint64_t requests = 0;     ///< request() calls that got a response
  std::uint64_t retries = 0;      ///< overload backoffs + resends after death
  std::uint64_t restarts = 0;     ///< transport re-establishments (respawns
                                  ///< and socket reconnects) after the first
  std::uint64_t partialLines = 0; ///< unterminated final lines surfaced
};

class ExploreClient {
 public:
  explicit ExploreClient(ClientOptions options);
  /// Kills (SIGKILL) and reaps any running child; closes the transport.
  ~ExploreClient();
  ExploreClient(const ExploreClient&) = delete;
  ExploreClient& operator=(const ExploreClient&) = delete;

  /// Establishes the transport: spawns the server child (pipe mode, or
  /// socket mode with a command) and/or connects the socket. Returns false
  /// if the pipes, fork, or connect failed (exec failure surfaces as
  /// immediate EOF on the first read). No-op true when already up.
  bool start();

  /// True iff a child is running (reaps it first if it just exited).
  /// Always false for a connect-only socket client.
  bool running();

  /// Graceful stop: sends `{"shutdown": true}`, waits for exit (bounded),
  /// escalating to SIGKILL. Returns the child's raw wait status; -1 if
  /// none was running (0 for a connect-only client whose shutdown line
  /// was delivered).
  int stop();

  /// SIGKILL + reap — the crash half of a chaos cycle. Also severs the
  /// socket in socket mode.
  void killServer();

  /// Severs the transport WITHOUT touching the server child: in socket
  /// mode the server stays up and sees a connection drop (cancelling this
  /// client's queued work); the next request() reconnects. The
  /// kill-the-connection half of a chaos cycle.
  void dropConnection();

  /// Raw transport: one line out / one line in. sendLine returns false on
  /// a dead transport. readLine returns nullopt on EOF — except that a
  /// partial final line (no trailing '\n') is returned once, with
  /// lastLineComplete() false, before the nullopt. Both mark the transport
  /// dead for request() to recover from.
  bool sendLine(const std::string& line);
  std::optional<std::string> readLine();

  /// False iff the line readLine() just returned was cut off before its
  /// terminating '\n' (the server died or the connection dropped
  /// mid-write). Such a line is diagnostic text, not a response.
  bool lastLineComplete() const;

  /// Sends one request line and returns the matching response line,
  /// retrying through overload rejections (exponential backoff), truncated
  /// responses, and — with autoRestart — transport death. nullopt when
  /// maxAttempts is exhausted.
  std::optional<std::string> request(const std::string& line);

  ClientStats stats() const;
  int pid() const;  ///< child pid, -1 when not running

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tensorlib::driver
