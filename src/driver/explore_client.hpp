// Retrying JSONL client for a resident explore_server (--serve mode).
//
// The client owns the server as a child process: it spawns the configured
// command with pipes on stdin/stdout, speaks one JSON object per line in
// each direction, and wraps that transport in the retry discipline a
// resident daemon demands:
//
//   * Overload backoff: an `{"error": "overloaded", ...}` response is not a
//     failure — the daemon shed load. request() sleeps with exponential
//     backoff (initialBackoffMs doubling up to maxBackoffMs) and resends.
//   * Crash recovery: a dead child (EOF on its stdout, failed write) is
//     detected, reaped, and — when autoRestart is set — respawned before
//     the request is retried. A server restarted from its snapshot answers
//     warm, which is what tools/chaos_runner exercises end to end.
//
// The transport is deliberately dumb (blocking FILE* line I/O, no threads)
// so its failure modes are enumerable; it is the reference client for
// docs/PROTOCOL.md and the harness chaos tests are built on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tensorlib::driver {

struct ClientOptions {
  /// argv for the server child, e.g. {"./explore_server", "--serve", ...}.
  std::vector<std::string> command;
  /// Extra KEY=VALUE environment entries for the child (appended to the
  /// parent environment; used to arm TENSORLIB_FAULTS in chaos runs).
  std::vector<std::string> env;
  /// request() attempts before giving up (spawn + send + read = 1 attempt).
  int maxAttempts = 8;
  std::int64_t initialBackoffMs = 10;
  std::int64_t maxBackoffMs = 1000;
  /// Respawn a dead child on the next request instead of failing.
  bool autoRestart = true;
};

struct ClientStats {
  std::uint64_t requests = 0;   ///< request() calls that got a response
  std::uint64_t retries = 0;    ///< overload backoffs + resends after death
  std::uint64_t restarts = 0;   ///< child respawns after start()
};

class ExploreClient {
 public:
  explicit ExploreClient(ClientOptions options);
  /// Kills (SIGKILL) and reaps any running child.
  ~ExploreClient();
  ExploreClient(const ExploreClient&) = delete;
  ExploreClient& operator=(const ExploreClient&) = delete;

  /// Spawns the server child. Returns false if the pipes or fork failed
  /// (exec failure surfaces as immediate EOF on the first read). No-op
  /// true when already running.
  bool start();

  /// True iff a child is running (reaps it first if it just exited).
  bool running();

  /// Graceful stop: sends `{"shutdown": true}`, waits for exit (bounded),
  /// escalating to SIGKILL. Returns the child's raw wait status, -1 if
  /// none was running.
  int stop();

  /// SIGKILL + reap — the crash half of a chaos cycle.
  void killServer();

  /// Raw transport: one line out / one line in. sendLine returns false on
  /// a dead child; readLine returns nullopt on EOF. Both mark the child
  /// dead for request() to recover from.
  bool sendLine(const std::string& line);
  std::optional<std::string> readLine();

  /// Sends one request line and returns the matching response line,
  /// retrying through overload rejections (exponential backoff) and — with
  /// autoRestart — child death. nullopt when maxAttempts is exhausted.
  std::optional<std::string> request(const std::string& line);

  ClientStats stats() const;
  int pid() const;  ///< child pid, -1 when not running

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tensorlib::driver
