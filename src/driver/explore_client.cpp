#include "driver/explore_client.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

extern "C" {
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
}

extern char** environ;

namespace tensorlib::driver {
namespace {

/// A dead child turns writes into SIGPIPE, which would kill the whole tool
/// process before the client can recover; the client's contract is that a
/// failed write is a recoverable event, so the signal must be ignored.
void ignoreSigpipeOnce() {
  static bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

struct ExploreClient::Impl {
  explicit Impl(ClientOptions opts) : options(std::move(opts)) {
    ignoreSigpipeOnce();
  }

  ~Impl() { kill(); }

  bool start() {
    if (runningNow()) return true;
    if (options.command.empty()) return false;
    int toChildPipe[2];
    int fromChildPipe[2];
    if (pipe(toChildPipe) != 0) return false;
    if (pipe(fromChildPipe) != 0) {
      close(toChildPipe[0]);
      close(toChildPipe[1]);
      return false;
    }
    std::vector<char*> argv;
    argv.reserve(options.command.size() + 1);
    for (const auto& arg : options.command) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    std::vector<char*> envp;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
      envp.push_back(*e);
    }
    for (const auto& extra : options.env) {
      envp.push_back(const_cast<char*>(extra.c_str()));
    }
    envp.push_back(nullptr);

    pid_t child = fork();
    if (child < 0) {
      close(toChildPipe[0]);
      close(toChildPipe[1]);
      close(fromChildPipe[0]);
      close(fromChildPipe[1]);
      return false;
    }
    if (child == 0) {
      dup2(toChildPipe[0], STDIN_FILENO);
      dup2(fromChildPipe[1], STDOUT_FILENO);
      close(toChildPipe[0]);
      close(toChildPipe[1]);
      close(fromChildPipe[0]);
      close(fromChildPipe[1]);
      execve(argv[0], argv.data(), envp.data());
      _exit(127);  // exec failed; parent sees EOF on first read
    }
    close(toChildPipe[0]);
    close(fromChildPipe[1]);
    pid = child;
    toChild = fdopen(toChildPipe[1], "w");
    fromChild = fdopen(fromChildPipe[0], "r");
    if (toChild == nullptr || fromChild == nullptr) {
      kill();
      return false;
    }
    return true;
  }

  bool runningNow() {
    if (pid < 0) return false;
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      closeStreams();
      pid = -1;
      return false;
    }
    return true;
  }

  void closeStreams() {
    if (toChild != nullptr) {
      fclose(toChild);
      toChild = nullptr;
    }
    if (fromChild != nullptr) {
      fclose(fromChild);
      fromChild = nullptr;
    }
  }

  void kill() {
    if (pid < 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    closeStreams();
    pid = -1;
  }

  int stop() {
    if (pid < 0) return -1;
    // A failed write means markDead() already killed and reaped the child
    // and cleared pid; waiting on the stale value would hit waitpid(-1)
    // (reaping unrelated children) and kill(-1, SIGKILL).
    if (!sendLine("{\"shutdown\": true}") || pid < 0) return -1;
    const pid_t target = pid;
    // Bounded graceful wait (the server drains and snapshots), then force.
    int status = 0;
    for (int i = 0; i < 500; ++i) {
      pid_t r = waitpid(target, &status, WNOHANG);
      if (r == target) {
        closeStreams();
        pid = -1;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::kill(target, SIGKILL);
    waitpid(target, &status, 0);
    closeStreams();
    pid = -1;
    return status;
  }

  bool sendLine(const std::string& line) {
    if (toChild == nullptr) return false;
    if (std::fputs(line.c_str(), toChild) == EOF ||
        std::fputc('\n', toChild) == EOF || std::fflush(toChild) != 0) {
      markDead();
      return false;
    }
    return true;
  }

  std::optional<std::string> readLine() {
    if (fromChild == nullptr) return std::nullopt;
    std::string line;
    int c;
    while ((c = std::fgetc(fromChild)) != EOF) {
      if (c == '\n') return line;
      line.push_back(static_cast<char>(c));
    }
    markDead();
    return std::nullopt;
  }

  void markDead() {
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      waitpid(pid, &status, 0);
      pid = -1;
    }
    closeStreams();
  }

  std::optional<std::string> request(const std::string& line) {
    std::int64_t backoffMs = options.initialBackoffMs;
    for (int attempt = 0; attempt < options.maxAttempts; ++attempt) {
      if (attempt > 0) ++stats.retries;
      if (!runningNow()) {
        if (everStarted && !options.autoRestart) return std::nullopt;
        if (!start()) return std::nullopt;
        if (everStarted) ++stats.restarts;
        everStarted = true;
      }
      if (!sendLine(line)) continue;  // child died; next attempt respawns
      std::optional<std::string> response = readLine();
      if (!response.has_value()) continue;
      if (response->find("\"error\": \"overloaded\"") != std::string::npos) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoffMs));
        backoffMs = std::min(backoffMs * 2, options.maxBackoffMs);
        continue;
      }
      ++stats.requests;
      return response;
    }
    return std::nullopt;
  }

  ClientOptions options;
  ClientStats stats;
  pid_t pid = -1;
  std::FILE* toChild = nullptr;
  std::FILE* fromChild = nullptr;
  bool everStarted = false;
};

ExploreClient::ExploreClient(ClientOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ExploreClient::~ExploreClient() = default;

bool ExploreClient::start() {
  bool ok = impl_->start();
  impl_->everStarted = impl_->everStarted || ok;
  return ok;
}

bool ExploreClient::running() { return impl_->runningNow(); }

int ExploreClient::stop() { return impl_->stop(); }

void ExploreClient::killServer() { impl_->kill(); }

bool ExploreClient::sendLine(const std::string& line) {
  return impl_->sendLine(line);
}

std::optional<std::string> ExploreClient::readLine() {
  return impl_->readLine();
}

std::optional<std::string> ExploreClient::request(const std::string& line) {
  return impl_->request(line);
}

ClientStats ExploreClient::stats() const { return impl_->stats; }

int ExploreClient::pid() const { return impl_->pid; }

}  // namespace tensorlib::driver
