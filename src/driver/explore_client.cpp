#include "driver/explore_client.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <thread>
#include <utility>

#include "support/net.hpp"

extern "C" {
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
}

extern char** environ;

namespace tensorlib::driver {
namespace {

/// A dead peer turns writes into SIGPIPE, which would kill the whole tool
/// process before the client can recover; the client's contract is that a
/// failed write is a recoverable event, so the signal must be ignored.
/// (sendAll uses MSG_NOSIGNAL on sockets; this covers the pipe transport.)
void ignoreSigpipeOnce() {
  static bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

void sleepMs(std::int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

struct ExploreClient::Impl {
  explicit Impl(ClientOptions opts) : options(std::move(opts)) {
    ignoreSigpipeOnce();
  }

  ~Impl() { kill(); }

  bool socketMode() const {
    return options.port >= 0 || !options.unixSocketPath.empty();
  }

  // ---- transport plumbing --------------------------------------------------

  void closeTransport() {
    if (readFd >= 0 && readFd != writeFd) ::close(readFd);
    if (writeFd >= 0) ::close(writeFd);
    readFd = -1;
    writeFd = -1;
    reader.reset();
  }

  /// The transport failed (EOF, write error, truncated line). Pipe mode
  /// equates transport death with child death (its stdio IS the child);
  /// socket mode only drops the connection — the child may be fine.
  void markTransportDead() {
    if (socketMode()) {
      closeTransport();
      return;
    }
    kill();
  }

  bool transportUp() const { return writeFd >= 0; }

  bool ready() {
    if (!transportUp()) return false;
    if (options.command.empty()) return true;
    return runningNow();
  }

  // ---- child process -------------------------------------------------------

  bool spawnChild() {
    if (options.command.empty()) return true;
    int toChildPipe[2] = {-1, -1};
    int fromChildPipe[2] = {-1, -1};
    const bool pipes = !socketMode();
    if (pipes) {
      if (pipe(toChildPipe) != 0) return false;
      if (pipe(fromChildPipe) != 0) {
        ::close(toChildPipe[0]);
        ::close(toChildPipe[1]);
        return false;
      }
    }
    std::vector<char*> argv;
    argv.reserve(options.command.size() + 1);
    for (const auto& arg : options.command) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    std::vector<char*> envp;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
      envp.push_back(*e);
    }
    for (const auto& extra : options.env) {
      envp.push_back(const_cast<char*>(extra.c_str()));
    }
    envp.push_back(nullptr);

    pid_t child = fork();
    if (child < 0) {
      if (pipes) {
        ::close(toChildPipe[0]);
        ::close(toChildPipe[1]);
        ::close(fromChildPipe[0]);
        ::close(fromChildPipe[1]);
      }
      return false;
    }
    if (child == 0) {
      if (pipes) {
        dup2(toChildPipe[0], STDIN_FILENO);
        dup2(fromChildPipe[1], STDOUT_FILENO);
        ::close(toChildPipe[0]);
        ::close(toChildPipe[1]);
        ::close(fromChildPipe[0]);
        ::close(fromChildPipe[1]);
      } else {
        // Socket mode: the conversation happens over the socket; the
        // child's stdio is nobody's business (and must not block it).
        const int devnull = open("/dev/null", O_RDWR);
        if (devnull >= 0) {
          dup2(devnull, STDIN_FILENO);
          dup2(devnull, STDOUT_FILENO);
          ::close(devnull);
        }
      }
      execve(argv[0], argv.data(), envp.data());
      _exit(127);  // exec failed; parent sees EOF / connection refused
    }
    pid = child;
    if (pipes) {
      ::close(toChildPipe[0]);
      ::close(fromChildPipe[1]);
      writeFd = toChildPipe[1];
      readFd = fromChildPipe[0];
      reader = std::make_unique<support::net::LineReader>(readFd);
    }
    return true;
  }

  bool runningNow() {
    if (pid < 0) return false;
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      closeTransport();
      pid = -1;
      return false;
    }
    return true;
  }

  void kill() {
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      waitpid(pid, &status, 0);
      pid = -1;
    }
    closeTransport();
  }

  // ---- socket connect ------------------------------------------------------

  bool connectSocket() {
    for (int i = 0; i < options.connectAttempts; ++i) {
      const int fd = options.unixSocketPath.empty()
                         ? support::net::connectTcp(options.host, options.port)
                         : support::net::connectUnix(options.unixSocketPath);
      if (fd >= 0) {
        writeFd = fd;
        readFd = fd;
        reader = std::make_unique<support::net::LineReader>(fd);
        return true;
      }
      // Waiting out the bind window only makes sense while the server we
      // spawned is actually alive.
      if (!options.command.empty() && !runningNow()) return false;
      sleepMs(options.connectBackoffMs);
    }
    return false;
  }

  bool start() {
    if (ready()) return true;
    if (socketMode()) {
      if (!options.command.empty() && !runningNow()) {
        closeTransport();
        if (!spawnChild()) return false;
      }
      if (!transportUp() && !connectSocket()) return false;
      return true;
    }
    if (options.command.empty()) return false;
    if (runningNow()) return true;
    return spawnChild();
  }

  int stop() {
    if (socketMode()) {
      const bool sent = transportUp() && sendLine("{\"shutdown\": true}");
      if (sent) {
        // Let the server drain and deliver its summary; EOF means it
        // closed our connection on the way down.
        while (readLine().has_value()) {
        }
      }
      closeTransport();
      if (pid < 0) return sent ? 0 : -1;
      return awaitChildExit();
    }
    if (pid < 0) return -1;
    // A failed write means the transport already collapsed (markTransportDead
    // killed and reaped the child and cleared pid); waiting on the stale
    // value would hit waitpid(-1) and kill(-1, SIGKILL).
    if (!sendLine("{\"shutdown\": true}") || pid < 0) return -1;
    return awaitChildExit();
  }

  /// Bounded graceful wait (the server drains and snapshots), then force.
  int awaitChildExit() {
    const pid_t target = pid;
    int status = 0;
    for (int i = 0; i < 500; ++i) {
      pid_t r = waitpid(target, &status, WNOHANG);
      if (r == target) {
        closeTransport();
        pid = -1;
        return status;
      }
      sleepMs(10);
    }
    ::kill(target, SIGKILL);
    waitpid(target, &status, 0);
    closeTransport();
    pid = -1;
    return status;
  }

  // ---- line I/O ------------------------------------------------------------

  bool sendLine(const std::string& line) {
    if (writeFd < 0) return false;
    std::string framed = line;
    framed += '\n';
    if (!support::net::sendAll(writeFd, framed.data(), framed.size())) {
      markTransportDead();
      return false;
    }
    return true;
  }

  std::optional<std::string> readLine() {
    lastComplete = true;
    if (!reader) return std::nullopt;
    auto line = reader->next();
    if (!line.has_value()) {
      markTransportDead();
      return std::nullopt;
    }
    if (!line->complete) {
      // The peer died mid-write. Hand the fragment to the caller (it is
      // often the best diagnostic there is) but flag it: a truncated line
      // must never be mistaken for a whole response.
      lastComplete = false;
      ++stats.partialLines;
      markTransportDead();
    }
    return std::move(line->text);
  }

  std::optional<std::string> request(const std::string& line) {
    std::int64_t backoffMs = options.initialBackoffMs;
    for (int attempt = 0; attempt < options.maxAttempts; ++attempt) {
      if (attempt > 0) ++stats.retries;
      if (!ready()) {
        if (everStarted && !options.autoRestart) return std::nullopt;
        if (!start()) {
          if (socketMode() && options.command.empty()) {
            // Connect-only client: the server may simply not be up yet.
            sleepMs(backoffMs);
            backoffMs = std::min(backoffMs * 2, options.maxBackoffMs);
            continue;
          }
          return std::nullopt;
        }
        if (everStarted) ++stats.restarts;
        everStarted = true;
      }
      if (!sendLine(line)) continue;  // transport died; next attempt recovers
      std::optional<std::string> response = readLine();
      if (!response.has_value()) continue;
      if (!lastComplete) continue;  // truncated mid-write — not a response
      if (response->find("\"error\": \"overloaded\"") != std::string::npos) {
        sleepMs(backoffMs);
        backoffMs = std::min(backoffMs * 2, options.maxBackoffMs);
        continue;
      }
      ++stats.requests;
      return response;
    }
    return std::nullopt;
  }

  ClientOptions options;
  ClientStats stats;
  pid_t pid = -1;
  int writeFd = -1;
  int readFd = -1;
  std::unique_ptr<support::net::LineReader> reader;
  bool lastComplete = true;
  bool everStarted = false;
};

ExploreClient::ExploreClient(ClientOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ExploreClient::~ExploreClient() = default;

bool ExploreClient::start() {
  bool ok = impl_->start();
  impl_->everStarted = impl_->everStarted || ok;
  return ok;
}

bool ExploreClient::running() { return impl_->runningNow(); }

int ExploreClient::stop() { return impl_->stop(); }

void ExploreClient::killServer() { impl_->kill(); }

void ExploreClient::dropConnection() { impl_->closeTransport(); }

bool ExploreClient::sendLine(const std::string& line) {
  return impl_->sendLine(line);
}

std::optional<std::string> ExploreClient::readLine() {
  return impl_->readLine();
}

bool ExploreClient::lastLineComplete() const { return impl_->lastComplete; }

std::optional<std::string> ExploreClient::request(const std::string& line) {
  return impl_->request(line);
}

ClientStats ExploreClient::stats() const { return impl_->stats; }

int ExploreClient::pid() const { return impl_->pid; }

}  // namespace tensorlib::driver
