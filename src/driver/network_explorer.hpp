// Network-level co-exploration: per-layer design-space exploration through
// the ExplorationService, composed into ONE Pareto frontier for the whole
// model on a shared PE array.
//
// A NetworkQuery maps a tensor::NetworkSpec (named layers, each a tensor
// algebra) onto one or more *candidate* shared array configurations. For
// every candidate array the explorer runs each layer as an ExploreQuery —
// all layers of all candidate arrays in ONE service batch, so repeated
// layer shapes, the cross-query evaluation cache, the tile-mapping memo
// and the lower-bound dominance cuts all apply — then composes the
// per-layer frontiers under the shared-array execution model:
//
//   * layers time-share the array, so network cycles = SUM of layer cycles;
//   * the array must provision for the hungriest layer, so network power
//     and area = MAX over the chosen per-layer designs;
//   * network utilization = total MACs / (PEs * total cycles) — the same
//     Fig. 5 metric lifted to the model.
//
// Composition folds layer-by-layer through an intermediate ParetoFrontier:
// a partial assignment that is dominated in (cycles, power, area) stays
// dominated under any completion (sum and max are monotone), so pruning
// partials is exact. Ties collapse on a canonical composition order
// derived from each layer's sorted frontier, which makes the network
// frontier — like every per-layer frontier beneath it — bit-identical at
// any worker count, warm or cold cache, pruned or exhaustive evaluation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "driver/explore_service.hpp"
#include "tensor/network.hpp"

namespace tensorlib::driver {

/// One network-level exploration request: the model, the candidate shared
/// arrays, and the same objective / backend / enumeration controls an
/// ExploreQuery carries (applied uniformly to every layer).
struct NetworkQuery {
  explicit NetworkQuery(tensor::NetworkSpec n) : network(std::move(n)) {}

  tensor::NetworkSpec network;
  /// Candidate shared array configurations; every layer runs on each, and
  /// the network frontier spans all of them. Must be non-empty.
  std::vector<stt::ArrayConfig> arrays = {stt::ArrayConfig{}};
  Objective objective = Objective::Performance;
  cost::BackendKind backend = cost::BackendKind::Asic;
  int dataWidth = 16;     ///< ASIC datapath width (ignored by FPGA)
  cost::FpgaConfig fpga;  ///< FPGA backend configuration (ignored by ASIC)
  /// Per-layer enumeration; dropAllUnicast is overridden per layer from
  /// NetworkLayer::allowAllUnicast (pointwise layers have no other designs).
  stt::EnumerationOptions enumeration;
};

/// One layer's share of a network design: the winning dataflow label and
/// its evaluated figures on the shared array.
struct LayerAssignment {
  std::string layer;     ///< NetworkLayer::name
  std::string dataflow;  ///< paper-style label, e.g. "MNK-SST"
  std::int64_t cycles = 0;
  double powerMw = 0.0;
  double area = 0.0;
  double utilization = 0.0;
};

/// One point of the network frontier: a complete per-layer dataflow
/// assignment on one candidate array.
struct NetworkDesign {
  std::size_t arrayIndex = 0;  ///< into NetworkQuery::arrays
  /// cycles = sum over layers; powerMw/area = max over layers;
  /// utilization = network MACs / (PEs * cycles).
  ParetoCost cost;
  std::vector<LayerAssignment> layers;  ///< one per layer, in network order
  /// Canonical composition order (ties collapse to the smallest; the
  /// network-level analogue of a design point's enumeration index).
  std::size_t order = 0;
};

/// Exploration traffic of one (candidate array, layer) pair.
struct NetworkLayerStats {
  std::size_t arrayIndex = 0;
  std::string layer;
  std::size_t designs = 0;       ///< enumerated design points
  std::size_t frontierSize = 0;  ///< per-layer Pareto frontier residents
  QueryCacheCounts cache;        ///< hits/misses/pruned for this layer query
};

struct NetworkResult {
  /// Network-level Pareto frontier over (cycles, power, area), sorted by
  /// (cycles, power, area, arrayIndex, order) — bit-identical across
  /// thread counts and cache states.
  std::vector<NetworkDesign> frontier;
  /// The objective winner among frontier designs (pickBest tie-breaks).
  std::optional<NetworkDesign> best;
  /// Stats in (array-major, layer) order: arrays.size() * layerCount rows.
  std::vector<NetworkLayerStats> layers;
  std::size_t designs = 0;  ///< design points summed over all layer queries
};

/// Composes already-explored per-layer frontiers into the network frontier.
/// `layerResults` holds one QueryResult per (array, layer) in array-major
/// order, positionally aligned with query.arrays x query.network.layers().
/// Throws support::Error when a layer's frontier is empty on some array
/// (no realizable design — the shared array cannot run that layer).
/// Exposed separately so benchmarks can compose naive per-layer runs
/// through the exact same code path.
NetworkResult composeLayerFrontiers(
    const NetworkQuery& query,
    const std::vector<std::vector<QueryResult>>& layerResults);

/// Parses a comma-separated "RxC[,RxC...]" candidate-array list (e.g.
/// "8x8,16x16") into configs inheriting `base`'s bandwidth, frequency and
/// word size — the format the network_explorer CLI and the explore_server
/// "arrays" field accept (docs/PROTOCOL.md). Throws support::Error on
/// malformed or non-positive entries.
std::vector<stt::ArrayConfig> parseArrayList(const std::string& list,
                                             const stt::ArrayConfig& base);

/// Builds the per-layer ExploreQuery the explorer submits for one
/// (candidate array, layer) pair — the single place the uniform query
/// controls meet the per-layer enumeration hints.
ExploreQuery layerQuery(const NetworkQuery& query,
                        const stt::ArrayConfig& array,
                        const tensor::NetworkLayer& layer);

/// Runs network queries against an ExplorationService (borrowed or owned).
class NetworkExplorer {
 public:
  /// Borrows `service`: layer queries share its pool and caches with any
  /// other traffic (the explore_server path).
  explicit NetworkExplorer(ExplorationService& service);
  /// Owns a fresh service configured with `options`.
  explicit NetworkExplorer(ServiceOptions options = {});
  ~NetworkExplorer();
  NetworkExplorer(const NetworkExplorer&) = delete;
  NetworkExplorer& operator=(const NetworkExplorer&) = delete;

  /// Explores every (candidate array, layer) pair as one service batch and
  /// composes the network frontier. Throws support::Error for an empty
  /// candidate-array list or a layer with no realizable design.
  NetworkResult explore(const NetworkQuery& query);

  /// The underlying service (for cache stats / reuse verification).
  ExplorationService& service();

 private:
  std::unique_ptr<ExplorationService> owned_;
  ExplorationService* service_;
};

}  // namespace tensorlib::driver
