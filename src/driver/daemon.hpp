// Resident exploration daemon: the robustness layer that turns the batched
// ExplorationService into something that can sit in front of real traffic.
//
//   * Admission control: a bounded queue with per-client fairness
//     (round-robin across clients, so one flooding client cannot starve
//     the rest) and an explicit Overloaded rejection — the daemon sheds
//     load instead of queueing unboundedly until it OOMs.
//   * Deadlines: requests without their own deadline get the configured
//     default; expired queries return partial frontiers marked timed-out
//     (see ExploreQuery::deadlineMs).
//   * Crash safety: the service's warm caches are snapshotted to disk on a
//     timer and on graceful shutdown, and restored on start — a restarted
//     daemon answers the workload table warm. Every snapshot failure mode
//     (missing/corrupt/truncated/mismatched) degrades to a clean cold
//     start; see driver/snapshot.*.
//
// tools/explore_server --serve wraps this class in a JSONL loop;
// tools/chaos_runner drives that loop through kill/restart/corrupt cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "driver/explore_service.hpp"

namespace tensorlib::driver {

/// Daemon configuration. docs/TUNING.md documents each knob with defaults
/// and flip-guidance; none of them changes completed-query results.
struct DaemonOptions {
  ServiceOptions service;
  /// On-disk snapshot location; empty disables persistence entirely.
  std::string snapshotPath;
  /// Periodic snapshot interval; 0 = snapshot only on graceful shutdown.
  std::int64_t snapshotIntervalMs = 0;
  /// The enumeration defaults baked into the snapshot compatibility
  /// fingerprint (snapshot::cacheSchemaFingerprint): a snapshot written
  /// under different spec-defining defaults cold-starts.
  stt::EnumerationOptions enumerationDefaults;
  /// Admission queue bounds: total queued requests, and queued requests
  /// per client. Exceeding either rejects with Admission::Overloaded.
  std::size_t queueBound = 64;
  std::size_t perClientQueueBound = 16;
  /// Deadline stamped onto requests that carry none; 0 = unbounded.
  std::int64_t defaultDeadlineMs = 0;
  /// Worker threads draining the queue; each runs one query at a time
  /// through the shared service (which fans evaluation over its own pool).
  std::size_t workers = 1;
};

/// Synchronous admission verdict for one submitted request.
enum class Admission {
  Accepted,      ///< queued; the completion callback will run exactly once
  Overloaded,    ///< queue (or the client's share of it) is full — shed
  ShuttingDown,  ///< daemon is draining; no new work is admitted
};

/// "accepted" / "overloaded" / "shutting-down".
std::string admissionName(Admission admission);

struct DaemonStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejectedOverloaded = 0;
  std::uint64_t completed = 0;  ///< includes timed-out completions
  std::uint64_t failed = 0;     ///< queries that threw (callback got error)
  std::uint64_t timedOut = 0;
  /// Queued requests removed by cancelClient() before a worker picked them
  /// up (their callbacks got the "cancelled" error outcome).
  std::uint64_t cancelled = 0;
  std::uint64_t snapshotsSaved = 0;
  std::uint64_t snapshotFailures = 0;
  std::size_t queued = 0;  ///< requests currently admitted but unfinished
};

class ExplorationDaemon {
 public:
  /// Constructs the service and, when a snapshot path is configured,
  /// restores warm state from it (any failure degrades to cold start —
  /// inspect restore() for what happened). Workers start immediately.
  explicit ExplorationDaemon(DaemonOptions options = {});
  /// Graceful shutdown: drains admitted work, then snapshots.
  ~ExplorationDaemon();
  ExplorationDaemon(const ExplorationDaemon&) = delete;
  ExplorationDaemon& operator=(const ExplorationDaemon&) = delete;

  /// One finished request: exactly one of `result` / `error` is set.
  struct Outcome {
    std::optional<QueryResult> result;
    std::string error;
    bool failed() const { return !result.has_value(); }
  };

  /// Admits one query on behalf of `client`. Overloaded/ShuttingDown are
  /// returned synchronously and `done` never runs; on Accepted, `done`
  /// runs exactly once on a worker thread (callbacks must be quick and
  /// must not re-enter submit() synchronously with heavy work).
  Admission submit(const std::string& client, ExploreQuery query,
                   std::function<void(Outcome)> done);

  /// Synchronous convenience: submit + wait. nullopt when not admitted.
  std::optional<Outcome> runOne(const std::string& client, ExploreQuery query);

  /// Removes every still-queued request of `client` — the disconnect path
  /// of the socket front-end (a dropped connection's queued work is
  /// pointless; its in-flight request, if any, completes normally and the
  /// caller discards the response). Each cancelled request's callback runs
  /// exactly once, synchronously, with an Outcome whose error is
  /// "cancelled". Returns how many were cancelled.
  std::size_t cancelClient(const std::string& client);

  /// Snapshots the warm caches right now (no-op false when persistence is
  /// disabled). Also runs on the configured timer and on shutdown.
  bool snapshotNow();

  /// Stops admitting, drains every accepted request, joins the workers,
  /// and writes a final snapshot. Idempotent.
  void shutdown();

  /// What the start-up restore did (status Missing when persistence is
  /// disabled or the file did not exist — i.e. a cold first boot).
  const snapshot::RestoreResult& restore() const;

  DaemonStats stats() const;
  ExplorationService& service();
  const DaemonOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tensorlib::driver
