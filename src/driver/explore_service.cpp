#include "driver/explore_service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "sim/perf.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "support/threadpool.hpp"

namespace tensorlib::driver {

namespace {

// ---- canonical cache keys --------------------------------------------------
// Two queries share cached work iff their keys match, so keys must capture
// everything the cached value depends on — and nothing more (perf knobs like
// useLegacyEnumeration produce byte-identical output and are excluded).

std::string algebraKey(const tensor::TensorAlgebra& a) {
  std::ostringstream os;
  os << a.name() << ";";
  for (const auto& loop : a.loops()) os << loop.name << "=" << loop.extent << ",";
  os << ";" << a.output().tensor << ":" << a.output().access.str();
  for (const auto& in : a.inputs()) os << ";" << in.tensor << ":" << in.access.str();
  return os.str();
}

std::string arrayKey(const stt::ArrayConfig& c) {
  std::ostringstream os;
  os << c.rows << "x" << c.cols << "@" << c.frequencyMHz << "/"
     << c.bandwidthGBps << "/" << c.dataBytes;
  return os.str();
}

std::string enumKey(const stt::EnumerationOptions& o) {
  std::ostringstream os;
  os << "e" << o.maxEntry << (o.requireUnimodular ? "u" : "-")
     << (o.canonicalize ? "c" : "-") << (o.dedupeBySignature ? "d" : "-")
     << (o.dropFullReuse ? "f" : "-") << (o.dropAllUnicast ? "a" : "-")
     << (o.boundFirst ? "b" : "-");
  return os.str();
}

std::string specKey(const stt::DataflowSpec& spec) {
  // The selection's loop INDICES are part of the key: labels abbreviate
  // loops to initials, so two selections over same-initial loops (e.g.
  // {m,n,ka} and {m,n,kb}) would otherwise collide at equal transforms.
  std::ostringstream os;
  for (std::size_t idx : spec.selection().indices()) os << idx << ".";
  os << "|" << spec.letters() << "|" << spec.transform().str();
  return os.str();
}

/// Packs a partial transform's six |entry| values (each < 2^10 for any
/// sane maxEntry) into the bound-memo key. The bound depends only on these
/// and the selection geometry, so the memo is scoped per selection.
std::uint64_t partialBoundKey(const stt::PartialTransform& p) {
  std::uint64_t k = 0;
  for (int j = 0; j < 3; ++j)
    k = (k << 10) | static_cast<std::uint64_t>(p.absRow0[j] & 1023);
  for (int j = 0; j < 3; ++j)
    k = (k << 10) | static_cast<std::uint64_t>(p.absRow1[j] & 1023);
  return k;
}

std::shared_ptr<const cost::CostBackend> makeBackend(const ExploreQuery& q) {
  return q.backend == cost::BackendKind::Asic
             ? cost::makeAsicBackend(q.dataWidth)
             : cost::makeFpgaBackend(q.fpga);
}

ParetoEntry paretoEntryOf(const sim::PerfResult& perf,
                          const cost::CostFigures& figures, std::size_t order,
                          std::string label) {
  ParetoEntry e;
  e.cost.cycles = static_cast<double>(perf.totalCycles);
  e.cost.powerMw = figures.powerMw;
  e.cost.area = figures.area;
  e.cost.utilization = perf.utilization;
  e.order = order;
  e.label = std::move(label);
  return e;
}

}  // namespace

std::string CacheStats::str() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " evictions=" << evictions
     << " entries=" << entries << " shards=" << shards << " mappings=["
     << mappings.str() << "]";
  return os.str();
}

// ---- service implementation ------------------------------------------------

struct ExplorationService::Impl {
  /// One memoized evaluation. The first thread to reach the entry computes
  /// it under the once_flag; concurrent askers block until it is ready, so
  /// overlapping queries inside one batch still evaluate each point once.
  struct EvalEntry {
    std::once_flag once;
    sim::PerfResult perf;
    cost::CostReport cost;
    /// Set (release) after `once` ran: snapshot export must only persist
    /// entries whose values are actually populated, and the once_flag
    /// itself cannot be queried.
    std::atomic<bool> ready{false};
  };

  struct EvalShard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<EvalEntry>> map;
    std::deque<std::string> fifo;  ///< insertion order, for eviction
    std::uint64_t hits = 0, misses = 0, evictions = 0;
  };

  /// Memoized enumerated design space (shared across queries; in-flight
  /// holders keep evicted lists alive through the shared_ptr). The packed
  /// block view and per-spec cache keys are built lazily under their own
  /// once_flag: only block-path queries pay for them, exactly once per
  /// list no matter how many queries share it.
  struct SpecListEntry {
    std::once_flag once;
    std::shared_ptr<const std::vector<stt::DataflowSpec>> specs;
    std::once_flag blockOnce;
    std::shared_ptr<const stt::SpecBlockSet> block;
    std::shared_ptr<const std::vector<std::string>> specKeys;
  };

  ServiceOptions options;
  ThreadPool pool;
  std::vector<EvalShard> shards;
  /// Memoized tile mappings (perf + cost of one FPGA evaluation share one
  /// search; scoped per service). Null when disabled.
  std::unique_ptr<stt::MappingCache> mappings;

  std::mutex specMutex;
  std::unordered_map<std::string, std::shared_ptr<SpecListEntry>> specMap;
  std::deque<std::string> specFifo;

  // In-flight submit() runs; the destructor waits for zero so a future
  // that outlives the service cannot touch freed state.
  std::mutex pendingMutex;
  std::condition_variable pendingDone;
  std::size_t pendingSubmits = 0;

  explicit Impl(ServiceOptions opts)
      : options(resolve(opts)), pool(options.threads - 1), shards(options.shardCount) {
    if (options.mappingCacheCapacity > 0)
      mappings = std::make_unique<stt::MappingCache>(options.mappingCacheCapacity);
  }

  static ServiceOptions resolve(ServiceOptions o) {
    if (o.threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      o.threads = hw > 0 ? hw : 1;
    }
    if (o.shardCount == 0) o.shardCount = 1;
    if (o.workUnitSpecs == 0) o.workUnitSpecs = 1;
    return o;
  }

  std::size_t perShardCapacity() const {
    const std::size_t cap = options.cacheCapacity / options.shardCount;
    return cap > 0 ? cap : 1;
  }

  /// Returns the entry for `key` if present (counting a hit), else null
  /// without registering a miss — the pruning path peeks before deciding
  /// whether the evaluation is worth admitting to the cache at all.
  std::shared_ptr<EvalEntry> peekEntry(const std::string& key) {
    EvalShard& shard = shards[std::hash<std::string>{}(key) % shards.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return nullptr;
    ++shard.hits;
    return it->second;
  }

  /// Finds or creates the entry for `key`; second element is true on a hit.
  std::pair<std::shared_ptr<EvalEntry>, bool> evalEntry(const std::string& key) {
    EvalShard& shard = shards[std::hash<std::string>{}(key) % shards.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      ++shard.hits;
      return {it->second, true};
    }
    ++shard.misses;
    auto entry = std::make_shared<EvalEntry>();
    shard.map.emplace(key, entry);
    shard.fifo.push_back(key);
    while (shard.map.size() > perShardCapacity()) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++shard.evictions;
    }
    return {entry, false};
  }

  const EvalEntry& force(const std::shared_ptr<EvalEntry>& entry,
                         const stt::DataflowSpec& spec,
                         const stt::ArrayConfig& array,
                         const cost::CostBackend& backend) {
    std::call_once(entry->once, [&] {
      entry->perf = backend.estimatePerf(spec, array, mappings.get());
      entry->cost = backend.evaluate(spec, array, mappings.get());
      entry->ready.store(true, std::memory_order_release);
    });
    return *entry;
  }

  /// Block-path force: the packed evaluation produces the same values as
  /// force() for the same spec (the equivalence contract), so whichever
  /// path wins an entry's once_flag, every waiter reads identical results.
  const EvalEntry& forceBlock(const std::shared_ptr<EvalEntry>& entry,
                              const stt::SpecBlockSet& set, std::size_t i,
                              const stt::ArrayConfig& array,
                              const cost::CostBackend& backend,
                              stt::BlockMappingStore& store) {
    std::call_once(entry->once, [&] {
      cost::BlockEval eval = backend.evaluateBlock(set, i, array, store);
      entry->perf = eval.perf;
      entry->cost = std::move(eval.cost);
      entry->ready.store(true, std::memory_order_release);
    });
    return *entry;
  }

  /// Installs a restored evaluation under `key` unless one is already
  /// resident (live entries win — they are at least as fresh). Registers
  /// neither a hit nor a miss: restored warmth shows up as hits when
  /// queries actually touch it.
  bool importEval(const std::string& key, const sim::PerfResult& perf,
                  const cost::CostReport& cost) {
    EvalShard& shard = shards[std::hash<std::string>{}(key) % shards.size()];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.count(key) > 0) return false;
    auto entry = std::make_shared<EvalEntry>();
    std::call_once(entry->once, [&] {
      entry->perf = perf;
      entry->cost = cost;
      entry->ready.store(true, std::memory_order_release);
    });
    shard.map.emplace(key, std::move(entry));
    shard.fifo.push_back(key);
    while (shard.map.size() > perShardCapacity()) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++shard.evictions;
    }
    return true;
  }

  std::shared_ptr<SpecListEntry> specEntry(const ExploreQuery& q) {
    const std::string key = algebraKey(q.algebra) + "|" + enumKey(q.enumeration);
    std::shared_ptr<SpecListEntry> entry;
    {
      std::lock_guard<std::mutex> lock(specMutex);
      auto it = specMap.find(key);
      if (it != specMap.end()) {
        entry = it->second;
      } else {
        entry = std::make_shared<SpecListEntry>();
        specMap.emplace(key, entry);
        specFifo.push_back(key);
        while (specMap.size() > std::max<std::size_t>(1, options.specListCacheCapacity)) {
          specMap.erase(specFifo.front());
          specFifo.pop_front();
        }
      }
    }
    std::call_once(entry->once, [&] {
      entry->specs = std::make_shared<const std::vector<stt::DataflowSpec>>(
          stt::enumerateDesignSpace(q.algebra, q.enumeration));
    });
    return entry;
  }

  std::shared_ptr<const std::vector<stt::DataflowSpec>> specList(
      const ExploreQuery& q) {
    return specEntry(q)->specs;
  }

  /// Builds the packed SoA view and per-spec cache keys of one list (once;
  /// concurrent callers block until ready).
  void ensureBlock(SpecListEntry& entry) {
    std::call_once(entry.blockOnce, [&] {
      entry.block = stt::packSpecBlocks(entry.specs);
      auto keys = std::make_shared<std::vector<std::string>>();
      keys->reserve(entry.specs->size());
      for (const stt::DataflowSpec& spec : *entry.specs)
        keys->push_back(specKey(spec));
      entry.specKeys = std::move(keys);
    });
  }

  std::string evalPrefix(const ExploreQuery& q, const cost::CostBackend& backend) {
    return algebraKey(q.algebra) + "|" + arrayKey(q.array) + "|" +
           backend.cacheKey() + "|";
  }
};

ExplorationService::ExplorationService(ServiceOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

ExplorationService::~ExplorationService() {
  std::unique_lock<std::mutex> lock(impl_->pendingMutex);
  impl_->pendingDone.wait(lock, [&] { return impl_->pendingSubmits == 0; });
}

std::vector<QueryResult> ExplorationService::runBatch(
    const std::vector<ExploreQuery>& batch) {
  const std::size_t n = batch.size();
  std::vector<QueryResult> results(n);
  if (n == 0) return results;

  // Phase 1: resolve each query's backend and (cached) design space. The
  // block path additionally packs the list into its SoA view (once per
  // list) and sizes a per-query mapping store (one slot per mapping class
  // times the backend's operating-point fan-out). Bound-first queries
  // never materialize a spec list at all — they resolve per-selection
  // contexts and geometries instead, and the search streams candidates
  // into packed windows inside their (single) work unit.
  const bool useBlocks = impl_->options.blockSpecs > 0;
  struct BoundFirstQueryData {
    std::vector<stt::SpecContextPtr> contexts;     ///< one per selection
    std::vector<stt::SelectionGeometry> geometries;
    std::vector<std::string> selKeyPrefixes;  ///< "0.1.2.|" per selection
  };
  std::vector<std::shared_ptr<const cost::CostBackend>> backends(n);
  std::vector<std::shared_ptr<Impl::SpecListEntry>> listEntries(n);
  std::vector<std::shared_ptr<const std::vector<stt::DataflowSpec>>> lists(n);
  std::vector<std::string> prefixes(n);
  std::vector<std::unique_ptr<stt::BlockMappingStore>> stores(n);
  std::vector<std::unique_ptr<BoundFirstQueryData>> boundFirst(n);
  parallelForOn(impl_->pool, n, [&](std::size_t i) {
    backends[i] = makeBackend(batch[i]);
    prefixes[i] = impl_->evalPrefix(batch[i], *backends[i]);
    if (batch[i].enumeration.boundFirst) {
      auto data = std::make_unique<BoundFirstQueryData>();
      for (const stt::LoopSelection& sel :
           stt::allLoopSelections(batch[i].algebra)) {
        auto context = stt::makeSpecContext(batch[i].algebra, sel);
        data->geometries.push_back(stt::makeSelectionGeometry(*context));
        std::ostringstream os;
        for (std::size_t idx : sel.indices()) os << idx << ".";
        os << "|";
        data->selKeyPrefixes.push_back(os.str());
        data->contexts.push_back(std::move(context));
      }
      boundFirst[i] = std::move(data);
      return;
    }
    listEntries[i] = impl_->specEntry(batch[i]);
    lists[i] = listEntries[i]->specs;
    if (useBlocks) {
      impl_->ensureBlock(*listEntries[i]);
      stores[i] = std::make_unique<stt::BlockMappingStore>(
          backends[i]->blockSlotCount(*listEntries[i]->block));
    }
  });

  // Phase 2: shard every query's space into work units; fan the whole
  // batch's units out together so a wide query cannot serialize the batch.
  // A bound-first query is one serial unit — its branch-and-bound sweep is
  // inherently sequential (the streaming incumbent IS the cut), and the
  // batch still parallelizes across queries.
  struct Unit {
    std::size_t query, begin, end;
  };
  std::vector<Unit> units;
  for (std::size_t i = 0; i < n; ++i) {
    if (boundFirst[i]) {
      units.push_back({i, 0, 0});
      continue;
    }
    const std::size_t total = lists[i]->size();
    for (std::size_t b = 0; b < total; b += impl_->options.workUnitSpecs)
      units.push_back({i, b, std::min(total, b + impl_->options.workUnitSpecs)});
  }

  struct UnitOut {
    ParetoFrontier frontier;
    std::unordered_map<std::size_t, DesignReport> kept;  ///< order -> report
    std::uint64_t hits = 0, misses = 0, pruned = 0, skipped = 0;
    std::uint64_t designs = 0;  ///< bound-first only: candidates handled
  };
  std::vector<UnitOut> outs(units.size());

  // Per-query deadlines, measured from batch entry. A query whose deadline
  // expires stops mid-unit; its remaining candidates count as `skipped`
  // and the result is marked timedOut with the partial frontier.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point started = Clock::now();
  struct DeadlineState {
    Clock::time_point at{};
    bool armed = false;
    std::atomic<bool> expired{false};
  };
  std::vector<DeadlineState> deadlines(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (batch[i].deadlineMs <= 0) continue;
    deadlines[i].armed = true;
    deadlines[i].at = started + std::chrono::milliseconds(batch[i].deadlineMs);
  }

  // Per-query incumbent frontiers shared across that query's work units:
  // each completed unit publishes its survivors, each starting unit
  // snapshots the incumbents it can prune against. Every incumbent is a
  // fully evaluated true cost, so pruning against a racy snapshot is still
  // sound — only *how many* candidates get cut varies with scheduling, the
  // final frontier never does.
  struct Incumbent {
    std::mutex mutex;
    ParetoFrontier frontier;
  };
  std::vector<Incumbent> incumbents(n);
  const bool prune = impl_->options.enablePruning;

  parallelForOn(impl_->pool, units.size(), [&](std::size_t u) {
    const Unit& unit = units[u];
    const ExploreQuery& q = batch[unit.query];
    const cost::CostBackend& backend = *backends[unit.query];
    UnitOut& out = outs[u];
    DeadlineState& deadline = deadlines[unit.query];
    // Rehearsable failure boundary: the chaos harness arms slow units
    // (deadline/overload drills), thrown units (error responses), and
    // mid-batch process exits (crash-recovery drills) here.
    if (const auto fault = support::fireFault("work_unit")) {
      if (fault->action == "sleep")
        std::this_thread::sleep_for(std::chrono::milliseconds(fault->value));
      else if (fault->action == "throw")
        fail("injected work_unit fault");
      else if (fault->action == "exit")
        std::_Exit(static_cast<int>(fault->value));
    }
    // Incumbent snapshots are refreshed DURING the unit, not only at its
    // start: every incumbent is a fully evaluated true cost, so any
    // snapshot age is sound, but a stale one lets late candidates in a
    // large unit dodge cuts that completed units already justify. The
    // block path re-snapshots per block; the scalar path every
    // kScalarSnapshotSpecs candidates.
    constexpr std::size_t kScalarSnapshotSpecs = 64;
    ParetoFrontier snapshot;
    if (prune) {
      std::lock_guard<std::mutex> lock(incumbents[unit.query].mutex);
      snapshot = incumbents[unit.query].frontier;
    }
    std::vector<std::size_t> evicted;
    if (boundFirst[unit.query]) {
      // Bound-first branch-and-bound: stream the search's survivors into a
      // reusable packed window, evaluate windows through the block models,
      // and fold into the unit's own streaming frontier — which doubles as
      // the incumbent the partial-transform cut prices against (one unit
      // per query, so there is nothing to snapshot). DataflowSpecs are
      // materialized lazily, only for frontier keepers.
      const BoundFirstQueryData& bf = *boundFirst[unit.query];
      const std::size_t windowSize =
          impl_->options.blockSpecs > 0 ? impl_->options.blockSpecs : 64;
      stt::SpecBlockSet window;
      std::vector<linalg::IntMatrix> matrices;  ///< signed, for lazy analyze
      std::vector<std::size_t> orders;          ///< running rep order/window
      std::vector<std::string> keys;
      std::vector<std::shared_ptr<Impl::EvalEntry>> resident;
      std::vector<std::uint8_t> state;
      std::vector<std::size_t> pendingIdx;
      std::vector<cost::CostBound> bounds;
      std::unordered_map<std::uint64_t, cost::CostBound> boundMemo;
      std::size_t repCounter = 0;
      const auto expired = [&] {
        if (!deadline.armed) return false;
        if (deadline.expired.load(std::memory_order_relaxed)) return true;
        if (Clock::now() >= deadline.at) {
          deadline.expired.store(true, std::memory_order_relaxed);
          return true;
        }
        return false;
      };
      for (std::size_t s = 0; s < bf.contexts.size(); ++s) {
        if (expired()) break;  // unreached candidates are not designs
        const stt::SelectionGeometry& geometry = bf.geometries[s];
        boundMemo.clear();  // the partial bound reads this geometry
        const auto resetWindow = [&] {
          stt::resetSpecBlocks(window, geometry);
          matrices.clear();
          orders.clear();
          keys.clear();
        };
        resetWindow();
        const auto flushWindow = [&] {
          const std::size_t count = window.count;
          if (count == 0) return;
          if (expired()) {  // emitted but never evaluated -> skipped
            out.skipped += count;
            resetWindow();
            return;
          }
          stt::assignSpecBlockClasses(window);
          stt::BlockMappingStore store(backend.blockSlotCount(window));
          // The list block path's three passes: cache peek, packed bounds
          // (tighter than the partial cut — they see class structures and
          // the exact per-candidate intensity), evaluate survivors.
          resident.assign(count, nullptr);
          state.assign(count, 0);
          pendingIdx.clear();
          if (prune) {
            for (std::size_t i = 0; i < count; ++i) {
              std::shared_ptr<Impl::EvalEntry> entry =
                  impl_->peekEntry(keys[i]);
              state[i] = entry ? 1 : 0;
              resident[i] = std::move(entry);
              if (state[i] == 0) pendingIdx.push_back(i);
            }
            if (!pendingIdx.empty()) {
              bounds.resize(pendingIdx.size());
              backend.lowerBoundBlock(window, pendingIdx.data(),
                                      pendingIdx.size(), q.array,
                                      bounds.data());
              for (std::size_t p = 0; p < pendingIdx.size(); ++p) {
                const ParetoCost boundCost{bounds[p].cycles,
                                           bounds[p].figures.powerMw,
                                           bounds[p].figures.area, 0.0};
                if (finiteCost(boundCost) &&
                    out.frontier.strictlyDominates(boundCost)) {
                  ++out.pruned;
                  state[pendingIdx[p]] = 2;
                }
              }
            }
          }
          for (std::size_t i = 0; i < count; ++i) {
            if (state[i] == 2) continue;
            std::shared_ptr<Impl::EvalEntry> entry = std::move(resident[i]);
            bool hit = state[i] == 1;
            if (!entry) std::tie(entry, hit) = impl_->evalEntry(keys[i]);
            impl_->forceBlock(entry, window, i, q.array, backend, store);
            (hit ? out.hits : out.misses) += 1;
            evicted.clear();
            if (out.frontier.insert(
                    paretoEntryOf(entry->perf, entry->cost.figures, orders[i],
                                  window.labels[i]),
                    &evicted)) {
              // Only frontier keepers ever pay for a DataflowSpec.
              stt::DataflowSpec spec = stt::analyzeDataflow(
                  bf.contexts[s], stt::SpaceTimeTransform(matrices[i]));
              out.kept.emplace(
                  orders[i],
                  DesignReport(std::move(spec), entry->perf, entry->cost));
            }
            for (std::size_t o : evicted) out.kept.erase(o);
          }
          resetWindow();
        };
        stt::BoundFirstHooks hooks;
        if (prune)
          hooks.cut = [&](const stt::PartialTransform& partial) {
            const std::uint64_t k = partialBoundKey(partial);
            auto it = boundMemo.find(k);
            if (it == boundMemo.end())
              it = boundMemo
                       .emplace(k, backend.lowerBoundPartial(partial, q.array))
                       .first;
            // Memoize only the BOUND: the incumbent frontier grows during
            // the sweep, so the cut decision is re-taken every time.
            const ParetoCost boundCost{it->second.cycles,
                                       it->second.figures.powerMw,
                                       it->second.figures.area, 0.0};
            if (finiteCost(boundCost) &&
                out.frontier.strictlyDominates(boundCost)) {
              ++out.pruned;
              ++out.designs;
              return true;
            }
            return false;
          };
        hooks.emit = [&](const stt::BoundFirstCandidate& c) {
          stt::appendSpecBlock(window, geometry, *c.matrix, c.classTag,
                               c.absDir, c.systolicDt,
                               geometry.selectionLabel + "-" + c.letters);
          matrices.push_back(*c.matrix);
          orders.push_back(repCounter++);
          keys.push_back(prefixes[unit.query] + bf.selKeyPrefixes[s] +
                         c.letters + "|" + c.matrix->str());
          ++out.designs;
          if (window.count >= windowSize) flushWindow();
        };
        if (deadline.armed) hooks.shouldStop = expired;
        const stt::BoundFirstStats st = stt::enumerateBoundFirst(
            bf.contexts[s], geometry, q.enumeration, hooks);
        if (st.stopped) {
          out.skipped += window.count;
          break;
        }
        flushWindow();
      }
    } else if (useBlocks) {
      const auto& specs = *lists[unit.query];
      const stt::SpecBlockSet& set = *listEntries[unit.query]->block;
      const std::vector<std::string>& specKeys = *listEntries[unit.query]->specKeys;
      stt::BlockMappingStore& store = *stores[unit.query];
      // Per-unit scratch, reused across blocks: the inner passes allocate
      // nothing per candidate (keys reuse one buffer's capacity).
      const std::size_t blockCap =
          std::min(impl_->options.blockSpecs, unit.end - unit.begin);
      std::string key;
      std::vector<std::shared_ptr<Impl::EvalEntry>> resident(blockCap);
      std::vector<std::uint8_t> state(blockCap);  // 0 eval, 1 hit, 2 pruned
      std::vector<std::size_t> pending;
      std::vector<cost::CostBound> bounds;
      pending.reserve(blockCap);
      for (std::size_t b = unit.begin; b < unit.end;
           b += impl_->options.blockSpecs) {
        // The deadline is observed at block boundaries; on expiry the
        // WHOLE untouched remainder counts as skipped, so the accounting
        // invariant (hits + misses + pruned + skipped == designs) holds
        // exactly for timed-out partial results too.
        if (deadline.armed &&
            (deadline.expired.load(std::memory_order_relaxed) ||
             Clock::now() >= deadline.at)) {
          deadline.expired.store(true, std::memory_order_relaxed);
          out.skipped += unit.end - b;
          break;
        }
        const std::size_t blockEnd =
            std::min(unit.end, b + impl_->options.blockSpecs);
        if (prune && b != unit.begin) {
          std::lock_guard<std::mutex> lock(incumbents[unit.query].mutex);
          snapshot = incumbents[unit.query].frontier;
        }
        // Pass 1 — cache peek: resident evaluations are cheaper than
        // bounding, so hits bypass the bound pass entirely.
        pending.clear();
        for (std::size_t i = b; i < blockEnd; ++i) {
          key.assign(prefixes[unit.query]);
          key.append(specKeys[i]);
          std::shared_ptr<Impl::EvalEntry> entry =
              prune ? impl_->peekEntry(key) : nullptr;
          state[i - b] = entry ? 1 : 0;
          resident[i - b] = std::move(entry);
          if (prune && state[i - b] == 0) pending.push_back(i);
        }
        // Pass 2 — packed lower bounds for every non-resident candidate
        // of the block, then whole-block dominance cuts against the fresh
        // snapshot and this unit's own evaluated stream, all BEFORE any
        // tile-mapping search.
        if (!pending.empty()) {
          bounds.resize(pending.size());
          backend.lowerBoundBlock(set, pending.data(), pending.size(),
                                  q.array, bounds.data());
          for (std::size_t p = 0; p < pending.size(); ++p) {
            const ParetoCost boundCost{bounds[p].cycles,
                                       bounds[p].figures.powerMw,
                                       bounds[p].figures.area, 0.0};
            if (finiteCost(boundCost) &&
                (snapshot.strictlyDominates(boundCost) ||
                 out.frontier.strictlyDominates(boundCost))) {
              ++out.pruned;
              state[pending[p] - b] = 2;
            }
          }
        }
        // Pass 3 — evaluate survivors (packed models + per-class mapping
        // store) and fold into the streaming frontier in index order.
        for (std::size_t i = b; i < blockEnd; ++i) {
          if (state[i - b] == 2) continue;
          std::shared_ptr<Impl::EvalEntry> entry = std::move(resident[i - b]);
          bool hit = state[i - b] == 1;
          if (!entry) {
            key.assign(prefixes[unit.query]);
            key.append(specKeys[i]);
            std::tie(entry, hit) = impl_->evalEntry(key);
          }
          impl_->forceBlock(entry, set, i, q.array, backend, store);
          (hit ? out.hits : out.misses) += 1;
          evicted.clear();
          if (out.frontier.insert(paretoEntryOf(entry->perf,
                                                entry->cost.figures, i,
                                                set.labels[i]),
                                  &evicted))
            out.kept.emplace(i, DesignReport(specs[i], entry->perf,
                                             entry->cost));
          for (std::size_t o : evicted) out.kept.erase(o);
        }
      }
    } else {
    const auto& specs = *lists[unit.query];
    std::size_t sinceSnapshot = 0;
    for (std::size_t i = unit.begin; i < unit.end; ++i) {
      if (deadline.armed && (deadline.expired.load(std::memory_order_relaxed) ||
                             Clock::now() >= deadline.at)) {
        deadline.expired.store(true, std::memory_order_relaxed);
        out.skipped += unit.end - i;
        break;
      }
      if (prune && sinceSnapshot >= kScalarSnapshotSpecs) {
        std::lock_guard<std::mutex> lock(incumbents[unit.query].mutex);
        snapshot = incumbents[unit.query].frontier;
        sinceSnapshot = 0;
      }
      ++sinceSnapshot;
      const stt::DataflowSpec& spec = specs[i];
      const std::string key = prefixes[unit.query] + specKey(spec);
      std::shared_ptr<Impl::EvalEntry> entry;
      bool hit = false;
      if (prune) {
        // Cached evaluations are cheaper than bounding: peek first, bound
        // only candidates that would actually pay for a full evaluation.
        entry = impl_->peekEntry(key);
        hit = entry != nullptr;
        if (!entry) {
          // A non-pruned candidate recomputes the mapping-free cost model
          // inside evaluate(); that duplicate is microseconds against the
          // tile search it risks, and keeps the cache entry a pure
          // function of (spec, array, backend) rather than of bound state.
          const cost::CostBound bound = backend.lowerBound(spec, q.array);
          const ParetoCost boundCost{bound.cycles, bound.figures.powerMw,
                                     bound.figures.area, 0.0};
          // Strict dominance of the lower bound by a final incumbent (from
          // the snapshot or this unit's own evaluated stream) proves the
          // true cost would be rejected by insert(); skip the evaluation.
          if (finiteCost(boundCost) &&
              (snapshot.strictlyDominates(boundCost) ||
               out.frontier.strictlyDominates(boundCost))) {
            ++out.pruned;
            continue;
          }
        }
      }
      if (!entry) std::tie(entry, hit) = impl_->evalEntry(key);
      impl_->force(entry, spec, q.array, backend);
      (hit ? out.hits : out.misses) += 1;
      evicted.clear();
      if (out.frontier.insert(
              paretoEntryOf(entry->perf, entry->cost.figures, i, spec.label()),
              &evicted))
        out.kept.emplace(i, DesignReport(spec, entry->perf, entry->cost));
      for (std::size_t o : evicted) out.kept.erase(o);
    }
    }
    if (prune) {
      std::lock_guard<std::mutex> lock(incumbents[unit.query].mutex);
      incumbents[unit.query].frontier.merge(out.frontier);
    }
  });

  // Phase 3: merge unit frontiers per query (unit order; the kept set is
  // insertion-order independent, so any schedule above lands here equal).
  for (std::size_t i = 0; i < n; ++i) {
    ParetoFrontier frontier;
    std::unordered_map<std::size_t, DesignReport> kept;
    std::vector<std::size_t> pruned;
    std::uint64_t boundFirstDesigns = 0;
    for (std::size_t u = 0; u < units.size(); ++u) {
      if (units[u].query != i) continue;
      UnitOut& out = outs[u];
      results[i].cache.hits += out.hits;
      results[i].cache.misses += out.misses;
      results[i].cache.pruned += out.pruned;
      results[i].cache.skipped += out.skipped;
      boundFirstDesigns += out.designs;
      for (const ParetoEntry& e : out.frontier.entries()) {
        pruned.clear();
        if (frontier.insert(e, &pruned))
          kept.emplace(e.order, std::move(out.kept.at(e.order)));
        for (std::size_t o : pruned) kept.erase(o);
      }
    }
    const std::vector<ParetoEntry> ordered = frontier.sorted();
    results[i].designs = boundFirst[i]
                             ? static_cast<std::size_t>(boundFirstDesigns)
                             : lists[i]->size();
    results[i].timedOut = deadlines[i].expired.load(std::memory_order_relaxed);
    const QueryCacheCounts& c = results[i].cache;
    TL_CHECK(c.hits + c.misses + c.pruned + c.skipped == results[i].designs,
             "cache accounting broken: every design must be exactly one of "
             "hit/miss/pruned/skipped");
    results[i].frontier.reserve(ordered.size());
    for (const ParetoEntry& e : ordered)
      results[i].frontier.push_back(std::move(kept.at(e.order)));
    if (const auto bestIdx = pickBest(ordered, batch[i].objective))
      results[i].best = results[i].frontier[*bestIdx];
  }
  return results;
}

QueryResult ExplorationService::run(const ExploreQuery& query) {
  return std::move(runBatch({query}).front());
}

std::future<QueryResult> ExplorationService::submit(ExploreQuery query) {
  // A fresh thread (not a pool worker): run() blocks on the pool's own
  // fan-out, and a blocked worker could deadlock a single-worker pool.
  {
    std::lock_guard<std::mutex> lock(impl_->pendingMutex);
    ++impl_->pendingSubmits;
  }
  try {
    return std::async(std::launch::async, [this, q = std::move(query)] {
      struct Done {
        Impl* impl;
        ~Done() {
          std::lock_guard<std::mutex> lock(impl->pendingMutex);
          --impl->pendingSubmits;
          impl->pendingDone.notify_all();
        }
      } done{impl_.get()};
      return run(q);
    });
  } catch (...) {
    // Thread creation failed before the task (and its Done guard) existed.
    std::lock_guard<std::mutex> lock(impl_->pendingMutex);
    --impl_->pendingSubmits;
    impl_->pendingDone.notify_all();
    throw;
  }
}

std::vector<DesignReport> ExplorationService::evaluateAll(
    const ExploreQuery& query) {
  const auto backend = makeBackend(query);
  const auto list = impl_->specList(query);
  const std::string prefix = impl_->evalPrefix(query, *backend);
  const std::size_t n = list->size();

  std::vector<std::optional<DesignReport>> slots(n);
  const std::size_t chunk = impl_->options.workUnitSpecs;
  const std::size_t unitCount = (n + chunk - 1) / chunk;
  parallelForOn(impl_->pool, unitCount, [&](std::size_t u) {
    const std::size_t begin = u * chunk, end = std::min(n, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      const stt::DataflowSpec& spec = (*list)[i];
      const auto entry = impl_->evalEntry(prefix + specKey(spec)).first;
      impl_->force(entry, spec, query.array, *backend);
      slots[i].emplace(spec, entry->perf, entry->cost);
    }
  });

  std::vector<DesignReport> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

DesignReport ExplorationService::evaluate(const ExploreQuery& query,
                                          const stt::DataflowSpec& spec) {
  const auto backend = makeBackend(query);
  const auto entry =
      impl_->evalEntry(impl_->evalPrefix(query, *backend) + specKey(spec)).first;
  impl_->force(entry, spec, query.array, *backend);
  return DesignReport(spec, entry->perf, entry->cost);
}

CacheStats ExplorationService::cacheStats() const {
  CacheStats stats;
  stats.shards = impl_->shards.size();
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.entries += shard.map.size();
  }
  if (impl_->mappings) stats.mappings = impl_->mappings->stats();
  return stats;
}

void ExplorationService::clearCache() {
  for (auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
    shard.fifo.clear();
    shard.hits = shard.misses = shard.evictions = 0;
  }
  if (impl_->mappings) impl_->mappings->clear();
  std::lock_guard<std::mutex> lock(impl_->specMutex);
  impl_->specMap.clear();
  impl_->specFifo.clear();
}

bool ExplorationService::saveSnapshot(const std::string& path,
                                      const std::string& fingerprint) const {
  namespace snap = snapshot;
  snap::Writer w;
  w.str(fingerprint);

  // Candidate-matrix memo (process-wide; shared by every service).
  const auto candidates = stt::exportCandidateCache();
  w.u64(candidates.size());
  for (const stt::CandidateCacheEntry& entry : candidates) {
    w.i64(entry.maxEntry);
    w.u8(static_cast<std::uint8_t>((entry.requireUnimodular ? 1 : 0) |
                                   (entry.canonicalize ? 2 : 0) |
                                   (entry.legacyEngine ? 4 : 0) |
                                   (entry.boundFirst ? 8 : 0)));
    w.u64(entry.matrices->size());
    for (const linalg::IntMatrix& m : *entry.matrices) snap::writeMatrix(w, m);
  }

  // Tile-mapping memo.
  const auto mappings =
      impl_->mappings ? impl_->mappings->exportEntries()
                      : std::vector<std::pair<
                            std::string, std::shared_ptr<const stt::TileMapping>>>{};
  w.u64(mappings.size());
  for (const auto& [key, mapping] : mappings) {
    w.str(key);
    snap::writeMapping(w, *mapping);
  }

  // Eval cache: only entries whose evaluation completed (an in-flight
  // once_flag's values are garbage) — collected under the shard locks.
  std::vector<std::pair<std::string, std::shared_ptr<Impl::EvalEntry>>> evals;
  for (const auto& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::string& key : shard.fifo) {
      const auto it = shard.map.find(key);
      if (it == shard.map.end()) continue;
      if (!it->second->ready.load(std::memory_order_acquire)) continue;
      evals.emplace_back(key, it->second);
    }
  }
  w.u64(evals.size());
  for (const auto& [key, entry] : evals) {
    w.str(key);
    snap::writePerf(w, entry->perf);
    snap::writeCost(w, entry->cost);
  }

  return snap::writeSnapshotFile(path, w.takeBuffer());
}

snapshot::RestoreResult ExplorationService::restoreSnapshot(
    const std::string& path, const std::string& fingerprint) {
  namespace snap = snapshot;
  snap::RestoreResult result;
  const auto payload =
      snap::readSnapshotFile(path, &result.status, &result.message);
  if (!payload) return result;

  // Decode the WHOLE payload into staging containers before touching any
  // live cache: a snapshot that fails mid-decode leaves the service
  // exactly as cold as it was, never half-populated.
  std::vector<stt::CandidateCacheEntry> candidateLists;
  std::vector<std::pair<std::string, std::shared_ptr<const stt::TileMapping>>>
      mappingEntries;
  std::vector<std::tuple<std::string, sim::PerfResult, cost::CostReport>> evals;
  try {
    snap::Reader r(*payload);
    const std::string snapshotFingerprint = r.str();
    if (snapshotFingerprint != fingerprint) {
      result.status = snap::RestoreStatus::ConfigMismatch;
      result.message = "snapshot fingerprint '" + snapshotFingerprint +
                       "' != expected '" + fingerprint + "'";
      return result;
    }

    const std::uint64_t lists = r.u64();
    for (std::uint64_t i = 0; i < lists; ++i) {
      stt::CandidateCacheEntry entry;
      entry.maxEntry = static_cast<int>(r.i64());
      const std::uint8_t flags = r.u8();
      entry.requireUnimodular = (flags & 1) != 0;
      entry.canonicalize = (flags & 2) != 0;
      entry.legacyEngine = (flags & 4) != 0;
      entry.boundFirst = (flags & 8) != 0;
      const std::uint64_t count = r.u64();
      std::vector<linalg::IntMatrix> matrices;
      matrices.reserve(count);
      for (std::uint64_t j = 0; j < count; ++j)
        matrices.push_back(snap::readMatrix(r));
      entry.matrices = std::make_shared<const std::vector<linalg::IntMatrix>>(
          std::move(matrices));
      candidateLists.push_back(std::move(entry));
    }

    const std::uint64_t mappings = r.u64();
    for (std::uint64_t i = 0; i < mappings; ++i) {
      std::string key = r.str();
      auto mapping =
          std::make_shared<const stt::TileMapping>(snap::readMapping(r));
      mappingEntries.emplace_back(std::move(key), std::move(mapping));
    }

    const std::uint64_t entries = r.u64();
    for (std::uint64_t i = 0; i < entries; ++i) {
      std::string key = r.str();
      sim::PerfResult perf = snap::readPerf(r);
      cost::CostReport cost = snap::readCost(r);
      evals.emplace_back(std::move(key), perf, std::move(cost));
    }

    TL_CHECK(r.done(), "snapshot payload has trailing bytes");
  } catch (const std::exception& e) {
    // std::exception, not just Error: a hostile/buggy payload can also
    // surface as bad_alloc or length_error, and any decode failure must
    // degrade to a cold start rather than crash the daemon at startup.
    result.status = snap::RestoreStatus::Corrupt;
    result.message = e.what();
    return result;
  }

  result.candidateLists = stt::importCandidateCache(candidateLists);
  if (impl_->mappings)
    result.mappingEntries = impl_->mappings->importEntries(mappingEntries);
  for (const auto& [key, perf, cost] : evals)
    if (impl_->importEval(key, perf, cost)) ++result.evalEntries;
  result.status = snap::RestoreStatus::Restored;
  return result;
}

ExplorationService& ExplorationService::shared() {
  static ExplorationService service;
  return service;
}

}  // namespace tensorlib::driver
