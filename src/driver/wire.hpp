// Wire protocol for the exploration servers: one flat JSON object per
// line in each direction (docs/PROTOCOL.md is the full schema).
//
// This is the single codec behind every transport — the batch CLI, the
// stdio --serve loop, and the TCP/unix-socket front-end
// (driver/socket_server.*) all parse requests and format responses through
// these functions, which is what makes "socket responses are bit-identical
// to stdio responses" true by construction rather than by test alone.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "driver/daemon.hpp"
#include "driver/network_explorer.hpp"
#include "support/jsonl.hpp"
#include "verify/model_conformance.hpp"

namespace tensorlib::driver::wire {

/// One decoded request line. Exactly one kind is active; `query` /
/// `network` / `model` are engaged to match.
struct Request {
  enum class Kind {
    Query,             ///< one operator on one array (driver::ExploreQuery)
    Network,           ///< whole-model request (driver::NetworkQuery)
    ModelConformance,  ///< stitched-model oracle (verify::checkModel)
    CacheStats,        ///< {"cache_stats": true} control request
    Shutdown,          ///< {"shutdown": true} control request
  };

  Kind kind = Kind::Query;
  std::optional<ExploreQuery> query;
  std::optional<NetworkQuery> network;
  std::optional<tensor::NetworkSpec> model;  ///< ModelConformance target
  /// ModelConformance knobs (array/data_seed/threads/data_width; the
  /// oracle owns its own ExplorationService, isolated from the server's).
  verify::ModelConformanceOptions modelOptions;
  std::string name;    ///< workload or model name, echoed in the response
  std::string client;  ///< admission-fairness identity ("client" field)
};

/// Parses one already-decoded JSON line into a request. Throws
/// tensorlib::Error (with the offending field) on anything malformed —
/// the caller turns that into an errorLine() in the request's slot.
Request parseRequest(const support::JsonObject& obj);

/// {"query": i, "error": "..."}
std::string errorLine(std::size_t index, const std::string& message);

/// Response line for one completed plain query.
std::string resultLine(std::size_t index, const std::string& workload,
                       const std::string& backend, const std::string& objective,
                       const QueryResult& result, std::size_t maxFrontier);

/// Response line for one completed network query.
std::string networkResultLine(std::size_t index, const std::string& name,
                              const NetworkQuery& query,
                              const NetworkResult& result,
                              std::size_t maxFrontier);

/// Response line for one completed model-conformance request: verdict,
/// per-layer assignments (with substitutions), committed buffer depths,
/// and — on failure — the first divergent (layer, element, cycle).
std::string modelConformanceResultLine(
    std::size_t index, const verify::ModelConformanceReport& report);

/// Service-wide cache summary fragment: eval cache plus the tile-mapping
/// and candidate-matrix memos (all three layers the snapshot persists).
std::string cacheStatsJson(const CacheStats& stats);

/// The closing {"shutdown": {...}} summary a draining server emits.
std::string shutdownSummaryLine(const DaemonStats& stats,
                                const CacheStats& cache);

}  // namespace tensorlib::driver::wire
