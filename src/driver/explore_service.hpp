// Batched design-space exploration service — the traffic-facing layer over
// enumerate → analyze → evaluate.
//
// One-shot Session::exploreAll() re-enumerates and re-evaluates everything
// per call; the service amortizes that across many concurrent queries:
//
//   * Batching/sharding: each query's enumerated design space is split
//     into fixed-size work units and the whole batch's units fan out over
//     the service's own thread pool (support/parallelForOn). Results land
//     in per-unit slots and merge in unit order, so output is bit-identical
//     at every worker count.
//   * Cross-query caching: evaluations are memoized in a sharded map keyed
//     by canonical (algebra, array, cost-backend, spec). Overlapping
//     queries — same GEMM at different objectives, array sweeps that share
//     the algebra, duplicate user queries — pay for each design point once.
//     Enumerated spec lists are cached the same way. Hit/miss/eviction
//     stats are surfaced per query and service-wide.
//   * Incremental Pareto streaming: run()/runBatch() fold every evaluated
//     point into a (cycles, power, area) ParetoFrontier on the fly and keep
//     reports only for frontier residents, instead of materializing the
//     full space. evaluateAll() retains the materializing contract for
//     Session::exploreAll.
//   * Lower-bound dominance pruning (branch-and-bound): before fully
//     evaluating a candidate, its provable lower bound (exact inventory
//     power/area + cyclesLowerBound) is tested against the query's
//     incumbent frontier; strictly dominated candidates skip evaluation
//     entirely. Pruning only ever removes points insert() would reject, so
//     frontiers stay bit-identical to exhaustive evaluation at any worker
//     count (see the pruning differential tests).
//   * Multi-backend objectives: a query targets the ASIC or the FPGA cost
//     model through cost::CostBackend; frontiers and objective winners use
//     the backend-neutral CostFigures axes.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/backend.hpp"
#include "driver/pareto.hpp"
#include "driver/session.hpp"
#include "driver/snapshot.hpp"

namespace tensorlib::driver {

/// One exploration request: what to enumerate, on which array, optimizing
/// what, priced by which implementation target.
struct ExploreQuery {
  explicit ExploreQuery(tensor::TensorAlgebra a) : algebra(std::move(a)) {}

  tensor::TensorAlgebra algebra;
  stt::ArrayConfig array;
  Objective objective = Objective::Performance;
  cost::BackendKind backend = cost::BackendKind::Asic;
  int dataWidth = 16;        ///< ASIC datapath width (ignored by FPGA)
  cost::FpgaConfig fpga;     ///< FPGA backend configuration (ignored by ASIC)
  stt::EnumerationOptions enumeration;
  /// Wall-clock budget in milliseconds, measured from the moment
  /// runBatch() starts; 0 = no deadline. An expired query stops evaluating,
  /// returns the frontier of what it did evaluate, and is marked
  /// QueryResult::timedOut — the daemon's way of answering under overload
  /// instead of holding a client forever. Timed-out results are PARTIAL:
  /// the bit-identity guarantees apply only to queries that finish.
  std::int64_t deadlineMs = 0;
};

/// Evaluation-cache traffic attributable to one query. Exact on a
/// single-threaded service; approximate under concurrency (simultaneous
/// misses on one key each count themselves a miss, and pruning depends on
/// how fast incumbents arrive).
struct QueryCacheCounts {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Candidates skipped by the lower-bound dominance cut: an incumbent
  /// frontier point strictly dominated the candidate's provable lower
  /// bound, so its full evaluation was provably irrelevant to the frontier.
  /// Bound-first queries also count candidates cut at the partial-transform
  /// stage (before any DataflowSpec existed) here.
  std::uint64_t pruned = 0;
  /// Candidates never reached because the query's deadline expired first.
  /// Every enumerated design lands in exactly one bucket:
  /// hits + misses + pruned + skipped == designs for run()/runBatch()
  /// (skipped == 0 unless the query timed out).
  std::uint64_t skipped = 0;
};

struct QueryResult {
  /// Pareto-optimal designs over (cycles, power, area), sorted by
  /// (cycles, power, area, enumeration index) — bit-identical across
  /// thread counts, cold/warm caches, and pruned/exhaustive evaluation.
  std::vector<DesignReport> frontier;
  /// The query-objective winner (canonical tie-breaks; see pickBest).
  std::optional<DesignReport> best;
  /// Design points handled: the enumerated space's size, or — for
  /// bound-first queries — candidates visited by the search (cut at the
  /// partial stage + emitted representatives; class-quotiented duplicates
  /// are not designs). Partial when timedOut.
  std::size_t designs = 0;
  QueryCacheCounts cache;
  /// True iff the query's deadline expired before every design point was
  /// handled; the frontier (and best) then cover only the evaluated prefix
  /// of the space and carry no bit-identity guarantee.
  bool timedOut = false;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  ///< evaluations currently resident
  std::size_t shards = 0;
  stt::MappingCacheStats mappings;  ///< tile-mapping memo traffic
  std::string str() const;
};

/// Service configuration. No knob changes results — frontiers and winners
/// are bit-identical across every setting; knobs trade speed and memory.
/// docs/TUNING.md documents each one with defaults and flip-guidance.
struct ServiceOptions {
  /// Evaluation threads including the calling thread; 0 = hardware size.
  std::size_t threads = 0;
  std::size_t shardCount = 16;            ///< evaluation-cache shards
  std::size_t cacheCapacity = 1u << 16;   ///< cached evaluations (FIFO/shard)
  std::size_t specListCacheCapacity = 8;  ///< enumerated design spaces kept
  std::size_t workUnitSpecs = 128;        ///< specs per scheduled work unit
  /// Specs per evaluation block inside a work unit. The default (64, the
  /// bench-gated setting — bench_block, >= 2x) runs run()/runBatch()
  /// through the struct-of-arrays block pipeline: each enumerated list is
  /// packed once into contiguous arrays (stt::SpecBlockSet), every block
  /// peeks the eval cache, lower-bounds all non-resident candidates in one
  /// packed pass, prunes whole blocks against a per-block incumbent
  /// snapshot *before* any tile search, and evaluates survivors through a
  /// per-query mapping store (one tile search per mapping class). 0 is the
  /// escape hatch back to the scalar per-candidate path. Frontiers,
  /// winners and evaluateAll() stay bit-identical either way at any thread
  /// count (tests/block_eval_test.cpp); only speed and the
  /// hits/misses/pruned split change. Bound-first queries
  /// (EnumerationOptions::boundFirst) always evaluate through packed
  /// windows; for them this knob only sets the window size (0 -> 64).
  std::size_t blockSpecs = 64;
  /// Lower-bound dominance pruning in run()/runBatch(): candidates whose
  /// provable (cycles, power, area) lower bound is strictly dominated by an
  /// already-evaluated incumbent skip full evaluation. The resulting
  /// frontier is bit-identical to exhaustive evaluation at any thread
  /// count; only the cache-traffic split (hits/misses vs pruned) varies.
  /// evaluateAll() never prunes (it materializes every report).
  bool enablePruning = true;
  /// Capacity of the service's tile-mapping memo (see stt::MappingCache);
  /// 0 disables it. The memo halves FPGA evaluations (perf + cost both
  /// need the mapping) and is scoped to this service, so one-shot cold
  /// explorations stay honestly cold.
  std::size_t mappingCacheCapacity = 1u << 14;
};

class ExplorationService {
 public:
  explicit ExplorationService(ServiceOptions options = {});
  ~ExplorationService();
  ExplorationService(const ExplorationService&) = delete;
  ExplorationService& operator=(const ExplorationService&) = delete;

  /// Explores one query through the streaming-frontier path.
  QueryResult run(const ExploreQuery& query);

  /// Explores a batch: all queries' work units share the pool and the
  /// cache, so overlapping queries evaluate each design point once.
  /// Results are positionally aligned with `batch`.
  std::vector<QueryResult> runBatch(const std::vector<ExploreQuery>& batch);

  /// Asynchronous run() on a fresh thread (the service pool stays free for
  /// the evaluation fan-out); safe to overlap with other runs — they share
  /// the cache.
  std::future<QueryResult> submit(ExploreQuery query);

  /// Every evaluated design point in enumeration order (the materializing
  /// contract behind Session::exploreAll/compileBest).
  std::vector<DesignReport> evaluateAll(const ExploreQuery& query);

  /// Evaluates one already-analyzed spec through the cache (the path behind
  /// Session::compileLabel).
  DesignReport evaluate(const ExploreQuery& query,
                        const stt::DataflowSpec& spec);

  CacheStats cacheStats() const;
  /// Drops all cached evaluations and spec lists and zeroes the stats.
  void clearCache();

  /// Serializes the warm state — every completed eval-cache entry, the
  /// tile-mapping memo, and the process-wide candidate-matrix memo — into
  /// a versioned, checksummed snapshot written atomically (tmp + rename;
  /// see driver/snapshot.*). `fingerprint` is the cache-schema
  /// compatibility string (snapshot::cacheSchemaFingerprint) a restore
  /// must present again. Returns false on I/O failure or an injected
  /// `snapshot_write=fail` fault; the previous snapshot, if any, is left
  /// intact on failure. Safe to call concurrently with queries (entries
  /// are exported under the shard locks).
  bool saveSnapshot(const std::string& path,
                    const std::string& fingerprint) const;

  /// Restores a snapshot into this service's caches (and the candidate
  /// memo). A missing, truncated, corrupted, version-mismatched or
  /// fingerprint-mismatched snapshot degrades to a clean cold start: the
  /// result carries the reason, nothing is half-populated, and no failure
  /// ever throws. Intended to be called once, before serving traffic.
  snapshot::RestoreResult restoreSnapshot(const std::string& path,
                                          const std::string& fingerprint);

  /// Process-wide instance Sessions delegate to (hardware-sized pool,
  /// default capacities).
  static ExplorationService& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tensorlib::driver
