#include "driver/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

extern "C" {
#include <fcntl.h>
#include <unistd.h>
}

#include "support/error.hpp"
#include "support/fault.hpp"

namespace tensorlib::driver::snapshot {

namespace {

/// Reading primitives share one overrun message so a truncated snapshot is
/// diagnosable as such, not as a random decode error.
[[noreturn]] void overrun() { fail("snapshot payload truncated"); }

}  // namespace

std::string restoreStatusName(RestoreStatus status) {
  switch (status) {
    case RestoreStatus::Restored: return "restored";
    case RestoreStatus::Missing: return "missing";
    case RestoreStatus::Corrupt: return "corrupt";
    case RestoreStatus::VersionMismatch: return "version-mismatch";
    case RestoreStatus::ConfigMismatch: return "config-mismatch";
    case RestoreStatus::IoError: return "io-error";
  }
  return "unknown";
}

std::string cacheSchemaFingerprint(const stt::EnumerationOptions& defaults) {
  // "keys-v2" names the cache KEY schema (algebra/array/backend/spec key
  // rendering in explore_service.cpp plus the mapping-memo key); bump it
  // whenever any key function changes so stale snapshots cold-start
  // instead of silently never hitting. The spec-defining enumeration knobs
  // follow; the perf knobs (engine choice, memoization, parallelism) are
  // excluded because they never change what any key means.
  std::ostringstream os;
  os << "keys-v2;e" << defaults.maxEntry
     << (defaults.requireUnimodular ? "u" : "-")
     << (defaults.canonicalize ? "c" : "-")
     << (defaults.dedupeBySignature ? "d" : "-")
     << (defaults.dropFullReuse ? "f" : "-")
     << (defaults.dropAllUnicast ? "a" : "-")
     << (defaults.boundFirst ? "b" : "-");
  return os.str();
}

// ---- byte-level codec ------------------------------------------------------

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  buffer_.append(s);
}

std::uint8_t Reader::u8() {
  if (pos_ + 1 > buffer_.size()) overrun();
  return static_cast<std::uint8_t>(buffer_[pos_++]);
}

std::uint32_t Reader::u32() {
  if (pos_ + 4 > buffer_.size()) overrun();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[pos_++]))
         << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  if (pos_ + 8 > buffer_.size()) overrun();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buffer_[pos_++]))
         << (8 * i);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::str() {
  const std::uint64_t size = u64();
  if (size > remaining()) overrun();
  std::string s = buffer_.substr(pos_, size);
  pos_ += size;
  return s;
}

// ---- cached-value codecs ---------------------------------------------------

namespace {

void writeIntVector(Writer& w, const linalg::IntVector& v) {
  w.u64(v.size());
  for (std::int64_t x : v) w.i64(x);
}

linalg::IntVector readIntVector(Reader& r) {
  const std::uint64_t n = r.u64();
  // Division form: `n * 8` can wrap in uint64 for a hostile count, letting
  // a checksum-valid snapshot slip past the bound into a huge allocation.
  if (n > r.remaining() / 8) overrun();
  linalg::IntVector v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = r.i64();
  return v;
}

void writeInventory(Writer& w, const cost::StructureInventory& inv) {
  w.i64(inv.pes);
  w.i64(inv.multipliers);
  w.i64(inv.accumAdders);
  w.i64(inv.treeAdders);
  w.i64(inv.dataRegBits);
  w.i64(inv.muxes);
  w.i64(inv.busLines);
  w.i64(inv.busTaps);
  w.i64(inv.memPorts);
  w.i64(inv.stationaryPes);
  w.i64(inv.unicastPorts);
}

cost::StructureInventory readInventory(Reader& r) {
  cost::StructureInventory inv;
  inv.pes = r.i64();
  inv.multipliers = r.i64();
  inv.accumAdders = r.i64();
  inv.treeAdders = r.i64();
  inv.dataRegBits = r.i64();
  inv.muxes = r.i64();
  inv.busLines = r.i64();
  inv.busTaps = r.i64();
  inv.memPorts = r.i64();
  inv.stationaryPes = r.i64();
  inv.unicastPorts = r.i64();
  return inv;
}

}  // namespace

void writePerf(Writer& w, const sim::PerfResult& perf) {
  w.i64(perf.totalCycles);
  w.i64(perf.computeCycles);
  w.i64(perf.bandwidthCycles);
  w.i64(perf.macs);
  w.i64(perf.trafficWords);
  w.f64(perf.utilization);
  w.f64(perf.throughputGops);
  w.u8(perf.bandwidthBound ? 1 : 0);
}

sim::PerfResult readPerf(Reader& r) {
  sim::PerfResult perf;
  perf.totalCycles = r.i64();
  perf.computeCycles = r.i64();
  perf.bandwidthCycles = r.i64();
  perf.macs = r.i64();
  perf.trafficWords = r.i64();
  perf.utilization = r.f64();
  perf.throughputGops = r.f64();
  perf.bandwidthBound = r.u8() != 0;
  return perf;
}

void writeCost(Writer& w, const cost::CostReport& cost) {
  w.f64(cost.figures.powerMw);
  w.f64(cost.figures.area);
  w.f64(cost.asic.areaMm2);
  w.f64(cost.asic.powerMw);
  writeInventory(w, cost.asic.inventory);
  w.u8(cost.fpga.has_value() ? 1 : 0);
  if (cost.fpga) {
    const cost::FpgaReport& f = *cost.fpga;
    w.i64(f.luts);
    w.i64(f.dsps);
    w.i64(f.bram);
    w.f64(f.lutPct);
    w.f64(f.dspPct);
    w.f64(f.bramPct);
    w.f64(f.frequencyMHz);
    w.f64(f.gops);
    w.f64(f.powerMw);
    writeInventory(w, f.inventory);
  }
}

cost::CostReport readCost(Reader& r) {
  cost::CostReport cost;
  cost.figures.powerMw = r.f64();
  cost.figures.area = r.f64();
  cost.asic.areaMm2 = r.f64();
  cost.asic.powerMw = r.f64();
  cost.asic.inventory = readInventory(r);
  if (r.u8() != 0) {
    cost::FpgaReport f;
    f.luts = r.i64();
    f.dsps = r.i64();
    f.bram = r.i64();
    f.lutPct = r.f64();
    f.dspPct = r.f64();
    f.bramPct = r.f64();
    f.frequencyMHz = r.f64();
    f.gops = r.f64();
    f.powerMw = r.f64();
    f.inventory = readInventory(r);
    cost.fpga = std::move(f);
  }
  return cost;
}

void writeMapping(Writer& w, const stt::TileMapping& mapping) {
  writeIntVector(w, mapping.fullTile);
  w.i64(mapping.spatialRowsUsed);
  w.i64(mapping.spatialColsUsed);
  w.i64(mapping.replication);
  w.i64(mapping.outerIterations);
  w.u64(mapping.tiles.size());
  for (const stt::TileCost& tile : mapping.tiles) {
    writeIntVector(w, tile.shape);
    w.i64(tile.count);
    w.i64(tile.macs);
    w.i64(tile.computeCycles);
    w.i64(tile.trafficWords);
    writeIntVector(w, tile.tensorFootprints);
  }
}

stt::TileMapping readMapping(Reader& r) {
  stt::TileMapping mapping;
  mapping.fullTile = readIntVector(r);
  mapping.spatialRowsUsed = r.i64();
  mapping.spatialColsUsed = r.i64();
  mapping.replication = r.i64();
  mapping.outerIterations = r.i64();
  const std::uint64_t tiles = r.u64();
  if (tiles > r.remaining()) overrun();  // each tile is > 1 byte
  mapping.tiles.reserve(tiles);
  for (std::uint64_t i = 0; i < tiles; ++i) {
    stt::TileCost tile;
    tile.shape = readIntVector(r);
    tile.count = r.i64();
    tile.macs = r.i64();
    tile.computeCycles = r.i64();
    tile.trafficWords = r.i64();
    tile.tensorFootprints = readIntVector(r);
    mapping.tiles.push_back(std::move(tile));
  }
  return mapping;
}

void writeMatrix(Writer& w, const linalg::IntMatrix& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) w.i64(m.at(i, j));
}

linalg::IntMatrix readMatrix(Reader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  // Division form: `rows * cols * 8` can wrap in uint64 for hostile counts.
  if (rows != 0 && cols > r.remaining() / 8 / rows) overrun();
  linalg::IntMatrix m(rows, cols);
  for (std::uint64_t i = 0; i < rows; ++i)
    for (std::uint64_t j = 0; j < cols; ++j) m.at(i, j) = r.i64();
  return m;
}

// ---- file framing ----------------------------------------------------------

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool writeSnapshotFile(const std::string& path, const std::string& payload) {
  Writer header;
  header.u32(kSnapshotVersion);
  header.u64(payload.size());
  header.u64(fnv1a(payload));

  std::string framed(kSnapshotMagic, sizeof(kSnapshotMagic));
  framed += header.buffer();
  framed += payload;

  if (const auto fault = support::fireFault("snapshot_write")) {
    if (fault->action == "fail") return false;
    if (fault->action == "corrupt" && !payload.empty()) {
      // Flip one payload byte AFTER checksumming: the next restore must
      // detect the mismatch and cold-start.
      framed[framed.size() - 1 - payload.size() / 2] ^= 0x01;
    } else if (fault->action == "truncate") {
      framed.resize(framed.size() / 2);
    }
  }

  // Atomic + durable publish: fsync the tmp file before the rename so the
  // rename can never become durable while the data is not, then rename,
  // then fsync the containing directory so the rename itself survives a
  // power loss. A crash between any two steps leaves either the old
  // snapshot or none, never a half-written file under `path`.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* data = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  if (const int dirFd = ::open(dir.c_str(), O_RDONLY); dirFd >= 0) {
    ::fsync(dirFd);  // best-effort: the data itself is already durable
    ::close(dirFd);
  }
  return true;
}

std::optional<std::string> readSnapshotFile(const std::string& path,
                                            RestoreStatus* status,
                                            std::string* message) {
  auto cold = [&](RestoreStatus s, const std::string& m) {
    if (status) *status = s;
    if (message) *message = m;
    return std::nullopt;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return cold(RestoreStatus::Missing, "no snapshot at " + path);
  std::string framed((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  if (in.bad()) return cold(RestoreStatus::IoError, "cannot read " + path);

  constexpr std::size_t kHeaderSize = sizeof(kSnapshotMagic) + 4 + 8 + 8;
  if (framed.size() < kHeaderSize)
    return cold(RestoreStatus::Corrupt, "snapshot shorter than its header");
  if (std::memcmp(framed.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    return cold(RestoreStatus::Corrupt, "bad snapshot magic");

  Reader header(framed);
  // Skip the magic by re-reading it through the bounds-checked reader.
  for (std::size_t i = 0; i < sizeof(kSnapshotMagic); ++i) header.u8();
  const std::uint32_t version = header.u32();
  const std::uint64_t size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (version != kSnapshotVersion)
    return cold(RestoreStatus::VersionMismatch,
                "snapshot version " + std::to_string(version) + " != " +
                    std::to_string(kSnapshotVersion));
  if (size != framed.size() - kHeaderSize)
    return cold(RestoreStatus::Corrupt, "snapshot payload truncated");
  std::string payload = framed.substr(kHeaderSize);
  if (fnv1a(payload) != checksum)
    return cold(RestoreStatus::Corrupt, "snapshot checksum mismatch");

  if (status) *status = RestoreStatus::Restored;
  if (message) message->clear();
  return payload;
}

}  // namespace tensorlib::driver::snapshot
