// High-level driver: the one-call interface a downstream user starts with.
//
// A Session owns a workload + target configuration and exposes the
// end-to-end flows of Fig. 2 of the paper:
//   compileLabel("MNK-SST")  — dataflow generation + hardware implementation
//   compileBest(objective)   — design-space exploration, pick the winner
//   exploreAll()             — the full evaluated space (Fig. 5/6 material)
// plus artifact generation (Verilog) and verification (RTL and behavioral)
// for any produced design.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cost/backend.hpp"
#include "driver/pareto.hpp"
#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "verify/conformance.hpp"

namespace tensorlib::driver {

/// One evaluated design point: the spec plus its measured performance and
/// implementation cost on the target array. The cost comes from one of the
/// pluggable backends — `asic` is populated for the ASIC backend (the
/// Session default), `fpga` for the FPGA backend; `figures()` is the
/// backend-neutral view objectives and Pareto frontiers use.
struct DesignReport {
  stt::DataflowSpec spec;
  sim::PerfResult perf;
  cost::AsicReport asic;
  std::optional<cost::FpgaReport> fpga;
  cost::BackendKind backend = cost::BackendKind::Asic;

  DesignReport(stt::DataflowSpec s, sim::PerfResult p, cost::AsicReport a)
      : spec(std::move(s)), perf(p), asic(std::move(a)) {}

  DesignReport(stt::DataflowSpec s, sim::PerfResult p, cost::CostReport c)
      : spec(std::move(s)),
        perf(p),
        asic(std::move(c.asic)),
        fpga(std::move(c.fpga)),
        backend(fpga ? cost::BackendKind::Fpga : cost::BackendKind::Asic) {}

  cost::CostFigures figures() const {
    return fpga ? fpga->figures() : asic.figures();
  }
  double energyDelay() const {
    return figures().powerMw * static_cast<double>(perf.totalCycles);
  }
  std::string summary() const;
};

class Session {
 public:
  Session(tensor::TensorAlgebra algebra, stt::ArrayConfig array,
          int dataWidth = 16);

  const tensor::TensorAlgebra& algebra() const { return algebra_; }
  const stt::ArrayConfig& array() const { return array_; }

  /// Analyzes and evaluates one named dataflow; nullopt if unrealizable.
  std::optional<DesignReport> compileLabel(const std::string& label) const;

  /// Evaluates the whole enumerated design space (all loop selections).
  /// Delegates to the shared ExplorationService, so repeated explorations
  /// of the same (algebra, array) — from this or any other Session — reuse
  /// cached evaluations.
  std::vector<DesignReport> exploreAll() const;

  /// Runs exploration and returns the best design per the objective.
  /// Throws if the design space is empty.
  DesignReport compileBest(Objective objective) const;

  /// Emits synthesizable Verilog for a design (throws for rank-2 outputs,
  /// which the netlist generator does not support).
  std::string emitVerilog(const DesignReport& report) const;

  /// Generates the design's netlist and verifies one tile at RTL level
  /// against golden values; returns true on exact match.
  bool verifyRtl(const DesignReport& report, std::uint64_t seed = 1) const;

  /// Verifies the full workload with the behavioral simulator against the
  /// software reference; returns true on exact match.
  bool verifyBehavioral(const DesignReport& report, std::uint64_t seed = 1) const;

  /// Runs the cross-layer conformance oracle over this session's algebra on
  /// its array: every (capped) design point through the dense reference,
  /// both behavioral trace paths, and both RTL engines; the report names the
  /// first divergent layer per failing design with a replay seed.
  /// `options.array` is overridden by the session's array.
  verify::ConformanceReport verifyConformance(
      verify::ConformanceOptions options = {}) const;

 private:
  DesignReport evaluate(stt::DataflowSpec spec) const;

  tensor::TensorAlgebra algebra_;
  stt::ArrayConfig array_;
  int dataWidth_;
};

}  // namespace tensorlib::driver
