#include "driver/pareto.hpp"

#include <algorithm>
#include <cmath>

namespace tensorlib::driver {

std::string objectiveName(Objective objective) {
  switch (objective) {
    case Objective::Performance: return "performance";
    case Objective::Power: return "power";
    case Objective::EnergyDelay: return "energy-delay";
  }
  return "?";
}

std::optional<Objective> parseObjective(const std::string& name) {
  if (name == "performance") return Objective::Performance;
  if (name == "power") return Objective::Power;
  if (name == "energy-delay") return Objective::EnergyDelay;
  return std::nullopt;
}

bool finiteCost(const ParetoCost& cost) {
  return std::isfinite(cost.cycles) && std::isfinite(cost.powerMw) &&
         std::isfinite(cost.area);
}

bool dominates(const ParetoCost& a, const ParetoCost& b) {
  if (a.cycles > b.cycles || a.powerMw > b.powerMw || a.area > b.area)
    return false;
  return a.cycles < b.cycles || a.powerMw < b.powerMw || a.area < b.area;
}

bool equalCost(const ParetoCost& a, const ParetoCost& b) {
  return a.cycles == b.cycles && a.powerMw == b.powerMw && a.area == b.area;
}

bool ParetoFrontier::insert(const ParetoEntry& entry,
                            std::vector<std::size_t>* pruned) {
  if (!finiteCost(entry.cost)) return false;
  for (const ParetoEntry& kept : entries_) {
    if (dominates(kept.cost, entry.cost)) return false;
    if (equalCost(kept.cost, entry.cost) && kept.order <= entry.order)
      return false;
  }
  // Survived: evict residents it dominates (or cost-ties with larger order).
  std::size_t w = 0;
  for (std::size_t r = 0; r < entries_.size(); ++r) {
    const bool drop = dominates(entry.cost, entries_[r].cost) ||
                      (equalCost(entry.cost, entries_[r].cost) &&
                       entry.order < entries_[r].order);
    if (drop) {
      if (pruned) pruned->push_back(entries_[r].order);
      continue;
    }
    if (w != r) entries_[w] = std::move(entries_[r]);
    ++w;
  }
  entries_.resize(w);
  entries_.push_back(entry);
  return true;
}

bool ParetoFrontier::strictlyDominates(const ParetoCost& cost) const {
  for (const ParetoEntry& kept : entries_)
    if (dominates(kept.cost, cost)) return true;
  return false;
}

void ParetoFrontier::merge(const ParetoFrontier& other,
                           std::vector<std::size_t>* pruned) {
  for (const ParetoEntry& e : other.entries_) insert(e, pruned);
}

std::vector<ParetoEntry> ParetoFrontier::sorted() const {
  std::vector<ParetoEntry> out = entries_;
  std::sort(out.begin(), out.end(), [](const ParetoEntry& a, const ParetoEntry& b) {
    if (a.cost.cycles != b.cost.cycles) return a.cost.cycles < b.cost.cycles;
    if (a.cost.powerMw != b.cost.powerMw) return a.cost.powerMw < b.cost.powerMw;
    if (a.cost.area != b.cost.area) return a.cost.area < b.cost.area;
    return a.order < b.order;
  });
  return out;
}

namespace {

/// True iff candidate `a` beats incumbent `b` under a lexicographic list of
/// (value, minimize?) criteria; the final tie-break is always min order.
bool beats(const ParetoEntry& a, const ParetoEntry& b,
           const std::vector<std::pair<double, double>>& keysAB) {
  for (const auto& [ka, kb] : keysAB) {
    if (ka != kb) return ka < kb;
  }
  return a.order < b.order;
}

}  // namespace

std::optional<std::size_t> pickBest(const std::vector<ParetoEntry>& entries,
                                    Objective objective) {
  if (entries.empty()) return std::nullopt;

  double bestUtil = 0.0;
  for (const ParetoEntry& e : entries)
    bestUtil = std::max(bestUtil, e.cost.utilization);

  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ParetoEntry& e = entries[i];
    std::vector<std::pair<double, double>> keys;
    switch (objective) {
      case Objective::Performance:
        break;  // keys built below against the incumbent
      case Objective::Power:
        if (e.cost.utilization < 0.9 * bestUtil) continue;
        break;
      case Objective::EnergyDelay:
        break;
    }
    if (!best) {
      best = i;
      continue;
    }
    const ParetoEntry& b = entries[*best];
    switch (objective) {
      case Objective::Performance:
        keys = {{-e.cost.utilization, -b.cost.utilization},
                {e.cost.powerMw, b.cost.powerMw},
                {e.cost.area, b.cost.area}};
        break;
      case Objective::Power:
        keys = {{e.cost.powerMw, b.cost.powerMw},
                {-e.cost.utilization, -b.cost.utilization},
                {e.cost.area, b.cost.area}};
        break;
      case Objective::EnergyDelay:
        keys = {{e.cost.powerMw * e.cost.cycles, b.cost.powerMw * b.cost.cycles},
                {e.cost.cycles, b.cost.cycles},
                {e.cost.area, b.cost.area}};
        break;
    }
    if (beats(e, b, keys)) best = i;
  }
  return best;
}

}  // namespace tensorlib::driver
