#include "driver/daemon.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace tensorlib::driver {

std::string admissionName(Admission admission) {
  switch (admission) {
    case Admission::Accepted:
      return "accepted";
    case Admission::Overloaded:
      return "overloaded";
    case Admission::ShuttingDown:
      return "shutting-down";
  }
  return "unknown";
}

struct ExplorationDaemon::Impl {
  struct Item {
    ExploreQuery query;
    std::function<void(Outcome)> done;
  };

  explicit Impl(DaemonOptions opts)
      : options(std::move(opts)),
        service(options.service),
        fingerprint(snapshot::cacheSchemaFingerprint(options.enumerationDefaults)) {
    if (!options.snapshotPath.empty()) {
      restoreResult = service.restoreSnapshot(options.snapshotPath, fingerprint);
    }
    std::size_t workerCount = options.workers == 0 ? 1 : options.workers;
    workers.reserve(workerCount);
    for (std::size_t i = 0; i < workerCount; ++i) {
      workers.emplace_back([this] { workerLoop(); });
    }
    if (!options.snapshotPath.empty() && options.snapshotIntervalMs > 0) {
      timer = std::thread([this] { timerLoop(); });
    }
  }

  // ---- admission -----------------------------------------------------------

  Admission submit(const std::string& client, ExploreQuery query,
                   std::function<void(Outcome)> done) {
    if (query.deadlineMs == 0) query.deadlineMs = options.defaultDeadlineMs;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (stopping) return Admission::ShuttingDown;
      auto& queue = queues[client];
      if (totalQueued >= options.queueBound ||
          queue.size() >= options.perClientQueueBound) {
        ++stats.rejectedOverloaded;
        if (queue.empty()) queues.erase(client);
        return Admission::Overloaded;
      }
      if (queue.empty()) rotation.push_back(client);
      queue.push_back(Item{std::move(query), std::move(done)});
      ++totalQueued;
      ++stats.accepted;
    }
    workReady.notify_one();
    return Admission::Accepted;
  }

  /// Pops the next request round-robin across clients: the client at the
  /// rotation front yields one item and, if it still has queued work,
  /// re-enters at the back — a flooding client advances one slot per turn
  /// of everyone else.
  Item popNextLocked() {
    TL_CHECK(!rotation.empty(), "daemon queue accounting broken");
    std::string client = std::move(rotation.front());
    rotation.pop_front();
    auto it = queues.find(client);
    TL_CHECK(it != queues.end() && !it->second.empty(),
             "daemon queue accounting broken");
    Item item = std::move(it->second.front());
    it->second.pop_front();
    --totalQueued;
    if (it->second.empty()) {
      queues.erase(it);
    } else {
      rotation.push_back(std::move(client));
    }
    return item;
  }

  std::size_t cancelClient(const std::string& client) {
    std::vector<Item> cancelled;
    {
      std::lock_guard<std::mutex> lock(mutex);
      auto it = queues.find(client);
      if (it == queues.end()) return 0;
      for (auto& item : it->second) cancelled.push_back(std::move(item));
      totalQueued -= it->second.size();
      queues.erase(it);
      rotation.erase(std::remove(rotation.begin(), rotation.end(), client),
                     rotation.end());
      stats.cancelled += cancelled.size();
    }
    // Removing queued work can complete a drain shutdown() is waiting on.
    idle.notify_all();
    for (auto& item : cancelled) {
      if (item.done) {
        Outcome outcome;
        outcome.error = "cancelled";
        item.done(std::move(outcome));
      }
    }
    return cancelled.size();
  }

  void workerLoop() {
    for (;;) {
      std::optional<Item> item;
      {
        std::unique_lock<std::mutex> lock(mutex);
        workReady.wait(lock, [this] { return stopping || totalQueued > 0; });
        if (totalQueued == 0) break;  // stopping and drained
        item.emplace(popNextLocked());
        ++inFlight;
      }
      Outcome outcome;
      try {
        outcome.result = service.run(item->query);
      } catch (const std::exception& e) {
        outcome.error = e.what();
      } catch (...) {
        outcome.error = "unknown exploration failure";
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        --inFlight;
        if (outcome.failed()) {
          ++stats.failed;
        } else {
          ++stats.completed;
          if (outcome.result->timedOut) ++stats.timedOut;
        }
      }
      idle.notify_all();
      if (item->done) item->done(std::move(outcome));
    }
  }

  // ---- snapshots -----------------------------------------------------------

  bool snapshotNow() {
    if (options.snapshotPath.empty()) return false;
    bool ok = service.saveSnapshot(options.snapshotPath, fingerprint);
    std::lock_guard<std::mutex> lock(mutex);
    if (ok) {
      ++stats.snapshotsSaved;
    } else {
      ++stats.snapshotFailures;
    }
    return ok;
  }

  void timerLoop() {
    std::unique_lock<std::mutex> lock(timerMutex);
    auto interval = std::chrono::milliseconds(options.snapshotIntervalMs);
    while (!timerStop.wait_for(lock, interval,
                               [this] { return stopping.load(); })) {
      snapshotNow();
    }
  }

  // ---- shutdown ------------------------------------------------------------

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (stopping) return;
      stopping = true;
    }
    {
      // Wake the timer (it re-checks `stopping` under its own mutex).
      std::lock_guard<std::mutex> lock(timerMutex);
    }
    timerStop.notify_all();
    workReady.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex);
      idle.wait(lock, [this] { return totalQueued == 0 && inFlight == 0; });
    }
    workReady.notify_all();  // release workers parked on the drained queue
    for (auto& worker : workers) worker.join();
    workers.clear();
    if (timer.joinable()) timer.join();
    snapshotNow();
  }

  DaemonOptions options;
  ExplorationService service;
  std::string fingerprint;
  snapshot::RestoreResult restoreResult;

  mutable std::mutex mutex;
  std::condition_variable workReady;
  std::condition_variable idle;
  std::unordered_map<std::string, std::deque<Item>> queues;
  std::deque<std::string> rotation;  ///< clients with queued work, in turn order
  std::size_t totalQueued = 0;
  std::size_t inFlight = 0;
  /// Atomic because timerLoop()'s wait predicate reads it under timerMutex
  /// while shutdown() writes it under `mutex` — the two never synchronize
  /// through a common lock.
  std::atomic<bool> stopping{false};
  DaemonStats stats;

  std::vector<std::thread> workers;
  std::thread timer;
  std::mutex timerMutex;
  std::condition_variable timerStop;
};

ExplorationDaemon::ExplorationDaemon(DaemonOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ExplorationDaemon::~ExplorationDaemon() { impl_->shutdown(); }

Admission ExplorationDaemon::submit(const std::string& client,
                                    ExploreQuery query,
                                    std::function<void(Outcome)> done) {
  return impl_->submit(client, std::move(query), std::move(done));
}

std::optional<ExplorationDaemon::Outcome> ExplorationDaemon::runOne(
    const std::string& client, ExploreQuery query) {
  std::promise<Outcome> promise;
  std::future<Outcome> future = promise.get_future();
  Admission admission =
      impl_->submit(client, std::move(query),
                    [&promise](Outcome o) { promise.set_value(std::move(o)); });
  if (admission != Admission::Accepted) return std::nullopt;
  return future.get();
}

std::size_t ExplorationDaemon::cancelClient(const std::string& client) {
  return impl_->cancelClient(client);
}

bool ExplorationDaemon::snapshotNow() { return impl_->snapshotNow(); }

void ExplorationDaemon::shutdown() { impl_->shutdown(); }

const snapshot::RestoreResult& ExplorationDaemon::restore() const {
  return impl_->restoreResult;
}

DaemonStats ExplorationDaemon::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  DaemonStats copy = impl_->stats;
  copy.queued = impl_->totalQueued + impl_->inFlight;
  return copy;
}

ExplorationService& ExplorationDaemon::service() { return impl_->service; }

const DaemonOptions& ExplorationDaemon::options() const {
  return impl_->options;
}

}  // namespace tensorlib::driver
