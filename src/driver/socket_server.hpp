// TCP / unix-socket front-end for the resident ExplorationDaemon — the
// piece that turns `explore_server --serve` from a one-client stdio pipe
// into an actual network service.
//
//   * N concurrent connections: an accept loop hands each connection a
//     reader thread (line-framed requests, the same wire schema as stdio;
//     see driver/wire.*) and a writer thread with a bounded outgoing
//     queue. Responses stream back in COMPLETION order on the connection
//     that submitted them.
//   * Per-connection fairness: every connection gets its own daemon
//     client id ("conn-<n>"), so the daemon's bounded admission queue and
//     round-robin fairness apply per CONNECTION — one flooding socket
//     saturates its own share, not the daemon. (The request "client"
//     field is ignored over sockets; the connection is the client.)
//   * Slow-reader isolation: daemon completion callbacks only ever
//     enqueue onto the owning connection's write queue; the per-connection
//     writer thread does the blocking sends. A reader that stalls past
//     writeQueueBound queued lines is dropped, never the daemon.
//   * Drop semantics: a dropped connection (EOF, reset, slow-reader
//     eviction) cancels its still-queued daemon work
//     (ExplorationDaemon::cancelClient); its in-flight request, if any,
//     completes and the response is discarded. A request line truncated
//     by the disconnect (no trailing '\n') is NEVER executed.
//   * Shutdown drain: any connection may send {"shutdown": true}. The
//     owner (tools/explore_server) waits on waitForShutdownRequest(),
//     calls drain() (stop accepting + reading, let in-flight work finish,
//     flush writers), shuts the daemon down, then close(summary) — the
//     summary line goes to the connection that asked.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "driver/daemon.hpp"

namespace tensorlib::driver {

struct SocketServerOptions {
  /// TCP listen port; -1 disables TCP, 0 picks an ephemeral port (read it
  /// back via port()).
  int port = -1;
  /// Numeric IPv4 address to bind. Loopback by default: exposing the
  /// daemon beyond the host is a deployment decision, not a default.
  std::string bindAddress = "127.0.0.1";
  /// Unix-domain socket path; empty disables. May be combined with TCP —
  /// both listeners feed the same daemon.
  std::string unixSocketPath;
  /// Frontier entries per response line (same meaning as --max-frontier).
  std::size_t maxFrontier = 16;
  /// Outgoing lines queued per connection before the connection is judged
  /// a slow reader and dropped. The bound is what keeps a stalled reader
  /// from pinning response memory while its writer blocks.
  std::size_t writeQueueBound = 1024;
  /// Longest accepted request line; a line beyond this drops the
  /// connection (a line protocol's only defense against an unframed peer).
  std::size_t maxLineBytes = 1u << 20;
  /// When > 0, SO_SNDBUF for accepted connections (tests use a tiny buffer
  /// to exercise the slow-reader path deterministically).
  int sendBufferBytes = 0;
  int backlog = 64;
};

struct SocketServerStats {
  std::uint64_t accepted = 0;          ///< connections accepted
  std::uint64_t dropped = 0;           ///< dropped: EOF/reset/oversized line
  std::uint64_t droppedSlowReader = 0; ///< dropped: write queue overflow
  std::uint64_t requests = 0;          ///< well-formed requests admitted
  std::uint64_t parseErrors = 0;       ///< lines answered with an error
  std::uint64_t truncatedLines = 0;    ///< partial final lines NOT executed
  std::uint64_t discardedResponses = 0;///< completions after a drop
  std::uint64_t cancelledOnDrop = 0;   ///< queued work cancelled by drops
  std::size_t activeConnections = 0;
};

class SocketServer {
 public:
  /// Borrows the daemon; it must outlive the server's last close().
  SocketServer(ExplorationDaemon& daemon, SocketServerOptions options);
  /// Equivalent to close("").
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens on every configured endpoint and starts accepting.
  /// False (with lastError() set) if nothing could be bound.
  bool start();

  /// Actual TCP port (after an ephemeral bind), -1 when TCP is disabled.
  int port() const;

  const std::string& lastError() const;

  /// Blocks until some connection sends {"shutdown": true} or shutdownNow()
  /// is called.
  void waitForShutdownRequest();
  /// Unblocks waitForShutdownRequest() without a client request (signal
  /// handlers, tests).
  void shutdownNow();

  /// Stops accepting and reading, waits for every submitted request to
  /// complete and every writer to flush. Connections stay open so a final
  /// summary can still be delivered by close().
  void drain();

  /// Emits `finalLine` (if non-empty) to the shutdown-requesting
  /// connection, then closes every connection and joins all threads.
  /// Idempotent; implies drain().
  void close(const std::string& finalLine);

  SocketServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tensorlib::driver
