// Crash-safe on-disk snapshots of the exploration service's warm state.
//
// A restarted exploration daemon answers the workload table warm only if
// the expensive memoized state survives the process: the sharded eval
// cache (perf + cost per design point), the tile-mapping memo, and the
// candidate-matrix memo. This module provides the snapshot file format and
// the byte-level codec those caches serialize through; the service-level
// save/restore orchestration lives in ExplorationService::saveSnapshot /
// restoreSnapshot (driver/explore_service.*).
//
// File format (version 1, little-endian, see docs/PROTOCOL.md "Snapshot
// format"):
//
//   magic     8 bytes  "TLSNAP1\n"
//   version   u32      kSnapshotVersion
//   size      u64      payload byte count
//   checksum  u64      FNV-1a over the payload bytes
//   payload   size bytes (fingerprint string + cache sections)
//
// Robustness contract: snapshots are written atomically (tmp + fsync +
// rename), so a crash mid-write never clobbers the previous snapshot; a
// missing, truncated, corrupted, version-mismatched or
// fingerprint-mismatched snapshot must degrade to a clean cold start with
// a logged warning — restore NEVER throws past its boundary and NEVER
// half-populates a cache. The `snapshot_write` fault point
// (support/fault.*) can force write failure, payload corruption or
// truncation to rehearse exactly those paths.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cost/backend.hpp"
#include "linalg/matrix.hpp"
#include "sim/perf.hpp"
#include "stt/enumerate.hpp"
#include "stt/mapping.hpp"

namespace tensorlib::driver::snapshot {

inline constexpr char kSnapshotMagic[8] = {'T', 'L', 'S', 'N',
                                           'A', 'P', '1', '\n'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Why a restore did not (fully) happen. `Restored` is the only warm
/// outcome; every other status means the service starts cold.
enum class RestoreStatus {
  Restored,         ///< snapshot loaded, caches warm
  Missing,          ///< no snapshot file (first boot) — cold, not an error
  Corrupt,          ///< bad magic / checksum / truncation / decode overrun
  VersionMismatch,  ///< written by a different snapshot format version
  ConfigMismatch,   ///< written under a different cache-schema fingerprint
  IoError,          ///< file exists but could not be read
};

/// Human-readable status name ("restored", "corrupt", ...).
std::string restoreStatusName(RestoreStatus status);

/// Outcome of ExplorationService::restoreSnapshot.
struct RestoreResult {
  RestoreStatus status = RestoreStatus::Missing;
  std::size_t evalEntries = 0;      ///< evaluations restored
  std::size_t mappingEntries = 0;   ///< tile mappings restored
  std::size_t candidateLists = 0;   ///< candidate-matrix lists restored
  std::string message;              ///< warning detail for cold statuses
  bool restored() const { return status == RestoreStatus::Restored; }
};

/// The compatibility fingerprint embedded in every snapshot. Cache keys are
/// opaque strings produced by the running binary, so a snapshot is only
/// trustworthy under the same key schema and the same default enumeration
/// semantics; anything else must cold-start. Owners pass the
/// EnumerationOptions their request stream defaults to (the spec-defining
/// knobs are encoded; pure perf knobs are not).
std::string cacheSchemaFingerprint(const stt::EnumerationOptions& defaults);

// ---- byte-level codec ------------------------------------------------------

/// Append-only little-endian encoder for snapshot payloads.
class Writer {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  const std::string& buffer() const { return buffer_; }
  std::string takeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked decoder. Every read throws tensorlib::Error on overrun
/// (a truncated section can never read past the payload into garbage);
/// restore catches at its boundary and degrades to cold start.
class Reader {
 public:
  explicit Reader(const std::string& buffer) : buffer_(buffer) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  bool done() const { return pos_ == buffer_.size(); }
  std::size_t remaining() const { return buffer_.size() - pos_; }

 private:
  const std::string& buffer_;
  std::size_t pos_ = 0;
};

// ---- cached-value codecs ---------------------------------------------------

void writePerf(Writer& w, const sim::PerfResult& perf);
sim::PerfResult readPerf(Reader& r);

void writeCost(Writer& w, const cost::CostReport& cost);
cost::CostReport readCost(Reader& r);

void writeMapping(Writer& w, const stt::TileMapping& mapping);
stt::TileMapping readMapping(Reader& r);

void writeMatrix(Writer& w, const linalg::IntMatrix& m);
linalg::IntMatrix readMatrix(Reader& r);

// ---- file framing ----------------------------------------------------------

/// Frames `payload` (magic, version, size, FNV-1a checksum) and writes it
/// atomically: tmp file in the same directory, flushed, then renamed over
/// `path` so readers only ever see a complete snapshot. Returns false on
/// any I/O failure (and removes the tmp file). Honors the `snapshot_write`
/// fault point: `fail` reports failure without touching `path`; `corrupt`
/// flips one payload byte after checksumming; `truncate` drops the second
/// half of the framed file.
bool writeSnapshotFile(const std::string& path, const std::string& payload);

/// Reads and validates a framed snapshot. On success returns the payload
/// and sets `*status` to Restored; otherwise returns nullopt with the
/// failure status and a diagnostic in `*message`. Never throws.
std::optional<std::string> readSnapshotFile(const std::string& path,
                                            RestoreStatus* status,
                                            std::string* message);

/// FNV-1a 64-bit over a byte string (the snapshot payload checksum).
std::uint64_t fnv1a(const std::string& bytes);

}  // namespace tensorlib::driver::snapshot
