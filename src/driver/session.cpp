#include "driver/session.hpp"

#include <algorithm>
#include <sstream>

#include "arch/testbench.hpp"
#include "driver/explore_service.hpp"
#include "hwir/verilog.hpp"
#include "sim/dfsim.hpp"
#include "support/error.hpp"
#include "tensor/reference.hpp"

namespace tensorlib::driver {

std::string DesignReport::summary() const {
  const cost::CostFigures f = figures();
  std::ostringstream os;
  os << spec.label() << ": util " << 100.0 * perf.utilization << "%, "
     << perf.totalCycles << " cycles, " << f.powerMw << " mW, ";
  if (backend == cost::BackendKind::Fpga)
    os << 100.0 * f.area << "% of device";
  else
    os << f.area << " mm2";
  os << (perf.bandwidthBound ? " [bandwidth-bound]" : "");
  return os.str();
}

Session::Session(tensor::TensorAlgebra algebra, stt::ArrayConfig array,
                 int dataWidth)
    : algebra_(std::move(algebra)), array_(array), dataWidth_(dataWidth) {}

/// The session as a service query: ASIC backend at the session's data
/// width, default enumeration — the seed exploreAll() contract.
static ExploreQuery sessionQuery(const tensor::TensorAlgebra& algebra,
                                 const stt::ArrayConfig& array, int dataWidth) {
  ExploreQuery q(algebra);
  q.array = array;
  q.dataWidth = dataWidth;
  return q;
}

DesignReport Session::evaluate(stt::DataflowSpec spec) const {
  return ExplorationService::shared().evaluate(
      sessionQuery(algebra_, array_, dataWidth_), spec);
}

std::optional<DesignReport> Session::compileLabel(const std::string& label) const {
  auto spec = stt::findDataflowByLabel(algebra_, label);
  if (!spec) return std::nullopt;
  return evaluate(std::move(*spec));
}

std::vector<DesignReport> Session::exploreAll() const {
  return ExplorationService::shared().evaluateAll(
      sessionQuery(algebra_, array_, dataWidth_));
}

// Winner selection here intentionally keeps the seed semantics — first of
// equal candidates in enumeration order wins — rather than delegating to
// driver::pickBest, whose canonical tie-breaks (utilization, then area)
// serve the service's order-independent frontier path. The two agree on
// every strict winner; only exact ties can name different (equal-cost)
// designs.
DesignReport Session::compileBest(Objective objective) const {
  std::vector<DesignReport> all = exploreAll();
  TL_CHECK(!all.empty(), "design space is empty for " + algebra_.name());

  switch (objective) {
    case Objective::Performance: {
      auto it = std::max_element(all.begin(), all.end(),
                                 [](const DesignReport& a, const DesignReport& b) {
                                   return a.perf.utilization < b.perf.utilization;
                                 });
      return std::move(*it);
    }
    case Objective::Power: {
      const double bestUtil =
          std::max_element(all.begin(), all.end(),
                           [](const DesignReport& a, const DesignReport& b) {
                             return a.perf.utilization < b.perf.utilization;
                           })
              ->perf.utilization;
      DesignReport* pick = nullptr;
      for (auto& r : all) {
        if (r.perf.utilization < 0.9 * bestUtil) continue;
        if (!pick || r.figures().powerMw < pick->figures().powerMw) pick = &r;
      }
      TL_CHECK(pick != nullptr, "no design within 10% of best performance");
      return std::move(*pick);
    }
    case Objective::EnergyDelay: {
      auto it = std::min_element(all.begin(), all.end(),
                                 [](const DesignReport& a, const DesignReport& b) {
                                   return a.energyDelay() < b.energyDelay();
                                 });
      return std::move(*it);
    }
  }
  fail("unknown objective");
}

std::string Session::emitVerilog(const DesignReport& report) const {
  arch::HardwareConfig hw;
  hw.dataWidth = dataWidth_;
  const auto acc = arch::generateAccelerator(report.spec, array_, hw);
  return hwir::emitVerilog(acc.netlist);
}

bool Session::verifyRtl(const DesignReport& report, std::uint64_t seed) const {
  arch::HardwareConfig hw;
  hw.dataWidth = dataWidth_;
  const auto acc = arch::generateAccelerator(report.spec, array_, hw);
  const auto env = tensor::makeRandomInputs(algebra_, seed);
  return arch::runAcceleratorTile(acc, env).matches();
}

bool Session::verifyBehavioral(const DesignReport& report,
                               std::uint64_t seed) const {
  const auto env = tensor::makeRandomInputs(algebra_, seed);
  const auto result = sim::simulate(report.spec, array_, &env);
  const auto golden = tensor::referenceExecute(algebra_, env);
  return result.output.maxAbsDiff(golden) == 0.0;
}

verify::ConformanceReport Session::verifyConformance(
    verify::ConformanceOptions options) const {
  options.array = array_;
  return verify::checkAlgebra(algebra_, options);
}

}  // namespace tensorlib::driver
