#include "driver/session.hpp"

#include <algorithm>
#include <sstream>

#include "arch/testbench.hpp"
#include "hwir/verilog.hpp"
#include "sim/dfsim.hpp"
#include "support/error.hpp"
#include "tensor/reference.hpp"

namespace tensorlib::driver {

std::string DesignReport::summary() const {
  std::ostringstream os;
  os << spec.label() << ": util " << 100.0 * perf.utilization << "%, "
     << perf.totalCycles << " cycles, " << asic.powerMw << " mW, "
     << asic.areaMm2 << " mm2"
     << (perf.bandwidthBound ? " [bandwidth-bound]" : "");
  return os.str();
}

Session::Session(tensor::TensorAlgebra algebra, stt::ArrayConfig array,
                 int dataWidth)
    : algebra_(std::move(algebra)), array_(array), dataWidth_(dataWidth) {}

DesignReport Session::evaluate(stt::DataflowSpec spec) const {
  const auto perf = sim::estimatePerformance(spec, array_);
  auto asic = cost::estimateAsic(spec, array_, dataWidth_);
  return DesignReport(std::move(spec), perf, std::move(asic));
}

std::optional<DesignReport> Session::compileLabel(const std::string& label) const {
  auto spec = stt::findDataflowByLabel(algebra_, label);
  if (!spec) return std::nullopt;
  return evaluate(std::move(*spec));
}

std::vector<DesignReport> Session::exploreAll() const {
  std::vector<DesignReport> out;
  for (const auto& sel : stt::allLoopSelections(algebra_))
    for (auto& spec : stt::enumerateTransforms(algebra_, sel))
      out.push_back(evaluate(std::move(spec)));
  return out;
}

DesignReport Session::compileBest(Objective objective) const {
  std::vector<DesignReport> all = exploreAll();
  TL_CHECK(!all.empty(), "design space is empty for " + algebra_.name());

  switch (objective) {
    case Objective::Performance: {
      auto it = std::max_element(all.begin(), all.end(),
                                 [](const DesignReport& a, const DesignReport& b) {
                                   return a.perf.utilization < b.perf.utilization;
                                 });
      return std::move(*it);
    }
    case Objective::Power: {
      const double bestUtil =
          std::max_element(all.begin(), all.end(),
                           [](const DesignReport& a, const DesignReport& b) {
                             return a.perf.utilization < b.perf.utilization;
                           })
              ->perf.utilization;
      DesignReport* pick = nullptr;
      for (auto& r : all) {
        if (r.perf.utilization < 0.9 * bestUtil) continue;
        if (!pick || r.asic.powerMw < pick->asic.powerMw) pick = &r;
      }
      TL_CHECK(pick != nullptr, "no design within 10% of best performance");
      return std::move(*pick);
    }
    case Objective::EnergyDelay: {
      auto it = std::min_element(all.begin(), all.end(),
                                 [](const DesignReport& a, const DesignReport& b) {
                                   return a.energyDelay() < b.energyDelay();
                                 });
      return std::move(*it);
    }
  }
  fail("unknown objective");
}

std::string Session::emitVerilog(const DesignReport& report) const {
  arch::HardwareConfig hw;
  hw.dataWidth = dataWidth_;
  const auto acc = arch::generateAccelerator(report.spec, array_, hw);
  return hwir::emitVerilog(acc.netlist);
}

bool Session::verifyRtl(const DesignReport& report, std::uint64_t seed) const {
  arch::HardwareConfig hw;
  hw.dataWidth = dataWidth_;
  const auto acc = arch::generateAccelerator(report.spec, array_, hw);
  const auto env = tensor::makeRandomInputs(algebra_, seed);
  return arch::runAcceleratorTile(acc, env).matches();
}

bool Session::verifyBehavioral(const DesignReport& report,
                               std::uint64_t seed) const {
  const auto env = tensor::makeRandomInputs(algebra_, seed);
  const auto result = sim::simulate(report.spec, array_, &env);
  const auto golden = tensor::referenceExecute(algebra_, env);
  return result.output.maxAbsDiff(golden) == 0.0;
}

verify::ConformanceReport Session::verifyConformance(
    verify::ConformanceOptions options) const {
  options.array = array_;
  return verify::checkAlgebra(algebra_, options);
}

}  // namespace tensorlib::driver
