#include "driver/socket_server.hpp"

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "driver/network_explorer.hpp"
#include "driver/wire.hpp"
#include "support/error.hpp"
#include "support/net.hpp"
#include "verify/model_conformance.hpp"

extern "C" {
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
}

namespace tensorlib::driver {

struct SocketServer::Impl {
  /// One accepted connection. The reader thread parses and dispatches
  /// request lines; the writer thread drains the bounded outgoing queue so
  /// a slow peer blocks only its own writer, never a daemon callback. The
  /// fd is closed only at reap/close time (after both threads exited), so
  /// no thread ever races a reused descriptor.
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string clientId;

    std::mutex mutex;
    std::condition_variable writeCv;
    std::deque<std::string> writeQueue;
    bool writerExit = false;
    bool writing = false;  ///< a line is mid-send (flush waits on it)
    std::size_t requestIndex = 0;

    std::atomic<bool> alive{true};
    std::atomic<bool> readerDone{false};
    std::atomic<bool> writerDone{false};

    std::thread reader;
    std::thread writer;
  };

  Impl(ExplorationDaemon& d, SocketServerOptions opts)
      : daemon(d), options(std::move(opts)) {}

  ~Impl() { closeAll(""); }

  // ---- lifecycle -----------------------------------------------------------

  bool start() {
    if (options.port < 0 && options.unixSocketPath.empty()) {
      lastError = "no endpoint configured (need a port or a unix socket)";
      return false;
    }
    if (options.port >= 0) {
      tcpFd = support::net::listenTcp(options.bindAddress, options.port,
                                      options.backlog, &boundPort);
      if (tcpFd < 0) {
        lastError = "cannot listen on " + options.bindAddress + ":" +
                    std::to_string(options.port);
        return false;
      }
    }
    if (!options.unixSocketPath.empty()) {
      unixFd = support::net::listenUnix(options.unixSocketPath, options.backlog);
      if (unixFd < 0) {
        lastError = "cannot listen on unix socket " + options.unixSocketPath;
        if (tcpFd >= 0) {
          ::close(tcpFd);
          tcpFd = -1;
        }
        return false;
      }
    }
    acceptThread = std::thread([this] { acceptLoop(); });
    return true;
  }

  void acceptLoop() {
    while (!stopping.load()) {
      pollfd fds[2];
      int n = 0;
      if (tcpFd >= 0) fds[n++] = pollfd{tcpFd, POLLIN, 0};
      if (unixFd >= 0) fds[n++] = pollfd{unixFd, POLLIN, 0};
      const int ready = ::poll(fds, static_cast<nfds_t>(n), 200);
      if (stopping.load()) break;
      reapDead();
      if (ready <= 0) continue;
      for (int i = 0; i < n; ++i) {
        if ((fds[i].revents & POLLIN) == 0) continue;
        const int fd = ::accept(fds[i].fd, nullptr, nullptr);
        if (fd < 0) continue;
        onAccept(fd);
      }
    }
  }

  void onAccept(int fd) {
    int one = 1;
    // No-ops on the unix-domain listener; worth it on TCP (one line per
    // request, Nagle only adds latency).
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options.sendBufferBytes > 0)
      (void)setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.sendBufferBytes,
                       sizeof(options.sendBufferBytes));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mutex);
      conn->id = nextConnId++;
      conn->clientId = "conn-" + std::to_string(conn->id);
      connections[conn->id] = conn;
      ++stats.accepted;
    }
    conn->writer = std::thread([this, conn] { writerLoop(conn); });
    conn->reader = std::thread([this, conn] { readerLoop(conn); });
  }

  // ---- per-connection reader ----------------------------------------------

  void readerLoop(const std::shared_ptr<Connection>& conn) {
    support::net::LineReader reader(conn->fd);
    while (!stopping.load() && conn->alive.load()) {
      const auto line = reader.next();
      if (!line) break;
      if (!line->complete) {
        // The peer died (or was dropped) mid-line. A truncated request
        // must never be executed — half a query is not a smaller query.
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.truncatedLines;
        break;
      }
      if (line->text.size() > options.maxLineBytes) break;
      if (line->text.find_first_not_of(" \t\r") == std::string::npos) continue;
      handleLine(conn, line->text);
    }
    // A disconnect observed during normal operation cancels the
    // connection's queued daemon work; during drain/close the EOF is ours
    // (SHUT_RD) and accepted work must complete instead.
    if (!stopping.load()) disconnect(conn, /*slowReader=*/false);
    conn->readerDone.store(true);
  }

  void handleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& text) {
    std::size_t id;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      id = conn->requestIndex++;
    }
    try {
      const auto obj = support::parseJsonLine(text);
      wire::Request request = wire::parseRequest(obj);
      switch (request.kind) {
        case wire::Request::Kind::Shutdown: {
          {
            std::lock_guard<std::mutex> lock(mutex);
            if (!shutdownRequested) {
              shutdownRequested = true;
              shutdownRequester = conn;
            }
          }
          shutdownCv.notify_all();
          return;
        }
        case wire::Request::Kind::CacheStats: {
          emitTo(conn, "{\"query\": " + std::to_string(id) +
                           ", \"cache\": " +
                           wire::cacheStatsJson(daemon.service().cacheStats()) +
                           "}");
          return;
        }
        case wire::Request::Kind::Network: {
          // Synchronous on this connection's reader (the explorer fans out
          // through the shared service itself); other connections keep
          // their own readers. Counted as pending so drain() waits for it.
          {
            std::lock_guard<std::mutex> lock(mutex);
            ++stats.requests;
            ++pendingTotal;
          }
          try {
            NetworkExplorer explorer(daemon.service());
            const auto result = explorer.explore(*request.network);
            emitTo(conn, wire::networkResultLine(id, request.name,
                                                 *request.network, result,
                                                 options.maxFrontier));
          } catch (...) {
            finishPending();
            throw;
          }
          finishPending();
          return;
        }
        case wire::Request::Kind::ModelConformance: {
          // Synchronous on this reader, like Network — but the oracle owns
          // its own ExplorationService (verdicts must not depend on this
          // daemon's warm caches). Counted as pending so drain() waits.
          {
            std::lock_guard<std::mutex> lock(mutex);
            ++stats.requests;
            ++pendingTotal;
          }
          try {
            const auto report =
                verify::checkModel(*request.model, request.modelOptions);
            emitTo(conn, wire::modelConformanceResultLine(id, report));
          } catch (...) {
            finishPending();
            throw;
          }
          finishPending();
          return;
        }
        case wire::Request::Kind::Query: {
          const std::string workload = request.name;
          const std::string backend =
              cost::backendKindName(request.query->backend);
          const std::string objective = objectiveName(request.query->objective);
          {
            std::lock_guard<std::mutex> lock(mutex);
            ++stats.requests;
            ++pendingTotal;
          }
          const auto admission = daemon.submit(
              conn->clientId, std::move(*request.query),
              [this, conn, id, workload, backend,
               objective](ExplorationDaemon::Outcome outcome) {
                if (outcome.failed()) {
                  emitTo(conn, wire::errorLine(id, outcome.error));
                } else {
                  emitTo(conn,
                         wire::resultLine(id, workload, backend, objective,
                                          *outcome.result,
                                          options.maxFrontier));
                }
                finishPending();
              });
          if (admission != Admission::Accepted) {
            finishPending();
            emitTo(conn, wire::errorLine(id, admissionName(admission)));
          }
          return;
        }
      }
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++stats.parseErrors;
      }
      emitTo(conn, wire::errorLine(id, e.what()));
    }
  }

  /// Last statement of every pending unit of work. Notifies under the lock
  /// so a drain()/close() waiter cannot destroy the condition variable
  /// between our decrement and the notify.
  void finishPending() {
    std::lock_guard<std::mutex> lock(mutex);
    --pendingTotal;
    pendingCv.notify_all();
  }

  // ---- per-connection writer ----------------------------------------------

  void writerLoop(const std::shared_ptr<Connection>& conn) {
    for (;;) {
      std::string line;
      {
        std::unique_lock<std::mutex> lock(conn->mutex);
        conn->writeCv.wait(lock, [&] {
          return conn->writerExit || !conn->writeQueue.empty();
        });
        if (conn->writeQueue.empty()) {
          if (conn->writerExit) break;
          continue;
        }
        line = std::move(conn->writeQueue.front());
        conn->writeQueue.pop_front();
        conn->writing = true;
      }
      line += '\n';
      const bool ok = support::net::sendAll(conn->fd, line.data(), line.size());
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->writing = false;
      }
      conn->writeCv.notify_all();  // flush waiters watch queue + writing
      if (!ok) {
        disconnect(conn, /*slowReader=*/false);
        break;
      }
    }
    conn->writerDone.store(true);
  }

  /// Queues one line on the connection (writer sends it). Discards on a
  /// dead connection; drops the connection when the queue bound says the
  /// peer stopped reading.
  void emitTo(const std::shared_ptr<Connection>& conn, const std::string& line) {
    bool slowReader = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (!conn->alive.load()) {
        std::lock_guard<std::mutex> slock(mutex);
        ++stats.discardedResponses;
        return;
      }
      if (conn->writeQueue.size() >= options.writeQueueBound) {
        slowReader = true;
      } else {
        conn->writeQueue.push_back(line);
      }
    }
    if (slowReader) {
      disconnect(conn, /*slowReader=*/true);
      std::lock_guard<std::mutex> lock(mutex);
      ++stats.discardedResponses;
      return;
    }
    conn->writeCv.notify_one();
  }

  // ---- drop / drain / close -----------------------------------------------

  /// Idempotent connection drop: stop both directions, clear the unsent
  /// queue, cancel the connection's queued daemon work. The in-flight
  /// request (if any) completes and its response is discarded by emitTo.
  void disconnect(const std::shared_ptr<Connection>& conn, bool slowReader) {
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (!conn->alive.load()) return;
      conn->alive.store(false);
      conn->writerExit = true;
      conn->writeQueue.clear();
    }
    conn->writeCv.notify_all();
    ::shutdown(conn->fd, SHUT_RDWR);  // unblocks a reader or mid-send writer
    const std::size_t cancelled = daemon.cancelClient(conn->clientId);
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (slowReader) {
        ++stats.droppedSlowReader;
      } else {
        ++stats.dropped;
      }
      stats.cancelledOnDrop += cancelled;
    }
  }

  std::vector<std::shared_ptr<Connection>> snapshotConnections() {
    std::vector<std::shared_ptr<Connection>> out;
    std::lock_guard<std::mutex> lock(mutex);
    out.reserve(connections.size());
    for (const auto& [id, conn] : connections) {
      (void)id;
      out.push_back(conn);
    }
    return out;
  }

  /// Joins and erases connections whose threads both exited (periodic, from
  /// the accept loop) so a long-lived server does not accumulate dead ones.
  void reapDead() {
    std::vector<std::shared_ptr<Connection>> dead;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (auto it = connections.begin(); it != connections.end();) {
        if (it->second->readerDone.load() && it->second->writerDone.load()) {
          dead.push_back(it->second);
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const auto& conn : dead) {
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->writer.joinable()) conn->writer.join();
      ::close(conn->fd);
    }
  }

  void stopAccepting() {
    stopping.store(true);
    shutdownCv.notify_all();
    if (acceptThread.joinable()) acceptThread.join();
    if (tcpFd >= 0) {
      ::close(tcpFd);
      tcpFd = -1;
    }
    if (unixFd >= 0) {
      ::close(unixFd);
      unixFd = -1;
      unlink(options.unixSocketPath.c_str());
    }
  }

  /// Waits (bounded) for a connection's queued lines to reach the wire. A
  /// peer that stalls past the timeout is dropped rather than waited on.
  void flushConnection(const std::shared_ptr<Connection>& conn) {
    std::unique_lock<std::mutex> lock(conn->mutex);
    const bool flushed = conn->writeCv.wait_for(
        lock, std::chrono::milliseconds(2000), [&] {
          return !conn->alive.load() ||
                 (conn->writeQueue.empty() && !conn->writing);
        });
    lock.unlock();
    if (!flushed) disconnect(conn, /*slowReader=*/true);
  }

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (drained) return;
      drained = true;
    }
    stopAccepting();
    const auto conns = snapshotConnections();
    // Stop reads everywhere; accepted work keeps running to completion.
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
    {
      std::unique_lock<std::mutex> lock(mutex);
      pendingCv.wait(lock, [this] { return pendingTotal == 0; });
    }
    for (const auto& conn : conns) flushConnection(conn);
  }

  void closeAll(const std::string& finalLine) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (closed) return;
      closed = true;
    }
    bool wasDrained;
    {
      std::lock_guard<std::mutex> lock(mutex);
      wasDrained = drained;
    }
    stopAccepting();
    const auto conns = snapshotConnections();
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
    if (!wasDrained) {
      // Abort path (no prior drain): queued work is pointless, cancel it
      // so the pending wait below is bounded by in-flight requests only.
      for (const auto& conn : conns) {
        const std::size_t cancelled = daemon.cancelClient(conn->clientId);
        std::lock_guard<std::mutex> lock(mutex);
        stats.cancelledOnDrop += cancelled;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex);
      pendingCv.wait(lock, [this] { return pendingTotal == 0; });
    }
    if (!finalLine.empty()) {
      std::shared_ptr<Connection> requester;
      {
        std::lock_guard<std::mutex> lock(mutex);
        requester = shutdownRequester;
      }
      if (requester) emitTo(requester, finalLine);
    }
    for (const auto& conn : conns) flushConnection(conn);
    for (const auto& conn : conns) {
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->writerExit = true;
      }
      conn->writeCv.notify_all();
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (const auto& conn : conns) {
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->writer.joinable()) conn->writer.join();
      ::close(conn->fd);
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      connections.clear();
      shutdownRequester.reset();
    }
  }

  void waitForShutdownRequest() {
    std::unique_lock<std::mutex> lock(mutex);
    shutdownCv.wait(lock, [this] { return shutdownRequested || stopping.load(); });
  }

  void shutdownNow() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdownRequested = true;
    }
    shutdownCv.notify_all();
  }

  SocketServerStats statsNow() const {
    std::lock_guard<std::mutex> lock(mutex);
    SocketServerStats copy = stats;
    copy.activeConnections = 0;
    for (const auto& [id, conn] : connections) {
      (void)id;
      if (conn->alive.load()) ++copy.activeConnections;
    }
    return copy;
  }

  ExplorationDaemon& daemon;
  SocketServerOptions options;
  std::string lastError;

  int tcpFd = -1;
  int unixFd = -1;
  int boundPort = -1;
  std::thread acceptThread;

  mutable std::mutex mutex;
  std::condition_variable shutdownCv;
  std::condition_variable pendingCv;
  std::unordered_map<std::uint64_t, std::shared_ptr<Connection>> connections;
  std::shared_ptr<Connection> shutdownRequester;
  std::uint64_t nextConnId = 0;
  std::size_t pendingTotal = 0;
  bool shutdownRequested = false;
  bool drained = false;
  bool closed = false;
  std::atomic<bool> stopping{false};
  SocketServerStats stats;
};

SocketServer::SocketServer(ExplorationDaemon& daemon,
                           SocketServerOptions options)
    : impl_(std::make_unique<Impl>(daemon, std::move(options))) {}

SocketServer::~SocketServer() = default;

bool SocketServer::start() { return impl_->start(); }

int SocketServer::port() const { return impl_->boundPort; }

const std::string& SocketServer::lastError() const { return impl_->lastError; }

void SocketServer::waitForShutdownRequest() { impl_->waitForShutdownRequest(); }

void SocketServer::shutdownNow() { impl_->shutdownNow(); }

void SocketServer::drain() { impl_->drain(); }

void SocketServer::close(const std::string& finalLine) {
  impl_->closeAll(finalLine);
}

SocketServerStats SocketServer::stats() const { return impl_->statsNow(); }

}  // namespace tensorlib::driver
