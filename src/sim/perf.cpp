#include "sim/perf.hpp"

#include <algorithm>
#include <limits>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace tensorlib::sim {

std::string PerfResult::str() const {
  std::ostringstream os;
  os << "cycles=" << totalCycles << " (compute=" << computeCycles
     << ", bw=" << bandwidthCycles << ") macs=" << macs
     << " traffic=" << trafficWords << " util=" << utilization
     << (bandwidthBound ? " [bandwidth-bound]" : " [compute-bound]");
  return os.str();
}

PerfResult finalizePerf(PerfResult raw, const stt::ArrayConfig& config) {
  raw.bandwidthBound = raw.bandwidthCycles > raw.computeCycles;
  const double peCycles = static_cast<double>(config.rows * config.cols) *
                          static_cast<double>(raw.totalCycles);
  raw.utilization =
      peCycles > 0.0 ? static_cast<double>(raw.macs) / peCycles : 0.0;
  const double seconds =
      static_cast<double>(raw.totalCycles) / (config.frequencyMHz * 1e6);
  raw.throughputGops =
      seconds > 0.0 && std::isfinite(seconds)
          ? 2.0 * static_cast<double>(raw.macs) / seconds / 1e9
          : 0.0;
  return raw;
}

namespace {

/// Accumulates the closed-form pass costs of one mapping.
PerfResult accumulate(const stt::TileMapping& mapping,
                      const stt::ArrayConfig& config) {
  const double wordsPerCycle = config.wordsPerCycle();
  PerfResult out;
  for (const auto& tc : mapping.tiles) {
    const std::int64_t tilesTotal = tc.count * mapping.outerIterations;
    const std::int64_t passes =
        (tilesTotal + mapping.replication - 1) / mapping.replication;

    const std::int64_t bwCycles = static_cast<std::int64_t>(std::ceil(
        static_cast<double>(tc.trafficWords * mapping.replication) /
        wordsPerCycle));
    const std::int64_t passCycles = std::max(tc.computeCycles, bwCycles);

    out.computeCycles += passes * tc.computeCycles;
    out.bandwidthCycles += passes * bwCycles;
    out.totalCycles += passes * passCycles;
    out.macs += tilesTotal * tc.macs;
    out.trafficWords += tilesTotal * tc.trafficWords;
  }
  return out;
}

/// Max product of distinct selected-loop extents assignable injectively to
/// tensor dimensions with a nonzero coefficient — the covered-extent bound
/// behind the bandwidth term of cyclesLowerBound.
std::int64_t coveredExtents(const linalg::IntMatrix& coeff,
                            const linalg::IntVector& extents, std::size_t dim,
                            unsigned usedMask) {
  if (dim == coeff.rows()) return 1;
  std::int64_t best = coveredExtents(coeff, extents, dim + 1, usedMask);
  for (std::size_t j = 0; j < 3; ++j) {
    if ((usedMask & (1u << j)) != 0 || coeff.at(dim, j) == 0) continue;
    best = std::max(
        best, linalg::checkedMul(extents[j], coveredExtents(coeff, extents,
                                                            dim + 1,
                                                            usedMask | (1u << j))));
  }
  return best;
}

/// coveredExtents over a packed |coefficient| block (rank rows x 3,
/// row-major): same recursion, same result — the scalar version only reads
/// the coefficients' zero pattern.
std::int64_t coveredExtentsPacked(const std::int64_t* absC, std::size_t rank,
                                  const std::int64_t* extents, std::size_t dim,
                                  unsigned usedMask) {
  if (dim == rank) return 1;
  std::int64_t best = coveredExtentsPacked(absC, rank, extents, dim + 1, usedMask);
  for (std::size_t j = 0; j < 3; ++j) {
    if ((usedMask & (1u << j)) != 0 || absC[dim * 3 + j] == 0) continue;
    best = std::max(best, linalg::checkedMul(
                              extents[j],
                              coveredExtentsPacked(absC, rank, extents, dim + 1,
                                                   usedMask | (1u << j))));
  }
  return best;
}

}  // namespace

PerfResult perfFromMapping(const stt::TileMapping& mapping,
                           const stt::ArrayConfig& config) {
  return finalizePerf(accumulate(mapping, config), config);
}

PerfResult estimatePerformance(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& config,
                               stt::MappingCache* mappings) {
  if (mappings != nullptr) {
    const auto mapping = mappings->get(spec, config);
    return perfFromMapping(*mapping, config);
  }
  const stt::TileMapping mapping = stt::computeMapping(spec, config);
  return perfFromMapping(mapping, config);
}

std::int64_t cyclesLowerBound(const stt::DataflowSpec& spec,
                              const stt::ArrayConfig& config) {
  // Compute bound: a full-rank transform maps at most one MAC per PE per
  // cycle at any tiling and replication, so totalCycles >= totalMacs / rate
  // with rate capped at rows * cols. (floor, not ceil, below absorbs the
  // floating-point division's last ulp.)
  const std::int64_t macs = spec.algebra().totalMacs();
  double rate = static_cast<double>(config.rows * config.cols);
  if (rate <= 0.0) rate = 1.0;

  // Bandwidth rate cap: a pass of any tile g sustains at most
  // wordsPerCycle * intensity(g) MACs per cycle (replication scales traffic
  // and MACs alike), and for every injective matching of a tensor's
  // dimensions to selected loops, intensity(g) <= product of the UNMATCHED
  // loops' tile extents. Tile extents are individually capped by the array
  // fit (1 + |t_spatial_j| * (g_j - 1) must fit the rows/cols span), so
  //   intensity <= min over tensors of prod(caps) / bestMatchedProduct.
  const double wordsPerCycle = config.wordsPerCycle();
  if (wordsPerCycle > 0.0 && std::isfinite(wordsPerCycle)) {
    const linalg::IntMatrix& t = spec.transform().matrix();
    const linalg::IntVector& extents = spec.selection().extents();
    linalg::IntVector caps(3);
    for (std::size_t j = 0; j < 3; ++j) {
      std::int64_t cap = extents[j];
      if (t.at(0, j) != 0)
        cap = std::min(cap, 1 + (config.rows - 1) / std::abs(t.at(0, j)));
      if (t.at(1, j) != 0)
        cap = std::min(cap, 1 + (config.cols - 1) / std::abs(t.at(1, j)));
      caps[j] = std::max<std::int64_t>(cap, 1);
    }
    const double capProduct = static_cast<double>(
        linalg::checkedMul(caps[0], linalg::checkedMul(caps[1], caps[2])));
    double intensityCap = std::numeric_limits<double>::infinity();
    for (const auto& role : spec.tensors()) {
      const double matched = static_cast<double>(
          coveredExtents(role.access.coeff(), caps, 0, 0u));
      intensityCap = std::min(intensityCap, capProduct / matched);
    }
    rate = std::min(rate, wordsPerCycle * intensityCap);
  }
  std::int64_t bound = static_cast<std::int64_t>(
      std::floor(static_cast<double>(macs) / rate));

  // Bandwidth bound: each tensor's summed tile footprints cover at least
  // the product of the extents of distinct selected loops matched (one per
  // tensor dimension) to nonzero access coefficients — the per-dimension
  // interval the footprint model charges is at least the tile's extent of
  // that loop, and tile extents of one loop sum to the full extent across
  // any grid tiling. Outer iterations repeat the whole sweep.
  if (wordsPerCycle > 0.0 && std::isfinite(wordsPerCycle)) {
    std::int64_t outer = 1;
    for (std::size_t idx : spec.selection().outerIndices())
      outer = linalg::checkedMul(outer, spec.algebra().loops()[idx].extent);
    std::int64_t minTraffic = 0;
    for (const auto& role : spec.tensors())
      minTraffic += linalg::checkedMul(
          outer, coveredExtents(role.access.coeff(), spec.selection().extents(),
                                0, 0u));
    // floor, not ceil: immune to last-ulp rounding of the division while
    // still a valid integer lower bound.
    bound = std::max(bound, static_cast<std::int64_t>(std::floor(
                                static_cast<double>(minTraffic) / wordsPerCycle)));
  }
  return std::max<std::int64_t>(bound, 1);
}

std::int64_t cyclesLowerBound(const stt::SpecBlockSet& set, std::size_t i,
                              const stt::ArrayConfig& config) {
  // Mirrors the scalar overload term by term (see the comments there); the
  // differential tests pin the two equal over whole enumerated spaces.
  const std::int64_t macs = set.algebraMacs;
  double rate = static_cast<double>(config.rows * config.cols);
  if (rate <= 0.0) rate = 1.0;

  const std::int64_t* absT = set.specAbsT(i);
  const std::int64_t* extents = set.specExtents(i);
  const double wordsPerCycle = config.wordsPerCycle();
  if (wordsPerCycle > 0.0 && std::isfinite(wordsPerCycle)) {
    std::int64_t caps[3];
    for (std::size_t j = 0; j < 3; ++j) {
      std::int64_t cap = extents[j];
      if (absT[0 * 3 + j] != 0)
        cap = std::min(cap, 1 + (config.rows - 1) / absT[0 * 3 + j]);
      if (absT[1 * 3 + j] != 0)
        cap = std::min(cap, 1 + (config.cols - 1) / absT[1 * 3 + j]);
      caps[j] = std::max<std::int64_t>(cap, 1);
    }
    const double capProduct = static_cast<double>(
        linalg::checkedMul(caps[0], linalg::checkedMul(caps[1], caps[2])));
    double intensityCap = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < set.tensorsPerSpec; ++k) {
      const double matched = static_cast<double>(coveredExtentsPacked(
          set.tensorAbsC(i, k), set.tensorRank[k], caps, 0, 0u));
      intensityCap = std::min(intensityCap, capProduct / matched);
    }
    rate = std::min(rate, wordsPerCycle * intensityCap);
  }
  std::int64_t bound =
      static_cast<std::int64_t>(std::floor(static_cast<double>(macs) / rate));

  if (wordsPerCycle > 0.0 && std::isfinite(wordsPerCycle)) {
    const std::int64_t outer = set.outer[i];
    std::int64_t minTraffic = 0;
    for (std::size_t k = 0; k < set.tensorsPerSpec; ++k)
      minTraffic += linalg::checkedMul(
          outer, coveredExtentsPacked(set.tensorAbsC(i, k), set.tensorRank[k],
                                      extents, 0, 0u));
    bound = std::max(bound, static_cast<std::int64_t>(std::floor(
                                static_cast<double>(minTraffic) / wordsPerCycle)));
  }
  return std::max<std::int64_t>(bound, 1);
}

std::int64_t cyclesLowerBound(const stt::PartialTransform& partial,
                              const stt::ArrayConfig& config) {
  // The packed bound above never reads the time row: its caps use only
  // |t(0,j)| and |t(1,j)|, and the traffic term is transform-independent.
  // Evaluating it on a partial matrix (both space rows placed, time row
  // free) therefore yields the EXACT packed bound of every completion —
  // which is what makes it a sound branch-and-bound cut predicate.
  const stt::SelectionGeometry& g = *partial.geometry;
  const std::int64_t macs = g.macs;
  double rate = static_cast<double>(config.rows * config.cols);
  if (rate <= 0.0) rate = 1.0;

  const double wordsPerCycle = config.wordsPerCycle();
  if (wordsPerCycle > 0.0 && std::isfinite(wordsPerCycle)) {
    std::int64_t caps[3];
    for (std::size_t j = 0; j < 3; ++j) {
      std::int64_t cap = g.extents[j];
      if (partial.absRow0[j] != 0)
        cap = std::min(cap, 1 + (config.rows - 1) / partial.absRow0[j]);
      if (partial.absRow1[j] != 0)
        cap = std::min(cap, 1 + (config.cols - 1) / partial.absRow1[j]);
      caps[j] = std::max<std::int64_t>(cap, 1);
    }
    const double capProduct = static_cast<double>(
        linalg::checkedMul(caps[0], linalg::checkedMul(caps[1], caps[2])));
    double intensityCap = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < g.tensorCount; ++k) {
      const double matched = static_cast<double>(coveredExtentsPacked(
          g.tensorAbsC(k), g.tensorRank[k], caps, 0, 0u));
      intensityCap = std::min(intensityCap, capProduct / matched);
    }
    rate = std::min(rate, wordsPerCycle * intensityCap);
  }
  std::int64_t bound =
      static_cast<std::int64_t>(std::floor(static_cast<double>(macs) / rate));

  if (wordsPerCycle > 0.0 && std::isfinite(wordsPerCycle)) {
    std::int64_t minTraffic = 0;
    for (std::size_t k = 0; k < g.tensorCount; ++k)
      minTraffic += linalg::checkedMul(
          g.outer, coveredExtentsPacked(g.tensorAbsC(k), g.tensorRank[k],
                                        g.extents.data(), 0, 0u));
    bound = std::max(bound, static_cast<std::int64_t>(std::floor(
                                static_cast<double>(minTraffic) / wordsPerCycle)));
  }
  return std::max<std::int64_t>(bound, 1);
}

}  // namespace tensorlib::sim
