#include "sim/perf.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hpp"

namespace tensorlib::sim {

std::string PerfResult::str() const {
  std::ostringstream os;
  os << "cycles=" << totalCycles << " (compute=" << computeCycles
     << ", bw=" << bandwidthCycles << ") macs=" << macs
     << " traffic=" << trafficWords << " util=" << utilization
     << (bandwidthBound ? " [bandwidth-bound]" : " [compute-bound]");
  return os.str();
}

PerfResult estimatePerformance(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& config) {
  const stt::TileMapping mapping = stt::computeMapping(spec, config);
  const double wordsPerCycle = config.wordsPerCycle();

  PerfResult out;
  for (const auto& tc : mapping.tiles) {
    const std::int64_t tilesTotal = tc.count * mapping.outerIterations;
    const std::int64_t passes =
        (tilesTotal + mapping.replication - 1) / mapping.replication;

    const std::int64_t bwCycles = static_cast<std::int64_t>(std::ceil(
        static_cast<double>(tc.trafficWords * mapping.replication) /
        wordsPerCycle));
    const std::int64_t passCycles = std::max(tc.computeCycles, bwCycles);

    out.computeCycles += passes * tc.computeCycles;
    out.bandwidthCycles += passes * bwCycles;
    out.totalCycles += passes * passCycles;
    out.macs += tilesTotal * tc.macs;
    out.trafficWords += tilesTotal * tc.trafficWords;
  }
  out.bandwidthBound = out.bandwidthCycles > out.computeCycles;
  out.utilization = static_cast<double>(out.macs) /
                    (static_cast<double>(config.rows * config.cols) *
                     static_cast<double>(out.totalCycles));
  const double seconds =
      static_cast<double>(out.totalCycles) / (config.frequencyMHz * 1e6);
  out.throughputGops = 2.0 * static_cast<double>(out.macs) / seconds / 1e9;
  return out;
}

}  // namespace tensorlib::sim
