// Tile-trace construction: the schedule of one tile's execution in
// space-time, derived purely from the STT analysis.
//
// For every loop point of a tile this computes the (PE, cycle) it executes
// at, and for every input tensor the *injection events*: the memory reads
// that must happen because the movement rules (systolic hop / multicast bus
// / stationary residence) cannot deliver the element from a prior point.
// The same trace drives the behavioral simulator (cycle counts, bandwidth),
// the netlist testbench (port stimulus), and traffic-model validation.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "stt/mapping.hpp"
#include "stt/spec.hpp"

namespace tensorlib::sim {

/// One MAC execution: a selected-loop point mapped to (p1, p2, t),
/// normalized so the tile occupies p >= 0, t >= 0.
struct ActivePoint {
  linalg::IntVector iteration;  ///< selected-loop coordinates within the tile
  std::int64_t p1 = 0, p2 = 0, t = 0;
};

/// One memory read feeding the array.
struct Injection {
  std::size_t tensorIndex = 0;     ///< into spec.tensors() (label order)
  linalg::IntVector element;       ///< full tensor index
  std::int64_t cycle = 0;          ///< normalized tile cycle
  std::int64_t p1 = 0, p2 = 0;     ///< delivery PE (or bus anchor)
  bool viaBus = false;             ///< delivered on a multicast/broadcast bus
};

/// One memory write leaving the array.
struct OutputEvent {
  linalg::IntVector element;  ///< full output tensor index
  std::int64_t cycle = 0;     ///< cycle the last contributing MAC runs
  std::int64_t p1 = 0, p2 = 0;  ///< producing PE (tree root anchor for M)
};

/// How a tensor's value physically moves, derived from its reuse lattice.
/// Shared by the trace builder (injection DP), the hardware generator
/// (module/interconnect selection) and the RTL testbench (port schedules).
struct Movement {
  /// Register-to-register step (dp1, dp2, dt>0): the systolic hop, or the
  /// stationary residence step when dp == 0. Absent for pure
  /// multicast/broadcast/unicast.
  bool hasStep = false;
  linalg::IntVector step{0, 0, 0};
  /// Same-cycle bus. kind:
  ///   None   — no bus (systolic/stationary/unicast)
  ///   Line   — one bus per reuse line along busDir (multicast, and the
  ///            broadcast half of systolic+multicast)
  ///   Global — a single array-wide bus (2-D broadcast, full reuse)
  enum class Bus { None, Line, Global };
  Bus bus = Bus::None;
  linalg::IntVector busDir{0, 0, 0};  ///< spatial, dt == 0 (Line only)

  bool hasBus() const { return bus != Bus::None; }
};

/// Derives the movement mechanism from a classified tensor dataflow.
Movement deriveMovement(const stt::TensorDataflow& dataflow);

/// Schedule of one tile at one outer-loop iteration.
struct TileTrace {
  std::int64_t cycles = 0;  ///< time span of the tile (compute only)
  std::int64_t p1Span = 0, p2Span = 0;
  std::vector<ActivePoint> active;          ///< sorted by t
  std::vector<Injection> injections;        ///< sorted by cycle
  std::vector<OutputEvent> outputs;         ///< sorted by cycle
  std::vector<std::int64_t> injectionWords;  ///< per tensor, label order
                                             ///< (output slot = write count)
  std::vector<std::int64_t> demandPerCycle;  ///< memory words needed per cycle

  std::int64_t totalWords() const;
  std::int64_t peakDemand() const;
};

/// Builds the trace of one tile: the selected loops sweep [0, shape) offset
/// by `tileOrigin` (element indices must be globally correct), with the
/// non-selected loops fixed at the values in `outerFixed` (a full-nest
/// iteration vector; the selected entries are overwritten per point).
TileTrace buildTileTrace(const stt::DataflowSpec& spec,
                         const linalg::IntVector& shape,
                         const linalg::IntVector& tileOrigin,
                         const linalg::IntVector& outerFixed);

/// Convenience: single-tile trace at origin with all outer loops at 0.
TileTrace buildTileTrace(const stt::DataflowSpec& spec,
                         const linalg::IntVector& shape);

/// Memoizes buildTileTrace for one spec.
///
/// Traces are congruent across tile origins and outer iterations: the
/// space-time image depends only on the tile shape, and every element index
/// is an affine function of the iteration vector, so changing
/// (origin, outerFixed) shifts each tensor's elements by a constant offset
/// without changing grouping, injection cycles, or demand. The cache key is
/// therefore the shape (the origin class — interior vs boundary truncation —
/// is exactly what shape captures); base() returns the canonical
/// origin-0/outer-0 trace and materialize() applies the per-tensor offsets
/// of a concrete (origin, outerFixed) projection on top of it.
class TileTraceCache {
 public:
  explicit TileTraceCache(const stt::DataflowSpec& spec) : spec_(spec) {}

  /// The canonical trace of a tile shape (origin 0, outer loops 0). The
  /// shift-invariant fields (active points, cycles, spans, demand profile,
  /// word counts) are valid for every tile of this shape.
  const TileTrace& base(const linalg::IntVector& shape);

  /// A full trace for a concrete tile: the cached base trace with element
  /// indices shifted to (tileOrigin, outerFixed). Equals
  /// buildTileTrace(spec, shape, tileOrigin, outerFixed).
  TileTrace materialize(const linalg::IntVector& shape,
                        const linalg::IntVector& tileOrigin,
                        const linalg::IntVector& outerFixed);

 private:
  const stt::DataflowSpec& spec_;
  std::map<linalg::IntVector, TileTrace> byShape_;
};

}  // namespace tensorlib::sim
