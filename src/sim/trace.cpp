#include "sim/trace.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "support/error.hpp"

namespace tensorlib::sim {

namespace {

using Point = std::array<std::int64_t, 3>;  // (p1, p2, t)

/// Extended gcd: returns g = gcd(a, b) and coefficients with x*a + y*b = g.
std::int64_t egcd(std::int64_t a, std::int64_t b, std::int64_t& x,
                  std::int64_t& y) {
  if (b == 0) {
    x = (a >= 0) ? 1 : -1;
    y = 0;
    return std::abs(a);
  }
  std::int64_t x1 = 0, y1 = 0;
  const std::int64_t g = egcd(b, a % b, x1, y1);
  x = y1;
  y = x1 - (a / b) * y1;
  return g;
}

linalg::IntVector scaled(const linalg::IntVector& v, std::int64_t s) {
  linalg::IntVector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

linalg::IntVector added(const linalg::IntVector& a, const linalg::IntVector& b) {
  linalg::IntVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace

Movement deriveMovement(const stt::TensorDataflow& df) {
  Movement mv;
  const auto& basis = df.latticeBasis;
  const std::size_t r = basis.cols();
  if (r == 0) return mv;  // unicast: nothing moves

  if (r == 1) {
    linalg::IntVector v = basis.col(0);
    if (v[2] == 0) {
      mv.bus = Movement::Bus::Line;  // multicast line
      mv.busDir = v;
    } else {
      if (v[2] < 0) v = scaled(v, -1);
      mv.hasStep = true;
      mv.step = v;
    }
    return mv;
  }

  // rank >= 2: a dt == 0 direction always exists (combine basis vectors to
  // cancel the time components), so there is a bus; the register step is the
  // minimal-positive-dt lattice combination when the plane is not orthogonal
  // to the t-axis.
  std::vector<linalg::IntVector> vs;
  for (std::size_t j = 0; j < r; ++j) vs.push_back(basis.col(j));

  // Fold the basis pairwise: g = gcd of time components with coefficients.
  linalg::IntVector u = vs[0];
  for (std::size_t j = 1; j < r; ++j) {
    std::int64_t x = 0, y = 0;
    const std::int64_t g = egcd(u[2], vs[j][2], x, y);
    if (g == 0) continue;  // both time components zero
    u = added(scaled(u, x), scaled(vs[j], y));
    TL_CHECK(u[2] == g, "egcd combination failed");
  }
  if (u[2] != 0) {
    if (u[2] < 0) u = scaled(u, -1);
    mv.hasStep = true;
    mv.step = u;
  }

  // Bus orientation: a nonzero dt == 0 lattice combination. When the whole
  // plane is spatial (rank 2 with both dt == 0, or rank 3), the "line"
  // degenerates into a plane and the bus is array-global.
  if (df.dataflowClass == stt::DataflowClass::Broadcast2D ||
      df.dataflowClass == stt::DataflowClass::FullReuse) {
    mv.bus = Movement::Bus::Global;
  } else {
    mv.bus = Movement::Bus::Line;
    // w = d2*v1 - d1*v2 cancels the time components exactly.
    const linalg::IntVector w =
        added(scaled(vs[0], vs[1][2]), scaled(vs[1], -vs[0][2]));
    TL_CHECK(w[2] == 0, "bus direction has a time component");
    TL_CHECK(w[0] != 0 || w[1] != 0, "degenerate bus direction");
    mv.busDir = w;
  }
  return mv;
}

std::int64_t TileTrace::totalWords() const {
  std::int64_t total = 0;
  for (auto w : injectionWords) total += w;
  return total;
}

std::int64_t TileTrace::peakDemand() const {
  std::int64_t peak = 0;
  for (auto d : demandPerCycle) peak = std::max(peak, d);
  return peak;
}

TileTrace buildTileTrace(const stt::DataflowSpec& spec,
                         const linalg::IntVector& shape) {
  const linalg::IntVector origin(3, 0);
  linalg::IntVector outer(spec.algebra().loopCount(), 0);
  return buildTileTrace(spec, shape, origin, outer);
}

const TileTrace& TileTraceCache::base(const linalg::IntVector& shape) {
  const auto it = byShape_.find(shape);
  if (it != byShape_.end()) return it->second;
  return byShape_.emplace(shape, buildTileTrace(spec_, shape)).first->second;
}

TileTrace TileTraceCache::materialize(const linalg::IntVector& shape,
                                      const linalg::IntVector& tileOrigin,
                                      const linalg::IntVector& outerFixed) {
  TileTrace out = base(shape);

  // Per-tensor element offset of this (origin, outer) projection: the access
  // functions are affine, so evaluate(x) - evaluate(0) is the constant shift
  // between this tile's elements and the canonical trace's.
  const auto& selIdx = spec_.selection().indices();
  linalg::IntVector x = outerFixed;
  for (std::size_t j = 0; j < 3; ++j) x[selIdx[j]] = tileOrigin[j];
  const linalg::IntVector zero(spec_.algebra().loopCount(), 0);

  std::vector<linalg::IntVector> delta;
  delta.reserve(spec_.tensors().size());
  for (const auto& role : spec_.tensors()) {
    const linalg::IntVector at = role.fullAccess.evaluate(x);
    const linalg::IntVector origin0 = role.fullAccess.evaluate(zero);
    linalg::IntVector d(at.size());
    for (std::size_t k = 0; k < at.size(); ++k) d[k] = at[k] - origin0[k];
    delta.push_back(std::move(d));
  }

  for (auto& inj : out.injections)
    inj.element = added(inj.element, delta[inj.tensorIndex]);
  const std::size_t outSlot = spec_.tensors().size() - 1;
  for (auto& ev : out.outputs) ev.element = added(ev.element, delta[outSlot]);
  return out;
}

TileTrace buildTileTrace(const stt::DataflowSpec& spec,
                         const linalg::IntVector& shape,
                         const linalg::IntVector& tileOrigin,
                         const linalg::IntVector& outerFixed) {
  TL_CHECK(shape.size() == 3 && tileOrigin.size() == 3,
           "buildTileTrace: shape/origin must be 3-D");
  TL_CHECK(outerFixed.size() == spec.algebra().loopCount(),
           "buildTileTrace: outerFixed must cover the whole nest");
  const linalg::IntMatrix& t = spec.transform().matrix();

  // Normalization offsets: the min of each space-time coordinate over the
  // tile box (linear form => min is the sum of per-loop minima).
  std::int64_t lo[3] = {0, 0, 0}, hi[3] = {0, 0, 0};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t j = 0; j < 3; ++j) {
      const std::int64_t c = t.at(r, j) * (shape[j] - 1);
      if (c < 0) lo[r] += c;
      else hi[r] += c;
    }

  TileTrace out;
  out.p1Span = hi[0] - lo[0] + 1;
  out.p2Span = hi[1] - lo[1] + 1;
  out.cycles = hi[2] - lo[2] + 1;

  // --- Active points.
  const std::int64_t volume = shape[0] * shape[1] * shape[2];
  out.active.reserve(static_cast<std::size_t>(volume));
  linalg::IntVector local(3, 0);
  while (true) {
    const linalg::IntVector st = t * local;
    ActivePoint ap;
    ap.iteration = local;
    ap.p1 = st[0] - lo[0];
    ap.p2 = st[1] - lo[1];
    ap.t = st[2] - lo[2];
    out.active.push_back(ap);

    std::size_t d = 3;
    bool done = false;
    while (d-- > 0) {
      if (++local[d] < shape[d]) break;
      local[d] = 0;
      if (d == 0) done = true;
    }
    if (done) break;
  }
  std::sort(out.active.begin(), out.active.end(),
            [](const ActivePoint& a, const ActivePoint& b) { return a.t < b.t; });

  // Full-nest iteration vector for element-index computation.
  const auto& selIdx = spec.selection().indices();
  auto fullIteration = [&](const linalg::IntVector& localSel) {
    linalg::IntVector x = outerFixed;
    for (std::size_t j = 0; j < 3; ++j)
      x[selIdx[j]] = tileOrigin[j] + localSel[j];
    return x;
  };

  out.injectionWords.assign(spec.tensors().size(), 0);
  out.demandPerCycle.assign(static_cast<std::size_t>(out.cycles), 0);

  // --- Input injections: per tensor, group active points by element and run
  // the movement DP (register steps need an exact covered predecessor; a bus
  // covers every same-cycle user at once).
  for (std::size_t ti = 0; ti < spec.tensors().size(); ++ti) {
    const auto& role = spec.tensors()[ti];
    if (role.isOutput) continue;
    const Movement mv = deriveMovement(role.dataflow);

    std::map<linalg::IntVector, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < out.active.size(); ++i)
      groups[role.fullAccess.evaluate(fullIteration(out.active[i].iteration))]
          .push_back(i);

    for (const auto& [element, idxs] : groups) {
      std::set<Point> covered;
      std::size_t i = 0;
      while (i < idxs.size()) {
        // Points arrive sorted by t (idxs preserve active order).
        const std::int64_t cycle = out.active[idxs[i]].t;
        std::size_t j = i;
        std::vector<std::size_t> uncovered;
        for (; j < idxs.size() && out.active[idxs[j]].t == cycle; ++j) {
          const ActivePoint& ap = out.active[idxs[j]];
          bool cov = false;
          if (mv.hasStep) {
            const Point pred{ap.p1 - mv.step[0], ap.p2 - mv.step[1],
                             ap.t - mv.step[2]};
            cov = covered.count(pred) != 0;
          }
          if (cov) {
            covered.insert({ap.p1, ap.p2, ap.t});
          } else {
            uncovered.push_back(idxs[j]);
          }
        }
        if (mv.hasBus()) {
          // The bus must (re)fire whenever any same-cycle user cannot get
          // the value from its own register chain — exactly the condition
          // under which the generated hardware asserts bus-valid.
          if (!uncovered.empty()) {
            const ActivePoint& anchor = out.active[uncovered.front()];
            out.injections.push_back(
                {ti, element, cycle, anchor.p1, anchor.p2, /*viaBus=*/true});
            out.injectionWords[ti] += 1;
            out.demandPerCycle[static_cast<std::size_t>(cycle)] += 1;
          }
          for (std::size_t k : uncovered) {
            const ActivePoint& ap = out.active[k];
            covered.insert({ap.p1, ap.p2, ap.t});
          }
        } else {
          for (std::size_t k : uncovered) {
            const ActivePoint& ap = out.active[k];
            out.injections.push_back(
                {ti, element, ap.t, ap.p1, ap.p2, /*viaBus=*/false});
            out.injectionWords[ti] += 1;
            out.demandPerCycle[static_cast<std::size_t>(ap.t)] += 1;
            covered.insert({ap.p1, ap.p2, ap.t});
          }
        }
        i = j;
      }
    }
  }
  std::sort(out.injections.begin(), out.injections.end(),
            [](const Injection& a, const Injection& b) { return a.cycle < b.cycle; });

  // --- Output events: one write per distinct output element per tile, at
  // the cycle/PE of its last contributing MAC (accumulators, systolic chain
  // exits and reduction-tree roots all emit exactly then). Unicast outputs
  // are covered too: with rank-0 reuse each element has exactly one MAC.
  {
    const auto& role = spec.outputRole();
    const std::size_t outSlot = spec.tensors().size() - 1;
    std::map<linalg::IntVector, OutputEvent> events;
    for (const auto& ap : out.active) {
      const linalg::IntVector element =
          role.fullAccess.evaluate(fullIteration(ap.iteration));
      auto it = events.find(element);
      if (it == events.end()) {
        events.emplace(element, OutputEvent{element, ap.t, ap.p1, ap.p2});
      } else if (ap.t > it->second.cycle) {
        it->second = OutputEvent{element, ap.t, ap.p1, ap.p2};
      }
    }
    for (auto& [element, ev] : events) {
      out.outputs.push_back(ev);
      out.injectionWords[outSlot] += 1;
      out.demandPerCycle[static_cast<std::size_t>(ev.cycle)] += 1;
    }
    std::sort(out.outputs.begin(), out.outputs.end(),
              [](const OutputEvent& a, const OutputEvent& b) {
                return a.cycle < b.cycle;
              });
  }
  return out;
}

}  // namespace tensorlib::sim
