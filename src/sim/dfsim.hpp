// Behavioral cycle-accurate dataflow simulator.
//
// Replays the tile traces of a mapped dataflow design: every MAC at its
// (PE, cycle), every memory word at its injection cycle, with the shared
// scratchpad bandwidth modeled as a words-per-cycle server with backlog.
// In functional mode it also re-computes the output tensor purely from the
// trace (accumulating the product of input elements at every active point),
// which catches any defect in the space-time mapping — dropped iterations,
// PE collisions, wrong element indexing — against the reference executor.
#pragma once

#include <cstdint>

#include "sim/trace.hpp"
#include "stt/mapping.hpp"
#include "tensor/reference.hpp"

namespace tensorlib::sim {

/// Behavioral-simulation controls; results are identical across every
/// setting (docs/TUNING.md documents each knob and when to flip it).
struct SimOptions {
  /// Replay every tile and accumulate output values (needs the env).
  bool functional = true;
  /// Assert that no two MACs land on the same (PE, cycle) — the paper's
  /// full-rank one-op-per-cycle property.
  bool checkCollisions = true;
  /// Memoize tile traces by shape through sim::TileTraceCache instead of
  /// rebuilding one per tile per outer iteration (traces are congruent
  /// across origins). Results are identical; off = the original rebuild
  /// path, kept as the perf baseline in bench/perf_regression.cpp.
  bool reuseTraces = true;
};

struct SimResult {
  std::int64_t cycles = 0;         ///< total, including bandwidth stalls
  std::int64_t computeCycles = 0;  ///< bandwidth-unconstrained total
  std::int64_t macs = 0;
  std::int64_t trafficWords = 0;   ///< memory words moved (reads + writes)
  double utilization = 0.0;        ///< macs / (PEs * cycles)
  /// Memory words per tensor in label order (output = writes). The
  /// per-dataflow traffic signature: unicast ~ MACs, systolic/multicast ~
  /// footprint, stationary ~ resident set.
  std::vector<std::int64_t> tensorTrafficWords;
  std::int64_t peakDemandWords = 0;  ///< max words requested in one cycle
  tensor::DenseTensor output;        ///< functional mode only
};

/// Number of cycles to drain a per-cycle word-demand profile through a
/// server of `wordsPerCycle` capacity (>= profile length; backlog carries).
std::int64_t serveCycles(const std::vector<std::int64_t>& demandPerCycle,
                         double wordsPerCycle);

/// Simulates the full algebra of `spec` on `config`. `env` may be null when
/// options.functional is false.
SimResult simulate(const stt::DataflowSpec& spec, const stt::ArrayConfig& config,
                   const tensor::TensorEnv* env, const SimOptions& options = {});

}  // namespace tensorlib::sim
