#include "sim/dfsim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/error.hpp"

namespace tensorlib::sim {

std::int64_t serveCycles(const std::vector<std::int64_t>& demandPerCycle,
                         double wordsPerCycle) {
  TL_CHECK(wordsPerCycle > 0, "serveCycles: capacity must be positive");
  double backlogWords = 0.0;
  std::int64_t finish = 0;
  for (std::size_t t = 0; t < demandPerCycle.size(); ++t) {
    backlogWords += static_cast<double>(demandPerCycle[t]);
    const double drainCycles = backlogWords / wordsPerCycle;
    finish = std::max<std::int64_t>(
        finish, static_cast<std::int64_t>(t) +
                    static_cast<std::int64_t>(std::ceil(drainCycles)));
    backlogWords = std::max(0.0, backlogWords - wordsPerCycle);
  }
  return std::max<std::int64_t>(finish, static_cast<std::int64_t>(demandPerCycle.size()));
}

namespace {

/// Scales a demand profile by the replication factor (concurrent tiles).
std::vector<std::int64_t> scaledDemand(const std::vector<std::int64_t>& d,
                                       std::int64_t factor) {
  std::vector<std::int64_t> out(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) out[i] = d[i] * factor;
  return out;
}

void checkTileInvariants(const TileTrace& trace, const stt::ArrayConfig& config,
                         bool checkCollisions) {
  TL_CHECK(trace.p1Span <= config.rows && trace.p2Span <= config.cols,
           "tile trace exceeds array bounds");
  if (!checkCollisions) return;
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen;
  for (const auto& ap : trace.active)
    TL_CHECK(seen.insert({ap.p1, ap.p2, ap.t}).second,
             "two MACs mapped to the same (PE, cycle): T is not injective on "
             "the tile");
}

}  // namespace

SimResult simulate(const stt::DataflowSpec& spec, const stt::ArrayConfig& config,
                   const tensor::TensorEnv* env, const SimOptions& options) {
  TL_CHECK(!options.functional || env != nullptr,
           "functional simulation needs a tensor environment");

  const stt::TileMapping mapping = stt::computeMapping(spec, config);
  const double wordsPerCycle = config.wordsPerCycle();
  const auto& algebra = spec.algebra();
  const auto& selIdx = spec.selection().indices();
  const linalg::IntVector extents = spec.selection().extents();

  SimResult result;
  result.tensorTrafficWords.assign(spec.tensors().size(), 0);

  // Trace memoization: tiles of equal shape share one trace (and the
  // functional replay below re-reads the same shapes every outer iteration).
  TileTraceCache traceCache(spec);
  const auto traceFor = [&](const linalg::IntVector& shape) -> const TileTrace& {
    return traceCache.base(shape);
  };

  // --- Cycle accounting per distinct tile shape (traces are identical for
  // identical shapes; replication runs R tiles concurrently and multiplies
  // the bandwidth demand).
  for (const auto& tc : mapping.tiles) {
    TileTrace rebuilt;
    const TileTrace* trace;
    if (options.reuseTraces) {
      trace = &traceFor(tc.shape);
    } else {
      rebuilt = buildTileTrace(spec, tc.shape);
      trace = &rebuilt;
    }
    checkTileInvariants(*trace, config, options.checkCollisions);
    TL_CHECK(static_cast<std::int64_t>(trace->active.size()) == tc.macs,
             "trace active-point count disagrees with mapping");
    TL_CHECK(trace->cycles == tc.computeCycles,
             "trace cycle span disagrees with mapping");

    const std::int64_t tilesTotal = tc.count * mapping.outerIterations;
    const std::int64_t passes =
        (tilesTotal + mapping.replication - 1) / mapping.replication;
    const std::int64_t passCycles = serveCycles(
        scaledDemand(trace->demandPerCycle, mapping.replication), wordsPerCycle);

    result.computeCycles += passes * trace->cycles;
    result.cycles += passes * passCycles;
    result.macs += tilesTotal * tc.macs;
    result.trafficWords += tilesTotal * trace->totalWords();
    for (std::size_t i = 0; i < trace->injectionWords.size(); ++i)
      result.tensorTrafficWords[i] += tilesTotal * trace->injectionWords[i];
    result.peakDemandWords =
        std::max(result.peakDemandWords, mapping.replication * trace->peakDemand());
  }
  // An empty selection extent can produce a zero-cycle result; report zero
  // utilization instead of dividing into NaN.
  result.utilization =
      result.cycles > 0
          ? static_cast<double>(result.macs) /
                (static_cast<double>(config.rows * config.cols) *
                 static_cast<double>(result.cycles))
          : 0.0;

  if (!options.functional) return result;

  // --- Functional replay: walk every tile at every outer iteration and
  // accumulate output values from the trace's active points.
  result.output = tensor::DenseTensor(algebra.tensorShape(algebra.output()));
  const auto& outRole = spec.outputRole();

  // Tile origin grid per selected loop.
  std::vector<std::vector<std::int64_t>> origins(3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::int64_t o = 0; o < extents[j]; o += mapping.fullTile[j])
      origins[j].push_back(o);

  // Outer-loop odometer.
  const auto& outerIdx = spec.selection().outerIndices();
  linalg::IntVector outerFixed(algebra.loopCount(), 0);
  while (true) {
    for (std::int64_t o0 : origins[0])
      for (std::int64_t o1 : origins[1])
        for (std::int64_t o2 : origins[2]) {
          const linalg::IntVector origin{o0, o1, o2};
          linalg::IntVector shape(3);
          for (std::size_t j = 0; j < 3; ++j)
            shape[j] = std::min(mapping.fullTile[j], extents[j] - origin[j]);
          // The replay only reads active points, which are shift-invariant
          // across (origin, outerFixed): the cached base trace of this
          // shape replaces a full rebuild per tile per outer iteration.
          TileTrace rebuilt;
          const TileTrace* trace;
          if (options.reuseTraces) {
            trace = &traceFor(shape);
          } else {
            rebuilt = buildTileTrace(spec, shape, origin, outerFixed);
            trace = &rebuilt;
          }
          for (const auto& ap : trace->active) {
            linalg::IntVector x = outerFixed;
            for (std::size_t j = 0; j < 3; ++j)
              x[selIdx[j]] = origin[j] + ap.iteration[j];
            double prod = 1.0;
            for (const auto& role : spec.tensors()) {
              if (role.isOutput) continue;
              prod *= env->at(role.tensor).at(role.fullAccess.evaluate(x));
            }
            result.output.at(outRole.fullAccess.evaluate(x)) += prod;
          }
        }
    // Advance the outer odometer.
    bool done = outerIdx.empty();
    for (std::size_t d = outerIdx.size(); d-- > 0;) {
      if (++outerFixed[outerIdx[d]] < algebra.loops()[outerIdx[d]].extent) break;
      outerFixed[outerIdx[d]] = 0;
      if (d == 0) done = true;
    }
    if (done) break;
  }
  return result;
}

}  // namespace tensorlib::sim
