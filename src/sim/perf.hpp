// Analytic performance model for large design-space sweeps (Fig. 5).
//
// Uses the exact same per-tile quantities as the behavioral simulator
// (time-row span, per-tensor footprints, replication, bandwidth budget) but
// aggregates them in closed form instead of replaying traces, so a 16x16
// array running ResNet-sized convolutions evaluates in microseconds. The
// test suite pins this model to the behavioral simulator on configurations
// small enough to replay.
#pragma once

#include <cstdint>
#include <string>

#include "stt/block.hpp"
#include "stt/mapping.hpp"

namespace tensorlib::sim {

struct PerfResult {
  std::int64_t totalCycles = 0;
  std::int64_t computeCycles = 0;    ///< bandwidth-unconstrained
  std::int64_t bandwidthCycles = 0;  ///< compute-unconstrained
  std::int64_t macs = 0;
  std::int64_t trafficWords = 0;
  double utilization = 0.0;  ///< macs / (PEs * totalCycles); Fig. 5's metric
  double throughputGops = 0.0;  ///< 2 * macs / time at config frequency
  bool bandwidthBound = false;

  std::string str() const;
};

/// Closed-form performance estimate of `spec` on `config`. When `mappings`
/// is non-null the tile mapping is fetched through (and inserted into) the
/// cache; results are bit-identical either way.
PerfResult estimatePerformance(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& config,
                               stt::MappingCache* mappings = nullptr);

/// Derives the ratio metrics (bandwidthBound, utilization, throughputGops)
/// from the accumulated counters. Division-safe: zero cycles, zero PEs or a
/// zero/invalid frequency yield 0 utilization/throughput, never NaN or inf.
PerfResult finalizePerf(PerfResult raw, const stt::ArrayConfig& config);

/// Closed-form performance of an already-computed tile mapping — the shared
/// core behind estimatePerformance and the block evaluation path, so both
/// are bit-identical by construction given the same mapping.
PerfResult perfFromMapping(const stt::TileMapping& mapping,
                           const stt::ArrayConfig& config);

/// Provable lower bound on estimatePerformance(spec, config).totalCycles,
/// computed without the tile-mapping search (a few dozen operations):
///   * compute: total MACs / PEs — a full-rank transform maps at most one
///     MAC per PE per cycle, at any tiling and replication.
///   * bandwidth rate: any pass sustains at most wordsPerCycle * intensity
///     MACs per cycle, and the arithmetic intensity of every fitting tile
///     is capped by the unmatched-loop extent products under the per-loop
///     spatial span caps.
///   * bandwidth coverage: every grid tiling is charged at least the
///     covered extent product of each tensor's selected loops (one distinct
///     nonzero-coefficient selected loop per tensor dimension), times the
///     outer iteration count, divided by the words-per-cycle budget.
/// The bound is exact for some specs (e.g. utilization-1.0 GEMM designs)
/// and never exceeds the true cycle count — see the pruning soundness tests.
std::int64_t cyclesLowerBound(const stt::DataflowSpec& spec,
                              const stt::ArrayConfig& config);

/// cyclesLowerBound on packed data: the same arithmetic in the same order
/// over SpecBlockSet slot `i`, bit-identical to the scalar overload on
/// (*set.source)[i] (every term is sign-invariant, so the |.|-packed
/// coefficients lose nothing). This is the block pruning pass's inner loop:
/// no spec, matrix or vector is touched, only contiguous int64 arrays.
std::int64_t cyclesLowerBound(const stt::SpecBlockSet& set, std::size_t i,
                              const stt::ArrayConfig& config);

/// cyclesLowerBound on a partial transform (both space rows placed, time
/// row free). The packed bound's caps read only |t(0,j)|/|t(1,j)| and its
/// traffic term is transform-independent, so this equals the packed bound
/// of EVERY time-row completion exactly — the admissible cut predicate of
/// the bound-first branch-and-bound enumeration (pinned by the partial-
/// bound fuzz tests).
std::int64_t cyclesLowerBound(const stt::PartialTransform& partial,
                              const stt::ArrayConfig& config);

}  // namespace tensorlib::sim
