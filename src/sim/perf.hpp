// Analytic performance model for large design-space sweeps (Fig. 5).
//
// Uses the exact same per-tile quantities as the behavioral simulator
// (time-row span, per-tensor footprints, replication, bandwidth budget) but
// aggregates them in closed form instead of replaying traces, so a 16x16
// array running ResNet-sized convolutions evaluates in microseconds. The
// test suite pins this model to the behavioral simulator on configurations
// small enough to replay.
#pragma once

#include <cstdint>
#include <string>

#include "stt/mapping.hpp"

namespace tensorlib::sim {

struct PerfResult {
  std::int64_t totalCycles = 0;
  std::int64_t computeCycles = 0;    ///< bandwidth-unconstrained
  std::int64_t bandwidthCycles = 0;  ///< compute-unconstrained
  std::int64_t macs = 0;
  std::int64_t trafficWords = 0;
  double utilization = 0.0;  ///< macs / (PEs * totalCycles); Fig. 5's metric
  double throughputGops = 0.0;  ///< 2 * macs / time at config frequency
  bool bandwidthBound = false;

  std::string str() const;
};

/// Closed-form performance estimate of `spec` on `config`.
PerfResult estimatePerformance(const stt::DataflowSpec& spec,
                               const stt::ArrayConfig& config);

}  // namespace tensorlib::sim
