#include "linalg/matrix.hpp"

#include <sstream>

namespace tensorlib::linalg {

template <typename T>
Matrix<T>::Matrix(std::initializer_list<std::initializer_list<T>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    TL_CHECK(r.size() == cols_, "Matrix initializer rows have unequal lengths");
    for (const auto& x : r) data_.push_back(x);
  }
}

template <typename T>
Matrix<T> Matrix<T>::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = T(1);
  return m;
}

template <typename T>
Matrix<T> Matrix<T>::operator*(const Matrix& o) const {
  TL_CHECK(cols_ == o.rows_, "Matrix multiply: dimension mismatch");
  Matrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const T& a = at(i, k);
      if (a == T(0)) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) out.at(i, j) += a * o.at(k, j);
    }
  return out;
}

template <typename T>
std::vector<T> Matrix<T>::operator*(const std::vector<T>& v) const {
  TL_CHECK(cols_ == v.size(), "Matrix-vector multiply: dimension mismatch");
  std::vector<T> out(rows_, T(0));
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += at(i, j) * v[j];
  return out;
}

template <typename T>
Matrix<T> Matrix<T>::operator+(const Matrix& o) const {
  TL_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "Matrix add: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + o.data_[i];
  return out;
}

template <typename T>
Matrix<T> Matrix<T>::operator-(const Matrix& o) const {
  TL_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "Matrix sub: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - o.data_[i];
  return out;
}

template <typename T>
Matrix<T> Matrix<T>::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

template <typename T>
std::vector<T> Matrix<T>::row(std::size_t r) const {
  TL_CHECK(r < rows_, "row index out of range");
  return std::vector<T>(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_);
}

template <typename T>
std::vector<T> Matrix<T>::col(std::size_t c) const {
  TL_CHECK(c < cols_, "col index out of range");
  std::vector<T> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = at(i, c);
  return out;
}

template <typename T>
void Matrix<T>::setRow(std::size_t r, const std::vector<T>& v) {
  TL_CHECK(r < rows_ && v.size() == cols_, "setRow: shape mismatch");
  for (std::size_t j = 0; j < cols_; ++j) at(r, j) = v[j];
}

template <typename T>
Matrix<T> Matrix<T>::selectColumns(const std::vector<std::size_t>& columns) const {
  Matrix out(rows_, columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    TL_CHECK(columns[j] < cols_, "selectColumns: column out of range");
    for (std::size_t i = 0; i < rows_; ++i) out.at(i, j) = at(i, columns[j]);
  }
  return out;
}

template <typename T>
std::string Matrix<T>::str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i ? "; " : "");
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << " ";
      if constexpr (std::is_same_v<T, Rational>)
        os << at(i, j).str();
      else
        os << at(i, j);
    }
  }
  os << "]";
  return os.str();
}

template class Matrix<Rational>;
template class Matrix<std::int64_t>;

RatMatrix toRational(const IntMatrix& m) {
  RatMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out.at(i, j) = Rational(m.at(i, j));
  return out;
}

IntMatrix toInteger(const RatMatrix& m) {
  IntMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out.at(i, j) = m.at(i, j).toInteger();
  return out;
}

IntVector primitive(const IntVector& v) {
  std::int64_t g = 0;
  for (auto x : v) g = gcd64(g, x);
  if (g == 0) return v;
  IntVector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] / g;
  for (auto x : out) {
    if (x == 0) continue;
    if (x < 0)
      for (auto& y : out) y = -y;
    break;
  }
  return out;
}

IntVector clearDenominators(const RatVector& v) {
  std::int64_t l = 1;
  for (const auto& x : v)
    if (!x.isZero()) l = lcm64(l, x.den());
  IntVector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = checkedMul(v[i].num(), l / v[i].den());
  return primitive(out);
}

std::string str(const IntVector& v) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i];
  os << ")";
  return os.str();
}

std::string str(const RatVector& v) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < v.size(); ++i) os << (i ? "," : "") << v[i].str();
  os << ")";
  return os.str();
}

}  // namespace tensorlib::linalg
