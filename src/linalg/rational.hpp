// Exact rational arithmetic over int64 numerator/denominator.
//
// All STT analysis (matrix inverses, nullspaces, reuse bases) is done with
// exact rationals so that dataflow classification is never corrupted by
// floating-point noise. Magnitudes stay tiny (3x3 matrices with entries in
// {-1,0,1} and small loop bounds), but every operation still checks for
// overflow to fail loudly rather than silently mis-classify.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace tensorlib::linalg {

/// Exact rational number, always stored normalized: gcd(num, den) == 1 and
/// den > 0. Zero is 0/1.
class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT implicit
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool isZero() const { return num_ == 0; }
  bool isInteger() const { return den_ == 1; }
  /// Sign of the value: -1, 0 or +1.
  int sign() const { return num_ < 0 ? -1 : (num_ > 0 ? 1 : 0); }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const { return num_ == o.num_ && den_ == o.den_; }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  Rational abs() const { return num_ < 0 ? -*this : *this; }
  Rational reciprocal() const;

  /// Converts to int64; requires isInteger().
  std::int64_t toInteger() const;
  double toDouble() const { return static_cast<double>(num_) / static_cast<double>(den_); }

  std::string str() const;

 private:
  void normalize();

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Non-negative gcd; gcd(0,0) == 0.
std::int64_t gcd64(std::int64_t a, std::int64_t b);
/// Least common multiple; lcm(0,x) == 0.
std::int64_t lcm64(std::int64_t a, std::int64_t b);

/// Multiplication with overflow detection (throws tensorlib::Error).
std::int64_t checkedMul(std::int64_t a, std::int64_t b);
/// Addition with overflow detection (throws tensorlib::Error).
std::int64_t checkedAdd(std::int64_t a, std::int64_t b);

}  // namespace tensorlib::linalg
