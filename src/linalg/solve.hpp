// Exact linear solvers over rationals: RREF, rank, determinant, inverse,
// nullspace bases, and membership tests used by the STT reuse analysis.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace tensorlib::linalg {

/// Result of Gauss-Jordan elimination.
struct Rref {
  RatMatrix matrix;               ///< reduced row echelon form
  std::vector<std::size_t> pivots;  ///< pivot column per pivot row
  std::size_t rank = 0;
};

/// Reduced row echelon form via exact Gauss-Jordan elimination.
Rref rref(const RatMatrix& m);

/// Rank of a rational matrix.
std::size_t rank(const RatMatrix& m);
std::size_t rank(const IntMatrix& m);

/// Determinant of a square rational matrix (exact, by elimination).
Rational determinant(const RatMatrix& m);
std::int64_t determinant(const IntMatrix& m);

/// Inverse of a square matrix; nullopt if singular.
std::optional<RatMatrix> inverse(const RatMatrix& m);
std::optional<RatMatrix> inverse(const IntMatrix& m);

/// Basis of the (right) nullspace {x : m*x = 0}, one primitive integer vector
/// per column of the returned matrix. Empty matrix (cols()==0) if trivial.
IntMatrix nullspaceBasis(const RatMatrix& m);
IntMatrix nullspaceBasis(const IntMatrix& m);

/// True if v lies in the column span of basis (both exact).
bool inSpan(const RatMatrix& basis, const RatVector& v);
bool inSpan(const IntMatrix& basis, const IntVector& v);

/// Solves m*x = b exactly; nullopt if inconsistent. If the system is
/// under-determined, free variables are set to zero.
std::optional<RatVector> solve(const RatMatrix& m, const RatVector& b);

}  // namespace tensorlib::linalg
