#include "linalg/solve.hpp"

#include <algorithm>

namespace tensorlib::linalg {

Rref rref(const RatMatrix& input) {
  Rref out;
  out.matrix = input;
  RatMatrix& m = out.matrix;
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::size_t pivotRow = 0;
  for (std::size_t c = 0; c < cols && pivotRow < rows; ++c) {
    // Find a nonzero pivot in column c at or below pivotRow.
    std::size_t sel = pivotRow;
    while (sel < rows && m.at(sel, c).isZero()) ++sel;
    if (sel == rows) continue;
    if (sel != pivotRow)
      for (std::size_t j = 0; j < cols; ++j) std::swap(m.at(sel, j), m.at(pivotRow, j));
    const Rational inv = m.at(pivotRow, c).reciprocal();
    for (std::size_t j = 0; j < cols; ++j) m.at(pivotRow, j) *= inv;
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivotRow || m.at(r, c).isZero()) continue;
      const Rational factor = m.at(r, c);
      for (std::size_t j = 0; j < cols; ++j)
        m.at(r, j) -= factor * m.at(pivotRow, j);
    }
    out.pivots.push_back(c);
    ++pivotRow;
  }
  out.rank = pivotRow;
  return out;
}

std::size_t rank(const RatMatrix& m) { return rref(m).rank; }
std::size_t rank(const IntMatrix& m) { return rank(toRational(m)); }

Rational determinant(const RatMatrix& input) {
  TL_CHECK(input.rows() == input.cols(), "determinant of non-square matrix");
  RatMatrix m = input;
  const std::size_t n = m.rows();
  Rational det(1);
  for (std::size_t c = 0; c < n; ++c) {
    std::size_t sel = c;
    while (sel < n && m.at(sel, c).isZero()) ++sel;
    if (sel == n) return Rational(0);
    if (sel != c) {
      for (std::size_t j = 0; j < n; ++j) std::swap(m.at(sel, j), m.at(c, j));
      det = -det;
    }
    det *= m.at(c, c);
    const Rational inv = m.at(c, c).reciprocal();
    for (std::size_t r = c + 1; r < n; ++r) {
      if (m.at(r, c).isZero()) continue;
      const Rational factor = m.at(r, c) * inv;
      for (std::size_t j = c; j < n; ++j) m.at(r, j) -= factor * m.at(c, j);
    }
  }
  return det;
}

std::int64_t determinant(const IntMatrix& m) {
  return determinant(toRational(m)).toInteger();
}

std::optional<RatMatrix> inverse(const RatMatrix& m) {
  TL_CHECK(m.rows() == m.cols(), "inverse of non-square matrix");
  const std::size_t n = m.rows();
  // Augment [m | I] and reduce.
  RatMatrix aug(n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug.at(i, j) = m.at(i, j);
    aug.at(i, n + i) = Rational(1);
  }
  const Rref red = rref(aug);
  if (red.rank < n || red.pivots[n - 1] >= n) return std::nullopt;
  RatMatrix inv(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) inv.at(i, j) = red.matrix.at(i, n + j);
  return inv;
}

std::optional<RatMatrix> inverse(const IntMatrix& m) { return inverse(toRational(m)); }

IntMatrix nullspaceBasis(const RatMatrix& m) {
  const std::size_t cols = m.cols();
  const Rref red = rref(m);
  std::vector<bool> isPivot(cols, false);
  for (auto p : red.pivots) isPivot[p] = true;

  std::vector<IntVector> basis;
  for (std::size_t freeCol = 0; freeCol < cols; ++freeCol) {
    if (isPivot[freeCol]) continue;
    // Back-substitute: free variable = 1, other free vars = 0.
    RatVector v(cols, Rational(0));
    v[freeCol] = Rational(1);
    for (std::size_t pr = 0; pr < red.pivots.size(); ++pr)
      v[red.pivots[pr]] = -red.matrix.at(pr, freeCol);
    basis.push_back(clearDenominators(v));
  }
  IntMatrix out(cols, basis.size());
  for (std::size_t j = 0; j < basis.size(); ++j)
    for (std::size_t i = 0; i < cols; ++i) out.at(i, j) = basis[j][i];
  return out;
}

IntMatrix nullspaceBasis(const IntMatrix& m) { return nullspaceBasis(toRational(m)); }

bool inSpan(const RatMatrix& basis, const RatVector& v) {
  if (basis.cols() == 0) return isZeroVector(v);
  TL_CHECK(basis.rows() == v.size(), "inSpan: dimension mismatch");
  // v in span(basis) iff rank([basis | v]) == rank(basis).
  RatMatrix aug(basis.rows(), basis.cols() + 1);
  for (std::size_t i = 0; i < basis.rows(); ++i) {
    for (std::size_t j = 0; j < basis.cols(); ++j) aug.at(i, j) = basis.at(i, j);
    aug.at(i, basis.cols()) = v[i];
  }
  return rank(aug) == rank(basis);
}

bool inSpan(const IntMatrix& basis, const IntVector& v) {
  RatVector rv(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) rv[i] = Rational(v[i]);
  return inSpan(toRational(basis), rv);
}

std::optional<RatVector> solve(const RatMatrix& m, const RatVector& b) {
  TL_CHECK(m.rows() == b.size(), "solve: dimension mismatch");
  RatMatrix aug(m.rows(), m.cols() + 1);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) aug.at(i, j) = m.at(i, j);
    aug.at(i, m.cols()) = b[i];
  }
  const Rref red = rref(aug);
  // Inconsistent iff a pivot lands in the augmented column.
  for (auto p : red.pivots)
    if (p == m.cols()) return std::nullopt;
  RatVector x(m.cols(), Rational(0));
  for (std::size_t pr = 0; pr < red.pivots.size(); ++pr)
    x[red.pivots[pr]] = red.matrix.at(pr, m.cols());
  return x;
}

}  // namespace tensorlib::linalg
