#include "linalg/rational.hpp"

#include <ostream>

#include "support/error.hpp"

namespace tensorlib::linalg {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  return checkedMul(a / g, b);
}

std::int64_t checkedMul(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  TL_CHECK(!__builtin_mul_overflow(a, b, &result), "int64 overflow in multiplication");
  return result;
}

std::int64_t checkedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t result = 0;
  TL_CHECK(!__builtin_add_overflow(a, b, &result), "int64 overflow in addition");
  return result;
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  TL_CHECK(den != 0, "Rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  const std::int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

Rational Rational::operator-() const { return Rational(-num_, den_); }

Rational Rational::operator+(const Rational& o) const {
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d); keeps magnitudes small.
  const std::int64_t l = lcm64(den_, o.den_);
  const std::int64_t n =
      checkedAdd(checkedMul(num_, l / den_), checkedMul(o.num_, l / o.den_));
  return Rational(n, l);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce before multiplying to limit growth.
  const std::int64_t g1 = gcd64(num_, o.den_);
  const std::int64_t g2 = gcd64(o.num_, den_);
  return Rational(checkedMul(num_ / g1, o.num_ / g2),
                  checkedMul(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  TL_CHECK(!o.isZero(), "Rational division by zero");
  return *this * o.reciprocal();
}

bool Rational::operator<(const Rational& o) const {
  // num_/den_ < o.num_/o.den_  <=>  num_*o.den_ < o.num_*den_  (dens > 0)
  return checkedMul(num_, o.den_) < checkedMul(o.num_, den_);
}

Rational Rational::reciprocal() const {
  TL_CHECK(num_ != 0, "reciprocal of zero");
  return Rational(den_, num_);
}

std::int64_t Rational::toInteger() const {
  TL_CHECK(den_ == 1, "Rational " + str() + " is not an integer");
  return num_;
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) { return os << r.str(); }

}  // namespace tensorlib::linalg
