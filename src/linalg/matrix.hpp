// Dense matrices and vectors over exact scalar types (Rational / int64).
//
// Sizes in STT analysis are tiny (3x3 transforms, access matrices with a
// handful of rows), so a simple row-major dense representation is both
// adequate and the easiest to reason about.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/rational.hpp"
#include "support/error.hpp"

namespace tensorlib::linalg {

/// Dense row-major matrix over scalar T (Rational or std::int64_t).
template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T(0)) {}
  /// Builds from nested initializer lists: Matrix<T>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& at(std::size_t r, std::size_t c) {
    TL_CHECK(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    TL_CHECK(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  T& operator()(std::size_t r, std::size_t c) { return at(r, c); }
  const T& operator()(std::size_t r, std::size_t c) const { return at(r, c); }

  Matrix operator*(const Matrix& o) const;
  std::vector<T> operator*(const std::vector<T>& v) const;
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  Matrix transposed() const;

  std::vector<T> row(std::size_t r) const;
  std::vector<T> col(std::size_t c) const;
  void setRow(std::size_t r, const std::vector<T>& v);
  /// Returns a new matrix keeping only the listed columns, in order.
  Matrix selectColumns(const std::vector<std::size_t>& columns) const;

  std::string str() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<T> data_;
};

using RatMatrix = Matrix<Rational>;
using IntMatrix = Matrix<std::int64_t>;
using RatVector = std::vector<Rational>;
using IntVector = std::vector<std::int64_t>;

/// Exact conversions between integer and rational matrices.
RatMatrix toRational(const IntMatrix& m);
/// Requires every entry to be an integer.
IntMatrix toInteger(const RatMatrix& m);

/// Dot product of equally sized vectors.
template <typename T>
T dot(const std::vector<T>& a, const std::vector<T>& b) {
  TL_CHECK(a.size() == b.size(), "dot: size mismatch");
  T acc(0);
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// True if every component is zero.
template <typename T>
bool isZeroVector(const std::vector<T>& v) {
  for (const auto& x : v)
    if (!(x == T(0))) return false;
  return true;
}

/// Divides an integer vector by the gcd of its entries and canonicalizes the
/// sign so the first nonzero entry is positive. Zero vector stays zero.
IntVector primitive(const IntVector& v);

/// Exact integer vector from a rational one by clearing denominators and
/// reducing to primitive form (direction only; length is not meaningful).
IntVector clearDenominators(const RatVector& v);

std::string str(const IntVector& v);
std::string str(const RatVector& v);

}  // namespace tensorlib::linalg
