#include "verify/conformance.hpp"

#include <sstream>

#include "arch/testbench.hpp"
#include "sim/dfsim.hpp"
#include "support/error.hpp"
#include "tensor/reference.hpp"

namespace tensorlib::verify {

const char* layerName(Layer layer) {
  switch (layer) {
    case Layer::Reference: return "reference";
    case Layer::DataflowSim: return "dataflow-sim";
    case Layer::DataflowSimRebuild: return "dataflow-sim-rebuild";
    case Layer::RtlCompiled: return "rtl-compiled";
    case Layer::RtlLegacy: return "rtl-legacy";
  }
  return "?";
}

bool SpecReport::pass() const { return !firstDivergence().has_value(); }

std::optional<Layer> SpecReport::firstDivergence() const {
  for (const auto& l : layers)
    if (l.ran && !l.matched) return l.layer;
  return std::nullopt;
}

std::string SpecReport::summary() const {
  std::ostringstream os;
  os << specLabel << " seed=" << dataSeed;
  const auto div = firstDivergence();
  if (!div) {
    os << ": conformant";
    return os.str();
  }
  os << ": FIRST DIVERGENCE at " << layerName(*div);
  for (const auto& l : layers) {
    os << "\n  " << layerName(l.layer) << ": ";
    if (!l.ran) {
      os << "skipped" << (l.detail.empty() ? "" : " (" + l.detail + ")");
    } else if (l.matched) {
      os << "ok";
    } else {
      os << "MISMATCH maxAbsDiff=" << l.maxAbsDiff
         << (l.detail.empty() ? "" : " " + l.detail);
    }
  }
  os << "\n  transform:\n" << transform;
  return os.str();
}

std::string ConformanceReport::summary() const {
  std::ostringstream os;
  os << algebra << "\n  seed=" << dataSeed << " specs=" << specsChecked
     << " rtlSpecs=" << rtlSpecsChecked;
  if (specsChecked == 0) {
    os << " : VACUOUS (empty design space under these enumeration options)";
    return os.str();
  }
  if (pass()) {
    os << " : all conformant";
    return os.str();
  }
  os << " : " << failures.size() << " divergent design point(s)";
  for (const auto& f : failures) os << "\n" << f.summary();
  return os.str();
}

namespace {

LayerResult compareOutputs(Layer layer, const tensor::DenseTensor& got,
                           const tensor::DenseTensor& golden) {
  LayerResult r;
  r.layer = layer;
  r.ran = true;
  if (!got.sameShape(golden)) {
    r.matched = false;
    r.detail = "output shape mismatch";
    return r;
  }
  r.maxAbsDiff = got.maxAbsDiff(golden);
  r.matched = r.maxAbsDiff == 0.0;
  return r;
}

LayerResult skipped(Layer layer, std::string why) {
  LayerResult r;
  r.layer = layer;
  r.ran = false;
  r.detail = std::move(why);
  return r;
}

/// One behavioral simulation with the given trace policy, compared against
/// the golden output. Errors thrown by the simulator count as divergence at
/// this layer (the layers upstream accepted the spec).
LayerResult runDataflowSim(Layer layer, const stt::DataflowSpec& spec,
                           const ConformanceOptions& options,
                           const tensor::TensorEnv& env,
                           const tensor::DenseTensor& golden,
                           bool reuseTraces) {
  sim::SimOptions simOpts;
  simOpts.reuseTraces = reuseTraces;
  try {
    const sim::SimResult result =
        sim::simulate(spec, options.array, &env, simOpts);
    return compareOutputs(layer, result.output, golden);
  } catch (const Error& e) {
    LayerResult r;
    r.layer = layer;
    r.ran = true;
    r.matched = false;
    r.detail = std::string("simulator error: ") + e.what();
    return r;
  }
}

/// One RTL testbench run of the accelerator's tile under `engine`. The
/// testbench compares the collected port outputs against its own golden tile
/// values, so a mismatch localizes to the netlist/engine, not the mapping.
LayerResult runRtlEngine(Layer layer, const arch::GeneratedAccelerator& acc,
                         const tensor::TensorEnv& env, hwir::SimEngine engine,
                         bool tamper) {
  arch::RtlRunOptions runOpts;
  runOpts.engine = engine;
  runOpts.corruptTapeMasks = tamper;
  const arch::RtlRunResult run = arch::runAcceleratorTile(acc, env, runOpts);
  LayerResult r;
  r.layer = layer;
  r.ran = true;
  r.maxAbsDiff = run.maxAbsDiff;
  r.matched = run.matches();
  return r;
}

}  // namespace

SpecReport checkSpec(const stt::DataflowSpec& spec,
                     const ConformanceOptions& options, bool runRtl) {
  SpecReport report;
  report.specLabel = spec.label();
  report.transform = spec.transform().str();
  report.dataSeed = options.dataSeed;

  const auto& algebra = spec.algebra();
  const tensor::TensorEnv env =
      tensor::makeRandomInputs(algebra, options.dataSeed);
  const tensor::DenseTensor golden = tensor::referenceExecute(algebra, env);

  LayerResult ref;
  ref.layer = Layer::Reference;
  ref.ran = true;
  report.layers.push_back(ref);

  report.layers.push_back(runDataflowSim(Layer::DataflowSim, spec, options,
                                         env, golden, /*reuseTraces=*/true));
  report.layers.push_back(runDataflowSim(Layer::DataflowSimRebuild, spec,
                                         options, env, golden,
                                         /*reuseTraces=*/false));

  if (!runRtl) {
    report.layers.push_back(skipped(Layer::RtlCompiled, "rtl budget"));
    report.layers.push_back(skipped(Layer::RtlLegacy, "rtl budget"));
    return report;
  }
  if (spec.outputRole().dataflow.reuseRank > 1) {
    report.layers.push_back(
        skipped(Layer::RtlCompiled, "rank-2 output not netlist-generable"));
    report.layers.push_back(
        skipped(Layer::RtlLegacy, "rank-2 output not netlist-generable"));
    return report;
  }
  std::optional<arch::GeneratedAccelerator> acc;
  try {
    acc.emplace(arch::generateAccelerator(spec, options.array));
  } catch (const Error& e) {
    // Known generator limitation for this dataflow combination: the
    // behavioral layers above still fully verified the mapping.
    report.layers.push_back(
        skipped(Layer::RtlCompiled, std::string("not generable: ") + e.what()));
    report.layers.push_back(
        skipped(Layer::RtlLegacy, std::string("not generable: ") + e.what()));
    return report;
  }
  // Errors past this point are engine defects, not generator limitations:
  // they must surface as divergence at their layer, never as a skip.
  const auto runEngine = [&](Layer layer, hwir::SimEngine engine, bool tamper) {
    try {
      return runRtlEngine(layer, *acc, env, engine, tamper);
    } catch (const Error& e) {
      LayerResult r;
      r.layer = layer;
      r.ran = true;
      r.matched = false;
      r.detail = std::string("rtl error: ") + e.what();
      return r;
    }
  };
  report.layers.push_back(runEngine(Layer::RtlCompiled,
                                    hwir::SimEngine::Compiled,
                                    options.tamperRtlTape));
  report.layers.push_back(
      runEngine(Layer::RtlLegacy, hwir::SimEngine::Legacy, /*tamper=*/false));
  return report;
}

ConformanceReport checkAlgebra(const tensor::TensorAlgebra& algebra,
                               const ConformanceOptions& options) {
  ConformanceReport report;
  report.algebra = algebra.str();
  report.dataSeed = options.dataSeed;

  for (const auto& sel : stt::allLoopSelections(algebra)) {
    auto specs = stt::enumerateTransforms(algebra, sel, options.enumeration);
    const std::size_t count =
        std::min(options.maxSpecsPerSelection, specs.size());
    for (std::size_t i = 0; i < count; ++i) {
      const bool runRtl = report.rtlSpecsChecked < options.maxRtlSpecs;
      SpecReport sr = checkSpec(specs[i], options, runRtl);
      // Only designs whose RTL layers actually executed consume the budget;
      // rank-2 outputs and generator limitations are free skips.
      if (sr.layers.size() > 3 && sr.layers[3].ran) ++report.rtlSpecsChecked;
      ++report.specsChecked;
      if (!sr.pass()) report.failures.push_back(std::move(sr));
    }
  }
  return report;
}

FailurePredicate divergencePredicate(const ConformanceOptions& options) {
  return [options](const tensor::TensorAlgebra& candidate) {
    try {
      return !checkAlgebra(candidate, options).failures.empty();
    } catch (const Error&) {
      return true;
    }
  };
}

}  // namespace tensorlib::verify
