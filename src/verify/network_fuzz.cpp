#include "verify/network_fuzz.hpp"

#include "arch/model.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace tensorlib::verify {

namespace {

namespace wl = tensor::workloads;

linalg::IntVector outputShape(const tensor::TensorAlgebra& algebra) {
  return algebra.tensorShape(algebra.output());
}

linalg::IntVector firstInputShape(const tensor::TensorAlgebra& algebra) {
  return algebra.tensorShape(algebra.inputs()[0]);
}

/// Small extents keep fuzzed models within the smoke-test budget: the
/// stitched run costs tiles x stagePeriod cycles per layer.
std::int64_t drawExtent(Prng& rng, const std::string& param) {
  if (param == "stride" || param == "dilation") return 2;
  if (param == "p" || param == "q") return rng.uniformInt(2, 3);
  if (param == "b") return rng.uniformInt(2, 3);
  return rng.uniformInt(2, 4);
}

tensor::NetworkLayer drawLayer(Prng& rng, const std::string& layerName) {
  const auto& table = wl::layerFactoryTable();
  const auto& factory = table[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(table.size()) - 1))];
  std::vector<std::pair<std::string, std::int64_t>> extents;
  for (const std::string& param : factory.params)
    extents.emplace_back(param, drawExtent(rng, param));
  return wl::makeNetworkLayer(layerName, factory.name, extents);
}

/// Fallback consumer that chains from ANY producer: a GEMM whose
/// activation A[m,k] row-major flat size equals the producer's output
/// element count (FlatExact by construction).
tensor::NetworkLayer fallbackLayer(const std::string& layerName,
                                   const linalg::IntVector& producerOut) {
  std::int64_t flat = 1;
  for (const std::int64_t e : producerOut) flat *= e;
  return wl::makeNetworkLayer(
      layerName, "gemm", {{"m", flat}, {"n", 2}, {"k", 1}});
}

}  // namespace

tensor::NetworkSpec randomNetwork(std::uint64_t seed) {
  Prng rng(seed * 0x9e3779b97f4a7c15ULL + 0x4c957f2d8c2aULL);
  const std::int64_t layerCount = rng.uniformInt(2, 6);
  std::vector<tensor::NetworkLayer> layers;
  for (std::int64_t i = 0; i < layerCount; ++i) {
    const std::string name = "l" + std::to_string(i);
    if (layers.empty()) {
      layers.push_back(drawLayer(rng, name));
      continue;
    }
    const linalg::IntVector producerOut = outputShape(layers.back().algebra);
    bool placed = false;
    for (int attempt = 0; attempt < 12 && !placed; ++attempt) {
      tensor::NetworkLayer candidate = drawLayer(rng, name);
      if (arch::chainRule(producerOut, firstInputShape(candidate.algebra))) {
        layers.push_back(std::move(candidate));
        placed = true;
      }
    }
    if (!placed) layers.push_back(fallbackLayer(name, producerOut));
  }
  return tensor::NetworkSpec("fuzz-" + std::to_string(seed),
                             std::move(layers));
}

tensor::NetworkSpec shrinkNetwork(const tensor::NetworkSpec& failing,
                                  const NetworkFailurePredicate& stillFails) {
  const auto& layers = failing.layers();
  // Ascending window length: the first reproducing window is minimal. A
  // contiguous window keeps every retained adjacency, so candidates stay
  // stitchable whenever the original was.
  for (std::size_t len = 1; len < layers.size(); ++len)
    for (std::size_t start = 0; start + len <= layers.size(); ++start) {
      std::vector<tensor::NetworkLayer> window(
          layers.begin() + static_cast<std::ptrdiff_t>(start),
          layers.begin() + static_cast<std::ptrdiff_t>(start + len));
      tensor::NetworkSpec candidate(
          failing.name() + "/shrink[" + std::to_string(start) + ".." +
              std::to_string(start + len) + ")",
          std::move(window));
      if (stillFails(candidate)) return candidate;
    }
  return failing;
}

}  // namespace tensorlib::verify
