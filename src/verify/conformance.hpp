// Cross-layer differential conformance oracle.
//
// The codebase keeps two implementations of every hot path (legacy vs. fast
// enumeration, legacy vs. compiled-tape RTL interpretation, rebuilt vs.
// memoized tile traces). This oracle runs one design point through every
// engine in lockstep against the dense reference executor and reports the
// FIRST divergent layer with enough context to replay it:
//
//   Reference          tensor::referenceExecute       (the golden model)
//   DataflowSim        sim::simulate, trace memoization on
//   DataflowSimRebuild sim::simulate, trace memoization off
//   RtlCompiled        generated netlist under the compiled evaluation tape
//   RtlLegacy          generated netlist under the legacy node interpreter
//
// A divergence in DataflowSim but not DataflowSimRebuild indicts the trace
// cache; one in RtlCompiled but not RtlLegacy indicts the tape compiler; and
// so on. checkAlgebra() sweeps the enumerated design space of an algebra so
// a single call conformance-checks a whole scenario.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stt/enumerate.hpp"
#include "stt/mapping.hpp"
#include "tensor/algebra.hpp"
#include "verify/fuzz.hpp"

namespace tensorlib::verify {

/// The engines a design point is run through, in comparison order.
enum class Layer {
  Reference,           ///< dense reference executor (baseline)
  DataflowSim,         ///< functional dataflow sim, TileTraceCache on
  DataflowSimRebuild,  ///< functional dataflow sim, per-tile rebuild
  RtlCompiled,         ///< netlist testbench under the compiled tape
  RtlLegacy,           ///< netlist testbench under the legacy interpreter
};

const char* layerName(Layer layer);

struct ConformanceOptions {
  /// Array the designs are mapped onto. Small arrays keep tile traces (and
  /// therefore netlists) small, which is what a sweeping oracle wants.
  stt::ArrayConfig array{4, 4, 320.0, 32.0, 2};
  /// Seed for the deterministic tensor contents (the replay handle).
  std::uint64_t dataSeed = 1;
  /// Enumeration engine/knobs under test (checkAlgebra only).
  stt::EnumerationOptions enumeration;
  /// Per-selection cap on design points (checkAlgebra only).
  std::size_t maxSpecsPerSelection = 6;
  /// RTL runs cost ~10x a behavioral run; cap them per algebra. 0 disables
  /// the RTL layers entirely.
  std::size_t maxRtlSpecs = 4;
  /// Fault-injection demo: corrupt the compiled tape's width masks so the
  /// oracle must localize the defect to RtlCompiled.
  bool tamperRtlTape = false;
};

/// Outcome of one engine on one design point.
struct LayerResult {
  Layer layer = Layer::Reference;
  bool ran = false;       ///< false: skipped (detail says why)
  bool matched = true;    ///< vs. the reference/golden output
  double maxAbsDiff = 0.0;
  std::string detail;
};

/// All layers of one design point.
struct SpecReport {
  std::string specLabel;
  std::string transform;  ///< the 3x3 STT matrix, for exact replay
  std::uint64_t dataSeed = 0;
  std::vector<LayerResult> layers;

  bool pass() const;
  /// First layer that ran and mismatched; nullopt when conformant.
  std::optional<Layer> firstDivergence() const;
  std::string summary() const;
};

/// Aggregate over the design space of one algebra.
struct ConformanceReport {
  std::string algebra;  ///< TensorAlgebra::str(), for replay context
  std::uint64_t dataSeed = 0;
  std::size_t specsChecked = 0;
  std::size_t rtlSpecsChecked = 0;
  std::vector<SpecReport> failures;  ///< only divergent design points

  /// Conformant AND non-vacuous: an empty design space (everything dropped
  /// by the enumeration filters) is not a green verdict — nothing was
  /// checked. Callers sweeping algebras that may legitimately enumerate
  /// empty should inspect `failures`/`specsChecked` directly.
  bool pass() const { return failures.empty() && specsChecked > 0; }
  std::string summary() const;
};

/// Runs one design point through every engine. `runRtl` additionally drives
/// the generated netlist through both RTL engines (skipped automatically for
/// rank-2 outputs, which the netlist generator does not support).
SpecReport checkSpec(const stt::DataflowSpec& spec,
                     const ConformanceOptions& options = {}, bool runRtl = true);

/// Enumerates the algebra's design space (capped per selection) and checks
/// every point; failures carry the replay seed and the exact transform.
ConformanceReport checkAlgebra(const tensor::TensorAlgebra& algebra,
                               const ConformanceOptions& options = {});

/// shrinkAlgebra predicate: a candidate "still fails" when its conformance
/// sweep produces at least one divergent design point; a pipeline Error on
/// a valid algebra also counts (it is a defect worth keeping), a vacuously
/// empty design space does not. Shared by the fuzz test and the CLI so a
/// shrunken replay means the same thing in both.
FailurePredicate divergencePredicate(const ConformanceOptions& options);

}  // namespace tensorlib::verify
