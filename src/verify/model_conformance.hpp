// Model-level differential conformance oracle.
//
// Lifts the per-design oracle (verify/conformance.*) to whole models: run
// NetworkExplorer's per-layer winners through the stitched model
// accelerator (arch/model.*) — one merged netlist, one compiled RTL tape,
// inter-layer buffers with back-pressure — and compare every layer's
// collected output element-exactly against the composed dense reference
// (per-layer referenceExecute chained through the same embed + requantize
// contract the hardware applies). A divergence report names the FIRST
// divergent (layer, element, cycle) and carries the replay seed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "stt/enumerate.hpp"
#include "tensor/network.hpp"

namespace tensorlib::verify {

struct ModelConformanceOptions {
  /// Shared array every layer is mapped onto (small keeps the stitched
  /// netlist and the stage schedules small).
  stt::ArrayConfig array{4, 4, 320.0, 32.0, 2};
  /// Seed for the deterministic per-layer tensor contents (the replay
  /// handle; layer l uses a seed mixed from this and l).
  std::uint64_t dataSeed = 1;
  /// Worker threads of the owned ExplorationService. The winner
  /// assignment is bit-identical across thread counts, so the stitched
  /// model — and this oracle's verdict — must be too.
  std::size_t threads = 1;
  /// Per-layer enumeration knobs (dropAllUnicast is overridden per layer).
  stt::EnumerationOptions enumeration;
  /// Stitched datapath width (32 keeps deep compositions exact alongside
  /// the 8-bit inter-layer requantization).
  int dataWidth = 32;
  /// Fault injection: corrupt the compiled tape's width masks so the
  /// oracle must localize a divergence to a (layer, element, cycle).
  bool tamperRtlTape = false;
  /// Additionally run the stitched top under the legacy interpreter and
  /// require bit-identical outputs (slower; the engine cross-check).
  bool alsoLegacy = false;
};

/// The first divergent element of a failed model run.
struct ModelDivergence {
  std::size_t layerIndex = 0;
  std::string layer;            ///< NetworkLayer::name
  linalg::IntVector element;    ///< into that layer's output tensor
  double expected = 0.0;        ///< composed dense reference
  double actual = 0.0;          ///< stitched RTL collected value
  std::int64_t cycle = 0;       ///< cycle the element was last sampled
  std::string engine;           ///< "compiled" or "legacy"
};

/// Which design each layer actually runs: the explorer's winner, unless
/// the netlist generator cannot realize it (rank-2 outputs etc.), in which
/// case the layer's frontier is walked in canonical order and the
/// substitution recorded.
struct ModelLayerPick {
  std::string layer;
  std::string winner;  ///< composed-assignment dataflow label
  std::string used;    ///< label actually stitched
  bool substituted = false;
};

struct ModelConformanceReport {
  std::string model;  ///< NetworkSpec::name, for replay context
  std::uint64_t dataSeed = 0;
  std::size_t threads = 1;
  std::vector<ModelLayerPick> picks;
  std::vector<std::int64_t> bufferCapacities;  ///< committed depths
  std::int64_t cyclesRun = 0;
  std::int64_t stallSlots = 0;
  std::optional<ModelDivergence> divergence;
  std::string error;  ///< pipeline Error text; empty when none

  bool pass() const { return !divergence && error.empty(); }
  /// One line; a failure includes the replay handle
  /// (conformance_runner --model ... --data-seed ...).
  std::string summary() const;
};

/// The whole flow: explore every layer through an owned ExplorationService
/// (options.threads workers), compose the per-layer frontiers into the
/// network winner, stitch the winning specs into one model accelerator,
/// execute it on the compiled RTL tape and compare against the composed
/// dense reference. Pipeline Errors (non-stitchable shapes, no realizable
/// design, buffer deadlock) are captured in `error`, not thrown.
ModelConformanceReport checkModel(const tensor::NetworkSpec& network,
                                  const ModelConformanceOptions& options = {});

}  // namespace tensorlib::verify
