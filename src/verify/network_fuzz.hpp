// Seeded network fuzzer + shrinker for the model-level oracle.
//
// randomNetwork(seed) draws a 2-6 layer NetworkSpec from the JSONL workload
// factory table (tensor::workloads::layerFactoryTable) with small random
// extents, constrained so every adjacent pair satisfies the stitching
// contract (arch::chainRule) — the generated models always build into a
// stitched accelerator, so a checkModel failure on one is a real defect,
// not a rejected input. shrinkNetwork minimizes a failing model to the
// smallest contiguous layer window that still fails, which for chain bugs
// is the divergent producer/consumer pair.
#pragma once

#include <cstdint>
#include <functional>

#include "tensor/network.hpp"

namespace tensorlib::verify {

/// Deterministic random model: same seed, same network (layer names
/// "l0".."lN", network name "fuzz-<seed>"). Every adjacent layer pair is
/// chainable by construction; a non-chainable draw is re-rolled, with a
/// guaranteed GEMM fallback whose activation row-major matches the
/// producer's output exactly.
tensor::NetworkSpec randomNetwork(std::uint64_t seed);

/// Does this (already stitch-valid) candidate still fail?
using NetworkFailurePredicate =
    std::function<bool(const tensor::NetworkSpec&)>;

/// Minimizes a failing network to the smallest contiguous layer window
/// whose spec still satisfies `stillFails` — windows preserve adjacency,
/// so every candidate remains stitchable. Returns `failing` itself when no
/// smaller window reproduces. The window's position is recorded in the
/// shrunken network's name ("<name>/shrink[i..j)").
tensor::NetworkSpec shrinkNetwork(const tensor::NetworkSpec& failing,
                                  const NetworkFailurePredicate& stillFails);

}  // namespace tensorlib::verify
