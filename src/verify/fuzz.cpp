#include "verify/fuzz.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace tensorlib::verify {

namespace {

using tensor::TensorAlgebra;

/// Mutable decomposition of an algebra the shrinker edits freely; build()
/// re-validates through the TensorAlgebra constructor.
struct ProtoTensor {
  std::string name;
  linalg::IntMatrix coeff;
  linalg::IntVector offset;
};

struct Proto {
  std::string name;
  std::vector<tensor::Iterator> loops;
  ProtoTensor output;
  std::vector<ProtoTensor> inputs;
};

Proto toProto(const TensorAlgebra& a) {
  Proto p;
  p.name = a.name();
  p.loops = a.loops();
  p.output = {a.output().tensor, a.output().access.coeff(),
              a.output().access.offset()};
  for (const auto& in : a.inputs())
    p.inputs.push_back({in.tensor, in.access.coeff(), in.access.offset()});
  return p;
}

std::optional<TensorAlgebra> build(const Proto& p) {
  try {
    tensor::TensorRef out{p.output.name,
                          tensor::AffineAccess(p.output.coeff, p.output.offset)};
    std::vector<tensor::TensorRef> ins;
    for (const auto& t : p.inputs)
      ins.push_back({t.name, tensor::AffineAccess(t.coeff, t.offset)});
    return TensorAlgebra(p.name, p.loops, std::move(out), std::move(ins));
  } catch (const Error&) {
    return std::nullopt;
  }
}

linalg::IntMatrix dropColumn(const linalg::IntMatrix& m, std::size_t col) {
  linalg::IntMatrix out(m.rows(), m.cols() - 1);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0, o = 0; c < m.cols(); ++c)
      if (c != col) out.at(r, o++) = m.at(r, c);
  return out;
}

linalg::IntMatrix dropRow(const linalg::IntMatrix& m, std::size_t row) {
  linalg::IntMatrix out(m.rows() - 1, m.cols());
  for (std::size_t r = 0, o = 0; r < m.rows(); ++r) {
    if (r == row) continue;
    for (std::size_t c = 0; c < m.cols(); ++c) out.at(o, c) = m.at(r, c);
    ++o;
  }
  return out;
}

/// All single-step reductions of `a`, smallest-result-first: structural
/// drops (inputs, loops, dimensions) before scalar reductions (extents,
/// offsets, coefficients).
std::vector<TensorAlgebra> shrinkCandidates(const TensorAlgebra& a,
                                            const FuzzOptions& options) {
  std::vector<TensorAlgebra> out;
  const Proto base = toProto(a);
  auto push = [&](const Proto& p) {
    if (auto built = build(p)) out.push_back(std::move(*built));
  };

  // Drop one input (keep >= 1).
  for (std::size_t i = 0; base.inputs.size() > 1 && i < base.inputs.size();
       ++i) {
    Proto p = base;
    p.inputs.erase(p.inputs.begin() + static_cast<std::ptrdiff_t>(i));
    push(p);
  }
  // Drop one loop (keep >= minLoops): the loop column vanishes from every
  // access, i.e. the loop is pinned at 0.
  for (std::size_t j = 0; base.loops.size() > options.minLoops &&
                          j < base.loops.size();
       ++j) {
    Proto p = base;
    p.loops.erase(p.loops.begin() + static_cast<std::ptrdiff_t>(j));
    p.output.coeff = dropColumn(p.output.coeff, j);
    for (auto& t : p.inputs) t.coeff = dropColumn(t.coeff, j);
    push(p);
  }
  // Drop one tensor dimension (keep rank >= 1).
  auto dropDims = [&](bool isOutput, std::size_t tensorIdx) {
    const ProtoTensor& t =
        isOutput ? base.output : base.inputs[tensorIdx];
    for (std::size_t d = 0; t.coeff.rows() > 1 && d < t.coeff.rows(); ++d) {
      Proto p = base;
      ProtoTensor& pt = isOutput ? p.output : p.inputs[tensorIdx];
      pt.coeff = dropRow(pt.coeff, d);
      linalg::IntVector off = pt.offset;
      off.erase(off.begin() + static_cast<std::ptrdiff_t>(d));
      pt.offset = std::move(off);
      push(p);
    }
  };
  dropDims(/*isOutput=*/true, 0);
  for (std::size_t i = 0; i < base.inputs.size(); ++i) dropDims(false, i);
  // Shrink one extent: jump to 1 first, then decrement.
  for (std::size_t j = 0; j < base.loops.size(); ++j) {
    if (base.loops[j].extent <= 1) continue;
    Proto p = base;
    p.loops[j].extent = 1;
    push(p);
    if (base.loops[j].extent > 2) {
      Proto q = base;
      --q.loops[j].extent;
      push(q);
    }
  }
  // Zero one offset entry.
  auto zeroOffsets = [&](bool isOutput, std::size_t tensorIdx) {
    const ProtoTensor& t = isOutput ? base.output : base.inputs[tensorIdx];
    for (std::size_t d = 0; d < t.offset.size(); ++d) {
      if (t.offset[d] == 0) continue;
      Proto p = base;
      (isOutput ? p.output : p.inputs[tensorIdx]).offset[d] = 0;
      push(p);
    }
  };
  zeroOffsets(true, 0);
  for (std::size_t i = 0; i < base.inputs.size(); ++i) zeroOffsets(false, i);
  // Lower one coefficient: >1 -> 1, 1 -> 0.
  auto lowerCoeffs = [&](bool isOutput, std::size_t tensorIdx) {
    const ProtoTensor& t = isOutput ? base.output : base.inputs[tensorIdx];
    for (std::size_t r = 0; r < t.coeff.rows(); ++r)
      for (std::size_t c = 0; c < t.coeff.cols(); ++c) {
        const std::int64_t v = t.coeff.at(r, c);
        if (v == 0) continue;
        Proto p = base;
        (isOutput ? p.output : p.inputs[tensorIdx]).coeff.at(r, c) =
            v > 1 ? 1 : 0;
        push(p);
      }
  };
  lowerCoeffs(true, 0);
  for (std::size_t i = 0; i < base.inputs.size(); ++i) lowerCoeffs(false, i);
  return out;
}

}  // namespace

tensor::TensorAlgebra randomAlgebra(std::uint64_t seed,
                                    const FuzzOptions& options) {
  TL_CHECK(options.minLoops >= 3 && options.maxLoops >= options.minLoops,
           "randomAlgebra: need at least 3 loops for STT selections");
  TL_CHECK(options.maxInputs >= 1 && options.maxInputs <= 3,
           "randomAlgebra: supports 1-3 input tensors");
  Prng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  const std::size_t loopCount = static_cast<std::size_t>(rng.uniformInt(
      static_cast<std::int64_t>(options.minLoops),
      static_cast<std::int64_t>(options.maxLoops)));
  std::vector<tensor::Iterator> loops(loopCount);
  for (std::size_t j = 0; j < loopCount; ++j) {
    loops[j].name = "i" + std::to_string(j);
    loops[j].extent = rng.uniformInt(1, options.maxExtent);
  }

  // Raw access matrices first; validity fixes are applied before building.
  struct Raw {
    linalg::IntMatrix coeff;
    linalg::IntVector offset;
  };
  auto makeRaw = [&]() {
    const std::size_t rank = static_cast<std::size_t>(rng.uniformInt(
        1, static_cast<std::int64_t>(
               std::min(options.maxTensorRank, loopCount))));
    Raw raw{linalg::IntMatrix(rank, loopCount), linalg::IntVector(rank, 0)};
    for (std::size_t d = 0; d < rank; ++d) {
      for (std::size_t j = 0; j < loopCount; ++j) {
        const std::int64_t roll = rng.uniformInt(0, 9);
        if (roll < 6) continue;                       // sparse by default
        raw.coeff.at(d, j) =
            roll < 9 ? 1 : rng.uniformInt(2, std::max<std::int64_t>(
                                                 2, options.maxCoeff));
      }
      if (options.maxOffset > 0 && rng.uniformInt(0, 3) == 0)
        raw.offset[d] = rng.uniformInt(1, options.maxOffset);
    }
    return raw;
  };

  Raw output = makeRaw();
  const std::size_t numInputs = static_cast<std::size_t>(
      rng.uniformInt(1, static_cast<std::int64_t>(options.maxInputs)));
  std::vector<Raw> inputs;
  for (std::size_t i = 0; i < numInputs; ++i) inputs.push_back(makeRaw());

  // Fix degenerate accesses (all-zero matrix would make the tensor a single
  // scalar, which the enumeration filters drop wholesale).
  auto ensureNonZero = [&](Raw& raw) {
    for (std::size_t d = 0; d < raw.coeff.rows(); ++d)
      for (std::size_t j = 0; j < raw.coeff.cols(); ++j)
        if (raw.coeff.at(d, j) != 0) return;
    raw.coeff.at(
        static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(raw.coeff.rows()) - 1)),
        static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(loopCount) - 1))) = 1;
  };
  ensureNonZero(output);
  for (auto& raw : inputs) ensureNonZero(raw);

  // Every loop must be referenced by some tensor, or it is pure replication
  // the analysis never observes.
  std::vector<const Raw*> allRaw{&output};
  for (const auto& r : inputs) allRaw.push_back(&r);
  for (std::size_t j = 0; j < loopCount; ++j) {
    bool used = false;
    for (const Raw* raw : allRaw)
      for (std::size_t d = 0; d < raw->coeff.rows(); ++d)
        used = used || raw->coeff.at(d, j) != 0;
    if (used) continue;
    Raw& target = inputs[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(inputs.size()) - 1))];
    target.coeff.at(
        static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(target.coeff.rows()) - 1)),
        j) = 1;
  }

  static const char* kInputNames[] = {"A", "B", "C"};
  std::vector<tensor::TensorRef> inputRefs;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    inputRefs.push_back({kInputNames[i], tensor::AffineAccess(
                                             std::move(inputs[i].coeff),
                                             std::move(inputs[i].offset))});
  return TensorAlgebra(
      "fuzz-" + std::to_string(seed), std::move(loops),
      tensor::TensorRef{"Out", tensor::AffineAccess(std::move(output.coeff),
                                                    std::move(output.offset))},
      std::move(inputRefs));
}

std::string describeAlgebra(const tensor::TensorAlgebra& algebra) {
  std::ostringstream os;
  os << algebra.str() << "\n  output " << algebra.output().tensor << ": "
     << algebra.output().access.str();
  for (const auto& in : algebra.inputs())
    os << "\n  input " << in.tensor << ": " << in.access.str();
  return os.str();
}

tensor::TensorAlgebra shrinkAlgebra(const tensor::TensorAlgebra& failing,
                                    const FailurePredicate& stillFails,
                                    const FuzzOptions& options) {
  tensor::TensorAlgebra current = failing;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& candidate : shrinkCandidates(current, options)) {
      if (!stillFails(candidate)) continue;
      current = std::move(candidate);
      progressed = true;
      break;
    }
  }
  return current;
}

}  // namespace tensorlib::verify
