#include "verify/model_conformance.hpp"

#include <sstream>

#include "arch/model.hpp"
#include "driver/network_explorer.hpp"
#include "support/error.hpp"
#include "tensor/reference.hpp"

namespace tensorlib::verify {

namespace {

std::uint64_t layerDataSeed(std::uint64_t base, std::size_t layer) {
  // splitmix-style decorrelation so layers get independent tensor contents
  // while staying a pure function of (dataSeed, layer index).
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (layer + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string formatElement(const linalg::IntVector& element) {
  std::string out = "(";
  for (std::size_t i = 0; i < element.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(element[i]);
  }
  return out + ")";
}

/// First mismatching element between the stitched run and the composed
/// reference, scanning layers in network order and elements row-major.
std::optional<ModelDivergence> firstDivergence(
    const arch::ModelAccelerator& model,
    const std::vector<tensor::DenseTensor>& golden,
    const arch::ModelRunResult& run, const std::string& engine) {
  for (std::size_t l = 0; l < model.layers.size(); ++l) {
    const auto& expect = golden[l].raw();
    const auto& actual = run.outputs[l].raw();
    for (std::size_t flat = 0; flat < expect.size(); ++flat) {
      if (expect[flat] == actual[flat]) continue;
      ModelDivergence d;
      d.layerIndex = l;
      d.layer = model.layers[l].name;
      // Recover the multi-index from the row-major flat position.
      const auto& algebra = model.layers[l].acc.spec.algebra();
      const linalg::IntVector shape = algebra.tensorShape(algebra.output());
      linalg::IntVector element(shape.size(), 0);
      std::size_t rem = flat;
      for (std::size_t d2 = shape.size(); d2-- > 0;) {
        element[d2] = static_cast<std::int64_t>(
            rem % static_cast<std::size_t>(shape[d2]));
        rem /= static_cast<std::size_t>(shape[d2]);
      }
      d.element = element;
      d.expected = expect[flat];
      d.actual = actual[flat];
      d.cycle =
          static_cast<std::int64_t>(run.lastSampleCycle[l].raw()[flat]);
      d.engine = engine;
      return d;
    }
  }
  return std::nullopt;
}

}  // namespace

ModelConformanceReport checkModel(const tensor::NetworkSpec& network,
                                  const ModelConformanceOptions& options) {
  ModelConformanceReport report;
  report.model = network.name();
  report.dataSeed = options.dataSeed;
  report.threads = options.threads;

  try {
    // Per-layer exploration: the exact NetworkExplorer path (layerQuery +
    // one runBatch + composeLayerFrontiers), but keeping the per-layer
    // frontiers so the winning labels can be resolved back to specs.
    driver::NetworkQuery query(network);
    query.arrays = {options.array};
    query.enumeration = options.enumeration;
    query.dataWidth = options.dataWidth;

    driver::ServiceOptions serviceOptions;
    serviceOptions.threads = options.threads;
    driver::ExplorationService service(serviceOptions);
    std::vector<driver::ExploreQuery> batch;
    for (const auto& layer : network.layers())
      batch.push_back(driver::layerQuery(query, options.array, layer));
    std::vector<driver::QueryResult> results = service.runBatch(batch);

    const driver::NetworkResult composed =
        driver::composeLayerFrontiers(query, {results});
    TL_CHECK(composed.best.has_value(),
             "model conformance: empty network frontier for " +
                 network.name());

    // Resolve each layer's winning label to its DesignReport spec; when
    // the netlist generator cannot realize the winner (rank-2 outputs),
    // substitute the first realizable frontier design in canonical order.
    arch::ModelBuildOptions build;
    build.array = options.array;
    build.hw.dataWidth = options.dataWidth;
    build.topName = network.name();
    std::vector<std::pair<std::string, stt::DataflowSpec>> layerSpecs;
    for (std::size_t l = 0; l < network.layers().size(); ++l) {
      const std::string& layerName = network.layers()[l].name;
      const std::string winner = composed.best->layers[l].dataflow;
      const stt::DataflowSpec* picked = nullptr;
      std::vector<const stt::DataflowSpec*> candidates;
      for (const auto& design : results[l].frontier)
        if (design.spec.label() == winner) candidates.push_back(&design.spec);
      for (const auto& design : results[l].frontier)
        if (design.spec.label() != winner) candidates.push_back(&design.spec);
      for (const stt::DataflowSpec* spec : candidates) {
        try {
          (void)arch::generateAccelerator(*spec, options.array, build.hw);
          picked = spec;
          break;
        } catch (const Error&) {
          continue;  // unrealizable at netlist level; try the next design
        }
      }
      TL_CHECK(picked != nullptr,
               "model conformance: no realizable design for layer '" +
                   layerName + "'");
      report.picks.push_back({layerName, winner, picked->label(),
                              picked->label() != winner});
      layerSpecs.emplace_back(layerName, *picked);
    }

    const arch::ModelAccelerator model =
        arch::buildModelAccelerator(layerSpecs, build);
    for (const auto& buffer : model.buffers)
      report.bufferCapacities.push_back(buffer.capacity);

    std::vector<tensor::TensorEnv> envs;
    for (std::size_t l = 0; l < model.layers.size(); ++l)
      envs.push_back(tensor::makeRandomInputs(
          model.layers[l].acc.spec.algebra(),
          layerDataSeed(options.dataSeed, l)));

    const std::vector<tensor::DenseTensor> golden =
        arch::composedReference(model, envs);

    arch::ModelRunOptions runOptions;
    runOptions.engine = hwir::SimEngine::Compiled;
    runOptions.corruptTapeMasks = options.tamperRtlTape;
    const arch::ModelRunResult run =
        arch::runModelAccelerator(model, envs, runOptions);
    report.cyclesRun = run.cyclesRun;
    report.stallSlots = run.stallSlots;
    report.divergence = firstDivergence(model, golden, run, "compiled");

    if (!report.divergence && options.alsoLegacy) {
      arch::ModelRunOptions legacyOptions;
      legacyOptions.engine = hwir::SimEngine::Legacy;
      const arch::ModelRunResult legacy =
          arch::runModelAccelerator(model, envs, legacyOptions);
      report.divergence = firstDivergence(model, golden, legacy, "legacy");
    }
  } catch (const Error& e) {
    report.error = e.what();
  }
  return report;
}

std::string ModelConformanceReport::summary() const {
  std::ostringstream out;
  if (!error.empty()) {
    out << "model '" << model << "' ERROR: " << error;
    return out.str();
  }
  if (divergence) {
    const ModelDivergence& d = *divergence;
    out << "model '" << model << "' DIVERGED [" << d.engine << "] at layer "
        << d.layerIndex << " '" << d.layer << "' element "
        << formatElement(d.element) << " cycle " << d.cycle << ": expected "
        << d.expected << " got " << d.actual
        << "; replay: conformance_runner --model " << model
        << " --data-seed " << dataSeed << " --threads " << threads;
    return out.str();
  }
  std::size_t substituted = 0;
  for (const auto& pick : picks)
    if (pick.substituted) ++substituted;
  out << "model '" << model << "': " << picks.size()
      << " layers conformant in " << cyclesRun << " cycles (stall slots "
      << stallSlots << ", seed " << dataSeed << ", threads " << threads;
  if (substituted) out << ", " << substituted << " substituted designs";
  out << ")";
  return out.str();
}

}  // namespace tensorlib::verify
