// Randomized tensor-algebra generation and shrinking.
//
// randomAlgebra(seed) synthesizes a valid TensorAlgebra — random loop count
// and extents, 1-3 input tensors, affine accesses with strides (coefficient
// 2) and nonzero offsets — deterministically from the seed, so any failing
// conformance run is replayed with just that number. shrinkAlgebra() then
// greedily minimizes a failing algebra while a caller-supplied predicate
// keeps failing: it drops inputs, loops and tensor dimensions, shrinks
// extents, and zeroes offsets/coefficients until no single reduction
// reproduces the failure. The pair gives the property-based front end of the
// conformance oracle (see verify/conformance.hpp and
// tools/conformance_runner.cpp).
#pragma once

#include <cstdint>
#include <functional>

#include "tensor/algebra.hpp"

namespace tensorlib::verify {

struct FuzzOptions {
  std::size_t minLoops = 3;   ///< selections need >= 3 loops
  std::size_t maxLoops = 4;
  std::int64_t maxExtent = 4;
  std::size_t maxInputs = 3;
  std::size_t maxTensorRank = 3;
  std::int64_t maxCoeff = 2;   ///< 2 allows strided/dilated-style accesses
  std::int64_t maxOffset = 2;  ///< nonzero offsets exercise halo indexing
};

/// Deterministically generates a valid algebra from the seed. Guarantees:
/// every loop extent >= 1, every tensor rank >= 1 with a non-degenerate
/// access (at least one nonzero coefficient), every loop referenced by some
/// tensor, and distinct tensor names ("Out", "A", "B", "C").
tensor::TensorAlgebra randomAlgebra(std::uint64_t seed,
                                    const FuzzOptions& options = {});

/// Full-fidelity description for failure reports: str() plus every access
/// function, enough to reconstruct the algebra exactly.
std::string describeAlgebra(const tensor::TensorAlgebra& algebra);

/// Returns true when the algebra still reproduces the failure under
/// investigation. Must be deterministic. Called on *candidate* shrinks, all
/// of which are valid algebras with >= minLoops loops.
using FailurePredicate = std::function<bool(const tensor::TensorAlgebra&)>;

/// Greedy shrink: repeatedly applies the smallest-first reduction steps
/// (drop an input, drop a loop, drop a tensor dimension, shrink an extent,
/// zero an offset, lower a coefficient) and keeps any candidate for which
/// `stillFails` returns true, until a fixpoint. `stillFails(failing)` is
/// assumed true on entry.
tensor::TensorAlgebra shrinkAlgebra(const tensor::TensorAlgebra& failing,
                                    const FailurePredicate& stillFails,
                                    const FuzzOptions& options = {});

}  // namespace tensorlib::verify
