// Network-level workload model: an ordered list of named layers, each one
// tensor algebra, that time-share ONE PE array.
//
// The paper evaluates single operators; real deployments map whole models
// (a ResNet block, an attention block, an MLP) onto one accelerator, so the
// interesting design question is network-level: which per-layer dataflow
// assignment minimizes total latency / peak power / peak area on a shared
// array. NetworkSpec is the workload half of that question — the search
// half lives in driver::NetworkExplorer, which explores every layer through
// the ExplorationService and composes the per-layer frontiers.
//
// Specs come from three places, all producing the same validated object:
//   * builtinNetworks() — a small library of ready-made models
//     ("resnet-block", "attention-block", "mlp-3");
//   * loadNetworkJsonl() — a JSONL model description, one layer per line
//     (see docs/PROTOCOL.md and examples/resnet_block.jsonl):
//       {"model": "my-net"}                               <- optional header
//       {"layer": "conv1", "workload": "conv2d",
//        "k": 8, "c": 8, "y": 8, "x": 8, "p": 3, "q": 3}  <- one layer
//   * direct construction from TensorAlgebra values.
// Validation is strict (support::Error): a network needs >= 1 layer,
// non-empty unique layer names, and every layer algebra must have >= 3
// loops (the STT design space is empty below that — a degenerate layer).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/algebra.hpp"

namespace tensorlib::tensor {

/// One layer of a network: a named tensor algebra plus the enumeration
/// hint the scenario table carries (pointwise shapes only realize designs
/// that stream every tensor, so they must be enumerated with
/// EnumerationOptions::dropAllUnicast = false).
struct NetworkLayer {
  std::string name;       ///< unique within the network (e.g. "conv1")
  TensorAlgebra algebra;  ///< the layer's loop nest
  /// True for layers whose only realizable designs are all-Unicast (see
  /// workloads::NamedWorkload::allowAllUnicast).
  bool allowAllUnicast = false;
};

/// A validated multi-layer model mapped onto one shared PE array.
class NetworkSpec {
 public:
  /// Throws support::Error for zero layers, empty or duplicate layer
  /// names, or a degenerate layer (fewer than 3 loops).
  NetworkSpec(std::string name, std::vector<NetworkLayer> layers);

  const std::string& name() const { return name_; }
  const std::vector<NetworkLayer>& layers() const { return layers_; }
  std::size_t layerCount() const { return layers_.size(); }

  /// MACs summed over every layer (the fixed work a shared-array schedule
  /// must execute; the numerator of network-level utilization).
  std::int64_t totalMacs() const;

  /// One line per layer: "name: algebra".
  std::string str() const;

 private:
  std::string name_;
  std::vector<NetworkLayer> layers_;
};

namespace workloads {

/// Metadata of one JSONL-loadable workload factory: the accepted extent
/// field names (in factory-argument order) and the scenario-table default
/// extents. Exposed so generators (the network fuzzer in src/verify) can
/// build random-but-valid layers without duplicating the table.
struct LayerFactoryInfo {
  std::string name;
  std::vector<std::string> params;
  std::vector<std::int64_t> defaults;
  bool allowAllUnicast = false;
};

/// All workload factories makeNetworkLayer accepts, in table order.
const std::vector<LayerFactoryInfo>& layerFactoryTable();

/// Builds one layer algebra from a workload factory name plus named extent
/// fields ("gemm" reads m/n/k, "conv2d" reads k/c/y/x/p/q, ...); fields
/// left unset fall back to the factory's scenario-table extents. Returns
/// the layer with its allowAllUnicast hint. Throws support::Error for an
/// unknown workload or a non-positive extent. The accepted names and
/// fields are listed in docs/PROTOCOL.md.
NetworkLayer makeNetworkLayer(const std::string& layerName,
                              const std::string& workload,
                              const std::vector<std::pair<std::string, std::int64_t>>& extents);

/// Parses a JSONL model description (one layer object per line, optional
/// leading {"model": "..."} header) into a NetworkSpec. `sourceName` seeds
/// the network name when no header names it. Throws support::Error on
/// malformed lines, unknown workloads/fields, or an invalid network.
NetworkSpec parseNetworkJsonl(std::istream& in, const std::string& sourceName);

/// parseNetworkJsonl over a file path; throws support::Error if the file
/// cannot be opened.
NetworkSpec loadNetworkJsonl(const std::string& path);

/// The built-in model library: a ResNet-style conv stack ("resnet-block"),
/// an attention block ("attention-block"), a three-layer MLP with a
/// residual scale ("mlp-3"), a deep eight-layer ResNet tail
/// ("resnet-deep"), a transformer encoder stack ("transformer-stack") and
/// an MoE-style expert mix ("moe-mix"). Every model has >= 4 layers and at
/// least one repeated layer shape, so composed exploration always has
/// cross-layer cache reuse to win. Every model also chains
/// shape-compatibly end to end, so it stitches into one model accelerator
/// (arch/model.*, docs/ARCHITECTURE.md "Model stitching").
std::vector<NetworkSpec> builtinNetworks();

/// Built-in model lookup by name; nullptr when absent.
const NetworkSpec* findNetwork(const std::string& name);

}  // namespace workloads

}  // namespace tensorlib::tensor
