#include "tensor/dense.hpp"

#include <cmath>

#include "support/error.hpp"

namespace tensorlib::tensor {

DenseTensor::DenseTensor(linalg::IntVector shape) : shape_(std::move(shape)) {
  std::int64_t total = 1;
  strides_.assign(shape_.size(), 1);
  for (std::size_t i = shape_.size(); i-- > 0;) {
    TL_CHECK(shape_[i] >= 1, "DenseTensor: non-positive dimension");
    strides_[i] = total;
    total = linalg::checkedMul(total, shape_[i]);
  }
  data_.assign(static_cast<std::size_t>(total), 0.0);
}

std::size_t DenseTensor::flatten(const linalg::IntVector& index) const {
  TL_CHECK(index.size() == shape_.size(), "DenseTensor: index rank mismatch");
  std::int64_t flat = 0;
  for (std::size_t i = 0; i < index.size(); ++i) {
    TL_CHECK(index[i] >= 0 && index[i] < shape_[i],
             "DenseTensor: index out of bounds");
    flat += index[i] * strides_[i];
  }
  return static_cast<std::size_t>(flat);
}

double DenseTensor::maxAbsDiff(const DenseTensor& o) const {
  TL_CHECK(sameShape(o), "maxAbsDiff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::fabs(data_[i] - o.data_[i]));
  return worst;
}

void DenseTensor::fillZero() { data_.assign(data_.size(), 0.0); }

}  // namespace tensorlib::tensor
