// Affine tensor access functions: I = A*x + offset.
//
// Every tensor reference in a TensorLib algebra indexes the tensor with an
// affine function of the loop iterators (e.g. Conv2D reads A[c, y+p, x+q]).
// The access matrix A is the object the STT reuse analysis operates on
// (Equation (2) of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace tensorlib::tensor {

/// Affine map from a loop-iteration vector x to a tensor index vector:
/// index = coeff * x + offset. Rows = tensor dimensions, cols = loop count.
class AffineAccess {
 public:
  AffineAccess() = default;
  AffineAccess(linalg::IntMatrix coeff, linalg::IntVector offset);

  /// Access with zero offset.
  explicit AffineAccess(linalg::IntMatrix coeff);

  const linalg::IntMatrix& coeff() const { return coeff_; }
  const linalg::IntVector& offset() const { return offset_; }
  std::size_t tensorRank() const { return coeff_.rows(); }
  std::size_t loopCount() const { return coeff_.cols(); }

  /// Evaluates the access at a concrete iteration point.
  linalg::IntVector evaluate(const linalg::IntVector& iteration) const;

  /// Restriction of the access to a subset of loops (the three selected for
  /// STT); the dropped loops act as constants within one space-time pass.
  AffineAccess restrictedTo(const std::vector<std::size_t>& loopIndices) const;

  std::string str() const;

 private:
  linalg::IntMatrix coeff_;
  linalg::IntVector offset_;
};

/// Convenience builder used by the workload definitions: expresses each
/// tensor dimension as a sum of iterator terms, e.g. {{y, p}} for "y + p".
/// `loopCount` is the total number of iterators in the nest and each inner
/// vector lists the iterator indices whose coefficients are +1.
AffineAccess accessFromTerms(std::size_t loopCount,
                             const std::vector<std::vector<std::size_t>>& dims);

}  // namespace tensorlib::tensor
