// Tensor algebra IR: a perfect loop nest computing
//     output[f_out(x)] += product_k input_k[f_k(x)]
// over an axis-aligned iteration domain. This is exactly the class of
// programs TensorLib accepts (Section II of the paper): all Table-II
// workloads — GEMM, Batched-GEMV, Conv2D, Depthwise-Conv, MTTKRP, TTMc —
// are instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/access.hpp"

namespace tensorlib::tensor {

/// One loop iterator with extent `extent` (range [0, extent)).
struct Iterator {
  std::string name;
  std::int64_t extent = 1;
};

/// A reference to a named tensor through an affine access function.
struct TensorRef {
  std::string tensor;
  AffineAccess access;
};

/// A complete tensor algebra: loop nest + one output + >=1 inputs.
class TensorAlgebra {
 public:
  TensorAlgebra(std::string name, std::vector<Iterator> loops,
                TensorRef output, std::vector<TensorRef> inputs);

  const std::string& name() const { return name_; }
  const std::vector<Iterator>& loops() const { return loops_; }
  const TensorRef& output() const { return output_; }
  const std::vector<TensorRef>& inputs() const { return inputs_; }

  std::size_t loopCount() const { return loops_.size(); }
  /// inputs in formula order followed by the output (the order used by
  /// dataflow labels such as "MNK-SST": A, B, ..., output).
  std::vector<const TensorRef*> tensorsInLabelOrder() const;

  /// Index of the loop with the given name; throws if absent.
  std::size_t loopIndex(const std::string& name) const;

  /// Extent (shape) of the referenced tensor implied by the loop bounds:
  /// per dimension, max over the domain of (coeff*x + offset) + 1.
  linalg::IntVector tensorShape(const TensorRef& ref) const;

  /// Total number of multiply-accumulate operations (product of extents).
  std::int64_t totalMacs() const;

  std::string str() const;

 private:
  std::string name_;
  std::vector<Iterator> loops_;
  TensorRef output_;
  std::vector<TensorRef> inputs_;
};

}  // namespace tensorlib::tensor
