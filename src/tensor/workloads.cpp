#include "tensor/workloads.hpp"

namespace tensorlib::tensor::workloads {

namespace {
TensorRef ref(const std::string& name, std::size_t loopCount,
              const std::vector<std::vector<std::size_t>>& dims) {
  return TensorRef{name, accessFromTerms(loopCount, dims)};
}
}  // namespace

TensorAlgebra gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  // loops: m=0, n=1, k=2
  return TensorAlgebra(
      "GEMM", {{"m", m}, {"n", n}, {"k", k}},
      /*output=*/ref("C", 3, {{0}, {1}}),
      /*inputs=*/{ref("A", 3, {{0}, {2}}), ref("B", 3, {{1}, {2}})});
}

TensorAlgebra batchedGemv(std::int64_t m, std::int64_t n, std::int64_t k) {
  // loops: m=0, n=1, k=2; A[m,k,n] has no reuse across (m,n,k).
  return TensorAlgebra(
      "Batched-GEMV", {{"m", m}, {"n", n}, {"k", k}},
      ref("C", 3, {{0}, {1}}),
      {ref("A", 3, {{0}, {2}, {1}}), ref("B", 3, {{0}, {2}})});
}

TensorAlgebra conv2d(std::int64_t k, std::int64_t c, std::int64_t y,
                     std::int64_t x, std::int64_t p, std::int64_t q) {
  // loops: k=0, c=1, y=2, x=3, p=4, q=5
  return TensorAlgebra(
      "Conv2D", {{"k", k}, {"c", c}, {"y", y}, {"x", x}, {"p", p}, {"q", q}},
      ref("C", 6, {{0}, {2}, {3}}),
      {ref("A", 6, {{1}, {2, 4}, {3, 5}}),   // A[c, y+p, x+q]
       ref("B", 6, {{0}, {1}, {4}, {5}})});  // B[k, c, p, q]
}

TensorAlgebra depthwiseConv(std::int64_t k, std::int64_t y, std::int64_t x,
                            std::int64_t p, std::int64_t q) {
  // loops: k=0, y=1, x=2, p=3, q=4
  return TensorAlgebra(
      "Depthwise-Conv", {{"k", k}, {"y", y}, {"x", x}, {"p", p}, {"q", q}},
      ref("C", 5, {{0}, {1}, {2}}),
      {ref("A", 5, {{0}, {1, 3}, {2, 4}}),  // A[k, y+p, x+q]
       ref("B", 5, {{0}, {3}, {4}})});      // B[k, p, q]
}

TensorAlgebra mttkrp(std::int64_t i, std::int64_t j, std::int64_t k,
                     std::int64_t l) {
  // loops: i=0, j=1, k=2, l=3
  return TensorAlgebra(
      "MTTKRP", {{"i", i}, {"j", j}, {"k", k}, {"l", l}},
      ref("D", 4, {{0}, {1}}),
      {ref("A", 4, {{0}, {2}, {3}}), ref("B", 4, {{2}, {1}}),
       ref("C", 4, {{3}, {1}})});
}

TensorAlgebra ttmc(std::int64_t i, std::int64_t j, std::int64_t k,
                   std::int64_t l, std::int64_t m) {
  // loops: i=0, j=1, k=2, l=3, m=4
  return TensorAlgebra(
      "TTMc", {{"i", i}, {"j", j}, {"k", k}, {"l", l}, {"m", m}},
      ref("D", 5, {{0}, {1}, {2}}),
      {ref("A", 5, {{0}, {3}, {4}}), ref("B", 5, {{3}, {1}}),
       ref("C", 5, {{4}, {2}})});
}

TensorAlgebra conv2dResNetLayer2() { return conv2d(64, 64, 56, 56, 3, 3); }
TensorAlgebra conv2dResNetLayer5() { return conv2d(512, 512, 7, 7, 3, 3); }

}  // namespace tensorlib::tensor::workloads
