#include "tensor/workloads.hpp"

namespace tensorlib::tensor::workloads {

namespace {
TensorRef ref(const std::string& name, std::size_t loopCount,
              const std::vector<std::vector<std::size_t>>& dims) {
  return TensorRef{name, accessFromTerms(loopCount, dims)};
}
}  // namespace

TensorAlgebra gemm(std::int64_t m, std::int64_t n, std::int64_t k) {
  // loops: m=0, n=1, k=2
  return TensorAlgebra(
      "GEMM", {{"m", m}, {"n", n}, {"k", k}},
      /*output=*/ref("C", 3, {{0}, {1}}),
      /*inputs=*/{ref("A", 3, {{0}, {2}}), ref("B", 3, {{1}, {2}})});
}

TensorAlgebra batchedGemv(std::int64_t m, std::int64_t n, std::int64_t k) {
  // loops: m=0, n=1, k=2; A[m,k,n] has no reuse across (m,n,k).
  return TensorAlgebra(
      "Batched-GEMV", {{"m", m}, {"n", n}, {"k", k}},
      ref("C", 3, {{0}, {1}}),
      {ref("A", 3, {{0}, {2}, {1}}), ref("B", 3, {{0}, {2}})});
}

TensorAlgebra conv2d(std::int64_t k, std::int64_t c, std::int64_t y,
                     std::int64_t x, std::int64_t p, std::int64_t q) {
  // loops: k=0, c=1, y=2, x=3, p=4, q=5
  return TensorAlgebra(
      "Conv2D", {{"k", k}, {"c", c}, {"y", y}, {"x", x}, {"p", p}, {"q", q}},
      ref("C", 6, {{0}, {2}, {3}}),
      {ref("A", 6, {{1}, {2, 4}, {3, 5}}),   // A[c, y+p, x+q]
       ref("B", 6, {{0}, {1}, {4}, {5}})});  // B[k, c, p, q]
}

TensorAlgebra depthwiseConv(std::int64_t k, std::int64_t y, std::int64_t x,
                            std::int64_t p, std::int64_t q) {
  // loops: k=0, y=1, x=2, p=3, q=4
  return TensorAlgebra(
      "Depthwise-Conv", {{"k", k}, {"y", y}, {"x", x}, {"p", p}, {"q", q}},
      ref("C", 5, {{0}, {1}, {2}}),
      {ref("A", 5, {{0}, {1, 3}, {2, 4}}),  // A[k, y+p, x+q]
       ref("B", 5, {{0}, {3}, {4}})});      // B[k, p, q]
}

TensorAlgebra mttkrp(std::int64_t i, std::int64_t j, std::int64_t k,
                     std::int64_t l) {
  // loops: i=0, j=1, k=2, l=3
  return TensorAlgebra(
      "MTTKRP", {{"i", i}, {"j", j}, {"k", k}, {"l", l}},
      ref("D", 4, {{0}, {1}}),
      {ref("A", 4, {{0}, {2}, {3}}), ref("B", 4, {{2}, {1}}),
       ref("C", 4, {{3}, {1}})});
}

TensorAlgebra ttmc(std::int64_t i, std::int64_t j, std::int64_t k,
                   std::int64_t l, std::int64_t m) {
  // loops: i=0, j=1, k=2, l=3, m=4
  return TensorAlgebra(
      "TTMc", {{"i", i}, {"j", j}, {"k", k}, {"l", l}, {"m", m}},
      ref("D", 5, {{0}, {1}, {2}}),
      {ref("A", 5, {{0}, {3}, {4}}), ref("B", 5, {{3}, {1}}),
       ref("C", 5, {{4}, {2}})});
}

TensorAlgebra conv2dResNetLayer2() { return conv2d(64, 64, 56, 56, 3, 3); }
TensorAlgebra conv2dResNetLayer5() { return conv2d(512, 512, 7, 7, 3, 3); }

TensorAlgebra conv2dStrided(std::int64_t k, std::int64_t c, std::int64_t y,
                            std::int64_t x, std::int64_t p, std::int64_t q,
                            std::int64_t stride) {
  // loops: k=0, c=1, y=2, x=3, p=4, q=5; A's map rows are s*y+p / s*x+q.
  linalg::IntMatrix a(3, 6);
  a.at(0, 1) = 1;
  a.at(1, 2) = stride;
  a.at(1, 4) = 1;
  a.at(2, 3) = stride;
  a.at(2, 5) = 1;
  return TensorAlgebra(
      "Strided-Conv2D",
      {{"k", k}, {"c", c}, {"y", y}, {"x", x}, {"p", p}, {"q", q}},
      ref("C", 6, {{0}, {2}, {3}}),
      {TensorRef{"A", AffineAccess(std::move(a))},
       ref("B", 6, {{0}, {1}, {4}, {5}})});
}

TensorAlgebra conv2dDilated(std::int64_t k, std::int64_t c, std::int64_t y,
                            std::int64_t x, std::int64_t p, std::int64_t q,
                            std::int64_t dilation) {
  // loops: k=0, c=1, y=2, x=3, p=4, q=5; A's map rows are y+d*p / x+d*q.
  linalg::IntMatrix a(3, 6);
  a.at(0, 1) = 1;
  a.at(1, 2) = 1;
  a.at(1, 4) = dilation;
  a.at(2, 3) = 1;
  a.at(2, 5) = dilation;
  return TensorAlgebra(
      "Dilated-Conv2D",
      {{"k", k}, {"c", c}, {"y", y}, {"x", x}, {"p", p}, {"q", q}},
      ref("C", 6, {{0}, {2}, {3}}),
      {TensorRef{"A", AffineAccess(std::move(a))},
       ref("B", 6, {{0}, {1}, {4}, {5}})});
}

TensorAlgebra attention(std::int64_t i, std::int64_t j, std::int64_t k) {
  // loops: i=0, j=1, k=2
  return TensorAlgebra(
      "Attention", {{"i", i}, {"j", j}, {"k", k}},
      ref("S", 3, {{0}, {1}}),
      {ref("Q", 3, {{0}, {2}}), ref("K", 3, {{1}, {2}})});
}

TensorAlgebra batchedAttention(std::int64_t b, std::int64_t i, std::int64_t j,
                               std::int64_t k) {
  // loops: b=0, i=1, j=2, k=3
  return TensorAlgebra(
      "Batched-Attention", {{"b", b}, {"i", i}, {"j", j}, {"k", k}},
      ref("S", 4, {{0}, {1}, {2}}),
      {ref("Q", 4, {{0}, {1}, {3}}), ref("K", 4, {{0}, {2}, {3}})});
}

TensorAlgebra contraction3(std::int64_t i, std::int64_t j, std::int64_t k,
                           std::int64_t l) {
  // loops: i=0, j=1, k=2, l=3
  return TensorAlgebra(
      "Contraction3", {{"i", i}, {"j", j}, {"k", k}, {"l", l}},
      ref("D", 4, {{0}, {3}}),
      {ref("A", 4, {{0}, {1}}), ref("B", 4, {{1}, {2}}),
       ref("C", 4, {{2}, {3}})});
}

TensorAlgebra pointwiseResidual(std::int64_t b, std::int64_t i, std::int64_t j) {
  // loops: b=0, i=1, j=2
  return TensorAlgebra(
      "Pointwise-Residual", {{"b", b}, {"i", i}, {"j", j}},
      ref("R", 3, {{0}, {1}, {2}}),
      {ref("X", 3, {{0}, {1}, {2}}), ref("G", 3, {{2}})});
}

std::vector<NamedWorkload> allWorkloads() {
  return {
      {"gemm", gemm(5, 5, 5), 40},
      {"batched-gemv", batchedGemv(5, 5, 5), 40},
      {"conv2d", conv2d(4, 4, 4, 4, 2, 2), 12},
      {"depthwise", depthwiseConv(4, 4, 4, 2, 2), 12},
      {"mttkrp", mttkrp(4, 4, 4, 4), 12},
      {"ttmc", ttmc(3, 3, 3, 3, 3), 12},
      {"conv2d-strided", conv2dStrided(3, 3, 3, 3, 2, 2, 2), 10},
      {"conv2d-dilated", conv2dDilated(3, 3, 3, 3, 2, 2, 2), 10},
      {"attention", attention(4, 4, 4), 24},
      {"batched-attention", batchedAttention(2, 3, 3, 3), 12},
      {"contraction3", contraction3(3, 3, 3, 3), 12},
      {"pointwise-residual", pointwiseResidual(3, 4, 4), 12,
       /*allowAllUnicast=*/true},
  };
}

const NamedWorkload* findWorkload(const std::string& name) {
  static const std::vector<NamedWorkload> table = allWorkloads();
  for (const auto& w : table)
    if (w.name == name) return &w;
  return nullptr;
}

}  // namespace tensorlib::tensor::workloads
