// Dense multi-dimensional tensor storage used by the reference executor and
// the functional-verification paths of both simulators.
//
// Values are doubles holding small integers (exactly representable), which
// lets INT16 and FP32 hardware paths share one reference implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace tensorlib::tensor {

/// Row-major dense tensor of doubles.
class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(linalg::IntVector shape);

  const linalg::IntVector& shape() const { return shape_; }
  std::size_t elementCount() const { return data_.size(); }

  double& at(const linalg::IntVector& index) { return data_[flatten(index)]; }
  double at(const linalg::IntVector& index) const { return data_[flatten(index)]; }

  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Linearizes a multi-index (bounds-checked).
  std::size_t flatten(const linalg::IntVector& index) const;

  bool sameShape(const DenseTensor& o) const { return shape_ == o.shape_; }

  /// Max absolute element-wise difference; requires same shape.
  double maxAbsDiff(const DenseTensor& o) const;

  void fillZero();

 private:
  linalg::IntVector shape_;
  linalg::IntVector strides_;
  std::vector<double> data_;
};

}  // namespace tensorlib::tensor
