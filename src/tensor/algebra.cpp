#include "tensor/algebra.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tensorlib::tensor {

TensorAlgebra::TensorAlgebra(std::string name, std::vector<Iterator> loops,
                             TensorRef output, std::vector<TensorRef> inputs)
    : name_(std::move(name)),
      loops_(std::move(loops)),
      output_(std::move(output)),
      inputs_(std::move(inputs)) {
  TL_CHECK(!loops_.empty(), "TensorAlgebra needs at least one loop");
  TL_CHECK(!inputs_.empty(), "TensorAlgebra needs at least one input");
  for (const auto& l : loops_)
    TL_CHECK(l.extent >= 1, "loop " + l.name + " has non-positive extent");
  auto checkRef = [&](const TensorRef& r) {
    TL_CHECK(r.access.loopCount() == loops_.size(),
             "tensor " + r.tensor + ": access loop count mismatch in " + name_);
  };
  checkRef(output_);
  for (const auto& in : inputs_) checkRef(in);
}

std::vector<const TensorRef*> TensorAlgebra::tensorsInLabelOrder() const {
  std::vector<const TensorRef*> out;
  out.reserve(inputs_.size() + 1);
  for (const auto& in : inputs_) out.push_back(&in);
  out.push_back(&output_);
  return out;
}

std::size_t TensorAlgebra::loopIndex(const std::string& name) const {
  for (std::size_t i = 0; i < loops_.size(); ++i)
    if (loops_[i].name == name) return i;
  fail("no loop named '" + name + "' in algebra " + name_);
}

linalg::IntVector TensorAlgebra::tensorShape(const TensorRef& ref) const {
  const auto& c = ref.access.coeff();
  linalg::IntVector shape(c.rows());
  for (std::size_t d = 0; d < c.rows(); ++d) {
    // Domain is a box at the origin, so the max of an affine form with
    // non-negative coefficients is attained at extents-1. Negative
    // coefficients contribute 0 at their max (iterator = 0).
    std::int64_t hi = ref.access.offset()[d];
    for (std::size_t j = 0; j < c.cols(); ++j) {
      const std::int64_t a = c.at(d, j);
      if (a > 0) hi += a * (loops_[j].extent - 1);
    }
    shape[d] = hi + 1;
  }
  return shape;
}

std::int64_t TensorAlgebra::totalMacs() const {
  std::int64_t total = 1;
  for (const auto& l : loops_) total = linalg::checkedMul(total, l.extent);
  return total;
}

std::string TensorAlgebra::str() const {
  std::ostringstream os;
  os << name_ << ": ";
  os << output_.tensor << " += ";
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    os << (i ? " * " : "") << inputs_[i].tensor;
  os << "  loops(";
  for (std::size_t i = 0; i < loops_.size(); ++i)
    os << (i ? "," : "") << loops_[i].name << "=" << loops_[i].extent;
  os << ")";
  return os.str();
}

}  // namespace tensorlib::tensor
