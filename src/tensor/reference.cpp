#include "tensor/reference.hpp"

#include "support/error.hpp"

namespace tensorlib::tensor {

TensorEnv makeRandomInputs(const TensorAlgebra& algebra, std::uint64_t seed) {
  Prng prng(seed);
  TensorEnv env;
  for (const auto& in : algebra.inputs()) {
    if (env.count(in.tensor)) continue;  // same tensor referenced twice
    DenseTensor t(algebra.tensorShape(in));
    t.raw() = prng.smallIntVector(t.elementCount());
    env.emplace(in.tensor, std::move(t));
  }
  return env;
}

DenseTensor referenceExecute(const TensorAlgebra& algebra, const TensorEnv& inputs) {
  for (const auto& in : algebra.inputs())
    TL_CHECK(inputs.count(in.tensor) != 0,
             "referenceExecute: missing input tensor " + in.tensor);

  DenseTensor out(algebra.tensorShape(algebra.output()));
  const std::size_t n = algebra.loopCount();
  linalg::IntVector x(n, 0);

  // Odometer walk over the full iteration box.
  while (true) {
    double prod = 1.0;
    for (const auto& in : algebra.inputs())
      prod *= inputs.at(in.tensor).at(in.access.evaluate(x));
    out.at(algebra.output().access.evaluate(x)) += prod;

    std::size_t d = n;
    while (d-- > 0) {
      if (++x[d] < algebra.loops()[d].extent) break;
      x[d] = 0;
      if (d == 0) return out;
    }
    if (n == 0) return out;
  }
}

}  // namespace tensorlib::tensor
