#include "tensor/access.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tensorlib::tensor {

AffineAccess::AffineAccess(linalg::IntMatrix coeff, linalg::IntVector offset)
    : coeff_(std::move(coeff)), offset_(std::move(offset)) {
  TL_CHECK(coeff_.rows() == offset_.size(), "AffineAccess: offset size mismatch");
}

AffineAccess::AffineAccess(linalg::IntMatrix coeff)
    : coeff_(std::move(coeff)), offset_(coeff_.rows(), 0) {}

linalg::IntVector AffineAccess::evaluate(const linalg::IntVector& iteration) const {
  TL_CHECK(iteration.size() == coeff_.cols(), "AffineAccess: iteration size mismatch");
  linalg::IntVector out(coeff_.rows());
  for (std::size_t i = 0; i < coeff_.rows(); ++i) {
    std::int64_t acc = offset_[i];
    for (std::size_t j = 0; j < coeff_.cols(); ++j)
      acc += coeff_.at(i, j) * iteration[j];
    out[i] = acc;
  }
  return out;
}

AffineAccess AffineAccess::restrictedTo(
    const std::vector<std::size_t>& loopIndices) const {
  // Offsets from dropped loops are irrelevant for reuse analysis (they are
  // constant within one pass), so the restricted access keeps a zero offset.
  return AffineAccess(coeff_.selectColumns(loopIndices),
                      linalg::IntVector(coeff_.rows(), 0));
}

std::string AffineAccess::str() const {
  std::ostringstream os;
  os << "A=" << coeff_.str() << " b=" << linalg::str(offset_);
  return os.str();
}

AffineAccess accessFromTerms(std::size_t loopCount,
                             const std::vector<std::vector<std::size_t>>& dims) {
  linalg::IntMatrix coeff(dims.size(), loopCount);
  for (std::size_t d = 0; d < dims.size(); ++d)
    for (std::size_t it : dims[d]) {
      TL_CHECK(it < loopCount, "accessFromTerms: iterator index out of range");
      coeff.at(d, it) += 1;
    }
  return AffineAccess(std::move(coeff));
}

}  // namespace tensorlib::tensor
