#include "tensor/network.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "support/error.hpp"
#include "support/jsonl.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::tensor {

NetworkSpec::NetworkSpec(std::string name, std::vector<NetworkLayer> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  require(!layers_.empty(), "network '" + name_ + "' has no layers");
  std::set<std::string> seen;
  for (const NetworkLayer& layer : layers_) {
    require(!layer.name.empty(),
            "network '" + name_ + "' has a layer with an empty name");
    require(seen.insert(layer.name).second,
            "network '" + name_ + "' has duplicate layer '" + layer.name + "'");
    require(layer.algebra.loopCount() >= 3,
            "network '" + name_ + "' layer '" + layer.name +
                "' is degenerate: " + std::to_string(layer.algebra.loopCount()) +
                " loops (the STT design space needs >= 3)");
  }
}

std::int64_t NetworkSpec::totalMacs() const {
  std::int64_t macs = 0;
  for (const NetworkLayer& layer : layers_) macs += layer.algebra.totalMacs();
  return macs;
}

std::string NetworkSpec::str() const {
  std::ostringstream os;
  os << "network " << name_ << " (" << layers_.size() << " layers)\n";
  for (const NetworkLayer& layer : layers_)
    os << "  " << layer.name << ": " << layer.algebra.str() << "\n";
  return os.str();
}

namespace workloads {
namespace {

using Extents = std::vector<std::int64_t>;

/// One JSONL-loadable workload factory: the accepted extent field names (in
/// factory-argument order), the scenario-table default extents, and the
/// constructor. docs/PROTOCOL.md documents this table for users.
struct LayerFactory {
  const char* name;
  std::vector<const char*> params;
  Extents defaults;
  TensorAlgebra (*make)(const Extents&);
  bool allowAllUnicast = false;
};

const std::vector<LayerFactory>& layerFactories() {
  static const std::vector<LayerFactory> table = {
      {"gemm", {"m", "n", "k"}, {5, 5, 5},
       [](const Extents& e) { return gemm(e[0], e[1], e[2]); }},
      {"batched-gemv", {"m", "n", "k"}, {5, 5, 5},
       [](const Extents& e) { return batchedGemv(e[0], e[1], e[2]); }},
      {"conv2d", {"k", "c", "y", "x", "p", "q"}, {4, 4, 4, 4, 2, 2},
       [](const Extents& e) {
         return conv2d(e[0], e[1], e[2], e[3], e[4], e[5]);
       }},
      {"depthwise", {"k", "y", "x", "p", "q"}, {4, 4, 4, 2, 2},
       [](const Extents& e) {
         return depthwiseConv(e[0], e[1], e[2], e[3], e[4]);
       }},
      {"mttkrp", {"i", "j", "k", "l"}, {4, 4, 4, 4},
       [](const Extents& e) { return mttkrp(e[0], e[1], e[2], e[3]); }},
      {"ttmc", {"i", "j", "k", "l", "m"}, {3, 3, 3, 3, 3},
       [](const Extents& e) { return ttmc(e[0], e[1], e[2], e[3], e[4]); }},
      {"conv2d-strided", {"k", "c", "y", "x", "p", "q", "stride"},
       {3, 3, 3, 3, 2, 2, 2},
       [](const Extents& e) {
         return conv2dStrided(e[0], e[1], e[2], e[3], e[4], e[5], e[6]);
       }},
      {"conv2d-dilated", {"k", "c", "y", "x", "p", "q", "dilation"},
       {3, 3, 3, 3, 2, 2, 2},
       [](const Extents& e) {
         return conv2dDilated(e[0], e[1], e[2], e[3], e[4], e[5], e[6]);
       }},
      {"attention", {"i", "j", "k"}, {4, 4, 4},
       [](const Extents& e) { return attention(e[0], e[1], e[2]); }},
      {"batched-attention", {"b", "i", "j", "k"}, {2, 3, 3, 3},
       [](const Extents& e) {
         return batchedAttention(e[0], e[1], e[2], e[3]);
       }},
      {"contraction3", {"i", "j", "k", "l"}, {3, 3, 3, 3},
       [](const Extents& e) { return contraction3(e[0], e[1], e[2], e[3]); }},
      {"pointwise-residual", {"b", "i", "j"}, {3, 4, 4},
       [](const Extents& e) { return pointwiseResidual(e[0], e[1], e[2]); },
       /*allowAllUnicast=*/true},
  };
  return table;
}

const LayerFactory* findFactory(const std::string& workload) {
  for (const LayerFactory& f : layerFactories())
    if (workload == f.name) return &f;
  return nullptr;
}

}  // namespace

const std::vector<LayerFactoryInfo>& layerFactoryTable() {
  static const std::vector<LayerFactoryInfo> table = [] {
    std::vector<LayerFactoryInfo> out;
    for (const LayerFactory& f : layerFactories()) {
      LayerFactoryInfo info;
      info.name = f.name;
      for (const char* p : f.params) info.params.push_back(p);
      info.defaults = f.defaults;
      info.allowAllUnicast = f.allowAllUnicast;
      out.push_back(std::move(info));
    }
    return out;
  }();
  return table;
}

NetworkLayer makeNetworkLayer(
    const std::string& layerName, const std::string& workload,
    const std::vector<std::pair<std::string, std::int64_t>>& extents) {
  const LayerFactory* factory = findFactory(workload);
  if (!factory)
    fail("layer '" + layerName + "': unknown workload '" + workload + "'");
  Extents values = factory->defaults;
  for (const auto& [field, value] : extents) {
    std::size_t slot = factory->params.size();
    for (std::size_t i = 0; i < factory->params.size(); ++i)
      if (field == factory->params[i]) slot = i;
    if (slot == factory->params.size())
      fail("layer '" + layerName + "': workload '" + workload +
           "' has no extent field '" + field + "'");
    require(value > 0, "layer '" + layerName + "': extent " + field + "=" +
                           std::to_string(value) + " must be positive");
    values[slot] = value;
  }
  return NetworkLayer{layerName, factory->make(values),
                      factory->allowAllUnicast};
}

NetworkSpec parseNetworkJsonl(std::istream& in, const std::string& sourceName) {
  std::string name = sourceName;
  std::vector<NetworkLayer> layers;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const support::JsonObject obj = support::parseJsonLine(line);
    if (first && obj.has("model") && !obj.has("layer")) {
      first = false;
      const auto model = obj.getString("model");
      require(model.has_value(), "model header must name a string model");
      name = *model;
      continue;
    }
    first = false;
    const auto layerName = obj.getString("layer");
    if (!layerName) fail("network layer line missing 'layer': " + line);
    const auto workload = obj.getString("workload");
    if (!workload)
      fail("network layer '" + *layerName + "' missing 'workload'");
    std::vector<std::pair<std::string, std::int64_t>> extents;
    for (const auto& [field, unused] : obj.fields()) {
      (void)unused;
      if (field == "layer" || field == "workload") continue;
      const auto value = obj.getInt(field);
      require(value.has_value(), "layer '" + *layerName + "': field '" +
                                     field + "' must be an integer extent");
      extents.emplace_back(field, *value);
    }
    layers.push_back(makeNetworkLayer(*layerName, *workload, extents));
  }
  return NetworkSpec(std::move(name), std::move(layers));
}

NetworkSpec loadNetworkJsonl(const std::string& path) {
  std::ifstream in(path);
  TL_CHECK(static_cast<bool>(in), "cannot open network description " + path);
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const auto dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return parseNetworkJsonl(in, name);
}

std::vector<NetworkSpec> builtinNetworks() {
  std::vector<NetworkSpec> models;
  // ResNet-style block: two identical 3x3 convs (the repeated shape every
  // ResNet stage has — composed exploration pays for one), the 1x1
  // projection lowered to a GEMM over channels, a strided downsample conv,
  // and the residual scale.
  models.push_back(NetworkSpec(
      "resnet-block",
      {makeNetworkLayer("conv1", "conv2d", {{"k", 8}, {"c", 8}, {"y", 8},
                                            {"x", 8}, {"p", 3}, {"q", 3}}),
       makeNetworkLayer("conv2", "conv2d", {{"k", 8}, {"c", 8}, {"y", 8},
                                            {"x", 8}, {"p", 3}, {"q", 3}}),
       makeNetworkLayer("proj1x1", "gemm", {{"m", 64}, {"n", 8}, {"k", 8}}),
       makeNetworkLayer("downsample", "conv2d-strided",
                        {{"k", 8}, {"c", 8}, {"y", 4}, {"x", 4}, {"p", 3},
                         {"q", 3}, {"stride", 2}}),
       makeNetworkLayer("residual", "pointwise-residual",
                        {{"b", 4}, {"i", 8}, {"j", 8}})}));
  // Attention block: Q.K^T scores, the score-value contraction and the
  // output projection (identical GEMM shapes — shared evaluations), and
  // the first FFN layer.
  models.push_back(NetworkSpec(
      "attention-block",
      {makeNetworkLayer("qk-scores", "attention",
                        {{"i", 16}, {"j", 16}, {"k", 16}}),
       makeNetworkLayer("av", "gemm", {{"m", 16}, {"n", 16}, {"k", 16}}),
       makeNetworkLayer("proj", "gemm", {{"m", 16}, {"n", 16}, {"k", 16}}),
       makeNetworkLayer("ffn1", "gemm", {{"m", 16}, {"n", 64}, {"k", 16}})}));
  // Three-layer MLP with a residual scale; fc1/fc2 share a shape.
  models.push_back(NetworkSpec(
      "mlp-3",
      {makeNetworkLayer("fc1", "gemm", {{"m", 32}, {"n", 32}, {"k", 32}}),
       makeNetworkLayer("fc2", "gemm", {{"m", 32}, {"n", 32}, {"k", 32}}),
       makeNetworkLayer("fc3", "gemm", {{"m", 32}, {"n", 8}, {"k", 32}}),
       makeNetworkLayer("scale", "pointwise-residual",
                        {{"b", 4}, {"i", 8}, {"j", 8}})}));
  // Deep ResNet tail: four identical 2x2 convs chained by index-embedding
  // (each conv's (4,4,4) output sits inside the next one's (4,5,5) halo'd
  // input), three identical GEMMs chained exactly, and the residual scale
  // reading the last GEMM row-major. Eight layers end to end — the
  // deep-stitching stress model.
  models.push_back(NetworkSpec(
      "resnet-deep",
      {makeNetworkLayer("conv1", "conv2d", {{"k", 4}, {"c", 4}, {"y", 4},
                                            {"x", 4}, {"p", 2}, {"q", 2}}),
       makeNetworkLayer("conv2", "conv2d", {{"k", 4}, {"c", 4}, {"y", 4},
                                            {"x", 4}, {"p", 2}, {"q", 2}}),
       makeNetworkLayer("conv3", "conv2d", {{"k", 4}, {"c", 4}, {"y", 4},
                                            {"x", 4}, {"p", 2}, {"q", 2}}),
       makeNetworkLayer("conv4", "conv2d", {{"k", 4}, {"c", 4}, {"y", 4},
                                            {"x", 4}, {"p", 2}, {"q", 2}}),
       makeNetworkLayer("fc1", "gemm", {{"m", 16}, {"n", 4}, {"k", 4}}),
       makeNetworkLayer("fc2", "gemm", {{"m", 16}, {"n", 4}, {"k", 4}}),
       makeNetworkLayer("fc3", "gemm", {{"m", 16}, {"n", 4}, {"k", 4}}),
       makeNetworkLayer("scale", "pointwise-residual",
                        {{"b", 4}, {"i", 4}, {"j", 4}})}));
  // Transformer encoder stack: scores, the score-value contraction and the
  // output projection (identical shapes), then the two FFN GEMMs and the
  // residual scale — every adjacent pair chains exactly or row-major.
  models.push_back(NetworkSpec(
      "transformer-stack",
      {makeNetworkLayer("qk-scores", "attention",
                        {{"i", 8}, {"j", 8}, {"k", 8}}),
       makeNetworkLayer("av", "gemm", {{"m", 8}, {"n", 8}, {"k", 8}}),
       makeNetworkLayer("proj", "gemm", {{"m", 8}, {"n", 8}, {"k", 8}}),
       makeNetworkLayer("ffn1", "gemm", {{"m", 8}, {"n", 16}, {"k", 8}}),
       makeNetworkLayer("ffn2", "gemm", {{"m", 8}, {"n", 8}, {"k", 16}}),
       makeNetworkLayer("out-scale", "pointwise-residual",
                        {{"b", 2}, {"i", 8}, {"j", 4}})}));
  // MoE-style mix: a gating GEMM, a widening/narrowing expert pair, a
  // depthwise "expert" reading the activations row-major (flat-embed with a
  // zero tail), and the mixing GEMM repeating the gate's shape.
  models.push_back(NetworkSpec(
      "moe-mix",
      {makeNetworkLayer("gate", "gemm", {{"m", 16}, {"n", 4}, {"k", 4}}),
       makeNetworkLayer("expert1", "gemm", {{"m", 16}, {"n", 32}, {"k", 4}}),
       makeNetworkLayer("expert2", "gemm", {{"m", 16}, {"n", 4}, {"k", 32}}),
       makeNetworkLayer("expert-dw", "depthwise",
                        {{"k", 4}, {"y", 4}, {"x", 4}, {"p", 2}, {"q", 2}}),
       makeNetworkLayer("mix", "gemm", {{"m", 16}, {"n", 4}, {"k", 4}})}));
  return models;
}

const NetworkSpec* findNetwork(const std::string& name) {
  static const std::vector<NetworkSpec> table = builtinNetworks();
  for (const NetworkSpec& n : table)
    if (n.name() == name) return &n;
  return nullptr;
}

}  // namespace workloads
}  // namespace tensorlib::tensor
