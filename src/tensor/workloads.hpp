// The scenario library: the six Table-II algebras of the paper plus the
// extended shapes the conformance subsystem sweeps.
//
//   GEMM            C[m,n]   += A[m,k]     * B[n,k]
//   Batched-GEMV    C[m,n]   += A[m,k,n]   * B[m,k]
//   Conv2D          C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]
//   Depthwise-Conv  C[k,y,x] += A[k,y+p,x+q] * B[k,p,q]
//   MTTKRP          D[i,j]   += A[i,k,l]   * B[k,j] * C[l,j]
//   TTMc            D[i,j,k] += A[i,l,m]   * B[l,j] * C[m,k]
//   Strided-Conv2D  C[k,y,x] += A[c,s*y+p,s*x+q] * B[k,c,p,q]
//   Dilated-Conv2D  C[k,y,x] += A[c,y+d*p,x+d*q] * B[k,c,p,q]
//   Attention       S[i,j]   += Q[i,k]     * K[j,k]
//   Batched-Attn    S[b,i,j] += Q[b,i,k]   * K[b,j,k]
//   Contraction3    D[i,l]   += A[i,j] * B[j,k] * C[k,l]
//   Pointwise       R[b,i,j] += X[b,i,j]   * G[j]
//
// Each factory takes loop extents so tests can use tiny instances and
// benches can use the paper's sizes (e.g. ResNet layers for Conv2D).
// allWorkloads() registers one small, simulation-friendly instance of every
// scenario; the property sweep, the conformance oracle, the scenario bench
// and tools/conformance_runner all iterate that single table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/algebra.hpp"

namespace tensorlib::tensor::workloads {

TensorAlgebra gemm(std::int64_t m, std::int64_t n, std::int64_t k);

TensorAlgebra batchedGemv(std::int64_t m, std::int64_t n, std::int64_t k);

/// Conv2D with output channels k, input channels c, output map y*x and
/// kernel p*q (input map is (y+p-1)*(x+q-1)).
TensorAlgebra conv2d(std::int64_t k, std::int64_t c, std::int64_t y,
                     std::int64_t x, std::int64_t p, std::int64_t q);

TensorAlgebra depthwiseConv(std::int64_t k, std::int64_t y, std::int64_t x,
                            std::int64_t p, std::int64_t q);

TensorAlgebra mttkrp(std::int64_t i, std::int64_t j, std::int64_t k,
                     std::int64_t l);

TensorAlgebra ttmc(std::int64_t i, std::int64_t j, std::int64_t k,
                   std::int64_t l, std::int64_t m);

/// ResNet layer shapes used in Fig. 5(f)/(g): layer-2 (56x56 maps, 64ch) and
/// layer-5 (7x7 maps, 512ch), both 3x3 kernels.
TensorAlgebra conv2dResNetLayer2();
TensorAlgebra conv2dResNetLayer5();

/// Conv2D with input stride s: C[k,y,x] += A[c, s*y+p, s*x+q] * B[k,c,p,q].
TensorAlgebra conv2dStrided(std::int64_t k, std::int64_t c, std::int64_t y,
                            std::int64_t x, std::int64_t p, std::int64_t q,
                            std::int64_t stride);

/// Conv2D with kernel dilation d: C[k,y,x] += A[c, y+d*p, x+d*q] * B[k,c,p,q].
TensorAlgebra conv2dDilated(std::int64_t k, std::int64_t c, std::int64_t y,
                            std::int64_t x, std::int64_t p, std::int64_t q,
                            std::int64_t dilation);

/// Attention-score kernel S[i,j] += Q[i,k] * K[j,k] (Q·K^T; structurally a
/// GEMM with both operands row-indexed by their own loop).
TensorAlgebra attention(std::int64_t i, std::int64_t j, std::int64_t k);

/// Batched attention scores S[b,i,j] += Q[b,i,k] * K[b,j,k].
TensorAlgebra batchedAttention(std::int64_t b, std::int64_t i, std::int64_t j,
                               std::int64_t k);

/// Three-operand chained contraction D[i,l] += A[i,j] * B[j,k] * C[k,l].
TensorAlgebra contraction3(std::int64_t i, std::int64_t j, std::int64_t k,
                           std::int64_t l);

/// Pointwise/residual shape R[b,i,j] += X[b,i,j] * G[j]: an elementwise
/// update scaled by a per-channel gain. The identity output access means
/// every design streams the output (Unicast) — consumers must enumerate
/// with dropAllUnicast disabled (see NamedWorkload::allowAllUnicast).
TensorAlgebra pointwiseResidual(std::int64_t b, std::int64_t i, std::int64_t j);

/// One registered scenario: a small, simulation-friendly instance plus the
/// sweep hints test harnesses need.
struct NamedWorkload {
  std::string name;
  TensorAlgebra algebra;
  /// Per-selection spec cap for exhaustive sweeps (keeps ctest runtime flat).
  std::size_t sweepCap;
  /// True for workloads whose only realizable designs stream every tensor
  /// (pointwise shapes): enumerate with EnumerationOptions::dropAllUnicast
  /// = false or the design space is empty.
  bool allowAllUnicast = false;
};

/// The scenario table: every workload above at small verification extents.
std::vector<NamedWorkload> allWorkloads();

/// Table lookup by name; nullptr when absent.
const NamedWorkload* findWorkload(const std::string& name);

}  // namespace tensorlib::tensor::workloads
