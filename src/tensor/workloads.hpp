// The six tensor algebras evaluated by the paper (Table II):
//
//   GEMM            C[m,n]   += A[m,k]     * B[n,k]
//   Batched-GEMV    C[m,n]   += A[m,k,n]   * B[m,k]
//   Conv2D          C[k,y,x] += A[c,y+p,x+q] * B[k,c,p,q]
//   Depthwise-Conv  C[k,y,x] += A[k,y+p,x+q] * B[k,p,q]
//   MTTKRP          D[i,j]   += A[i,k,l]   * B[k,j] * C[l,j]
//   TTMc            D[i,j,k] += A[i,l,m]   * B[l,j] * C[m,k]
//
// Each factory takes loop extents so tests can use tiny instances and
// benches can use the paper's sizes (e.g. ResNet layers for Conv2D).
#pragma once

#include <cstdint>

#include "tensor/algebra.hpp"

namespace tensorlib::tensor::workloads {

TensorAlgebra gemm(std::int64_t m, std::int64_t n, std::int64_t k);

TensorAlgebra batchedGemv(std::int64_t m, std::int64_t n, std::int64_t k);

/// Conv2D with output channels k, input channels c, output map y*x and
/// kernel p*q (input map is (y+p-1)*(x+q-1)).
TensorAlgebra conv2d(std::int64_t k, std::int64_t c, std::int64_t y,
                     std::int64_t x, std::int64_t p, std::int64_t q);

TensorAlgebra depthwiseConv(std::int64_t k, std::int64_t y, std::int64_t x,
                            std::int64_t p, std::int64_t q);

TensorAlgebra mttkrp(std::int64_t i, std::int64_t j, std::int64_t k,
                     std::int64_t l);

TensorAlgebra ttmc(std::int64_t i, std::int64_t j, std::int64_t k,
                   std::int64_t l, std::int64_t m);

/// ResNet layer shapes used in Fig. 5(f)/(g): layer-2 (56x56 maps, 64ch) and
/// layer-5 (7x7 maps, 512ch), both 3x3 kernels.
TensorAlgebra conv2dResNetLayer2();
TensorAlgebra conv2dResNetLayer5();

}  // namespace tensorlib::tensor::workloads
