// Reference (software) executor for tensor algebras.
//
// Walks the full loop nest sequentially and performs
//   out[f_out(x)] += prod_k in_k[f_k(x)]
// This is the functional golden model every generated accelerator is
// verified against (the role VCS + a software model plays in the paper).
#pragma once

#include <map>
#include <string>

#include "support/prng.hpp"
#include "tensor/algebra.hpp"
#include "tensor/dense.hpp"

namespace tensorlib::tensor {

/// Named tensor environment: inputs must be present before execution; the
/// output is created (zero-initialized) if absent.
using TensorEnv = std::map<std::string, DenseTensor>;

/// Creates an environment with all input tensors filled with deterministic
/// small integers (exact in double).
TensorEnv makeRandomInputs(const TensorAlgebra& algebra, std::uint64_t seed = 1);

/// Executes the algebra over its full domain; returns the output tensor.
DenseTensor referenceExecute(const TensorAlgebra& algebra, const TensorEnv& inputs);

}  // namespace tensorlib::tensor
