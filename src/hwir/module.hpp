// Netlist container + builder API (the generator's construction surface).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hwir/node.hpp"

namespace tensorlib::hwir {

/// A flat netlist under construction or ready for simulation/emission.
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

  /// Port lists in creation order.
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  /// Looks up a port by name; throws if absent.
  NodeId inputByName(const std::string& name) const;
  NodeId outputByName(const std::string& name) const;

  // --- construction -------------------------------------------------------
  NodeId input(const std::string& name, int width, DataKind kind = DataKind::Bits);
  NodeId output(const std::string& name, NodeId value);
  NodeId constant(std::int64_t value, int width, DataKind kind = DataKind::Bits);

  /// Creates a register with a dangling D input (connect later, enabling
  /// feedback such as accumulators). Optional enable connected later too.
  NodeId reg(int width, DataKind kind, std::int64_t init, const std::string& name);
  void connectRegInput(NodeId reg, NodeId d);
  void connectRegEnable(NodeId reg, NodeId enable);

  NodeId add(NodeId a, NodeId b, const std::string& name = "");
  NodeId sub(NodeId a, NodeId b, const std::string& name = "");
  NodeId mul(NodeId a, NodeId b, const std::string& name = "");
  NodeId mux(NodeId sel, NodeId whenTrue, NodeId whenFalse,
             const std::string& name = "");
  NodeId eq(NodeId a, NodeId b, const std::string& name = "");
  NodeId lt(NodeId a, NodeId b, const std::string& name = "");
  NodeId logicalAnd(NodeId a, NodeId b, const std::string& name = "");
  NodeId logicalOr(NodeId a, NodeId b, const std::string& name = "");
  NodeId logicalNot(NodeId a, const std::string& name = "");

  /// d -> chain of `depth` registers (pipeline); returns the last stage.
  NodeId pipeline(NodeId d, int depth, const std::string& name);

  /// Balanced binary adder tree over the given leaves (>=1).
  NodeId adderTree(const std::vector<NodeId>& leaves, const std::string& name);

  /// Clones every node of `sub` into this netlist and returns the id
  /// offset: node k of `sub` becomes node (offset + k) here, with args
  /// remapped. Named nodes (ports, registers) get "<prefix>/" prepended,
  /// and `sub`'s inputs/outputs re-register as ports of the merged
  /// netlist, so the result simulates and emits like a hand-built design.
  /// Used by arch/model.* to stitch per-layer accelerators into one top.
  NodeId instantiate(const Netlist& sub, const std::string& prefix);

  /// Verifies structural sanity: every arg exists, every Reg has a D input,
  /// no combinational cycles. Returns the topological order of evaluation.
  std::vector<NodeId> validate() const;

  /// Inventory by op for the cost model; Reg entries are keyed separately.
  std::map<Op, std::int64_t> opCounts() const;
  /// Total register bits.
  std::int64_t regBits() const;

 private:
  NodeId addNode(Node n);
  int maxWidth(NodeId a, NodeId b) const;
  DataKind kindOf(NodeId a) const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::map<std::string, NodeId> inputNames_;
  std::map<std::string, NodeId> outputNames_;
};

}  // namespace tensorlib::hwir
