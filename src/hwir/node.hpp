// Hardware IR primitives.
//
// TensorLib's templates are written in Chisel; this IR plays the same role
// in C++: a structural netlist of registers, arithmetic and muxes that the
// generator composes, a cycle-accurate simulator evaluates (the VCS role),
// and a Verilog backend serializes. The netlist is flat; hierarchy lives in
// node names ("pe_3_4/a_reg"), which is also how flattened Chisel-generated
// Verilog looks in practice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tensorlib::hwir {

/// Primitive operations. Reg is the only sequential element; Input/Output
/// are the top-level ports the testbench drives/samples.
enum class Op {
  Input,   // external input port (no args)
  Const,   // constant (value attr)
  Reg,     // D flip-flop: args = {d} or {d, enable}; value attr = init
  Add,     // args = {a, b}
  Sub,     // args = {a, b}
  Mul,     // args = {a, b}
  Mux,     // args = {sel, whenTrue, whenFalse}
  Eq,      // args = {a, b} -> 1 bit
  Lt,      // args = {a, b} -> 1 bit (unsigned compare)
  And,     // args = {a, b}
  Or,      // args = {a, b}
  Not,     // args = {a} (bitwise)
  Output,  // external output port: args = {value}
};

/// Value interpretation for Add/Sub/Mul: two's-complement integers of the
/// node width (exact wrap) or IEEE-754 single precision (the FPGA path's
/// "Floating-Point IP as a BlackBox" — here a simulated primitive).
enum class DataKind { Bits, Float32 };

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

struct Node {
  Op op = Op::Const;
  int width = 1;
  DataKind kind = DataKind::Bits;
  std::vector<NodeId> args;
  std::int64_t value = 0;  ///< Const value / Reg init
  std::string name;        ///< hierarchical instance name (may be empty)
};

/// Human-readable op mnemonic (used by the Verilog backend and diagnostics).
const char* opName(Op op);

/// True for ops with no combinational inputs (sources of the eval order).
bool isSource(Op op);

}  // namespace tensorlib::hwir
