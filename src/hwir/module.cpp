#include "hwir/module.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace tensorlib::hwir {

const Node& Netlist::node(NodeId id) const {
  TL_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

NodeId Netlist::inputByName(const std::string& name) const {
  const auto it = inputNames_.find(name);
  TL_CHECK(it != inputNames_.end(), "no input port named " + name);
  return it->second;
}

NodeId Netlist::outputByName(const std::string& name) const {
  const auto it = outputNames_.find(name);
  TL_CHECK(it != outputNames_.end(), "no output port named " + name);
  return it->second;
}

NodeId Netlist::addNode(Node n) {
  for (NodeId a : n.args)
    TL_CHECK(a < nodes_.size(), "node arg references a later node");
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

int Netlist::maxWidth(NodeId a, NodeId b) const {
  return std::max(node(a).width, node(b).width);
}

DataKind Netlist::kindOf(NodeId a) const { return node(a).kind; }

NodeId Netlist::input(const std::string& name, int width, DataKind kind) {
  TL_CHECK(!inputNames_.count(name), "duplicate input port " + name);
  Node n;
  n.op = Op::Input;
  n.width = width;
  n.kind = kind;
  n.name = name;
  const NodeId id = addNode(std::move(n));
  inputs_.push_back(id);
  inputNames_[name] = id;
  return id;
}

NodeId Netlist::output(const std::string& name, NodeId value) {
  TL_CHECK(!outputNames_.count(name), "duplicate output port " + name);
  Node n;
  n.op = Op::Output;
  n.width = node(value).width;
  n.kind = node(value).kind;
  n.args = {value};
  n.name = name;
  const NodeId id = addNode(std::move(n));
  outputs_.push_back(id);
  outputNames_[name] = id;
  return id;
}

NodeId Netlist::constant(std::int64_t value, int width, DataKind kind) {
  Node n;
  n.op = Op::Const;
  n.width = width;
  n.kind = kind;
  n.value = value;
  return addNode(std::move(n));
}

NodeId Netlist::reg(int width, DataKind kind, std::int64_t init,
                    const std::string& name) {
  Node n;
  n.op = Op::Reg;
  n.width = width;
  n.kind = kind;
  n.value = init;
  n.name = name;
  return addNode(std::move(n));  // D input connected later
}

void Netlist::connectRegInput(NodeId reg, NodeId d) {
  TL_CHECK(reg < nodes_.size() && nodes_[reg].op == Op::Reg,
           "connectRegInput: not a register");
  TL_CHECK(d < nodes_.size(), "connectRegInput: bad source");
  TL_CHECK(nodes_[reg].args.empty(), "register D already connected");
  nodes_[reg].args.push_back(d);
}

void Netlist::connectRegEnable(NodeId reg, NodeId enable) {
  TL_CHECK(reg < nodes_.size() && nodes_[reg].op == Op::Reg,
           "connectRegEnable: not a register");
  TL_CHECK(nodes_[reg].args.size() == 1, "connect D before enable");
  nodes_[reg].args.push_back(enable);
}

namespace {
Node binary(Op op, NodeId a, NodeId b, int width, DataKind kind,
            const std::string& name) {
  Node n;
  n.op = op;
  n.width = width;
  n.kind = kind;
  n.args = {a, b};
  n.name = name;
  return n;
}
}  // namespace

NodeId Netlist::add(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::Add, a, b, maxWidth(a, b), kindOf(a), name));
}
NodeId Netlist::sub(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::Sub, a, b, maxWidth(a, b), kindOf(a), name));
}
NodeId Netlist::mul(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::Mul, a, b, maxWidth(a, b), kindOf(a), name));
}
NodeId Netlist::mux(NodeId sel, NodeId whenTrue, NodeId whenFalse,
                    const std::string& name) {
  Node n;
  n.op = Op::Mux;
  n.width = maxWidth(whenTrue, whenFalse);
  n.kind = kindOf(whenTrue);
  n.args = {sel, whenTrue, whenFalse};
  n.name = name;
  return addNode(std::move(n));
}
NodeId Netlist::eq(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::Eq, a, b, 1, DataKind::Bits, name));
}
NodeId Netlist::lt(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::Lt, a, b, 1, DataKind::Bits, name));
}
NodeId Netlist::logicalAnd(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::And, a, b, maxWidth(a, b), DataKind::Bits, name));
}
NodeId Netlist::logicalOr(NodeId a, NodeId b, const std::string& name) {
  return addNode(binary(Op::Or, a, b, maxWidth(a, b), DataKind::Bits, name));
}
NodeId Netlist::logicalNot(NodeId a, const std::string& name) {
  Node n;
  n.op = Op::Not;
  n.width = node(a).width;
  n.kind = DataKind::Bits;
  n.args = {a};
  n.name = name;
  return addNode(std::move(n));
}

NodeId Netlist::pipeline(NodeId d, int depth, const std::string& name) {
  NodeId cur = d;
  for (int i = 0; i < depth; ++i) {
    const NodeId r = reg(node(d).width, node(d).kind, 0,
                         name + "/stage" + std::to_string(i));
    connectRegInput(r, cur);
    cur = r;
  }
  return cur;
}

NodeId Netlist::adderTree(const std::vector<NodeId>& leaves,
                          const std::string& name) {
  TL_CHECK(!leaves.empty(), "adderTree needs at least one leaf");
  std::vector<NodeId> level = leaves;
  int depth = 0;
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(add(level[i], level[i + 1],
                         name + "/l" + std::to_string(depth)));
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
    ++depth;
  }
  return level[0];
}

NodeId Netlist::instantiate(const Netlist& sub, const std::string& prefix) {
  const NodeId offset = static_cast<NodeId>(nodes_.size());
  nodes_.reserve(nodes_.size() + sub.nodes_.size());
  for (const Node& src : sub.nodes_) {
    Node n = src;
    for (NodeId& a : n.args) a += offset;
    if (!n.name.empty() || src.op == Op::Input || src.op == Op::Output)
      n.name = prefix + "/" + n.name;
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::move(n));
    if (src.op == Op::Input) {
      TL_CHECK(!inputNames_.count(nodes_[id].name),
               "instantiate: duplicate input port " + nodes_[id].name);
      inputs_.push_back(id);
      inputNames_[nodes_[id].name] = id;
    } else if (src.op == Op::Output) {
      TL_CHECK(!outputNames_.count(nodes_[id].name),
               "instantiate: duplicate output port " + nodes_[id].name);
      outputs_.push_back(id);
      outputNames_[nodes_[id].name] = id;
    }
  }
  return offset;
}

std::vector<NodeId> Netlist::validate() const {
  // Kahn topological sort over combinational edges; Reg outputs are sources
  // (their D inputs are consumed at the cycle boundary, not combinationally).
  const std::size_t n = nodes_.size();
  std::vector<int> pending(n, 0);
  std::vector<std::vector<NodeId>> users(n);
  for (NodeId id = 0; id < n; ++id) {
    const Node& nd = nodes_[id];
    if (nd.op == Op::Reg)
      TL_CHECK(!nd.args.empty(), "register " + nd.name + " has no D input");
    if (isSource(nd.op)) continue;
    pending[id] = static_cast<int>(nd.args.size());
    for (NodeId a : nd.args) users[a].push_back(id);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId id = 0; id < n; ++id)
    if (isSource(nodes_[id].op)) order.push_back(id);
  for (std::size_t head = 0; head < order.size(); ++head)
    for (NodeId u : users[order[head]])
      if (--pending[u] == 0) order.push_back(u);
  TL_CHECK(order.size() == n,
           "combinational cycle detected in netlist " + name_);
  return order;
}

std::map<Op, std::int64_t> Netlist::opCounts() const {
  std::map<Op, std::int64_t> out;
  for (const auto& n : nodes_) ++out[n.op];
  return out;
}

std::int64_t Netlist::regBits() const {
  std::int64_t bits = 0;
  for (const auto& n : nodes_)
    if (n.op == Op::Reg) bits += n.width;
  return bits;
}

}  // namespace tensorlib::hwir
