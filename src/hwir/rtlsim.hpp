// Cycle-accurate simulator for hwir netlists (the Synopsys-VCS role).
//
// Values are width-masked uint64 words; Bits arithmetic is two's-complement
// modular (bit-exact with hardware), Float32 arithmetic bit-casts through
// IEEE single precision exactly like the Xilinx FP blackbox the paper
// instantiates.
//
// Two execution engines share the public API and are bit-identical:
//  - Compiled (default): the netlist is compiled once into a flat evaluation
//    tape — fused op+kind opcodes, arg indices resolved into fixed slots,
//    width masks precomputed, constants burned in — so evaluate() is a tight
//    loop with no Node indirection and no per-node branching on op+kind.
//  - Legacy: the original walk-the-Node-graph interpreter, kept for
//    differential testing (tests/hwir_rtlsim_diff_test.cpp) and as the perf
//    baseline in bench/perf_regression.cpp.
// Both engines latch registers in step() from a register list precomputed in
// the constructor instead of rescanning the whole netlist every cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hwir/module.hpp"

namespace tensorlib::hwir {

/// Which evaluation engine a simulator instance runs.
enum class SimEngine { Compiled, Legacy };

class RtlSimulator {
 public:
  explicit RtlSimulator(const Netlist& netlist,
                        SimEngine engine = SimEngine::Compiled);

  SimEngine engine() const { return engine_; }

  /// Drives an input port for the current cycle (until overwritten).
  void poke(NodeId input, std::uint64_t value);
  void poke(const std::string& inputName, std::uint64_t value);
  /// Drives all inputs to zero (between stimulus cycles).
  void clearInputs();

  /// Evaluates combinational logic for the current cycle.
  void evaluate();
  /// Latches registers (call after evaluate) and advances the cycle count.
  void step();

  /// Reads any node's post-evaluate value.
  std::uint64_t peek(NodeId node) const;
  std::uint64_t peekOutput(const std::string& outputName) const;

  std::int64_t cycle() const { return cycle_; }

  /// Fault injection for conformance testing: flips the low bit of every
  /// compiled-tape width mask, so masked results silently lose/gain their
  /// LSB. The legacy engine reads Node widths directly and is unaffected —
  /// exactly the single-layer defect the differential oracle must localize.
  /// No-op for SimEngine::Legacy instances.
  void corruptTapeMasksForTest();

  /// Helpers for numeric ports.
  static std::uint64_t encodeFloat(float f);
  static float decodeFloat(std::uint64_t bits);
  /// Encodes a signed integer into `width` bits (two's complement).
  static std::uint64_t encodeInt(std::int64_t v, int width);
  /// Decodes a `width`-bit two's-complement value.
  static std::int64_t decodeInt(std::uint64_t bits, int width);

 private:
  /// Fused opcode: op and DataKind resolved at compile time, so the
  /// evaluation loop never branches on kind.
  enum class TapeOp : std::uint8_t {
    AddI, SubI, MulI,  // Bits arithmetic (modular two's complement)
    AddF, SubF, MulF,  // Float32 arithmetic (IEEE single, bit-cast)
    Mux, Eq, Lt, And, Or, Not,
    Copy,  // Output nodes: forward the driven value
  };
  struct TapeInstr {
    TapeOp op;
    NodeId dst;
    NodeId a0 = 0, a1 = 0, a2 = 0;
    std::uint64_t mask = ~0ull;
  };
  /// One register's latch record: D/enable indices and the width mask,
  /// resolved once in the constructor.
  struct RegSlot {
    NodeId id;
    NodeId d;
    NodeId enable = kInvalidNode;
    std::uint64_t mask = ~0ull;
  };

  void compile();
  void evaluateCompiled();
  void evaluateLegacy();

  const Netlist& netlist_;
  SimEngine engine_;
  std::vector<NodeId> order_;  ///< topological evaluation order
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> regState_;
  std::vector<std::uint64_t> inputValue_;
  std::vector<TapeInstr> tape_;       ///< combinational ops only (Compiled)
  std::vector<RegSlot> regs_;  ///< precomputed; used by both engines
  std::int64_t cycle_ = 0;
  bool evaluated_ = false;
};

}  // namespace tensorlib::hwir
