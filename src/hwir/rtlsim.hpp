// Cycle-accurate simulator for hwir netlists (the Synopsys-VCS role).
//
// Values are width-masked uint64 words; Bits arithmetic is two's-complement
// modular (bit-exact with hardware), Float32 arithmetic bit-casts through
// IEEE single precision exactly like the Xilinx FP blackbox the paper
// instantiates.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hwir/module.hpp"

namespace tensorlib::hwir {

class RtlSimulator {
 public:
  explicit RtlSimulator(const Netlist& netlist);

  /// Drives an input port for the current cycle (until overwritten).
  void poke(NodeId input, std::uint64_t value);
  void poke(const std::string& inputName, std::uint64_t value);
  /// Drives all inputs to zero (between stimulus cycles).
  void clearInputs();

  /// Evaluates combinational logic for the current cycle.
  void evaluate();
  /// Latches registers (call after evaluate) and advances the cycle count.
  void step();

  /// Reads any node's post-evaluate value.
  std::uint64_t peek(NodeId node) const;
  std::uint64_t peekOutput(const std::string& outputName) const;

  std::int64_t cycle() const { return cycle_; }

  /// Helpers for numeric ports.
  static std::uint64_t encodeFloat(float f);
  static float decodeFloat(std::uint64_t bits);
  /// Encodes a signed integer into `width` bits (two's complement).
  static std::uint64_t encodeInt(std::int64_t v, int width);
  /// Decodes a `width`-bit two's-complement value.
  static std::int64_t decodeInt(std::uint64_t bits, int width);

 private:
  const Netlist& netlist_;
  std::vector<NodeId> order_;      ///< topological evaluation order
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> regState_;
  std::vector<std::uint64_t> inputValue_;
  std::int64_t cycle_ = 0;
  bool evaluated_ = false;
};

}  // namespace tensorlib::hwir
