#include "hwir/rtlsim.hpp"

#include <cstring>

#include "support/error.hpp"

namespace tensorlib::hwir {

namespace {

std::uint64_t maskTo(std::uint64_t v, int width) {
  if (width >= 64) return v;
  return v & ((1ull << width) - 1);
}

std::uint64_t widthMask(int width) {
  if (width >= 64) return ~0ull;
  return (1ull << width) - 1;
}

float asFloat(std::uint64_t bits) {
  const std::uint32_t w = static_cast<std::uint32_t>(bits);
  float f;
  std::memcpy(&f, &w, sizeof(f));
  return f;
}

std::uint64_t fromFloat(float f) {
  std::uint32_t w;
  std::memcpy(&w, &f, sizeof(w));
  return w;
}

}  // namespace

RtlSimulator::RtlSimulator(const Netlist& netlist, SimEngine engine)
    : netlist_(netlist),
      engine_(engine),
      order_(netlist.validate()),
      value_(netlist.size(), 0),
      regState_(netlist.size(), 0),
      inputValue_(netlist.size(), 0) {
  for (NodeId id = 0; id < netlist_.size(); ++id) {
    const Node& n = netlist_.node(id);
    if (n.op != Op::Reg) continue;
    regState_[id] = maskTo(static_cast<std::uint64_t>(n.value), n.width);
    RegSlot slot;
    slot.id = id;
    slot.d = n.args[0];
    if (n.args.size() >= 2) slot.enable = n.args[1];
    slot.mask = widthMask(n.width);
    regs_.push_back(slot);
  }
  if (engine_ == SimEngine::Compiled) compile();
}

void RtlSimulator::compile() {
  tape_.reserve(order_.size());
  for (NodeId id : order_) {
    const Node& n = netlist_.node(id);
    TapeInstr instr;
    instr.dst = id;
    instr.mask = widthMask(n.width);
    switch (n.op) {
      case Op::Const:
        // Burned into the value array once; nothing ever overwrites it.
        value_[id] = maskTo(static_cast<std::uint64_t>(n.value), n.width);
        continue;
      case Op::Input:
      case Op::Reg:
        // Sources: refreshed at the head of evaluate() from inputValue_ /
        // regState_, not part of the tape.
        continue;
      case Op::Add:
      case Op::Sub:
      case Op::Mul: {
        const bool f = n.kind == DataKind::Float32;
        if (n.op == Op::Add) instr.op = f ? TapeOp::AddF : TapeOp::AddI;
        else if (n.op == Op::Sub) instr.op = f ? TapeOp::SubF : TapeOp::SubI;
        else instr.op = f ? TapeOp::MulF : TapeOp::MulI;
        instr.a0 = n.args[0];
        instr.a1 = n.args[1];
        break;
      }
      case Op::Mux:
        instr.op = TapeOp::Mux;
        instr.a0 = n.args[0];
        instr.a1 = n.args[1];
        instr.a2 = n.args[2];
        break;
      case Op::Eq:
      case Op::Lt:
      case Op::And:
      case Op::Or:
        instr.op = n.op == Op::Eq   ? TapeOp::Eq
                   : n.op == Op::Lt ? TapeOp::Lt
                   : n.op == Op::And ? TapeOp::And
                                     : TapeOp::Or;
        instr.a0 = n.args[0];
        instr.a1 = n.args[1];
        break;
      case Op::Not:
        instr.op = TapeOp::Not;
        instr.a0 = n.args[0];
        break;
      case Op::Output:
        instr.op = TapeOp::Copy;
        instr.a0 = n.args[0];
        break;
    }
    tape_.push_back(instr);
  }
}

void RtlSimulator::corruptTapeMasksForTest() {
  for (TapeInstr& t : tape_) t.mask ^= 1;
}

void RtlSimulator::poke(NodeId input, std::uint64_t value) {
  TL_CHECK(netlist_.node(input).op == Op::Input, "poke target is not an input");
  inputValue_[input] = maskTo(value, netlist_.node(input).width);
  evaluated_ = false;
}

void RtlSimulator::poke(const std::string& inputName, std::uint64_t value) {
  poke(netlist_.inputByName(inputName), value);
}

void RtlSimulator::clearInputs() {
  for (NodeId id : netlist_.inputs()) inputValue_[id] = 0;
  evaluated_ = false;
}

void RtlSimulator::evaluate() {
  if (engine_ == SimEngine::Compiled) evaluateCompiled();
  else evaluateLegacy();
  evaluated_ = true;
}

void RtlSimulator::evaluateCompiled() {
  // Sources first (regState_/inputValue_ are pre-masked), then one tight
  // pass over the tape in topological order.
  for (const RegSlot& r : regs_) value_[r.id] = regState_[r.id];
  for (NodeId id : netlist_.inputs()) value_[id] = inputValue_[id];
  std::uint64_t* v = value_.data();
  for (const TapeInstr& t : tape_) {
    std::uint64_t r = 0;
    switch (t.op) {
      case TapeOp::AddI: r = v[t.a0] + v[t.a1]; break;
      case TapeOp::SubI: r = v[t.a0] - v[t.a1]; break;
      case TapeOp::MulI: r = v[t.a0] * v[t.a1]; break;
      case TapeOp::AddF: r = fromFloat(asFloat(v[t.a0]) + asFloat(v[t.a1])); break;
      case TapeOp::SubF: r = fromFloat(asFloat(v[t.a0]) - asFloat(v[t.a1])); break;
      case TapeOp::MulF: r = fromFloat(asFloat(v[t.a0]) * asFloat(v[t.a1])); break;
      case TapeOp::Mux: r = v[t.a0] != 0 ? v[t.a1] : v[t.a2]; break;
      case TapeOp::Eq: r = v[t.a0] == v[t.a1]; break;
      case TapeOp::Lt: r = v[t.a0] < v[t.a1]; break;
      case TapeOp::And: r = v[t.a0] & v[t.a1]; break;
      case TapeOp::Or: r = v[t.a0] | v[t.a1]; break;
      case TapeOp::Not: r = ~v[t.a0]; break;
      case TapeOp::Copy: r = v[t.a0]; break;
    }
    v[t.dst] = r & t.mask;
  }
}

void RtlSimulator::evaluateLegacy() {
  for (NodeId id : order_) {
    const Node& n = netlist_.node(id);
    std::uint64_t v = 0;
    switch (n.op) {
      case Op::Input: v = inputValue_[id]; break;
      case Op::Const: v = static_cast<std::uint64_t>(n.value); break;
      case Op::Reg: v = regState_[id]; break;
      case Op::Add:
      case Op::Sub:
      case Op::Mul: {
        const std::uint64_t a = value_[n.args[0]];
        const std::uint64_t b = value_[n.args[1]];
        if (n.kind == DataKind::Float32) {
          float r = 0.f;
          if (n.op == Op::Add) r = asFloat(a) + asFloat(b);
          else if (n.op == Op::Sub) r = asFloat(a) - asFloat(b);
          else r = asFloat(a) * asFloat(b);
          v = fromFloat(r);
        } else {
          if (n.op == Op::Add) v = a + b;
          else if (n.op == Op::Sub) v = a - b;
          else v = a * b;
        }
        break;
      }
      case Op::Mux:
        v = value_[n.args[0]] != 0 ? value_[n.args[1]] : value_[n.args[2]];
        break;
      case Op::Eq: v = value_[n.args[0]] == value_[n.args[1]]; break;
      case Op::Lt: v = value_[n.args[0]] < value_[n.args[1]]; break;
      case Op::And: v = value_[n.args[0]] & value_[n.args[1]]; break;
      case Op::Or: v = value_[n.args[0]] | value_[n.args[1]]; break;
      case Op::Not: v = ~value_[n.args[0]]; break;
      case Op::Output: v = value_[n.args[0]]; break;
    }
    value_[id] = maskTo(v, n.width);
  }
}

void RtlSimulator::step() {
  TL_CHECK(evaluated_, "step() without evaluate()");
  // Latch from the precomputed register list. D and enable values come
  // from value_, which evaluate() froze — register-to-register feeds read
  // the pre-step snapshot by construction, so a single commit loop is
  // race-free. The mask keeps regState_ canonical (evaluate copies it
  // verbatim in the compiled engine).
  for (const RegSlot& r : regs_) {
    const bool enabled = r.enable == kInvalidNode || value_[r.enable] != 0;
    if (enabled) regState_[r.id] = value_[r.d] & r.mask;
  }
  ++cycle_;
  evaluated_ = false;
}

std::uint64_t RtlSimulator::peek(NodeId node) const {
  TL_CHECK(evaluated_, "peek() before evaluate()");
  return value_[node];
}

std::uint64_t RtlSimulator::peekOutput(const std::string& outputName) const {
  return peek(netlist_.outputByName(outputName));
}

std::uint64_t RtlSimulator::encodeFloat(float f) { return fromFloat(f); }
float RtlSimulator::decodeFloat(std::uint64_t bits) { return asFloat(bits); }

std::uint64_t RtlSimulator::encodeInt(std::int64_t v, int width) {
  return maskTo(static_cast<std::uint64_t>(v), width);
}

std::int64_t RtlSimulator::decodeInt(std::uint64_t bits, int width) {
  if (width >= 64) return static_cast<std::int64_t>(bits);
  const std::uint64_t sign = 1ull << (width - 1);
  if (bits & sign) return static_cast<std::int64_t>(bits) - (1ll << width);
  return static_cast<std::int64_t>(bits);
}

}  // namespace tensorlib::hwir
