#include "hwir/rtlsim.hpp"

#include <cstring>

#include "support/error.hpp"

namespace tensorlib::hwir {

namespace {

std::uint64_t maskTo(std::uint64_t v, int width) {
  if (width >= 64) return v;
  return v & ((1ull << width) - 1);
}

float asFloat(std::uint64_t bits) {
  const std::uint32_t w = static_cast<std::uint32_t>(bits);
  float f;
  std::memcpy(&f, &w, sizeof(f));
  return f;
}

std::uint64_t fromFloat(float f) {
  std::uint32_t w;
  std::memcpy(&w, &f, sizeof(w));
  return w;
}

}  // namespace

RtlSimulator::RtlSimulator(const Netlist& netlist)
    : netlist_(netlist),
      order_(netlist.validate()),
      value_(netlist.size(), 0),
      regState_(netlist.size(), 0),
      inputValue_(netlist.size(), 0) {
  for (NodeId id = 0; id < netlist_.size(); ++id)
    if (netlist_.node(id).op == Op::Reg)
      regState_[id] = maskTo(static_cast<std::uint64_t>(netlist_.node(id).value),
                             netlist_.node(id).width);
}

void RtlSimulator::poke(NodeId input, std::uint64_t value) {
  TL_CHECK(netlist_.node(input).op == Op::Input, "poke target is not an input");
  inputValue_[input] = maskTo(value, netlist_.node(input).width);
  evaluated_ = false;
}

void RtlSimulator::poke(const std::string& inputName, std::uint64_t value) {
  poke(netlist_.inputByName(inputName), value);
}

void RtlSimulator::clearInputs() {
  for (NodeId id : netlist_.inputs()) inputValue_[id] = 0;
  evaluated_ = false;
}

void RtlSimulator::evaluate() {
  for (NodeId id : order_) {
    const Node& n = netlist_.node(id);
    std::uint64_t v = 0;
    switch (n.op) {
      case Op::Input: v = inputValue_[id]; break;
      case Op::Const: v = static_cast<std::uint64_t>(n.value); break;
      case Op::Reg: v = regState_[id]; break;
      case Op::Add:
      case Op::Sub:
      case Op::Mul: {
        const std::uint64_t a = value_[n.args[0]];
        const std::uint64_t b = value_[n.args[1]];
        if (n.kind == DataKind::Float32) {
          float r = 0.f;
          if (n.op == Op::Add) r = asFloat(a) + asFloat(b);
          else if (n.op == Op::Sub) r = asFloat(a) - asFloat(b);
          else r = asFloat(a) * asFloat(b);
          v = fromFloat(r);
        } else {
          if (n.op == Op::Add) v = a + b;
          else if (n.op == Op::Sub) v = a - b;
          else v = a * b;
        }
        break;
      }
      case Op::Mux:
        v = value_[n.args[0]] != 0 ? value_[n.args[1]] : value_[n.args[2]];
        break;
      case Op::Eq: v = value_[n.args[0]] == value_[n.args[1]]; break;
      case Op::Lt: v = value_[n.args[0]] < value_[n.args[1]]; break;
      case Op::And: v = value_[n.args[0]] & value_[n.args[1]]; break;
      case Op::Or: v = value_[n.args[0]] | value_[n.args[1]]; break;
      case Op::Not: v = ~value_[n.args[0]]; break;
      case Op::Output: v = value_[n.args[0]]; break;
    }
    value_[id] = maskTo(v, n.width);
  }
  evaluated_ = true;
}

void RtlSimulator::step() {
  TL_CHECK(evaluated_, "step() without evaluate()");
  for (NodeId id = 0; id < netlist_.size(); ++id) {
    const Node& n = netlist_.node(id);
    if (n.op != Op::Reg) continue;
    const bool enabled = n.args.size() < 2 || value_[n.args[1]] != 0;
    if (enabled) regState_[id] = value_[n.args[0]];
  }
  ++cycle_;
  evaluated_ = false;
}

std::uint64_t RtlSimulator::peek(NodeId node) const {
  TL_CHECK(evaluated_, "peek() before evaluate()");
  return value_[node];
}

std::uint64_t RtlSimulator::peekOutput(const std::string& outputName) const {
  return peek(netlist_.outputByName(outputName));
}

std::uint64_t RtlSimulator::encodeFloat(float f) { return fromFloat(f); }
float RtlSimulator::decodeFloat(std::uint64_t bits) { return asFloat(bits); }

std::uint64_t RtlSimulator::encodeInt(std::int64_t v, int width) {
  return maskTo(static_cast<std::uint64_t>(v), width);
}

std::int64_t RtlSimulator::decodeInt(std::uint64_t bits, int width) {
  if (width >= 64) return static_cast<std::int64_t>(bits);
  const std::uint64_t sign = 1ull << (width - 1);
  if (bits & sign) return static_cast<std::int64_t>(bits) - (1ll << width);
  return static_cast<std::int64_t>(bits);
}

}  // namespace tensorlib::hwir
