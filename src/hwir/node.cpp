#include "hwir/node.hpp"

#include "support/error.hpp"

namespace tensorlib::hwir {

const char* opName(Op op) {
  switch (op) {
    case Op::Input: return "input";
    case Op::Const: return "const";
    case Op::Reg: return "reg";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Mux: return "mux";
    case Op::Eq: return "eq";
    case Op::Lt: return "lt";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Not: return "not";
    case Op::Output: return "output";
  }
  fail("unknown op");
}

bool isSource(Op op) {
  return op == Op::Input || op == Op::Const || op == Op::Reg;
}

}  // namespace tensorlib::hwir
