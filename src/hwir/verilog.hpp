// Verilog backend: serializes a netlist to synthesizable Verilog-2001.
//
// This is the artifact a user would hand to Vivado / DC — the same hand-off
// point the paper has after Chisel elaboration. Float32 multiply/add nodes
// are emitted as blackbox instantiations (fp32_mul / fp32_add), mirroring
// the paper's use of Xilinx Floating-Point IP as a Chisel BlackBox.
#pragma once

#include <string>

#include "hwir/module.hpp"

namespace tensorlib::hwir {

/// Emits the complete Verilog for the netlist (one module, plus blackbox
/// declarations for fp32 primitives when used).
std::string emitVerilog(const Netlist& netlist);

}  // namespace tensorlib::hwir
