#include "arch/pe.hpp"

#include <set>

#include "support/error.hpp"

namespace tensorlib::arch {

namespace {
std::string peName(const std::string& tensor, PeCoord pe) {
  return "pe_" + std::to_string(pe.p1) + "_" + std::to_string(pe.p2) + "/" +
         tensor;
}
}  // namespace

InputBundle buildSystolicInput(hwir::Netlist& n, const PeGrid& grid,
                               const std::string& tensor, int width,
                               hwir::DataKind kind,
                               const linalg::IntVector& direction,
                               const std::vector<PeCoord>& injectionPes) {
  TL_CHECK(direction.size() == 3 && direction[2] > 0,
           "systolic input needs a (dp1,dp2,dt>0) direction");
  const std::int64_t dp1 = direction[0], dp2 = direction[1], dt = direction[2];
  TL_CHECK(dp1 != 0 || dp2 != 0, "systolic direction must move spatially");

  InputBundle bundle;
  bundle.dataflowClass = stt::DataflowClass::Systolic;
  bundle.direction = direction;
  const std::set<PeCoord> heads(injectionPes.begin(), injectionPes.end());

  const hwir::NodeId zero = n.constant(0, width, kind);
  const hwir::NodeId validZero = n.constant(0, 1);

  for (const auto& [id, pes] : chainsAlong(grid, dp1, dp2)) {
    (void)id;
    hwir::NodeId prevData = hwir::kInvalidNode;
    hwir::NodeId prevValid = hwir::kInvalidNode;
    for (const PeCoord pe : pes) {
      const std::string base = peName(tensor, pe);
      // Incoming from the neighbor, delayed dt cycles (module (a)'s register
      // plus dt-1 pipeline stages for strided schedules).
      hwir::NodeId chainData = zero;
      hwir::NodeId chainValid = validZero;
      if (prevData != hwir::kInvalidNode) {
        chainData = n.pipeline(prevData, static_cast<int>(dt), base + "/chain");
        chainValid =
            n.pipeline(prevValid, static_cast<int>(dt), base + "/chain_v");
      }
      hwir::NodeId data = chainData;
      hwir::NodeId valid = chainValid;
      if (heads.count(pe)) {
        const hwir::NodeId port = n.input(tensor + "_in_" + std::to_string(pe.p1) +
                                              "_" + std::to_string(pe.p2),
                                          width, kind);
        const hwir::NodeId vport = n.input(tensor + "_vld_" +
                                               std::to_string(pe.p1) + "_" +
                                               std::to_string(pe.p2),
                                           1);
        bundle.peDataPorts[pe] = port;
        bundle.peValidPorts[pe] = vport;
        data = n.mux(vport, port, chainData, base + "/inject_mux");
        valid = n.logicalOr(vport, chainValid, base + "/inject_vld");
      }
      bundle.operand[pe] = data;
      bundle.valid[pe] = valid;
      prevData = data;
      prevValid = valid;
    }
  }
  return bundle;
}

InputBundle buildStationaryInput(hwir::Netlist& n, const PeGrid& grid,
                                 const std::string& tensor, int width,
                                 hwir::DataKind kind,
                                 const ControllerSignals& ctrl) {
  InputBundle bundle;
  bundle.dataflowClass = stt::DataflowClass::Stationary;
  TL_CHECK(static_cast<std::int64_t>(ctrl.loadColumn.size()) >= grid.p2Span,
           "controller load columns don't cover the array");

  for (std::int64_t r = 0; r < grid.p1Span; ++r) {
    bundle.rowLoadPorts[r] =
        n.input(tensor + "_load_" + std::to_string(r), width, kind);
    bundle.rowLoadValidPorts[r] =
        n.input(tensor + "_loadvld_" + std::to_string(r), 1);
  }

  for (const PeCoord pe : grid.all()) {
    const std::string base = peName(tensor, pe);
    // Module (c): shadow register fills during LOAD, active register swaps
    // in at the stage boundary so compute and (next-tile) loading overlap.
    // A 1-bit occupancy flag rides along so PEs that receive no element
    // this stage (remainder tiles) stay gated off.
    const hwir::NodeId loadEn =
        ctrl.loadColumn[static_cast<std::size_t>(pe.p2)];
    const hwir::NodeId shadow = n.reg(width, kind, 0, base + "/shadow");
    n.connectRegInput(shadow, bundle.rowLoadPorts[pe.p1]);
    n.connectRegEnable(shadow, loadEn);
    const hwir::NodeId shadowVld = n.reg(1, hwir::DataKind::Bits, 0,
                                         base + "/shadow_vld");
    n.connectRegInput(shadowVld, bundle.rowLoadValidPorts[pe.p1]);
    n.connectRegEnable(shadowVld, loadEn);

    const hwir::NodeId active = n.reg(width, kind, 0, base + "/active");
    n.connectRegInput(active, shadow);
    // The active regs latch one cycle after the last column load (the
    // controller's loadDone pulse), so every shadow is stable first.
    n.connectRegEnable(active, ctrl.loadDone);
    const hwir::NodeId activeVld = n.reg(1, hwir::DataKind::Bits, 0,
                                         base + "/active_vld");
    n.connectRegInput(activeVld, shadowVld);
    n.connectRegEnable(activeVld, ctrl.loadDone);

    bundle.operand[pe] = active;
    bundle.valid[pe] = n.logicalAnd(activeVld, ctrl.inCompute, base + "/vld");
  }
  return bundle;
}

InputBundle buildMulticastInput(hwir::Netlist& n, const PeGrid& grid,
                                const std::string& tensor, int width,
                                hwir::DataKind kind,
                                const linalg::IntVector& direction) {
  TL_CHECK(direction.size() == 3 && direction[2] == 0,
           "multicast input needs a (dp1,dp2,0) direction");
  InputBundle bundle;
  bundle.dataflowClass = stt::DataflowClass::Multicast;
  bundle.direction = direction;

  for (const auto& [id, pes] : linesAlong(grid, direction[0], direction[1])) {
    const hwir::NodeId port =
        n.input(tensor + "_bus_" + std::to_string(id), width, kind);
    const hwir::NodeId vport = n.input(tensor + "_busvld_" + std::to_string(id), 1);
    bundle.lineDataPorts[id] = port;
    bundle.lineValidPorts[id] = vport;
    for (const PeCoord pe : pes) {
      bundle.operand[pe] = port;  // module (e): direct wire from the bus
      bundle.valid[pe] = vport;
    }
  }
  return bundle;
}

InputBundle buildBroadcastInput(hwir::Netlist& n, const PeGrid& grid,
                                const std::string& tensor, int width,
                                hwir::DataKind kind) {
  InputBundle bundle;
  bundle.dataflowClass = stt::DataflowClass::Broadcast2D;
  const hwir::NodeId port = n.input(tensor + "_bus_0", width, kind);
  const hwir::NodeId vport = n.input(tensor + "_busvld_0", 1);
  bundle.lineDataPorts[0] = port;
  bundle.lineValidPorts[0] = vport;
  for (const PeCoord pe : grid.all()) {
    bundle.operand[pe] = port;
    bundle.valid[pe] = vport;
  }
  return bundle;
}

InputBundle buildSystolicMulticastInput(hwir::Netlist& n, const PeGrid& grid,
                                        const std::string& tensor, int width,
                                        hwir::DataKind kind,
                                        const linalg::IntVector& step,
                                        const linalg::IntVector& busDir) {
  TL_CHECK(step.size() == 3 && step[2] > 0,
           "systolic+multicast needs a (dp1,dp2,dt>0) register step");
  TL_CHECK(busDir.size() == 3 && busDir[2] == 0 &&
               (busDir[0] != 0 || busDir[1] != 0),
           "systolic+multicast needs a spatial bus direction");
  InputBundle bundle;
  bundle.dataflowClass = stt::DataflowClass::SystolicMulticast;
  bundle.direction = step;
  bundle.busDirection = busDir;

  // One bus per line along busDir.
  for (const auto& [id, pes] : linesAlong(grid, busDir[0], busDir[1])) {
    (void)pes;
    bundle.lineDataPorts[id] =
        n.input(tensor + "_bus_" + std::to_string(id), width, kind);
    bundle.lineValidPorts[id] =
        n.input(tensor + "_busvld_" + std::to_string(id), 1);
  }

  // Register chains along the step direction; every PE can (re)load from
  // its line's bus — the broadcast half of the composed dataflow.
  const hwir::NodeId zero = n.constant(0, width, kind);
  const hwir::NodeId validZero = n.constant(0, 1);
  const std::int64_t dt = step[2];
  for (const auto& [key, pes] : chainsAlong(grid, step[0], step[1])) {
    (void)key;
    hwir::NodeId prevData = hwir::kInvalidNode;
    hwir::NodeId prevValid = hwir::kInvalidNode;
    for (const PeCoord pe : pes) {
      const std::string base = peName(tensor, pe);
      hwir::NodeId chainData = zero;
      hwir::NodeId chainValid = validZero;
      if (prevData != hwir::kInvalidNode) {
        chainData = n.pipeline(prevData, static_cast<int>(dt), base + "/chain");
        chainValid =
            n.pipeline(prevValid, static_cast<int>(dt), base + "/chain_v");
      }
      const std::int64_t line = lineId(pe, busDir[0], busDir[1]);
      const hwir::NodeId busData = bundle.lineDataPorts.at(line);
      const hwir::NodeId busValid = bundle.lineValidPorts.at(line);
      const hwir::NodeId data =
          n.mux(busValid, busData, chainData, base + "/bus_mux");
      const hwir::NodeId valid =
          n.logicalOr(busValid, chainValid, base + "/bus_vld");
      bundle.operand[pe] = data;
      bundle.valid[pe] = valid;
      prevData = data;
      prevValid = valid;
    }
  }
  return bundle;
}

InputBundle buildUnicastInput(hwir::Netlist& n, const std::string& tensor,
                              int width, hwir::DataKind kind,
                              const std::vector<PeCoord>& activePes) {
  InputBundle bundle;
  bundle.dataflowClass = stt::DataflowClass::Unicast;
  for (const PeCoord pe : activePes) {
    const std::string suffix =
        std::to_string(pe.p1) + "_" + std::to_string(pe.p2);
    const hwir::NodeId port = n.input(tensor + "_in_" + suffix, width, kind);
    const hwir::NodeId vport = n.input(tensor + "_vld_" + suffix, 1);
    bundle.peDataPorts[pe] = port;
    bundle.peValidPorts[pe] = vport;
    bundle.operand[pe] = port;
    bundle.valid[pe] = vport;
  }
  return bundle;
}

}  // namespace tensorlib::arch
