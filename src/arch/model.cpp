#include "arch/model.hpp"

#include <algorithm>
#include <limits>

#include "hwir/rtlsim.hpp"
#include "support/error.hpp"

namespace tensorlib::arch {

namespace {

using hwir::NodeId;
using hwir::RtlSimulator;

std::uint64_t encode(double v, const HardwareConfig& cfg) {
  if (cfg.dataKind == hwir::DataKind::Float32)
    return RtlSimulator::encodeFloat(static_cast<float>(v));
  return RtlSimulator::encodeInt(static_cast<std::int64_t>(v), cfg.dataWidth);
}

double decode(std::uint64_t bits, const HardwareConfig& cfg) {
  if (cfg.dataKind == hwir::DataKind::Float32)
    return static_cast<double>(RtlSimulator::decodeFloat(bits));
  return static_cast<double>(RtlSimulator::decodeInt(bits, cfg.dataWidth));
}

std::int64_t elementCount(const linalg::IntVector& shape) {
  std::int64_t n = 1;
  for (const std::int64_t e : shape) n *= e;
  return n;
}

std::int64_t flatIndex(const linalg::IntVector& shape,
                       const linalg::IntVector& index) {
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < shape.size(); ++d)
    flat = flat * shape[d] + index[d];
  return flat;
}

linalg::IntVector unflatten(const linalg::IntVector& shape, std::int64_t flat) {
  linalg::IntVector index(shape.size(), 0);
  for (std::size_t d = shape.size(); d-- > 0;) {
    index[d] = flat % shape[d];
    flat /= shape[d];
  }
  return index;
}

/// Structural producer/consumer linkage of one inter-layer buffer, derived
/// purely from the two layers' symbolic stage schedules: which elements
/// each producer stage first/last writes, which producer stage each
/// consumer stage needs completed, and when storage can be released. The
/// planner and the engine share these tables, which is what makes the
/// planner's peak occupancy a sufficient capacity by construction.
struct LinkTables {
  std::vector<std::int64_t> allocAtStart;        ///< [producer stage]
  std::vector<std::int64_t> freeAtProducerDone;  ///< [producer stage]
  std::vector<std::int64_t> freeAtConsumerDone;  ///< [consumer stage]
  /// Highest producer stage whose outputs the consumer stage reads
  /// (through the chain rule); -1 when the stage reads only halo/zeros.
  std::vector<std::int64_t> needStage;           ///< [consumer stage]
  std::int64_t producerElements = 0;
};

LinkTables buildLinkTables(const ModelLayer& producer,
                           const ModelLayer& consumer) {
  const ChainRule& rule = *consumer.chain;
  const std::int64_t total = elementCount(rule.producerShape);

  LinkTables t;
  t.allocAtStart.assign(producer.stages.size(), 0);
  t.freeAtProducerDone.assign(producer.stages.size(), 0);
  t.freeAtConsumerDone.assign(consumer.stages.size(), 0);
  t.needStage.assign(consumer.stages.size(), -1);

  std::vector<std::int64_t> firstWriter(total, -1), lastWriter(total, -1),
      lastReader(total, -1);
  for (std::size_t s = 0; s < producer.stages.size(); ++s)
    for (const auto& sample : producer.stages[s].samples) {
      const std::int64_t flat = flatIndex(rule.producerShape, sample.element);
      if (firstWriter[flat] < 0) {
        firstWriter[flat] = static_cast<std::int64_t>(s);
        ++t.allocAtStart[s];
      }
      lastWriter[flat] = static_cast<std::int64_t>(s);
    }

  for (std::size_t s = 0; s < consumer.stages.size(); ++s)
    for (const auto& poke : consumer.stages[s].pokes) {
      if (poke.isValid) continue;
      const auto& role = consumer.acc.spec.tensors()[poke.tensorIndex];
      if (role.tensor != consumer.chainedTensor) continue;
      const auto src = chainSource(rule, poke.element);
      if (!src) continue;  // zero halo / flat tail
      const std::int64_t flat = flatIndex(rule.producerShape, *src);
      if (lastWriter[flat] < 0) continue;  // never written: final zero
      t.needStage[s] = std::max(t.needStage[s], lastWriter[flat]);
      lastReader[flat] = static_cast<std::int64_t>(s);
    }

  for (std::int64_t flat = 0; flat < total; ++flat) {
    if (firstWriter[flat] < 0) continue;
    ++t.producerElements;
    if (lastReader[flat] >= 0)
      ++t.freeAtConsumerDone[lastReader[flat]];
    else
      ++t.freeAtProducerDone[lastWriter[flat]];
  }
  return t;
}

std::vector<LinkTables> buildAllLinks(const ModelAccelerator& model) {
  std::vector<LinkTables> links;
  for (std::size_t l = 0; l + 1 < model.layers.size(); ++l)
    links.push_back(buildLinkTables(model.layers[l], model.layers[l + 1]));
  return links;
}

/// The shared stage scheduler (see planModelSchedule). Deterministic and
/// value-independent: decisions depend only on the structural link tables,
/// so an abstract (planner) run and the RTL engine produce the same
/// schedule for the same capacities.
ModelSchedulePlan schedule(const ModelAccelerator& model,
                           const std::vector<LinkTables>& links,
                           const std::vector<std::int64_t>& capacities) {
  const std::size_t L = model.layers.size();
  const bool bounded = !capacities.empty();
  TL_CHECK(!bounded || capacities.size() + 1 == L || L == 1,
           "planModelSchedule: capacity list does not match buffer count");

  struct LayerState {
    std::size_t nextStage = 0;
    std::int64_t slotFreeAt = 0;  ///< this layer's controller slot boundary
    std::size_t donePrefix = 0;   ///< completed stages 0..donePrefix-1
    std::vector<bool> done;
    /// (completion cycle, stage): completion = last scheduled cycle + 1.
    std::vector<std::pair<std::int64_t, std::size_t>> pending;
  };
  std::vector<LayerState> state(L);
  ModelSchedulePlan plan;
  plan.stageStart.resize(L);
  plan.peaks.assign(L > 0 ? L - 1 : 0, 0);
  std::vector<std::int64_t> occ(L > 0 ? L - 1 : 0, 0);
  for (std::size_t l = 0; l < L; ++l) {
    state[l].done.assign(model.layers[l].stages.size(), false);
    plan.stageStart[l].assign(model.layers[l].stages.size(), -1);
  }

  const auto depsOk = [&](std::size_t l) {
    if (l == 0) return true;
    const std::int64_t need = links[l - 1].needStage[state[l].nextStage];
    return need < 0 ||
           state[l - 1].donePrefix > static_cast<std::size_t>(need);
  };
  const auto capOk = [&](std::size_t l) {
    if (!bounded || l + 1 >= L) return true;
    return occ[l] + links[l].allocAtStart[state[l].nextStage] <= capacities[l];
  };

  std::int64_t now = 0;
  std::int64_t maxCycle = 0;
  while (true) {
    // Completions due at `now`: mark stages done, release buffer storage.
    for (std::size_t l = 0; l < L; ++l) {
      auto& st = state[l];
      for (std::size_t i = 0; i < st.pending.size();) {
        if (st.pending[i].first > now) {
          ++i;
          continue;
        }
        const std::size_t stage = st.pending[i].second;
        st.done[stage] = true;
        if (l > 0) occ[l - 1] -= links[l - 1].freeAtConsumerDone[stage];
        if (l + 1 < L) occ[l] -= links[l].freeAtProducerDone[stage];
        st.pending.erase(st.pending.begin() + static_cast<std::ptrdiff_t>(i));
      }
      while (st.donePrefix < st.done.size() && st.done[st.donePrefix])
        ++st.donePrefix;
    }

    // Starts at `now`, in layer order (deterministic): a stage starts only
    // on its own controller's slot boundary, with its chained dependencies
    // complete and room in the downstream buffer. Otherwise the slot is a
    // bubble: the free-running controller cycles through an inert stage.
    for (std::size_t l = 0; l < L; ++l) {
      auto& st = state[l];
      const std::int64_t period = model.layers[l].acc.stagePeriod;
      if (st.nextStage >= st.done.size()) continue;
      if (now < st.slotFreeAt || now % period != 0) continue;
      if (!depsOk(l) || !capOk(l)) continue;
      const std::size_t stage = st.nextStage;
      plan.stageStart[l][stage] = now;
      if (l + 1 < L) {
        occ[l] += links[l].allocAtStart[stage];
        plan.peaks[l] = std::max(plan.peaks[l], occ[l]);
      }
      const std::int64_t lastCycle = model.layers[l].stages[stage].lastCycle;
      st.pending.push_back({now + lastCycle + 1, stage});
      maxCycle = std::max(maxCycle, now + lastCycle);
      st.slotFreeAt = now + period;
      ++st.nextStage;
    }

    bool allDone = true;
    for (const auto& st : state)
      if (st.nextStage < st.done.size() || !st.pending.empty()) allDone = false;
    if (allDone) break;

    // Next event: the earliest pending completion, or the next slot
    // boundary of a layer that is startable apart from alignment.
    std::int64_t next = std::numeric_limits<std::int64_t>::max();
    for (const auto& st : state)
      for (const auto& [at, stage] : st.pending) {
        (void)stage;
        next = std::min(next, at);
      }
    for (std::size_t l = 0; l < L; ++l) {
      const auto& st = state[l];
      if (st.nextStage >= st.done.size()) continue;
      if (!depsOk(l) || !capOk(l)) continue;
      const std::int64_t period = model.layers[l].acc.stagePeriod;
      const std::int64_t earliest = std::max(st.slotFreeAt, now + 1);
      const std::int64_t boundary = (earliest + period - 1) / period * period;
      next = std::min(next, boundary);
    }
    if (next == std::numeric_limits<std::int64_t>::max()) {
      // No pending completion and no startable layer: nothing will ever
      // change state again. Name the first blocked layer and why.
      for (std::size_t l = 0; l < L; ++l) {
        const auto& st = state[l];
        if (st.nextStage >= st.done.size()) continue;
        if (!capOk(l))
          fail("model execution deadlocked: inter-layer buffer " +
               std::to_string(l) + " (capacity " +
               std::to_string(capacities[l]) + ", occupancy " +
               std::to_string(occ[l]) + ") cannot admit stage " +
               std::to_string(st.nextStage) + " of layer '" +
               model.layers[l].name + "' (allocates " +
               std::to_string(links[l].allocAtStart[st.nextStage]) +
               " elements)");
        fail("model execution deadlocked: layer '" + model.layers[l].name +
             "' stage " + std::to_string(st.nextStage) +
             " waits on producer '" + model.layers[l - 1].name +
             "' which cannot progress");
      }
      fail("model execution deadlocked");
    }
    now = next;
  }

  plan.totalCycles = maxCycle + 1;
  for (std::size_t l = 0; l < L; ++l) {
    const auto& starts = plan.stageStart[l];
    if (starts.empty()) continue;
    const std::int64_t period = model.layers[l].acc.stagePeriod;
    plan.stallSlots += starts.back() / period + 1 -
                       static_cast<std::int64_t>(starts.size());
  }
  return plan;
}

std::vector<std::int64_t> committedCapacities(const ModelAccelerator& model) {
  std::vector<std::int64_t> caps;
  for (const auto& plan : model.buffers) caps.push_back(plan.capacity);
  return caps;
}

/// Rebuilds the consumer's chained input tensor from a producer output
/// through the chain rule + requantization (the reference-side half of the
/// stitching contract).
tensor::DenseTensor mapChainedInput(const ChainRule& rule,
                                    const tensor::DenseTensor& producerOut) {
  tensor::DenseTensor mapped(rule.consumerShape);
  const std::int64_t total = elementCount(rule.consumerShape);
  for (std::int64_t flat = 0; flat < total; ++flat) {
    const linalg::IntVector element = unflatten(rule.consumerShape, flat);
    const auto src = chainSource(rule, element);
    mapped.at(element) = src ? requantize(producerOut.at(*src)) : 0.0;
  }
  return mapped;
}

}  // namespace

const char* chainKindName(ChainKind kind) {
  switch (kind) {
    case ChainKind::Exact: return "exact";
    case ChainKind::Embed: return "embed";
    case ChainKind::FlatExact: return "flat-exact";
    case ChainKind::FlatEmbed: return "flat-embed";
  }
  return "?";
}

std::optional<ChainRule> chainRule(const linalg::IntVector& producer,
                                   const linalg::IntVector& consumer) {
  if (producer.size() == consumer.size()) {
    bool ge = true, eq = true;
    for (std::size_t d = 0; d < producer.size(); ++d) {
      if (consumer[d] < producer[d]) ge = false;
      if (consumer[d] != producer[d]) eq = false;
    }
    if (ge)
      return ChainRule{eq ? ChainKind::Exact : ChainKind::Embed, producer,
                       consumer};
  }
  const std::int64_t pCount = elementCount(producer);
  const std::int64_t cCount = elementCount(consumer);
  if (cCount >= pCount)
    return ChainRule{cCount == pCount ? ChainKind::FlatExact
                                      : ChainKind::FlatEmbed,
                     producer, consumer};
  return std::nullopt;
}

std::optional<linalg::IntVector> chainSource(const ChainRule& rule,
                                             const linalg::IntVector& element) {
  switch (rule.kind) {
    case ChainKind::Exact:
      return element;
    case ChainKind::Embed:
      for (std::size_t d = 0; d < element.size(); ++d)
        if (element[d] >= rule.producerShape[d]) return std::nullopt;
      return element;
    case ChainKind::FlatExact:
    case ChainKind::FlatEmbed: {
      const std::int64_t flat = flatIndex(rule.consumerShape, element);
      if (flat >= elementCount(rule.producerShape)) return std::nullopt;
      return unflatten(rule.producerShape, flat);
    }
  }
  return std::nullopt;
}

double requantize(double v) {
  const std::int64_t iv = static_cast<std::int64_t>(v);
  std::int64_t m = (iv + 128) % 256;
  if (m < 0) m += 256;
  return static_cast<double>(m - 128);
}

ModelAccelerator buildModelAccelerator(
    const std::vector<std::pair<std::string, stt::DataflowSpec>>& layerSpecs,
    const ModelBuildOptions& options) {
  TL_CHECK(!layerSpecs.empty(), "model accelerator needs at least one layer");
  HardwareConfig hw = options.hw;
  hw.injectEverywhere = true;  // remainder tiles need interior injection

  ModelAccelerator model(options.topName);
  for (const auto& [name, spec] : layerSpecs) {
    ModelLayer layer{name, generateAccelerator(spec, options.array, hw),
                     {},   0,
                     {},   std::nullopt};
    layer.stages = buildStageSchedules(layer.acc);
    model.layers.push_back(std::move(layer));
  }

  // Derive the chain rules before stitching so a non-stitchable model
  // fails fast with shapes in the message.
  for (std::size_t l = 1; l < model.layers.size(); ++l) {
    const auto& prevAlgebra = model.layers[l - 1].acc.spec.algebra();
    const auto& algebra = model.layers[l].acc.spec.algebra();
    TL_CHECK(!algebra.inputs().empty(),
             "layer '" + model.layers[l].name + "' has no input to chain");
    const linalg::IntVector producerShape =
        prevAlgebra.tensorShape(prevAlgebra.output());
    const linalg::IntVector consumerShape =
        algebra.tensorShape(algebra.inputs()[0]);
    const auto rule = chainRule(producerShape, consumerShape);
    TL_CHECK(rule.has_value(),
             "layers '" + model.layers[l - 1].name + "' -> '" +
                 model.layers[l].name +
                 "' are not stitchable: producer output does not embed in "
                 "the consumer's first input");
    model.layers[l].chainedTensor = algebra.inputs()[0].tensor;
    model.layers[l].chain = rule;
  }

  for (auto& layer : model.layers)
    layer.nodeOffset = model.top.instantiate(layer.acc.netlist, layer.name);
  model.top.validate();

  // Size the inter-layer buffers from the unbounded planner run: the
  // bounded engine replays the identical schedule, so the recorded peak is
  // sufficient by construction.
  const auto links = buildAllLinks(model);
  const auto plan = schedule(model, links, {});
  for (std::size_t b = 0; b + 1 < model.layers.size(); ++b) {
    BufferPlan buffer;
    buffer.peak = plan.peaks[b];
    buffer.producerElements = links[b].producerElements;
    buffer.capacity = b < options.bufferDepthOverride.size() &&
                              options.bufferDepthOverride[b] > 0
                          ? options.bufferDepthOverride[b]
                          : buffer.peak;
    model.buffers.push_back(buffer);
  }
  return model;
}

ModelSchedulePlan planModelSchedule(
    const ModelAccelerator& model, const std::vector<std::int64_t>& capacities) {
  return schedule(model, buildAllLinks(model), capacities);
}

ModelRunResult runModelAccelerator(const ModelAccelerator& model,
                                   const std::vector<tensor::TensorEnv>& envs,
                                   const ModelRunOptions& options) {
  const std::size_t L = model.layers.size();
  TL_CHECK(envs.size() == L, "runModelAccelerator: one env per layer");
  const HardwareConfig& cfg = model.layers[0].acc.config;

  const auto links = buildAllLinks(model);
  const auto plan = schedule(model, links, committedCapacities(model));

  ModelRunResult result;
  result.stallSlots = plan.stallSlots;
  std::vector<linalg::IntVector> outShapes;
  for (const auto& layer : model.layers) {
    const auto& algebra = layer.acc.spec.algebra();
    outShapes.push_back(algebra.tensorShape(algebra.output()));
    result.outputs.emplace_back(outShapes.back());
    result.lastSampleCycle.emplace_back(outShapes.back());
  }

  // Materialize the per-cycle event lists. Chained data pokes carry the
  // flat producer-output index to read at poke time (the dependency
  // schedule guarantees the value is final); everything else resolves to
  // bits now.
  struct PokeEv {
    NodeId port;
    std::uint64_t bits;
    std::int32_t srcLayer;  ///< < 0: use bits; else producer layer index
    std::int64_t srcFlat;   ///< flat producer-output index; < 0: zero halo
  };
  struct SampleEv {
    std::uint32_t layer;
    NodeId port;
    std::int64_t flat;  ///< into the layer's output tensor
  };
  std::vector<std::vector<PokeEv>> pokesAt(
      static_cast<std::size_t>(plan.totalCycles));
  std::vector<std::vector<SampleEv>> samplesAt(
      static_cast<std::size_t>(plan.totalCycles));

  for (std::size_t l = 0; l < L; ++l) {
    const ModelLayer& layer = model.layers[l];
    const auto& tensors = layer.acc.spec.tensors();
    for (std::size_t s = 0; s < layer.stages.size(); ++s) {
      const std::int64_t base = plan.stageStart[l][s];
      for (const auto& poke : layer.stages[s].pokes) {
        PokeEv ev{layer.nodeOffset + poke.port, 1, -1, -1};
        if (!poke.isValid) {
          const auto& role = tensors[poke.tensorIndex];
          if (l > 0 && role.tensor == layer.chainedTensor) {
            const auto src = chainSource(*layer.chain, poke.element);
            ev.srcLayer = static_cast<std::int32_t>(l - 1);
            ev.srcFlat =
                src ? flatIndex(layer.chain->producerShape, *src) : -1;
          } else {
            ev.bits = encode(envs[l].at(role.tensor).at(poke.element), cfg);
          }
        }
        pokesAt[static_cast<std::size_t>(base + poke.cycle)].push_back(ev);
      }
      for (const auto& sample : layer.stages[s].samples)
        samplesAt[static_cast<std::size_t>(base + sample.cycle)].push_back(
            {static_cast<std::uint32_t>(l), layer.nodeOffset + sample.port,
             flatIndex(outShapes[l], sample.element)});
    }
  }

  RtlSimulator sim(model.top, options.engine);
  if (options.corruptTapeMasks) sim.corruptTapeMasksForTest();
  for (std::int64_t cycle = 0; cycle < plan.totalCycles; ++cycle) {
    sim.clearInputs();
    for (const auto& ev : pokesAt[static_cast<std::size_t>(cycle)]) {
      std::uint64_t bits = ev.bits;
      if (ev.srcLayer >= 0) {
        const double v =
            ev.srcFlat >= 0
                ? requantize(result.outputs[static_cast<std::size_t>(
                                                ev.srcLayer)]
                                 .raw()[static_cast<std::size_t>(ev.srcFlat)])
                : 0.0;
        bits = encode(v, cfg);
      }
      sim.poke(ev.port, bits);
    }
    sim.evaluate();
    for (const auto& ev : samplesAt[static_cast<std::size_t>(cycle)]) {
      result.outputs[ev.layer].raw()[static_cast<std::size_t>(ev.flat)] +=
          decode(sim.peek(ev.port), cfg);
      result.lastSampleCycle[ev.layer]
          .raw()[static_cast<std::size_t>(ev.flat)] =
          static_cast<double>(cycle);
    }
    sim.step();
  }
  result.cyclesRun = plan.totalCycles;
  return result;
}

std::vector<tensor::DenseTensor> composedReference(
    const ModelAccelerator& model, const std::vector<tensor::TensorEnv>& envs) {
  TL_CHECK(envs.size() == model.layers.size(),
           "composedReference: one env per layer");
  std::vector<tensor::DenseTensor> golden;
  for (std::size_t l = 0; l < model.layers.size(); ++l) {
    const ModelLayer& layer = model.layers[l];
    tensor::TensorEnv env = envs[l];
    if (l > 0 && layer.chain)
      env[layer.chainedTensor] = mapChainedInput(*layer.chain, golden[l - 1]);
    golden.push_back(
        tensor::referenceExecute(layer.acc.spec.algebra(), env));
  }
  return golden;
}

}  // namespace tensorlib::arch
