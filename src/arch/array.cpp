#include "arch/array.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace tensorlib::arch {

std::vector<PeCoord> PeGrid::all() const {
  std::vector<PeCoord> out;
  out.reserve(static_cast<std::size_t>(count()));
  for (std::int64_t i = 0; i < p1Span; ++i)
    for (std::int64_t j = 0; j < p2Span; ++j) out.push_back({i, j});
  return out;
}

std::int64_t lineId(PeCoord pe, std::int64_t dp1, std::int64_t dp2) {
  // The 2-D cross product p x d is constant along the line p + k*d.
  return pe.p1 * dp2 - pe.p2 * dp1;
}

std::map<std::int64_t, std::vector<PeCoord>> linesAlong(const PeGrid& grid,
                                                        std::int64_t dp1,
                                                        std::int64_t dp2) {
  TL_CHECK(dp1 != 0 || dp2 != 0, "linesAlong: zero direction");
  std::map<std::int64_t, std::vector<PeCoord>> lines;
  for (const PeCoord pe : grid.all()) lines[lineId(pe, dp1, dp2)].push_back(pe);
  for (auto& [id, pes] : lines) {
    std::sort(pes.begin(), pes.end(), [&](PeCoord a, PeCoord b) {
      // ascending along the direction = ascending dot product with (dp1,dp2)
      return a.p1 * dp1 + a.p2 * dp2 < b.p1 * dp1 + b.p2 * dp2;
    });
  }
  return lines;
}

std::map<std::pair<std::int64_t, std::int64_t>, std::vector<PeCoord>>
chainsAlong(const PeGrid& grid, std::int64_t dp1, std::int64_t dp2) {
  TL_CHECK(dp1 != 0 || dp2 != 0, "chainsAlong: zero direction");
  // Two PEs share a chain iff their difference is an integer multiple of
  // (dp1,dp2): same geometric line AND same residue along the direction.
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<PeCoord>> chains;
  for (const PeCoord pe : grid.all())
    chains[{lineId(pe, dp1, dp2), chainResidue(pe, dp1, dp2)}].push_back(pe);
  for (auto& [key, pes] : chains) {
    (void)key;
    std::sort(pes.begin(), pes.end(), [&](PeCoord a, PeCoord b) {
      return a.p1 * dp1 + a.p2 * dp2 < b.p1 * dp1 + b.p2 * dp2;
    });
  }
  return chains;
}

std::int64_t chainResidue(PeCoord pe, std::int64_t dp1, std::int64_t dp2) {
  const std::int64_t a1 = std::abs(dp1), a2 = std::abs(dp2);
  // PE coordinates are non-negative, so plain remainders are safe.
  return a1 != 0 ? pe.p1 % a1 : pe.p2 % a2;
}

std::int64_t chainId(PeCoord pe, std::int64_t dp1, std::int64_t dp2) {
  const std::int64_t residue = chainResidue(pe, dp1, dp2);
  TL_CHECK(residue < 64, "chainId: step stride too large to encode");
  return lineId(pe, dp1, dp2) * 64 + residue;
}

std::int64_t stepsBetween(PeCoord from, PeCoord to, std::int64_t dp1,
                          std::int64_t dp2) {
  const std::int64_t d1 = to.p1 - from.p1;
  const std::int64_t d2 = to.p2 - from.p2;
  std::int64_t k = 0;
  if (dp1 != 0) {
    TL_CHECK(d1 % dp1 == 0, "stepsBetween: not on the line");
    k = d1 / dp1;
  } else {
    TL_CHECK(d1 == 0, "stepsBetween: not on the line");
  }
  if (dp2 != 0) {
    TL_CHECK(d2 % dp2 == 0 && (dp1 == 0 || d2 / dp2 == k),
             "stepsBetween: not on the line");
    k = d2 / dp2;
  } else {
    TL_CHECK(d2 == 0, "stepsBetween: not on the line");
  }
  return k;
}

}  // namespace tensorlib::arch
