// PE-array geometry utilities: grid indexing, reuse-direction lines (the
// multicast groups / systolic chains of Fig. 3(2) and Fig. 4), and chain
// traversal orders used when wiring neighbor links.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "linalg/matrix.hpp"

namespace tensorlib::arch {

/// A PE coordinate within the generated array.
struct PeCoord {
  std::int64_t p1 = 0, p2 = 0;
  bool operator<(const PeCoord& o) const {
    return p1 != o.p1 ? p1 < o.p1 : p2 < o.p2;
  }
  bool operator==(const PeCoord& o) const { return p1 == o.p1 && p2 == o.p2; }
};

/// Rectangular PE grid of p1Span x p2Span.
struct PeGrid {
  std::int64_t p1Span = 0, p2Span = 0;

  bool contains(PeCoord c) const {
    return c.p1 >= 0 && c.p1 < p1Span && c.p2 >= 0 && c.p2 < p2Span;
  }
  std::int64_t count() const { return p1Span * p2Span; }
  std::vector<PeCoord> all() const;
};

/// Identifier of the line through a PE along a spatial direction (dp1, dp2):
/// invariant under steps of the direction, distinct across parallel lines.
std::int64_t lineId(PeCoord pe, std::int64_t dp1, std::int64_t dp2);

/// Groups the grid's PEs into lines along (dp1, dp2), each sorted in chain
/// order (ascending along the direction). Lines are geometric: a stride-2
/// direction still groups every PE on the line (used for multicast buses,
/// which drive the whole line).
std::map<std::int64_t, std::vector<PeCoord>> linesAlong(const PeGrid& grid,
                                                        std::int64_t dp1,
                                                        std::int64_t dp2);

/// Groups the grid's PEs into exact reuse chains p0 + k*(dp1,dp2): unlike
/// linesAlong, a stride-2 direction yields two interleaved chains per
/// geometric line. Used for systolic register chains, where each hop must
/// land exactly one reuse step away. Keys are opaque but stable.
std::map<std::pair<std::int64_t, std::int64_t>, std::vector<PeCoord>>
chainsAlong(const PeGrid& grid, std::int64_t dp1, std::int64_t dp2);

/// Residue class of a PE along a strided step (dp1, dp2): which of the
/// |dp| interleaved chains of its geometric line it belongs to. Shared by
/// chainsAlong, chainId and the testbench's chain lookups so the coset
/// keying cannot drift apart.
std::int64_t chainResidue(PeCoord pe, std::int64_t dp1, std::int64_t dp2);

/// Unique id of the exact reuse chain through a PE along (dp1, dp2): the
/// geometric line id combined with the residue class along the step. For a
/// stride-2 step, the two interleaved chains of one line get distinct ids —
/// keying ports by lineId alone would alias them (a conformance-oracle
/// finding: the collided port silently dropped one chain's outputs).
std::int64_t chainId(PeCoord pe, std::int64_t dp1, std::int64_t dp2);

/// Steps from `from` to `to` along (dp1,dp2); throws if not on the same line.
std::int64_t stepsBetween(PeCoord from, PeCoord to, std::int64_t dp1,
                          std::int64_t dp2);

}  // namespace tensorlib::arch
