// Model-level hardware generation: stitch per-layer accelerators into ONE
// emitted top with inter-layer buffers and execute the whole model through
// the compiled RTL tape.
//
// NetworkExplorer picks a dataflow per layer; this module turns that
// assignment into executable hardware. Every layer's accelerator netlist is
// instantiated into a single merged netlist (hwir::Netlist::instantiate),
// so one RtlSimulator — one compiled evaluation tape — clocks all layers
// concurrently. Between adjacent layers sits a double-buffered SRAM queue
// model: the producer's drained output elements land in the buffer, the
// consumer's memory schedule reads them back, and a full buffer exerts
// back-pressure by stalling the producer's controller for whole stage slots
// (controllers free-run with period stagePeriod, so stalls are quantized to
// stage boundaries — a bubble stage injects nothing and samples nothing).
//
// The stitching contract (docs/ARCHITECTURE.md "Model stitching") is:
//   * the consumer's chained input is its algebra's FIRST input tensor
//     (the activation, by workload convention);
//   * shapes connect by index-embedding (same rank, every consumer extent
//     >= the producer's; out-of-range reads are zero halo) or by row-major
//     flat embedding (consumer element count >= producer's; the tail is
//     zero) — chainRule() below;
//   * values crossing a buffer are requantized to signed 8 bits (exact
//     two's-complement wrap), like real accelerators requantize
//     activations between layers; this also keeps deep compositions inside
//     the datapath width. The composed dense reference applies the same
//     requantization, so model execution is element-exact, not approximate.
//
// Buffer depths come from an abstract run of the same stage scheduler the
// engine uses (planModelSchedule with unbounded capacities): the recorded
// peak occupancy is sufficient by construction — the bounded engine
// replays the identical schedule — and minimal-ish (tests show depth-1
// deadlocks on a constructed producer/consumer pair).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/testbench.hpp"

namespace tensorlib::arch {

/// How a consumer layer's chained input connects to its producer's output.
enum class ChainKind {
  Exact,      ///< identical shapes
  Embed,      ///< same rank, consumer extents >= producer's (zero halo)
  FlatExact,  ///< equal element counts, row-major reinterpretation
  FlatEmbed,  ///< consumer count > producer's, row-major prefix + zero tail
};

const char* chainKindName(ChainKind kind);

struct ChainRule {
  ChainKind kind = ChainKind::Exact;
  linalg::IntVector producerShape;
  linalg::IntVector consumerShape;
};

/// The stitching contract: how a producer output of shape `producer` feeds
/// a consumer input of shape `consumer`. nullopt when the pair is not
/// stitchable (neither embedding applies).
std::optional<ChainRule> chainRule(const linalg::IntVector& producer,
                                   const linalg::IntVector& consumer);

/// Maps a consumer-input element to the producer-output element feeding
/// it; nullopt for zero-filled positions (halo / flat tail).
std::optional<linalg::IntVector> chainSource(const ChainRule& rule,
                                             const linalg::IntVector& element);

/// Inter-layer requantization: exact signed-8-bit two's-complement wrap,
/// applied to every value crossing a buffer (engine and reference alike).
double requantize(double v);

/// One layer of a stitched model accelerator.
struct ModelLayer {
  std::string name;
  GeneratedAccelerator acc;
  std::vector<StageSchedule> stages;  ///< full-workload symbolic schedule
  hwir::NodeId nodeOffset = 0;        ///< this layer's offset in the top
  std::string chainedTensor;          ///< fed from upstream; empty: layer 0
  std::optional<ChainRule> chain;     ///< engaged iff chainedTensor set
};

/// The committed size of one inter-layer buffer (in output elements).
struct BufferPlan {
  std::int64_t capacity = 0;  ///< committed depth the engine enforces
  std::int64_t peak = 0;      ///< planner peak occupancy (sufficient depth)
  std::int64_t producerElements = 0;  ///< distinct elements ever written
};

/// A whole model stitched into one netlist, ready for one RtlSimulator.
struct ModelAccelerator {
  hwir::Netlist top;
  std::vector<ModelLayer> layers;
  std::vector<BufferPlan> buffers;  ///< layers.size() - 1 entries

  explicit ModelAccelerator(std::string topName) : top(std::move(topName)) {}
};

struct ModelBuildOptions {
  stt::ArrayConfig array{4, 4, 320.0, 32.0, 2};
  /// injectEverywhere is forced on (multi-tile full runs need it).
  HardwareConfig hw{32, hwir::DataKind::Bits, true};
  std::string topName = "model_top";
  /// Per-buffer depth override (elements); entries <= 0 (or a short/empty
  /// vector) fall back to the planner's peak. Tests use this to prove
  /// depth-1 deadlocks.
  std::vector<std::int64_t> bufferDepthOverride;
};

/// Generates one accelerator per layer spec, derives the chain rules,
/// merges the netlists into one top and sizes the inter-layer buffers.
/// Throws support::Error for non-stitchable adjacent shapes or a spec the
/// netlist generator cannot realize (rank-2 outputs etc.).
ModelAccelerator buildModelAccelerator(
    const std::vector<std::pair<std::string, stt::DataflowSpec>>& layerSpecs,
    const ModelBuildOptions& options);

/// The abstract stage schedule of a stitched model: when every layer stage
/// starts, quantized to each layer's own controller period.
struct ModelSchedulePlan {
  /// Start cycle of each (layer, stage), always a multiple of that layer's
  /// stagePeriod.
  std::vector<std::vector<std::int64_t>> stageStart;
  std::vector<std::int64_t> peaks;  ///< per-buffer peak occupancy observed
  std::int64_t totalCycles = 0;     ///< cycles the stitched run occupies
  std::int64_t stallSlots = 0;      ///< bubble slots from deps/back-pressure
};

/// Runs the engine's stage scheduler abstractly (no RTL): stages start at
/// their layer's period boundaries once their chained-input dependencies
/// are complete and the downstream buffer has room. `capacities` bounds
/// each buffer (empty = unbounded, recording the sufficient peaks). Throws
/// support::Error naming the blocking buffer on deadlock.
ModelSchedulePlan planModelSchedule(const ModelAccelerator& model,
                                    const std::vector<std::int64_t>& capacities);

struct ModelRunOptions {
  hwir::SimEngine engine = hwir::SimEngine::Compiled;
  /// Fault injection: corrupt the compiled tape's width masks (no-op for
  /// Legacy) so the model oracle must localize the divergence.
  bool corruptTapeMasks = false;
};

struct ModelRunResult {
  /// Per-layer collected outputs (raw accumulated values, before any
  /// downstream requantization), network order.
  std::vector<tensor::DenseTensor> outputs;
  /// Cycle each output element was last sampled at (divergence reports).
  std::vector<tensor::DenseTensor> lastSampleCycle;
  std::int64_t cyclesRun = 0;
  std::int64_t stallSlots = 0;
};

/// Executes the stitched top cycle by cycle under ONE simulator: resolves
/// every layer's scheduled pokes (chained tensors read the inter-layer
/// buffer through the chain rule + requantization; everything else reads
/// `envs`), samples the scheduled outputs, and enforces the committed
/// buffer capacities. `envs` holds each layer's input tensors (the chained
/// entry, if present, is ignored). Throws support::Error on deadlock.
ModelRunResult runModelAccelerator(const ModelAccelerator& model,
                                   const std::vector<tensor::TensorEnv>& envs,
                                   const ModelRunOptions& options = {});

/// The composed dense reference the stitched execution must match
/// element-exactly: layer by layer, referenceExecute with the chained
/// input rebuilt from the previous golden output through the same chain
/// rule and requantization the hardware applies.
std::vector<tensor::DenseTensor> composedReference(
    const ModelAccelerator& model, const std::vector<tensor::TensorEnv>& envs);

}  // namespace tensorlib::arch
