// System controller generation (the bottom-right box of Fig. 1(a)).
//
// The controller is a wrapping stage counter plus phase comparators: each
// stage runs LOAD (stationary-input shadow buffers fill column by column),
// COMPUTE (one tile's schedule executes) and a TAIL window (stationary
// outputs drain / systolic outputs flush), then wraps so the next tile of a
// multi-tile workload starts — the "control signals for both PE and memory
// ports" of Section III. It produces per-column load enables, the
// double-buffer swap pulse, the accumulator-clear pulse at compute start,
// and the compute/drain phase gates the Fig. 3 PE modules need.
#pragma once

#include <cstdint>
#include <vector>

#include "hwir/module.hpp"

namespace tensorlib::arch {

struct ControllerSignals {
  hwir::NodeId cycleCounter = hwir::kInvalidNode;  ///< cycle within stage
  hwir::NodeId inLoad = hwir::kInvalidNode;     ///< cycle <  loadCycles
  hwir::NodeId loadDone = hwir::kInvalidNode;   ///< pulse at cycle == loadCycles-1
  hwir::NodeId inCompute = hwir::kInvalidNode;  ///< loadCycles <= cycle < computeEnd
  hwir::NodeId computeStart = hwir::kInvalidNode;  ///< pulse at cycle == loadCycles
  hwir::NodeId swap = hwir::kInvalidNode;       ///< pulse at cycle == computeEnd
  hwir::NodeId inDrain = hwir::kInvalidNode;    ///< cycle > computeEnd
  /// loadColumn[c] pulses when column c of the shadow buffers should latch.
  std::vector<hwir::NodeId> loadColumn;

  std::int64_t loadCycles = 0;
  std::int64_t computeEnd = 0;    ///< loadCycles + compute span
  std::int64_t stagePeriod = 0;   ///< counter wraps here (one tile pass)
};

/// Builds the controller into the netlist. `columns` is the p2 span used by
/// the load/drain chains. When stationary inputs exist, pass
/// loadCycles = columns + 1: columns of shadow loading plus one swap cycle
/// before compute starts (the shadow->active hand-off needs its own edge).
/// `stagePeriod` must cover load + compute + the output tail; the counter
/// wraps there so stages repeat for multi-tile workloads.
ControllerSignals buildController(hwir::Netlist& netlist, std::int64_t loadCycles,
                                  std::int64_t computeCycles, std::int64_t columns,
                                  std::int64_t stagePeriod);

}  // namespace tensorlib::arch
