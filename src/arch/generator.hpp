// Top-level hardware generation: DataflowSpec -> complete accelerator
// netlist (Section V of the paper).
//
// The generator selects the PE-internal module template for each tensor
// from its dataflow class, wires the PE array with the matching
// interconnect pattern (neighbor links, buses, reduction trees, memory
// ports), instantiates the computation cells (MAC chains), and attaches the
// controller. The result simulates cycle-accurately under hwir::RtlSimulator
// and serializes to Verilog.
//
// Supported at the netlist level: all rank-0/rank-1 dataflow classes
// (Unicast / Stationary / Systolic / Multicast), i.e. every U/T/S/M letter
// combination. Rank-2 ("B") tensors are evaluated by the behavioral
// simulator; generating their composed structures in RTL is future work the
// paper also treats as a composition of the rank-1 modules.
#pragma once

#include <memory>

#include "arch/controller.hpp"
#include "arch/pe.hpp"
#include "sim/trace.hpp"
#include "stt/mapping.hpp"

namespace tensorlib::arch {

struct HardwareConfig {
  /// Datapath width. The whole Bits datapath (including accumulators) runs
  /// at this width in two's complement, which is end-to-end exact modulo
  /// 2^width — results are bit-correct whenever the true values fit.
  int dataWidth = 16;  ///< 16 for INT16; 32 for Float32
  hwir::DataKind dataKind = hwir::DataKind::Bits;
  /// Give every PE a systolic injection port instead of only the full
  /// tile's chain heads. Required for multi-tile execution: remainder tiles
  /// have chain heads at interior PEs.
  bool injectEverywhere = false;
};

/// Output-side wiring: where results leave the array and when to sample.
struct OutputBundle {
  stt::DataflowClass dataflowClass = stt::DataflowClass::Stationary;
  linalg::IntVector direction;
  /// Stationary: one drain port per row (shift chain along p2).
  std::map<std::int64_t, hwir::NodeId> rowDrainPorts;
  /// Systolic: one port per chain line (at the line's exit PE).
  std::map<std::int64_t, hwir::NodeId> linePorts;
  /// Multicast: one reduction-tree root port per line.
  /// Unicast: one port per active PE.
  std::map<PeCoord, hwir::NodeId> pePorts;
};

/// A generated accelerator: netlist + everything the testbench needs to
/// drive it (port maps, schedule, phase boundaries).
struct GeneratedAccelerator {
  hwir::Netlist netlist;
  stt::DataflowSpec spec;
  sim::TileTrace trace;       ///< schedule of the generated tile
  linalg::IntVector tileShape;
  PeGrid grid;
  ControllerSignals controller;
  std::vector<InputBundle> inputs;  ///< label order (inputs only)
  OutputBundle output;
  HardwareConfig config;

  std::int64_t loadCycles = 0;     ///< LOAD phase length
  std::int64_t computeCycles = 0;  ///< COMPUTE phase length (= trace.cycles)
  std::int64_t drainCycles = 0;    ///< output tail (drain / flush) length
  std::int64_t stagePeriod = 0;    ///< cycles per stage (controller wrap)

  GeneratedAccelerator(hwir::Netlist nl, stt::DataflowSpec sp, sim::TileTrace tr,
                       linalg::IntVector shape)
      : netlist(std::move(nl)),
        spec(std::move(sp)),
        trace(std::move(tr)),
        tileShape(std::move(shape)) {}
};

/// Generates the accelerator for one tile of `spec` (tile shape from the
/// mapping onto `arrayConfig`). Throws tensorlib::Error for rank-2 tensors.
GeneratedAccelerator generateAccelerator(const stt::DataflowSpec& spec,
                                         const stt::ArrayConfig& arrayConfig,
                                         const HardwareConfig& hwConfig = {});

}  // namespace tensorlib::arch
