#include "arch/generator.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <set>

#include "support/error.hpp"

namespace tensorlib::arch {

namespace {

/// Exact reuse lattice step of a rank-1 tensor, sign-normalized so dt >= 0.
linalg::IntVector latticeStep(const stt::TensorDataflow& df) {
  TL_CHECK(df.reuseRank == 1, "latticeStep: tensor is not rank-1");
  linalg::IntVector v = df.latticeBasis.col(0);
  if (v[2] < 0 || (v[2] == 0 && (v[0] < 0 || (v[0] == 0 && v[1] < 0))))
    for (auto& x : v) x = -x;
  return v;
}

std::string sanitize(std::string s) {
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

/// Schedule-soundness gate for the valid-driven array.
///
/// A PE's MAC fires whenever ALL input valids are high during COMPUTE; the
/// interconnects keep forwarding values (and their valid bits) past the last
/// scheduled use — systolic chains hop to the array edge, stationary data
/// stays resident for the whole pass. The design is only correct if no such
/// stale coincidence fires a MAC into an output accumulator that is later
/// drained. Table-II style workloads satisfy this structurally; the fuzz
/// oracle (src/verify) readily synthesizes algebras that do not (degenerate
/// reuse lattices whose chains run in lockstep with the output's). This
/// check replays the movement semantics of the generated interconnect over
/// the tile's space-time volume and throws instead of silently emitting
/// hardware that double-counts. (The behavioral simulator executes such
/// designs exactly, so they remain explorable — just not generable.)
void checkScheduleSoundness(const stt::DataflowSpec& spec,
                            const sim::TileTrace& trace, const PeGrid& grid) {
  const std::int64_t kP1 = grid.p1Span, kP2 = grid.p2Span, kT = trace.cycles;
  if (kT <= 0) return;
  const std::size_t volume = static_cast<std::size_t>(kP1 * kP2 * kT);
  const auto index = [&](std::int64_t p1, std::int64_t p2, std::int64_t t) {
    return static_cast<std::size_t>((p1 * kP2 + p2) * kT + t);
  };
  const auto inGrid = [&](std::int64_t p1, std::int64_t p2) {
    return p1 >= 0 && p1 < kP1 && p2 >= 0 && p2 < kP2;
  };
  // Spread one delivery along a dt == 0 bus line (both directions). The
  // physical bus spans the geometric line at unit spacing — a stride-2
  // lattice direction still reaches every PE whose cross product matches —
  // so the spread always walks the primitive direction.
  const auto spreadLine = [&](std::vector<char>& set, std::int64_t p1,
                              std::int64_t p2, std::int64_t t,
                              const linalg::IntVector& dir) {
    const linalg::IntVector unit = linalg::primitive({dir[0], dir[1]});
    for (const std::int64_t sign : {+1, -1})
      for (std::int64_t k = sign;; k += sign) {
        const std::int64_t q1 = p1 + k * unit[0], q2 = p2 + k * unit[1];
        if (!inGrid(q1, q2)) break;
        set[index(q1, q2, t)] = 1;
      }
    set[index(p1, p2, t)] = 1;
  };
  // Forward closure of one delivery along a register step (dt > 0).
  const auto hopForward = [&](std::vector<char>& set, std::int64_t p1,
                              std::int64_t p2, std::int64_t t,
                              const linalg::IntVector& step) {
    for (std::int64_t k = 0;; ++k) {
      const std::int64_t q1 = p1 + k * step[0], q2 = p2 + k * step[1];
      const std::int64_t qt = t + k * step[2];
      if (!inGrid(q1, q2) || qt >= kT) break;
      set[index(q1, q2, qt)] = 1;
    }
  };

  std::vector<char> active(volume, 0);
  for (const auto& ap : trace.active) active[index(ap.p1, ap.p2, ap.t)] = 1;

  // AND of the per-input valid sets, replayed from the tile's injections.
  std::vector<char> armed(volume, 1);
  for (std::size_t i = 0; i + 1 < spec.tensors().size(); ++i) {
    const auto& role = spec.tensors()[i];
    const sim::Movement mv = sim::deriveMovement(role.dataflow);
    std::vector<char> valid(volume, 0);
    if (role.dataflow.hasStationaryComponent()) {
      // Resident for the whole pass at every PE that holds an element.
      std::vector<char> resident(static_cast<std::size_t>(kP1 * kP2), 0);
      for (const auto& ap : trace.active)
        resident[static_cast<std::size_t>(ap.p1 * kP2 + ap.p2)] = 1;
      for (std::int64_t p1 = 0; p1 < kP1; ++p1)
        for (std::int64_t p2 = 0; p2 < kP2; ++p2)
          if (resident[static_cast<std::size_t>(p1 * kP2 + p2)])
            for (std::int64_t t = 0; t < kT; ++t) valid[index(p1, p2, t)] = 1;
    } else {
      // One physical bus carries one value per cycle: two injections of
      // different elements on the same line in the same cycle cannot be
      // realized (the trace's delivery plan is lattice-exact; the hardware
      // bus is geometric). Detect the conflict instead of mis-driving it.
      std::map<std::pair<std::int64_t, std::int64_t>, const sim::Injection*>
          busLoad;
      for (const auto& inj : trace.injections) {
        if (inj.tensorIndex != i) continue;
        if (mv.bus != sim::Movement::Bus::None) {
          const linalg::IntVector unit =
              mv.bus == sim::Movement::Bus::Global
                  ? linalg::IntVector{0, 0}
                  : linalg::primitive({mv.busDir[0], mv.busDir[1]});
          const std::int64_t line =
              mv.bus == sim::Movement::Bus::Global
                  ? 0
                  : lineId({inj.p1, inj.p2}, unit[0], unit[1]);
          const auto [it, fresh] = busLoad.try_emplace({line, inj.cycle}, &inj);
          TL_CHECK(fresh || it->second->element == inj.element,
                   "netlist generation: bus conflict for " + role.tensor +
                       " in " + spec.label() +
                       ": two different elements scheduled on one bus line "
                       "in one cycle (lattice-strided reuse; use the "
                       "behavioral simulator)");
        }
        std::vector<std::array<std::int64_t, 3>> delivered;
        if (mv.bus == sim::Movement::Bus::Global) {
          for (std::int64_t p1 = 0; p1 < kP1; ++p1)
            for (std::int64_t p2 = 0; p2 < kP2; ++p2)
              delivered.push_back({p1, p2, inj.cycle});
        } else if (mv.bus == sim::Movement::Bus::Line) {
          const linalg::IntVector unit =
              linalg::primitive({mv.busDir[0], mv.busDir[1]});
          delivered.push_back({inj.p1, inj.p2, inj.cycle});
          for (const std::int64_t sign : {+1, -1})
            for (std::int64_t k = sign;; k += sign) {
              const std::int64_t q1 = inj.p1 + k * unit[0];
              const std::int64_t q2 = inj.p2 + k * unit[1];
              if (!inGrid(q1, q2)) break;
              delivered.push_back({q1, q2, inj.cycle});
            }
        } else {
          delivered.push_back({inj.p1, inj.p2, inj.cycle});
        }
        const bool hops = mv.hasStep && (mv.step[0] != 0 || mv.step[1] != 0);
        for (const auto& d : delivered) {
          valid[index(d[0], d[1], d[2])] = 1;
          if (hops) hopForward(valid, d[0], d[1], d[2], mv.step);
        }
      }
    }
    for (std::size_t s = 0; s < volume; ++s)
      armed[s] = armed[s] && valid[s];
  }

  // Slots where a drained output accumulator is exposed to a firing MAC.
  const auto& outRole = spec.outputRole();
  std::vector<char> live(volume, 0);
  switch (outRole.dataflow.dataflowClass) {
    case stt::DataflowClass::Stationary: {
      // Per-PE accumulator collects every fired MAC until the drain.
      for (const auto& ev : trace.outputs)
        for (std::int64_t t = 0; t < kT; ++t)
          live[index(ev.p1, ev.p2, t)] = 1;
      break;
    }
    case stt::DataflowClass::Systolic: {
      // The psum passing (p, t) is sampled at the chain exit: every slot on
      // an output event's space-time diagonal feeds that sample.
      const linalg::IntVector step = latticeStep(outRole.dataflow);
      for (const auto& ev : trace.outputs)
        for (const std::int64_t sign : {+1, -1})
          for (std::int64_t k = sign == 1 ? 0 : -1;; k += sign) {
            const std::int64_t q1 = ev.p1 + k * step[0];
            const std::int64_t q2 = ev.p2 + k * step[1];
            const std::int64_t t = ev.cycle + k * step[2];
            if (!inGrid(q1, q2) || t < 0 || t >= kT) break;
            live[index(q1, q2, t)] = 1;
          }
      break;
    }
    case stt::DataflowClass::Multicast: {
      // The reduction tree sums the whole line at the sampled cycle.
      for (const auto& ev : trace.outputs)
        spreadLine(live, ev.p1, ev.p2, ev.cycle, outRole.dataflow.direction);
      break;
    }
    default: {  // Unicast: the product register is sampled per event.
      for (const auto& ev : trace.outputs) live[index(ev.p1, ev.p2, ev.cycle)] = 1;
      break;
    }
  }

  for (std::size_t s = 0; s < volume; ++s) {
    if (!armed[s] || active[s] || !live[s]) continue;
    const std::int64_t p1 = static_cast<std::int64_t>(s) / (kP2 * kT);
    const std::int64_t p2 = (static_cast<std::int64_t>(s) / kT) % kP2;
    const std::int64_t t = static_cast<std::int64_t>(s) % kT;
    fail("netlist generation: unsound schedule for " + spec.label() +
         ": stale operands (all valids high) would fire an unscheduled MAC "
         "at PE (" + std::to_string(p1) + "," + std::to_string(p2) +
         ") cycle " + std::to_string(t) +
         " into a drained accumulator (use the behavioral simulator)");
  }
}

}  // namespace

GeneratedAccelerator generateAccelerator(const stt::DataflowSpec& spec,
                                         const stt::ArrayConfig& arrayConfig,
                                         const HardwareConfig& hwConfig) {
  TL_CHECK(spec.outputRole().dataflow.reuseRank <= 1,
           "netlist generation supports rank-0/1 output dataflows; output " +
               spec.outputRole().tensor + " has rank-" +
               std::to_string(spec.outputRole().dataflow.reuseRank) +
               " reuse (use the behavioral simulator)");

  const stt::TileMapping mapping = stt::computeMapping(spec, arrayConfig);
  const linalg::IntVector shape = mapping.fullTile;
  sim::TileTrace trace = sim::buildTileTrace(spec, shape);
  checkScheduleSoundness(spec, trace, PeGrid{trace.p1Span, trace.p2Span});

  GeneratedAccelerator acc(hwir::Netlist("tensorlib_" + sanitize(spec.label())),
                           spec, std::move(trace), shape);
  acc.config = hwConfig;
  acc.grid = PeGrid{acc.trace.p1Span, acc.trace.p2Span};
  hwir::Netlist& n = acc.netlist;

  const int w = hwConfig.dataKind == hwir::DataKind::Float32 ? 32
                                                             : hwConfig.dataWidth;
  const hwir::DataKind kind = hwConfig.dataKind;

  // --- Phase plan.
  bool stationaryInput = false;
  for (const auto& role : spec.tensors())
    if (!role.isOutput && (role.dataflow.dataflowClass ==
                               stt::DataflowClass::Stationary ||
                           role.dataflow.dataflowClass ==
                               stt::DataflowClass::MulticastStationary))
      stationaryInput = true;
  const bool stationaryOutput = spec.outputRole().dataflow.dataflowClass ==
                                stt::DataflowClass::Stationary;

  acc.loadCycles = stationaryInput ? acc.grid.p2Span + 1 : 0;
  acc.computeCycles = acc.trace.cycles;
  // Output tail after the last MAC: stationary drain shift, systolic flush
  // to the array edge, or a single register for tree/unicast outputs.
  const auto& outDf = spec.outputRole().dataflow;
  if (stationaryOutput) {
    acc.drainCycles = acc.grid.p2Span + 1;
  } else if (outDf.dataflowClass == stt::DataflowClass::Systolic) {
    const linalg::IntVector step = latticeStep(outDf);
    acc.drainCycles =
        (std::max(acc.grid.p1Span, acc.grid.p2Span) + 1) * step[2];
  } else {
    acc.drainCycles = 2;
  }
  acc.stagePeriod = acc.loadCycles + acc.computeCycles + acc.drainCycles;
  acc.controller = buildController(n, acc.loadCycles, acc.computeCycles,
                                   acc.grid.p2Span, acc.stagePeriod);
  const ControllerSignals& ctrl = acc.controller;

  // --- Input structures (Fig. 3(1) modules (a)/(c)/(e)).
  for (std::size_t i = 0; i + 1 < spec.tensors().size(); ++i) {
    const auto& role = spec.tensors()[i];
    const auto cls = role.dataflow.dataflowClass;
    switch (cls) {
      case stt::DataflowClass::Systolic: {
        std::set<PeCoord> heads;
        if (hwConfig.injectEverywhere) {
          for (const PeCoord pe : acc.grid.all()) heads.insert(pe);
        } else {
          for (const auto& inj : acc.trace.injections)
            if (inj.tensorIndex == i) heads.insert({inj.p1, inj.p2});
        }
        acc.inputs.push_back(buildSystolicInput(
            n, acc.grid, role.tensor, w, kind, latticeStep(role.dataflow),
            std::vector<PeCoord>(heads.begin(), heads.end())));
        break;
      }
      case stt::DataflowClass::Stationary:
      case stt::DataflowClass::MulticastStationary:
        // The multicast+stationary plane resides like plain stationary data
        // (one element per PE for the whole pass); only the loading network
        // differs, which the memory system handles.
        acc.inputs.push_back(
            buildStationaryInput(n, acc.grid, role.tensor, w, kind, ctrl));
        break;
      case stt::DataflowClass::Multicast:
        acc.inputs.push_back(buildMulticastInput(n, acc.grid, role.tensor, w,
                                                 kind,
                                                 role.dataflow.direction));
        break;
      case stt::DataflowClass::Broadcast2D:
      case stt::DataflowClass::FullReuse:
        acc.inputs.push_back(
            buildBroadcastInput(n, acc.grid, role.tensor, w, kind));
        break;
      case stt::DataflowClass::SystolicMulticast: {
        const sim::Movement mv = sim::deriveMovement(role.dataflow);
        TL_CHECK(mv.hasStep && mv.bus == sim::Movement::Bus::Line,
                 "inconsistent systolic+multicast movement");
        acc.inputs.push_back(buildSystolicMulticastInput(
            n, acc.grid, role.tensor, w, kind, mv.step, mv.busDir));
        break;
      }
      case stt::DataflowClass::Unicast: {
        std::set<PeCoord> active;
        if (hwConfig.injectEverywhere) {
          for (const PeCoord pe : acc.grid.all()) active.insert(pe);
        } else {
          for (const auto& ap : acc.trace.active) active.insert({ap.p1, ap.p2});
        }
        acc.inputs.push_back(buildUnicastInput(
            n, role.tensor, w, kind,
            std::vector<PeCoord>(active.begin(), active.end())));
        break;
      }
      default:
        fail("unsupported input dataflow class in netlist generation");
    }
  }

  // --- Computation cells: MAC per PE where every operand is wired.
  const hwir::NodeId zero = n.constant(0, w, kind);
  std::map<PeCoord, hwir::NodeId> prodGated;
  for (const PeCoord pe : acc.grid.all()) {
    bool complete = true;
    for (const auto& in : acc.inputs)
      if (!in.operand.count(pe)) complete = false;
    if (!complete || acc.inputs.empty()) continue;

    const std::string base =
        "pe_" + std::to_string(pe.p1) + "_" + std::to_string(pe.p2);
    hwir::NodeId prod = acc.inputs[0].operand.at(pe);
    hwir::NodeId valid = acc.inputs[0].valid.at(pe);
    for (std::size_t i = 1; i < acc.inputs.size(); ++i) {
      prod = n.mul(prod, acc.inputs[i].operand.at(pe),
                   base + "/mul" + std::to_string(i));
      valid = n.logicalAnd(valid, acc.inputs[i].valid.at(pe));
    }
    valid = n.logicalAnd(valid, ctrl.inCompute, base + "/mac_en");
    prodGated[pe] = n.mux(valid, prod, zero, base + "/prod");
  }

  // --- Output structure (modules (b)/(d)/(f) + Fig. 3(2) interconnect).
  const auto& outRole = spec.outputRole();
  acc.output.dataflowClass = outRole.dataflow.dataflowClass;
  switch (outRole.dataflow.dataflowClass) {
    case stt::DataflowClass::Stationary: {
      // Module (d): accumulator + drain register; drain regs form a shift
      // chain along each row toward the p2Span-1 edge.
      std::map<PeCoord, hwir::NodeId> drainRegs;
      for (std::int64_t r = 0; r < acc.grid.p1Span; ++r) {
        hwir::NodeId prev = zero;
        for (std::int64_t c = 0; c < acc.grid.p2Span; ++c) {
          const PeCoord pe{r, c};
          const std::string base =
              "pe_" + std::to_string(r) + "_" + std::to_string(c) + "/out";
          hwir::NodeId accIn = prodGated.count(pe) ? prodGated.at(pe) : zero;
          const hwir::NodeId accReg = n.reg(w, kind, 0, base + "/acc");
          // Clear at each stage's first compute cycle so tiles don't bleed
          // into each other (module (d)'s per-stage accumulate).
          n.connectRegInput(
              accReg, n.mux(ctrl.computeStart, accIn,
                            n.add(accReg, accIn, base + "/acc_add")));

          const hwir::NodeId drain = n.reg(w, kind, 0, base + "/drain");
          n.connectRegInput(drain, n.mux(ctrl.swap, accReg, prev));
          n.connectRegEnable(drain, n.logicalOr(ctrl.swap, ctrl.inDrain));
          drainRegs[pe] = drain;
          prev = drain;
        }
        acc.output.rowDrainPorts[r] = n.output(
            outRole.tensor + "_drain_" + std::to_string(r), prev);
      }
      break;
    }
    case stt::DataflowClass::Systolic: {
      const linalg::IntVector step = latticeStep(outRole.dataflow);
      acc.output.direction = step;
      const std::int64_t dt = step[2];
      TL_CHECK(dt > 0, "systolic output with zero time step");
      int chainIdx = 0;
      for (const auto& [key, pes] : chainsAlong(acc.grid, step[0], step[1])) {
        (void)key;
        hwir::NodeId psum = zero;
        for (const PeCoord pe : pes) {
          const std::string base = "pe_" + std::to_string(pe.p1) + "_" +
                                   std::to_string(pe.p2) + "/out";
          const hwir::NodeId contrib =
              prodGated.count(pe) ? prodGated.at(pe) : zero;
          const hwir::NodeId sum = n.add(psum, contrib, base + "/psum_add");
          const hwir::NodeId outReg = n.reg(w, kind, 0, base + "/psum");
          n.connectRegInput(outReg, sum);
          psum = dt > 1 ? n.pipeline(outReg, static_cast<int>(dt - 1),
                                     base + "/psum_pipe")
                        : outReg;
        }
        // Port at the chain's exit PE; keyed by the exact chain (coset-
        // aware: strided steps interleave multiple chains per line).
        const PeCoord exit = pes.back();
        acc.output.linePorts[chainId(exit, step[0], step[1])] = n.output(
            outRole.tensor + "_out_" + std::to_string(chainIdx), psum);
        ++chainIdx;
      }
      break;
    }
    case stt::DataflowClass::Multicast: {
      // Module (f) + reduction tree per reuse line (Fig. 4(d)).
      const linalg::IntVector& dir = outRole.dataflow.direction;
      acc.output.direction = dir;
      for (const auto& [id, pes] : linesAlong(acc.grid, dir[0], dir[1])) {
        std::vector<hwir::NodeId> leaves;
        for (const PeCoord pe : pes)
          if (prodGated.count(pe)) leaves.push_back(prodGated.at(pe));
        if (leaves.empty()) continue;
        const std::string base =
            outRole.tensor + "_tree_" + std::to_string(id);
        const hwir::NodeId root = n.adderTree(leaves, base);
        const hwir::NodeId rootReg = n.reg(w, kind, 0, base + "/root");
        n.connectRegInput(rootReg, root);
        acc.output.linePorts[id] =
            n.output(outRole.tensor + "_out_" + std::to_string(id), rootReg);
      }
      break;
    }
    case stt::DataflowClass::Unicast: {
      for (const auto& [pe, prod] : prodGated) {
        const std::string base = "pe_" + std::to_string(pe.p1) + "_" +
                                 std::to_string(pe.p2) + "/out";
        const hwir::NodeId outReg = n.reg(w, kind, 0, base + "/reg");
        n.connectRegInput(outReg, prod);
        acc.output.pePorts[pe] =
            n.output(outRole.tensor + "_out_" + std::to_string(pe.p1) + "_" +
                         std::to_string(pe.p2),
                     outReg);
      }
      break;
    }
    default:
      fail("unsupported output dataflow class in netlist generation");
  }

  n.validate();
  return acc;
}

}  // namespace tensorlib::arch
