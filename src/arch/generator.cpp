#include "arch/generator.hpp"

#include <algorithm>
#include <cctype>
#include <set>

#include "support/error.hpp"

namespace tensorlib::arch {

namespace {

/// Exact reuse lattice step of a rank-1 tensor, sign-normalized so dt >= 0.
linalg::IntVector latticeStep(const stt::TensorDataflow& df) {
  TL_CHECK(df.reuseRank == 1, "latticeStep: tensor is not rank-1");
  linalg::IntVector v = df.latticeBasis.col(0);
  if (v[2] < 0 || (v[2] == 0 && (v[0] < 0 || (v[0] == 0 && v[1] < 0))))
    for (auto& x : v) x = -x;
  return v;
}

std::string sanitize(std::string s) {
  for (char& c : s)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return s;
}

}  // namespace

GeneratedAccelerator generateAccelerator(const stt::DataflowSpec& spec,
                                         const stt::ArrayConfig& arrayConfig,
                                         const HardwareConfig& hwConfig) {
  TL_CHECK(spec.outputRole().dataflow.reuseRank <= 1,
           "netlist generation supports rank-0/1 output dataflows; output " +
               spec.outputRole().tensor + " has rank-" +
               std::to_string(spec.outputRole().dataflow.reuseRank) +
               " reuse (use the behavioral simulator)");

  const stt::TileMapping mapping = stt::computeMapping(spec, arrayConfig);
  const linalg::IntVector shape = mapping.fullTile;
  sim::TileTrace trace = sim::buildTileTrace(spec, shape);

  GeneratedAccelerator acc(hwir::Netlist("tensorlib_" + sanitize(spec.label())),
                           spec, std::move(trace), shape);
  acc.config = hwConfig;
  acc.grid = PeGrid{acc.trace.p1Span, acc.trace.p2Span};
  hwir::Netlist& n = acc.netlist;

  const int w = hwConfig.dataKind == hwir::DataKind::Float32 ? 32
                                                             : hwConfig.dataWidth;
  const hwir::DataKind kind = hwConfig.dataKind;

  // --- Phase plan.
  bool stationaryInput = false;
  for (const auto& role : spec.tensors())
    if (!role.isOutput && (role.dataflow.dataflowClass ==
                               stt::DataflowClass::Stationary ||
                           role.dataflow.dataflowClass ==
                               stt::DataflowClass::MulticastStationary))
      stationaryInput = true;
  const bool stationaryOutput = spec.outputRole().dataflow.dataflowClass ==
                                stt::DataflowClass::Stationary;

  acc.loadCycles = stationaryInput ? acc.grid.p2Span + 1 : 0;
  acc.computeCycles = acc.trace.cycles;
  // Output tail after the last MAC: stationary drain shift, systolic flush
  // to the array edge, or a single register for tree/unicast outputs.
  const auto& outDf = spec.outputRole().dataflow;
  if (stationaryOutput) {
    acc.drainCycles = acc.grid.p2Span + 1;
  } else if (outDf.dataflowClass == stt::DataflowClass::Systolic) {
    const linalg::IntVector step = latticeStep(outDf);
    acc.drainCycles =
        (std::max(acc.grid.p1Span, acc.grid.p2Span) + 1) * step[2];
  } else {
    acc.drainCycles = 2;
  }
  acc.stagePeriod = acc.loadCycles + acc.computeCycles + acc.drainCycles;
  acc.controller = buildController(n, acc.loadCycles, acc.computeCycles,
                                   acc.grid.p2Span, acc.stagePeriod);
  const ControllerSignals& ctrl = acc.controller;

  // --- Input structures (Fig. 3(1) modules (a)/(c)/(e)).
  for (std::size_t i = 0; i + 1 < spec.tensors().size(); ++i) {
    const auto& role = spec.tensors()[i];
    const auto cls = role.dataflow.dataflowClass;
    switch (cls) {
      case stt::DataflowClass::Systolic: {
        std::set<PeCoord> heads;
        if (hwConfig.injectEverywhere) {
          for (const PeCoord pe : acc.grid.all()) heads.insert(pe);
        } else {
          for (const auto& inj : acc.trace.injections)
            if (inj.tensorIndex == i) heads.insert({inj.p1, inj.p2});
        }
        acc.inputs.push_back(buildSystolicInput(
            n, acc.grid, role.tensor, w, kind, latticeStep(role.dataflow),
            std::vector<PeCoord>(heads.begin(), heads.end())));
        break;
      }
      case stt::DataflowClass::Stationary:
      case stt::DataflowClass::MulticastStationary:
        // The multicast+stationary plane resides like plain stationary data
        // (one element per PE for the whole pass); only the loading network
        // differs, which the memory system handles.
        acc.inputs.push_back(
            buildStationaryInput(n, acc.grid, role.tensor, w, kind, ctrl));
        break;
      case stt::DataflowClass::Multicast:
        acc.inputs.push_back(buildMulticastInput(n, acc.grid, role.tensor, w,
                                                 kind,
                                                 role.dataflow.direction));
        break;
      case stt::DataflowClass::Broadcast2D:
      case stt::DataflowClass::FullReuse:
        acc.inputs.push_back(
            buildBroadcastInput(n, acc.grid, role.tensor, w, kind));
        break;
      case stt::DataflowClass::SystolicMulticast: {
        const sim::Movement mv = sim::deriveMovement(role.dataflow);
        TL_CHECK(mv.hasStep && mv.bus == sim::Movement::Bus::Line,
                 "inconsistent systolic+multicast movement");
        acc.inputs.push_back(buildSystolicMulticastInput(
            n, acc.grid, role.tensor, w, kind, mv.step, mv.busDir));
        break;
      }
      case stt::DataflowClass::Unicast: {
        std::set<PeCoord> active;
        if (hwConfig.injectEverywhere) {
          for (const PeCoord pe : acc.grid.all()) active.insert(pe);
        } else {
          for (const auto& ap : acc.trace.active) active.insert({ap.p1, ap.p2});
        }
        acc.inputs.push_back(buildUnicastInput(
            n, role.tensor, w, kind,
            std::vector<PeCoord>(active.begin(), active.end())));
        break;
      }
      default:
        fail("unsupported input dataflow class in netlist generation");
    }
  }

  // --- Computation cells: MAC per PE where every operand is wired.
  const hwir::NodeId zero = n.constant(0, w, kind);
  std::map<PeCoord, hwir::NodeId> prodGated;
  for (const PeCoord pe : acc.grid.all()) {
    bool complete = true;
    for (const auto& in : acc.inputs)
      if (!in.operand.count(pe)) complete = false;
    if (!complete || acc.inputs.empty()) continue;

    const std::string base =
        "pe_" + std::to_string(pe.p1) + "_" + std::to_string(pe.p2);
    hwir::NodeId prod = acc.inputs[0].operand.at(pe);
    hwir::NodeId valid = acc.inputs[0].valid.at(pe);
    for (std::size_t i = 1; i < acc.inputs.size(); ++i) {
      prod = n.mul(prod, acc.inputs[i].operand.at(pe),
                   base + "/mul" + std::to_string(i));
      valid = n.logicalAnd(valid, acc.inputs[i].valid.at(pe));
    }
    valid = n.logicalAnd(valid, ctrl.inCompute, base + "/mac_en");
    prodGated[pe] = n.mux(valid, prod, zero, base + "/prod");
  }

  // --- Output structure (modules (b)/(d)/(f) + Fig. 3(2) interconnect).
  const auto& outRole = spec.outputRole();
  acc.output.dataflowClass = outRole.dataflow.dataflowClass;
  switch (outRole.dataflow.dataflowClass) {
    case stt::DataflowClass::Stationary: {
      // Module (d): accumulator + drain register; drain regs form a shift
      // chain along each row toward the p2Span-1 edge.
      std::map<PeCoord, hwir::NodeId> drainRegs;
      for (std::int64_t r = 0; r < acc.grid.p1Span; ++r) {
        hwir::NodeId prev = zero;
        for (std::int64_t c = 0; c < acc.grid.p2Span; ++c) {
          const PeCoord pe{r, c};
          const std::string base =
              "pe_" + std::to_string(r) + "_" + std::to_string(c) + "/out";
          hwir::NodeId accIn = prodGated.count(pe) ? prodGated.at(pe) : zero;
          const hwir::NodeId accReg = n.reg(w, kind, 0, base + "/acc");
          // Clear at each stage's first compute cycle so tiles don't bleed
          // into each other (module (d)'s per-stage accumulate).
          n.connectRegInput(
              accReg, n.mux(ctrl.computeStart, accIn,
                            n.add(accReg, accIn, base + "/acc_add")));

          const hwir::NodeId drain = n.reg(w, kind, 0, base + "/drain");
          n.connectRegInput(drain, n.mux(ctrl.swap, accReg, prev));
          n.connectRegEnable(drain, n.logicalOr(ctrl.swap, ctrl.inDrain));
          drainRegs[pe] = drain;
          prev = drain;
        }
        acc.output.rowDrainPorts[r] = n.output(
            outRole.tensor + "_drain_" + std::to_string(r), prev);
      }
      break;
    }
    case stt::DataflowClass::Systolic: {
      const linalg::IntVector step = latticeStep(outRole.dataflow);
      acc.output.direction = step;
      const std::int64_t dt = step[2];
      TL_CHECK(dt > 0, "systolic output with zero time step");
      int chainIdx = 0;
      for (const auto& [key, pes] : chainsAlong(acc.grid, step[0], step[1])) {
        (void)key;
        hwir::NodeId psum = zero;
        for (const PeCoord pe : pes) {
          const std::string base = "pe_" + std::to_string(pe.p1) + "_" +
                                   std::to_string(pe.p2) + "/out";
          const hwir::NodeId contrib =
              prodGated.count(pe) ? prodGated.at(pe) : zero;
          const hwir::NodeId sum = n.add(psum, contrib, base + "/psum_add");
          const hwir::NodeId outReg = n.reg(w, kind, 0, base + "/psum");
          n.connectRegInput(outReg, sum);
          psum = dt > 1 ? n.pipeline(outReg, static_cast<int>(dt - 1),
                                     base + "/psum_pipe")
                        : outReg;
        }
        // Port at the chain's exit PE; keyed by the exit PE coordinate.
        const PeCoord exit = pes.back();
        acc.output.linePorts[lineId(exit, step[0], step[1])] = n.output(
            outRole.tensor + "_out_" + std::to_string(chainIdx), psum);
        ++chainIdx;
      }
      break;
    }
    case stt::DataflowClass::Multicast: {
      // Module (f) + reduction tree per reuse line (Fig. 4(d)).
      const linalg::IntVector& dir = outRole.dataflow.direction;
      acc.output.direction = dir;
      for (const auto& [id, pes] : linesAlong(acc.grid, dir[0], dir[1])) {
        std::vector<hwir::NodeId> leaves;
        for (const PeCoord pe : pes)
          if (prodGated.count(pe)) leaves.push_back(prodGated.at(pe));
        if (leaves.empty()) continue;
        const std::string base =
            outRole.tensor + "_tree_" + std::to_string(id);
        const hwir::NodeId root = n.adderTree(leaves, base);
        const hwir::NodeId rootReg = n.reg(w, kind, 0, base + "/root");
        n.connectRegInput(rootReg, root);
        acc.output.linePorts[id] =
            n.output(outRole.tensor + "_out_" + std::to_string(id), rootReg);
      }
      break;
    }
    case stt::DataflowClass::Unicast: {
      for (const auto& [pe, prod] : prodGated) {
        const std::string base = "pe_" + std::to_string(pe.p1) + "_" +
                                 std::to_string(pe.p2) + "/out";
        const hwir::NodeId outReg = n.reg(w, kind, 0, base + "/reg");
        n.connectRegInput(outReg, prod);
        acc.output.pePorts[pe] =
            n.output(outRole.tensor + "_out_" + std::to_string(pe.p1) + "_" +
                         std::to_string(pe.p2),
                     outReg);
      }
      break;
    }
    default:
      fail("unsupported output dataflow class in netlist generation");
  }

  n.validate();
  return acc;
}

}  // namespace tensorlib::arch
