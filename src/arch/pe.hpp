// PE-internal module templates (Fig. 3(1) of the paper) and their
// array-level wiring (Fig. 3(2)).
//
// Each input tensor contributes one of the paper's module templates to
// every PE:
//   (a) systolic input   — register chain between neighbor PEs (dt-deep)
//   (c) stationary input — double buffer (shadow + active) with column load
//   (e) multicast/unicast input — direct wire from a bus / memory port
// Output templates (b)/(d)/(f) are built by the generator: systolic
// partial-sum chains, stationary accumulator + drain shift, and reduction
// trees for multicast outputs.
#pragma once

#include <map>

#include "arch/array.hpp"
#include "arch/controller.hpp"
#include "hwir/module.hpp"
#include "stt/classify.hpp"

namespace tensorlib::arch {

/// Wiring of one input tensor across the array: per-PE operand/valid nets
/// plus the external ports the memory system (testbench) drives.
struct InputBundle {
  stt::DataflowClass dataflowClass = stt::DataflowClass::Unicast;
  linalg::IntVector direction;  ///< (dp1, dp2, dt) for systolic/multicast
  linalg::IntVector busDirection;  ///< bus-line orientation (rank-2 combos)

  std::map<PeCoord, hwir::NodeId> operand;  ///< value feeding the MAC
  std::map<PeCoord, hwir::NodeId> valid;    ///< operand validity

  std::map<PeCoord, hwir::NodeId> peDataPorts;   ///< systolic heads / unicast
  std::map<PeCoord, hwir::NodeId> peValidPorts;
  std::map<std::int64_t, hwir::NodeId> lineDataPorts;   ///< multicast buses
  std::map<std::int64_t, hwir::NodeId> lineValidPorts;
  std::map<std::int64_t, hwir::NodeId> rowLoadPorts;    ///< stationary loads
  std::map<std::int64_t, hwir::NodeId> rowLoadValidPorts;  ///< occupancy bits
};

/// Systolic input (module (a)): data enters at `injectionPes` and hops along
/// `direction` with a dt-cycle register delay per hop.
InputBundle buildSystolicInput(hwir::Netlist& n, const PeGrid& grid,
                               const std::string& tensor, int width,
                               hwir::DataKind kind,
                               const linalg::IntVector& direction,
                               const std::vector<PeCoord>& injectionPes);

/// Stationary input (module (c)): per-PE double buffer; shadow regs load
/// column-by-column from one bus per row during the LOAD phase, and swap
/// into the active regs when the controller pulses `swap`.
InputBundle buildStationaryInput(hwir::Netlist& n, const PeGrid& grid,
                                 const std::string& tensor, int width,
                                 hwir::DataKind kind,
                                 const ControllerSignals& ctrl);

/// Multicast input (module (e)): one bus per reuse line drives every PE on
/// the line in the same cycle.
InputBundle buildMulticastInput(hwir::Netlist& n, const PeGrid& grid,
                                const std::string& tensor, int width,
                                hwir::DataKind kind,
                                const linalg::IntVector& direction);

/// Unicast input (module (e/f)): a private memory port per active PE.
InputBundle buildUnicastInput(hwir::Netlist& n, const std::string& tensor,
                              int width, hwir::DataKind kind,
                              const std::vector<PeCoord>& activePes);

/// 2-D broadcast / full-reuse input: one array-global bus drives every PE
/// in the same cycle (the rank-2 "vertical to t-axis" case of Table I).
InputBundle buildBroadcastInput(hwir::Netlist& n, const PeGrid& grid,
                                const std::string& tensor, int width,
                                hwir::DataKind kind);

/// Systolic+multicast input (rank-2 "intersect with t-axis"): a bus per
/// line along `busDir` broadcasts into a line of registers, which then
/// traverse the array systolically along `step` (paper Section IV).
InputBundle buildSystolicMulticastInput(hwir::Netlist& n, const PeGrid& grid,
                                        const std::string& tensor, int width,
                                        hwir::DataKind kind,
                                        const linalg::IntVector& step,
                                        const linalg::IntVector& busDir);

}  // namespace tensorlib::arch
