// RTL testbench: drives a generated accelerator through its LOAD/COMPUTE/
// DRAIN phases with the memory-access schedule derived from the STT
// analysis, samples the output ports, and checks the collected results
// against a direct software evaluation of the same tile.
//
// This is the paper's verification loop (Chisel -> Verilog -> VCS simulation
// against a golden model) realized on the hwir netlist.
#pragma once

#include "arch/generator.hpp"
#include "hwir/rtlsim.hpp"
#include "tensor/reference.hpp"

namespace tensorlib::arch {

/// How the netlist is executed by the in-process testbench. The conformance
/// oracle (src/verify) runs the same schedule through both engines to
/// localize a defect to the compiled tape vs the legacy interpreter.
struct RtlRunOptions {
  hwir::SimEngine engine = hwir::SimEngine::Compiled;
  /// Fault-injection demo: corrupt the compiled tape's width masks before
  /// running (see RtlSimulator::corruptTapeMasksForTest). Legacy: no-op.
  bool corruptTapeMasks = false;
};

struct RtlRunResult {
  tensor::DenseTensor collected;  ///< what the ports produced
  tensor::DenseTensor expected;   ///< golden values for the same tile
  std::int64_t cyclesRun = 0;
  double maxAbsDiff = 0.0;
  bool matches() const { return maxAbsDiff == 0.0; }
};

/// One symbolic stimulus entry of a stage schedule: drive `port` at the
/// stage-relative `cycle`. Data pokes (isValid == false) carry input
/// tensor `tensorIndex` (index into spec.tensors(), label order) at
/// `element`; valid pokes drive the constant 1.
struct SymbolicPoke {
  std::int64_t cycle = 0;
  hwir::NodeId port = 0;
  std::size_t tensorIndex = 0;
  linalg::IntVector element;
  bool isValid = false;
};

/// One symbolic output sample: read `port` at the stage-relative `cycle`
/// and accumulate the decoded value into output element `element` (stages
/// produce partial sums; the final value is the sum over all stages that
/// write the element).
struct SymbolicSample {
  std::int64_t cycle = 0;
  hwir::NodeId port = 0;
  linalg::IntVector element;
};

/// The environment-independent schedule of one controller stage (one tile
/// at one outer-loop iteration): which ports to poke / sample at which
/// stage-relative cycles, with which tensor elements. Resolving the pokes
/// against a concrete TensorEnv reproduces the testbench stimulus exactly;
/// the model-level engine (arch/model.*) resolves chained tensors against
/// inter-layer buffers instead.
struct StageSchedule {
  std::vector<SymbolicPoke> pokes;      ///< sorted by cycle, poke order kept
  std::vector<SymbolicSample> samples;  ///< sorted by cycle, order kept
  std::int64_t lastCycle = 0;  ///< last scheduled cycle incl. drain tail
  linalg::IntVector tileShape;   ///< this stage's (possibly remainder) tile
  linalg::IntVector tileOrigin;  ///< within the selected loops
  linalg::IntVector outerFixed;  ///< full-nest outer-loop iteration
};

/// Symbolic schedules for EVERY stage of the complete workload — each
/// (outer-loop iteration, tile origin) pair in execution order. Stage s of
/// runAcceleratorFull starts at cycle s * acc.stagePeriod and resolves
/// exactly these schedules, so engines built on them (arch/model.*)
/// execute bit-identically to the single-accelerator path.
std::vector<StageSchedule> buildStageSchedules(const GeneratedAccelerator& acc);

/// Runs one tile (origin 0, outer iterations 0) of the generated
/// accelerator against the tensor environment.
RtlRunResult runAcceleratorTile(const GeneratedAccelerator& acc,
                                const tensor::TensorEnv& env,
                                const RtlRunOptions& options = {});

/// Runs the COMPLETE workload at RTL: every tile at every outer-loop
/// iteration executes as one controller stage (the wrapping stage counter
/// reloads stationary buffers, clears accumulators and drains outputs
/// between tiles). The collected output is compared against the full
/// software reference. Requires the accelerator to be generated with
/// HardwareConfig::injectEverywhere (remainder tiles inject at interior
/// PEs). Runtime grows with tiles x stagePeriod; intended for small
/// verification workloads.
RtlRunResult runAcceleratorFull(const GeneratedAccelerator& acc,
                                const tensor::TensorEnv& env);

/// Emits a self-checking Verilog testbench for one tile of the generated
/// accelerator: applies the memory-system stimulus cycle by cycle, samples
/// the output ports at the scheduled cycles, compares against golden values
/// and prints PASS/FAIL — runnable under any Verilog simulator alongside
/// hwir::emitVerilog's design module.
std::string emitVerilogTestbench(const GeneratedAccelerator& acc,
                                 const tensor::TensorEnv& env);

}  // namespace tensorlib::arch
