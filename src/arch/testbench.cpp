#include "arch/testbench.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "hwir/rtlsim.hpp"
#include "support/error.hpp"

namespace tensorlib::arch {

namespace {

using hwir::NodeId;
using hwir::RtlSimulator;

std::uint64_t encode(double v, const HardwareConfig& cfg) {
  if (cfg.dataKind == hwir::DataKind::Float32)
    return RtlSimulator::encodeFloat(static_cast<float>(v));
  return RtlSimulator::encodeInt(static_cast<std::int64_t>(v), cfg.dataWidth);
}

double decode(std::uint64_t bits, const HardwareConfig& cfg) {
  if (cfg.dataKind == hwir::DataKind::Float32)
    return static_cast<double>(RtlSimulator::decodeFloat(bits));
  return static_cast<double>(RtlSimulator::decodeInt(bits, cfg.dataWidth));
}

struct Sample {
  NodeId port;
  linalg::IntVector element;
};

/// Everything a testbench (in-process or emitted Verilog) needs: per-cycle
/// input pokes, per-cycle output samples, golden values and the run length.
struct TbSchedule {
  std::map<std::int64_t, std::vector<std::pair<NodeId, std::uint64_t>>> stimulus;
  std::map<std::int64_t, std::vector<Sample>> samples;
  tensor::DenseTensor expected;
  std::int64_t lastCycle = 0;
};

/// Builds the symbolic schedule of ONE stage (one tile at one outer-loop
/// iteration). Cycles are stage-relative; resolving against an environment
/// at a base cycle reproduces the historical per-stage stimulus exactly
/// (stationary loads in resident-map order first, then injections in trace
/// order, then the per-class sampling plan).
StageSchedule buildStageScheduleFor(const GeneratedAccelerator& acc,
                                    const linalg::IntVector& shape,
                                    const linalg::IntVector& origin,
                                    const linalg::IntVector& outerFixed) {
  const auto& spec = acc.spec;
  const sim::TileTrace trace =
      sim::buildTileTrace(spec, shape, origin, outerFixed);
  const std::int64_t loadBase = 0;
  const std::int64_t computeBase = acc.loadCycles;
  const std::int64_t computeEnd = acc.loadCycles + acc.computeCycles;

  StageSchedule st;
  st.tileShape = shape;
  st.tileOrigin = origin;
  st.outerFixed = outerFixed;
  const auto& selIdx = spec.selection().indices();

  // Stationary-family tensors (incl. multicast+stationary): every PE holds
  // exactly one element for the whole pass; derive the PE -> element map
  // from the active points and feed the row load buses column by column.
  for (std::size_t i = 0; i + 1 < spec.tensors().size(); ++i) {
    const auto& bundle = acc.inputs[i];
    if (bundle.rowLoadPorts.empty()) continue;
    const auto& role = spec.tensors()[i];
    std::map<PeCoord, linalg::IntVector> resident;
    for (const auto& ap : trace.active) {
      linalg::IntVector x = outerFixed;
      for (std::size_t j = 0; j < 3; ++j)
        x[selIdx[j]] = origin[j] + ap.iteration[j];
      const linalg::IntVector element = role.fullAccess.evaluate(x);
      const PeCoord pe{ap.p1, ap.p2};
      const auto it = resident.find(pe);
      if (it == resident.end()) {
        resident.emplace(pe, element);
      } else {
        TL_CHECK(it->second == element,
                 "stationary tensor " + role.tensor +
                     " maps two elements to one PE");
      }
    }
    for (const auto& [pe, element] : resident) {
      st.pokes.push_back({loadBase + pe.p2, bundle.rowLoadPorts.at(pe.p1), i,
                          element, /*isValid=*/false});
      st.pokes.push_back({loadBase + pe.p2, bundle.rowLoadValidPorts.at(pe.p1),
                          i, element, /*isValid=*/true});
    }
  }

  for (const auto& inj : trace.injections) {
    const auto& bundle = acc.inputs[inj.tensorIndex];
    if (!bundle.rowLoadPorts.empty()) continue;  // handled above
    const PeCoord pe{inj.p1, inj.p2};
    const std::int64_t cycle = computeBase + inj.cycle;
    NodeId dataPort = 0, validPort = 0;

    switch (bundle.dataflowClass) {
      case stt::DataflowClass::Systolic:
      case stt::DataflowClass::Unicast: {
        dataPort = bundle.peDataPorts.at(pe);
        validPort = bundle.peValidPorts.at(pe);
        break;
      }
      case stt::DataflowClass::Multicast: {
        const std::int64_t line =
            lineId(pe, bundle.direction[0], bundle.direction[1]);
        dataPort = bundle.lineDataPorts.at(line);
        validPort = bundle.lineValidPorts.at(line);
        break;
      }
      case stt::DataflowClass::SystolicMulticast: {
        const std::int64_t line =
            lineId(pe, bundle.busDirection[0], bundle.busDirection[1]);
        dataPort = bundle.lineDataPorts.at(line);
        validPort = bundle.lineValidPorts.at(line);
        break;
      }
      case stt::DataflowClass::Broadcast2D:
      case stt::DataflowClass::FullReuse: {
        dataPort = bundle.lineDataPorts.at(0);
        validPort = bundle.lineValidPorts.at(0);
        break;
      }
      default:
        fail("testbench: unsupported input class");
    }
    st.pokes.push_back({cycle, dataPort, inj.tensorIndex, inj.element,
                        /*isValid=*/false});
    st.pokes.push_back({cycle, validPort, inj.tensorIndex, inj.element,
                        /*isValid=*/true});
  }

  // ---- Sampling plan: cycle -> (port, output element).
  const auto& out = acc.output;
  switch (out.dataflowClass) {
    case stt::DataflowClass::Stationary: {
      for (const auto& ev : trace.outputs) {
        // PE (p1,p2) drains through the row chain: it reaches the row port
        // after (p2Span-1 - p2) shifts, first visible at computeEnd+1.
        const std::int64_t cycle =
            computeEnd + 1 + (acc.grid.p2Span - 1 - ev.p2);
        st.samples.push_back({cycle, out.rowDrainPorts.at(ev.p1), ev.element});
      }
      break;
    }
    case stt::DataflowClass::Systolic: {
      const auto& step = out.direction;
      const auto chains = chainsAlong(acc.grid, step[0], step[1]);
      for (const auto& ev : trace.outputs) {
        const PeCoord pe{ev.p1, ev.p2};
        // Find the chain's exit PE and the hop count to it.
        const std::pair<std::int64_t, std::int64_t> key{
            lineId(pe, step[0], step[1]), chainResidue(pe, step[0], step[1])};
        const PeCoord exit = chains.at(key).back();
        const std::int64_t s = stepsBetween(pe, exit, step[0], step[1]);
        const std::int64_t cycle = computeBase + ev.cycle + (s + 1) * step[2];
        st.samples.push_back(
            {cycle, out.linePorts.at(chainId(exit, step[0], step[1])),
             ev.element});
      }
      break;
    }
    case stt::DataflowClass::Multicast: {
      for (const auto& ev : trace.outputs) {
        const std::int64_t line =
            lineId({ev.p1, ev.p2}, out.direction[0], out.direction[1]);
        st.samples.push_back(
            {computeBase + ev.cycle + 1, out.linePorts.at(line), ev.element});
      }
      break;
    }
    case stt::DataflowClass::Unicast: {
      for (const auto& ev : trace.outputs)
        st.samples.push_back({computeBase + ev.cycle + 1,
                              out.pePorts.at({ev.p1, ev.p2}), ev.element});
      break;
    }
    default:
      fail("testbench: unsupported output class");
  }

  // Normalize to per-cycle order (what the map-keyed schedule historically
  // produced): stable sort keeps poke/sample order within a cycle.
  std::stable_sort(st.pokes.begin(), st.pokes.end(),
                   [](const SymbolicPoke& a, const SymbolicPoke& b) {
                     return a.cycle < b.cycle;
                   });
  std::stable_sort(st.samples.begin(), st.samples.end(),
                   [](const SymbolicSample& a, const SymbolicSample& b) {
                     return a.cycle < b.cycle;
                   });

  st.lastCycle = computeEnd + acc.drainCycles;
  if (!st.samples.empty())
    st.lastCycle = std::max(st.lastCycle, st.samples.back().cycle);
  return st;
}

/// Resolves one symbolic stage against a tensor environment into the
/// concrete testbench schedule, offset to `baseCycle`.
void resolveStage(const GeneratedAccelerator& acc, const tensor::TensorEnv& env,
                  const StageSchedule& st, std::int64_t baseCycle,
                  TbSchedule& sched) {
  for (const auto& p : st.pokes) {
    const std::uint64_t bits =
        p.isValid
            ? 1
            : encode(env.at(acc.spec.tensors()[p.tensorIndex].tensor)
                         .at(p.element),
                     acc.config);
    sched.stimulus[baseCycle + p.cycle].push_back({p.port, bits});
  }
  for (const auto& s : st.samples)
    sched.samples[baseCycle + s.cycle].push_back({s.port, s.element});
  sched.lastCycle = std::max(sched.lastCycle, baseCycle + st.lastCycle);
}

/// Golden values of one stage: direct evaluation over the stage's tile box
/// (the active points of a tile trace are exactly the box).
void accumulateGolden(const GeneratedAccelerator& acc,
                      const tensor::TensorEnv& env, const StageSchedule& st,
                      tensor::DenseTensor& expected) {
  const auto& spec = acc.spec;
  const auto& selIdx = spec.selection().indices();
  linalg::IntVector local(3, 0);
  while (true) {
    linalg::IntVector x = st.outerFixed;
    for (std::size_t j = 0; j < 3; ++j)
      x[selIdx[j]] = st.tileOrigin[j] + local[j];
    double prod = 1.0;
    for (const auto& role : spec.tensors()) {
      if (role.isOutput) continue;
      prod *= env.at(role.tensor).at(role.fullAccess.evaluate(x));
    }
    expected.at(spec.outputRole().fullAccess.evaluate(x)) += prod;

    std::size_t d = 3;
    bool done = false;
    while (d-- > 0) {
      if (++local[d] < st.tileShape[d]) break;
      local[d] = 0;
      if (d == 0) done = true;
    }
    if (done) break;
  }
}

/// Single-tile schedule at origin 0 / outer 0 (the acc's own trace).
TbSchedule buildTbSchedule(const GeneratedAccelerator& acc,
                           const tensor::TensorEnv& env) {
  TbSchedule sched;
  const auto& algebra = acc.spec.algebra();
  sched.expected = tensor::DenseTensor(algebra.tensorShape(algebra.output()));
  const StageSchedule st = buildStageScheduleFor(
      acc, acc.tileShape, linalg::IntVector(3, 0),
      linalg::IntVector(algebra.loopCount(), 0));
  resolveStage(acc, env, st, 0, sched);
  accumulateGolden(acc, env, st, sched.expected);
  return sched;
}

/// Shared simulator loop over a prepared schedule.
RtlRunResult runSchedule(const GeneratedAccelerator& acc,
                         const TbSchedule& sched,
                         const RtlRunOptions& options = {}) {
  RtlRunResult result;
  result.expected = sched.expected;
  result.collected = tensor::DenseTensor(
      acc.spec.algebra().tensorShape(acc.spec.algebra().output()));

  RtlSimulator sim(acc.netlist, options.engine);
  if (options.corruptTapeMasks) sim.corruptTapeMasksForTest();
  for (std::int64_t cycle = 0; cycle <= sched.lastCycle; ++cycle) {
    sim.clearInputs();
    const auto st = sched.stimulus.find(cycle);
    if (st != sched.stimulus.end())
      for (const auto& [port, bits] : st->second) sim.poke(port, bits);
    sim.evaluate();
    const auto sp = sched.samples.find(cycle);
    if (sp != sched.samples.end())
      for (const auto& s : sp->second)
        result.collected.at(s.element) += decode(sim.peek(s.port), acc.config);
    sim.step();
  }
  result.cyclesRun = sched.lastCycle + 1;
  result.maxAbsDiff = result.collected.maxAbsDiff(result.expected);
  return result;
}

}  // namespace

std::vector<StageSchedule> buildStageSchedules(const GeneratedAccelerator& acc) {
  const auto& spec = acc.spec;
  const auto& algebra = spec.algebra();
  const linalg::IntVector extents = spec.selection().extents();

  // Tile origins per selected loop.
  std::vector<std::vector<std::int64_t>> origins(3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::int64_t o = 0; o < extents[j]; o += acc.tileShape[j])
      origins[j].push_back(o);

  std::vector<StageSchedule> stages;
  const auto& outerIdx = spec.selection().outerIndices();
  linalg::IntVector outerFixed(algebra.loopCount(), 0);
  while (true) {
    for (std::int64_t o0 : origins[0])
      for (std::int64_t o1 : origins[1])
        for (std::int64_t o2 : origins[2]) {
          const linalg::IntVector origin{o0, o1, o2};
          linalg::IntVector shape(3);
          for (std::size_t j = 0; j < 3; ++j)
            shape[j] = std::min(acc.tileShape[j], extents[j] - origin[j]);
          stages.push_back(
              buildStageScheduleFor(acc, shape, origin, outerFixed));
        }
    bool done = outerIdx.empty();
    for (std::size_t d = outerIdx.size(); d-- > 0;) {
      if (++outerFixed[outerIdx[d]] < algebra.loops()[outerIdx[d]].extent)
        break;
      outerFixed[outerIdx[d]] = 0;
      if (d == 0) done = true;
    }
    if (done) break;
  }
  return stages;
}

RtlRunResult runAcceleratorTile(const GeneratedAccelerator& acc,
                                const tensor::TensorEnv& env,
                                const RtlRunOptions& options) {
  return runSchedule(acc, buildTbSchedule(acc, env), options);
}

RtlRunResult runAcceleratorFull(const GeneratedAccelerator& acc,
                                const tensor::TensorEnv& env) {
  const auto& algebra = acc.spec.algebra();
  TbSchedule sched;
  sched.expected = tensor::DenseTensor(algebra.tensorShape(algebra.output()));

  const std::vector<StageSchedule> stages = buildStageSchedules(acc);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    resolveStage(acc, env, stages[s],
                 static_cast<std::int64_t>(s) * acc.stagePeriod, sched);
    accumulateGolden(acc, env, stages[s], sched.expected);
  }
  // Run to the end of the last stage so final drains complete.
  sched.lastCycle = std::max(
      sched.lastCycle,
      static_cast<std::int64_t>(stages.size()) * acc.stagePeriod - 1);
  return runSchedule(acc, sched);
}

std::string emitVerilogTestbench(const GeneratedAccelerator& acc,
                                 const tensor::TensorEnv& env) {
  const TbSchedule sched = buildTbSchedule(acc, env);
  const hwir::Netlist& n = acc.netlist;

  std::ostringstream os;
  os << "// Self-checking testbench generated by TensorLib-cpp for "
     << n.name() << "\n";
  os << "`timescale 1ns/1ps\n";
  os << "module tb_" << n.name() << ";\n";
  os << "  reg clk = 1'b0;\n  always #5 clk = ~clk;\n";
  os << "  integer errors = 0;\n\n";
  for (NodeId id : n.inputs()) {
    const auto& nd = n.node(id);
    os << "  reg " << (nd.width > 1 ? "[" + std::to_string(nd.width - 1) + ":0] " : "")
       << nd.name << " = 0;\n";
  }
  for (NodeId id : n.outputs()) {
    const auto& nd = n.node(id);
    os << "  wire " << (nd.width > 1 ? "[" + std::to_string(nd.width - 1) + ":0] " : "")
       << nd.name << ";\n";
  }
  os << "\n  " << n.name() << " dut (\n    .clk(clk)";
  for (NodeId id : n.inputs())
    os << ",\n    ." << n.node(id).name << "(" << n.node(id).name << ")";
  for (NodeId id : n.outputs())
    os << ",\n    ." << n.node(id).name << "(" << n.node(id).name << ")";
  os << "\n  );\n\n  initial begin\n";

  for (std::int64_t cycle = 0; cycle <= sched.lastCycle; ++cycle) {
    os << "    // cycle " << cycle << "\n";
    // Default-drive every input low, then apply the cycle's stimulus.
    for (NodeId id : n.inputs()) os << "    " << n.node(id).name << " = 0;\n";
    const auto st = sched.stimulus.find(cycle);
    if (st != sched.stimulus.end())
      for (const auto& [port, bits] : st->second)
        os << "    " << n.node(port).name << " = " << n.node(port).width
           << "'h" << std::hex << bits << std::dec << ";\n";
    const auto sp = sched.samples.find(cycle);
    if (sp != sched.samples.end()) {
      os << "    #4;\n";  // sample just before the latching edge
      for (const auto& s : sp->second) {
        const std::uint64_t expect =
            encode(sched.expected.at(s.element), acc.config);
        const auto& port = n.node(s.port);
        os << "    if (" << port.name << " !== " << port.width << "'h"
           << std::hex << expect << std::dec << ") begin errors = errors + 1; "
           << "$display(\"MISMATCH cycle " << cycle << " port " << port.name
           << ": got %h\", " << port.name << "); end\n";
      }
      os << "    #6;\n";
    } else {
      os << "    #10;\n";
    }
  }
  os << "    if (errors == 0) $display(\"TB PASS\");\n";
  os << "    else $display(\"TB FAIL: %0d mismatches\", errors);\n";
  os << "    $finish;\n  end\nendmodule\n";
  return os.str();
}

}  // namespace tensorlib::arch
