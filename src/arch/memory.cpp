#include "arch/memory.hpp"

#include <algorithm>

#include "stt/mapping.hpp"
#include "support/error.hpp"

namespace tensorlib::arch {

namespace {

/// Number of parallel memory ports a tensor's dataflow needs on a
/// rows x cols array (Fig. 3(2)): one per multicast bus line, one per
/// systolic chain head line, one per row for stationary loads, one per PE
/// for unicast.
std::int64_t portCount(const stt::TensorDataflow& df, std::int64_t rows,
                       std::int64_t cols) {
  using stt::DataflowClass;
  switch (df.dataflowClass) {
    case DataflowClass::Unicast:
      return rows * cols;
    case DataflowClass::Stationary:
      return rows;
    case DataflowClass::Systolic:
    case DataflowClass::Multicast: {
      const std::int64_t dp1 = std::abs(df.direction[0]);
      const std::int64_t dp2 = std::abs(df.direction[1]);
      // Lines along (dp1,dp2) covering a rows x cols grid.
      if (dp1 == 0) return rows;
      if (dp2 == 0) return cols;
      return rows * dp2 + cols * dp1 - dp1 * dp2;  // skewed lines
    }
    case DataflowClass::Broadcast2D:
      return 1;  // one bus for the whole array
    case DataflowClass::MulticastStationary:
    case DataflowClass::SystolicMulticast:
      return std::max(rows, cols);  // one bus per line of the spatial axis
    case DataflowClass::FullReuse:
      return 1;
  }
  fail("unknown dataflow class");
}

}  // namespace

std::vector<BankSpec> deriveBanks(const stt::DataflowSpec& spec,
                                  const stt::ArrayConfig& config,
                                  std::int64_t wordBits) {
  const stt::TileMapping mapping = stt::computeMapping(spec, config);
  // Footprints of the full tile shape (first tile group is the full one).
  const auto& tile = mapping.tiles.front();

  std::vector<BankSpec> out;
  for (std::size_t i = 0; i < spec.tensors().size(); ++i) {
    const auto& role = spec.tensors()[i];
    BankSpec b;
    b.tensor = role.tensor;
    b.isOutput = role.isOutput;
    b.banks = portCount(role.dataflow, config.rows, config.cols);
    // Double buffering (module (c)/(d) in Fig. 3) needs two tile footprints
    // resident per tensor, spread across its banks.
    const std::int64_t footprint = tile.tensorFootprints[i];
    b.wordsPerBank = std::max<std::int64_t>(1, 2 * footprint / std::max<std::int64_t>(1, b.banks));
    b.wordBits = wordBits;
    out.push_back(b);
  }
  return out;
}

std::int64_t totalBufferBits(const std::vector<BankSpec>& banks) {
  std::int64_t total = 0;
  for (const auto& b : banks) total += b.totalBits();
  return total;
}

}  // namespace tensorlib::arch
