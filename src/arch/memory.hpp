// On-chip memory generation (Section V-B): "each group of PEs that reuse
// the same tensor indexes is assigned with a particular memory bank".
//
// The netlist exposes one port per bank (bus line / chain head / PE); this
// module derives the bank inventory — count, width, depth — from the
// dataflow spec and tile mapping. The RTL testbench plays the role of the
// bank contents (a behavioral memory preloaded with the tensor and indexed
// by the generated access pattern), and the cost models price the banks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stt/mapping.hpp"

namespace tensorlib::arch {

struct BankSpec {
  std::string tensor;
  bool isOutput = false;
  std::int64_t banks = 0;         ///< parallel ports into the array
  std::int64_t wordsPerBank = 0;  ///< double-buffered tile footprint share
  std::int64_t wordBits = 0;

  std::int64_t totalBits() const { return banks * wordsPerBank * wordBits; }
};

/// Derives the per-tensor bank inventory for a spec mapped onto an array.
std::vector<BankSpec> deriveBanks(const stt::DataflowSpec& spec,
                                  const stt::ArrayConfig& config,
                                  std::int64_t wordBits);

/// Total on-chip buffer bits across tensors.
std::int64_t totalBufferBits(const std::vector<BankSpec>& banks);

}  // namespace tensorlib::arch
