#include "arch/controller.hpp"

#include "support/error.hpp"

namespace tensorlib::arch {

ControllerSignals buildController(hwir::Netlist& n, std::int64_t loadCycles,
                                  std::int64_t computeCycles,
                                  std::int64_t columns,
                                  std::int64_t stagePeriod) {
  TL_CHECK(computeCycles > 0, "controller: compute phase must be non-empty");
  TL_CHECK(stagePeriod >= loadCycles + computeCycles,
           "controller: stage period shorter than load + compute");
  ControllerSignals sig;
  sig.loadCycles = loadCycles;
  sig.computeEnd = loadCycles + computeCycles;
  sig.stagePeriod = stagePeriod;

  const int w = 32;
  // Wrapping stage counter: 0 .. stagePeriod-1, then repeat.
  const hwir::NodeId counter = n.reg(w, hwir::DataKind::Bits, 0, "ctrl/cycle");
  const hwir::NodeId atWrap =
      n.eq(counter, n.constant(stagePeriod - 1, w), "ctrl/at_wrap");
  n.connectRegInput(
      counter, n.mux(atWrap, n.constant(0, w),
                     n.add(counter, n.constant(1, w), "ctrl/cycle_inc"),
                     "ctrl/cycle_next"));
  sig.cycleCounter = counter;

  const hwir::NodeId loadEndC = n.constant(loadCycles, w);
  const hwir::NodeId computeEndC = n.constant(sig.computeEnd, w);

  sig.inLoad = n.lt(counter, loadEndC, "ctrl/in_load");
  sig.loadDone =
      loadCycles > 0
          ? n.eq(counter, n.constant(loadCycles - 1, w), "ctrl/load_done")
          : n.constant(0, 1);
  const hwir::NodeId beforeComputeEnd = n.lt(counter, computeEndC);
  sig.inCompute = n.logicalAnd(n.logicalNot(sig.inLoad), beforeComputeEnd,
                               "ctrl/in_compute");
  sig.computeStart = n.eq(counter, loadEndC, "ctrl/compute_start");
  sig.swap = n.eq(counter, computeEndC, "ctrl/swap");
  sig.inDrain = n.lt(computeEndC, counter, "ctrl/in_drain");

  sig.loadColumn.reserve(static_cast<std::size_t>(columns));
  for (std::int64_t c = 0; c < columns; ++c) {
    const hwir::NodeId match =
        n.eq(counter, n.constant(c, w), "ctrl/load_col_eq" + std::to_string(c));
    sig.loadColumn.push_back(
        n.logicalAnd(match, sig.inLoad, "ctrl/load_col" + std::to_string(c)));
  }
  return sig;
}

}  // namespace tensorlib::arch
