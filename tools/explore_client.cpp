// explore_client: command-line front-end for driver::ExploreClient — the
// retrying JSONL client that talks to a resident explore_server.
//
//   # spawn and own a server child, talk to it over TCP:
//   explore_client --server ./explore_server --port 7421 \
//       --file queries.jsonl --cache-stats --shutdown
//
//   # connect to a server somebody else runs:
//   explore_client --connect 127.0.0.1:7421 --file queries.jsonl
//   explore_client --unix-socket /tmp/explore.sock --file queries.jsonl
//
//   # no socket flags: spawn the child and speak stdio pipes (back-compat
//   # transport, same retry discipline):
//   explore_client --server ./explore_server --file queries.jsonl --shutdown
//
// Request lines come from --file (default stdin); each is sent through
// ExploreClient::request() — which retries through overload rejections,
// truncated responses, and transport death — and the matching response
// line is printed to stdout. --cache-stats appends a {"cache_stats": true}
// probe after the batch; --shutdown asks the server down gracefully and
// prints its shutdown summary. Exit codes: 0 all requests answered,
// 1 a request exhausted its attempts, 2 usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "driver/explore_client.hpp"

namespace {

int usage() {
  std::printf(
      "usage: explore_client [--server BIN] [--port N] [--unix-socket PATH]\n"
      "                      [--connect HOST:PORT] [--file F] [--cache-stats]\n"
      "                      [--shutdown] [--max-attempts N] [--snapshot F]\n"
      "Sends one JSON request per line from --file (default stdin) to a\n"
      "resident explore_server and prints one response line per request.\n"
      "--server spawns and owns the child (add --port/--unix-socket for the\n"
      "socket transport, --snapshot to pass a snapshot path through);\n"
      "--connect/--unix-socket alone attach to an already-running server.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tensorlib::driver::ClientOptions;
  using tensorlib::driver::ExploreClient;

  std::string serverBinary;
  std::string connect;
  std::string snapshot;
  std::string file;
  ClientOptions options;
  bool cacheStats = false;
  bool shutdown = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--server") serverBinary = next();
      else if (a == "--port") options.port = std::stoi(next());
      else if (a == "--unix-socket") options.unixSocketPath = next();
      else if (a == "--connect") connect = next();
      else if (a == "--file") file = next();
      else if (a == "--cache-stats") cacheStats = true;
      else if (a == "--shutdown") shutdown = true;
      else if (a == "--max-attempts") options.maxAttempts = std::stoi(next());
      else if (a == "--snapshot") snapshot = next();
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  if (!connect.empty()) {
    const auto colon = connect.rfind(':');
    if (colon == std::string::npos || !serverBinary.empty()) return usage();
    options.host = connect.substr(0, colon);
    try {
      options.port = std::stoi(connect.substr(colon + 1));
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (!serverBinary.empty()) {
    options.command = {serverBinary, "--serve"};
    if (options.port >= 0) {
      options.command.push_back("--port");
      options.command.push_back(std::to_string(options.port));
    }
    if (!options.unixSocketPath.empty()) {
      options.command.push_back("--unix-socket");
      options.command.push_back(options.unixSocketPath);
    }
    if (!snapshot.empty()) {
      options.command.push_back("--snapshot");
      options.command.push_back(snapshot);
    }
  }
  if (serverBinary.empty() && connect.empty() && options.unixSocketPath.empty())
    return usage();
  if (!serverBinary.empty() && options.port == 0) {
    // The child picks a port the parent has no way to learn.
    std::fprintf(stderr,
                 "explore_client: --server needs an explicit --port (not 0)\n");
    return 2;
  }

  ExploreClient client(std::move(options));
  if (!client.start()) {
    std::fprintf(stderr, "explore_client: cannot reach the server\n");
    return 1;
  }

  std::ifstream fileStream;
  if (!file.empty()) {
    fileStream.open(file);
    if (!fileStream) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : fileStream;

  int exitCode = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const auto response = client.request(line);
    if (!response.has_value()) {
      std::fprintf(stderr, "explore_client: request failed: %s\n",
                   line.c_str());
      exitCode = 1;
      continue;
    }
    std::printf("%s\n", response->c_str());
  }

  if (cacheStats) {
    const auto response = client.request("{\"cache_stats\": true}");
    if (response.has_value()) {
      std::printf("%s\n", response->c_str());
    } else {
      std::fprintf(stderr, "explore_client: cache_stats request failed\n");
      exitCode = 1;
    }
  }

  if (shutdown) {
    // Ask the server down and echo everything it says on the way (the
    // shutdown summary arrives on this connection); stop() then reaps the
    // child if we own one.
    if (client.sendLine("{\"shutdown\": true}")) {
      while (const auto tail = client.readLine()) {
        if (client.lastLineComplete()) std::printf("%s\n", tail->c_str());
      }
    }
    client.stop();
  }
  return exitCode;
}
