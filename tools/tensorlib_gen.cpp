// tensorlib-gen: command-line front end for the generator.
//
//   tensorlib_gen --workload gemm --dims 256,256,256 --label MNK-SST
//   tensorlib_gen --workload conv2d --dims 64,64,56,56,3,3 --explore perf
//   tensorlib_gen --workload gemm --dims 16,16,16 --label MNK-MMT \
//                 --verilog design.v --verify
//
// Workloads: gemm(m,n,k), batched-gemv(m,n,k), conv2d(k,c,y,x,p,q),
//            depthwise(k,y,x,p,q), mttkrp(i,j,k,l), ttmc(i,j,k,l,m).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/session.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;

std::vector<std::int64_t> parseDims(const std::string& s) {
  std::vector<std::int64_t> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  return out;
}

tensor::TensorAlgebra makeWorkload(const std::string& name,
                                   const std::vector<std::int64_t>& d) {
  namespace wl = tensor::workloads;
  auto need = [&](std::size_t n) {
    if (d.size() != n) {
      std::fprintf(stderr, "%s needs %zu dims, got %zu\n", name.c_str(), n,
                   d.size());
      std::exit(2);
    }
  };
  if (name == "gemm") { need(3); return wl::gemm(d[0], d[1], d[2]); }
  if (name == "batched-gemv") { need(3); return wl::batchedGemv(d[0], d[1], d[2]); }
  if (name == "conv2d") {
    need(6);
    return wl::conv2d(d[0], d[1], d[2], d[3], d[4], d[5]);
  }
  if (name == "depthwise") {
    need(5);
    return wl::depthwiseConv(d[0], d[1], d[2], d[3], d[4]);
  }
  if (name == "mttkrp") { need(4); return wl::mttkrp(d[0], d[1], d[2], d[3]); }
  if (name == "ttmc") {
    need(5);
    return wl::ttmc(d[0], d[1], d[2], d[3], d[4]);
  }
  std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
  std::exit(2);
}

int usage() {
  std::printf(
      "usage: tensorlib_gen --workload NAME --dims d0,d1,... \n"
      "                     [--label LBL | --explore perf|power|edp]\n"
      "                     [--rows R --cols C] [--width BITS]\n"
      "                     [--verilog FILE] [--verify]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload, dims, label, explore, verilogPath;
  std::int64_t rows = 16, cols = 16;
  int width = 16;
  bool verify = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) { usage(); std::exit(2); }
      return argv[++i];
    };
    if (a == "--workload") workload = next();
    else if (a == "--dims") dims = next();
    else if (a == "--label") label = next();
    else if (a == "--explore") explore = next();
    else if (a == "--rows") rows = std::stoll(next());
    else if (a == "--cols") cols = std::stoll(next());
    else if (a == "--width") width = std::stoi(next());
    else if (a == "--verilog") verilogPath = next();
    else if (a == "--verify") verify = true;
    else return usage();
  }
  if (workload.empty() || dims.empty() || (label.empty() && explore.empty()))
    return usage();

  const auto algebra = makeWorkload(workload, parseDims(dims));
  stt::ArrayConfig array;
  array.rows = rows;
  array.cols = cols;
  driver::Session session(algebra, array, width);

  std::printf("workload: %s\n", algebra.str().c_str());

  std::optional<driver::DesignReport> report;
  if (!label.empty()) {
    report = session.compileLabel(label);
    if (!report) {
      std::fprintf(stderr, "no transform realizes %s\n", label.c_str());
      return 1;
    }
  } else {
    const driver::Objective obj =
        explore == "power" ? driver::Objective::Power
        : explore == "edp" ? driver::Objective::EnergyDelay
                           : driver::Objective::Performance;
    report = session.compileBest(obj);
    std::printf("explored %zu designs; best for '%s':\n",
                session.exploreAll().size(), explore.c_str());
  }

  std::printf("%s\n", report->summary().c_str());
  std::printf("%s\n", report->spec.describe().c_str());

  if (verify) {
    const bool behavioral = session.verifyBehavioral(*report);
    std::printf("behavioral verification: %s\n", behavioral ? "PASS" : "FAIL");
    bool rtl = false;
    try {
      rtl = session.verifyRtl(*report);
      std::printf("RTL verification: %s\n", rtl ? "PASS" : "FAIL");
    } catch (const Error& e) {
      std::printf("RTL verification: skipped (%s)\n", e.what());
      rtl = true;
    }
    if (!behavioral || !rtl) return 1;
  }

  if (!verilogPath.empty()) {
    const std::string v = session.emitVerilog(*report);
    std::ofstream(verilogPath) << v;
    std::printf("wrote %zu bytes of Verilog to %s\n", v.size(),
                verilogPath.c_str());
  }
  return 0;
}
