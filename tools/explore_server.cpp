// explore_server: batched exploration over a JSON-lines request stream.
//
//   explore_server --file queries.jsonl          # batch from a file
//   cat queries.jsonl | explore_server           # batch from stdin
//   explore_server --serve --snapshot warm.snap  # resident daemon mode
//   explore_server --list-workloads
//
// Two request kinds share one stream (docs/PROTOCOL.md is the full schema):
//
//   * batch query — one operator on one array:
//       {"workload": "gemm", "rows": 8, "cols": 8,
//        "objective": "power", "backend": "fpga", "max_entry": 1}
//   * network query — a whole multi-layer model on shared candidate
//     arrays, marked by a "network" (built-in model) or "network_file"
//     (JSONL model description) field:
//       {"network": "resnet-block", "arrays": "8x8,16x16",
//        "objective": "performance"}
//
// Batch mode runs the whole stream against ONE ExplorationService: plain
// queries as one batch, network queries through a NetworkExplorer borrowing
// the same service, so every request shares enumerations, design-point
// evaluations and the tile-mapping memo. Output is JSON lines, one result
// per request in input order, plus a trailing batch summary with
// service-wide cache stats. A malformed line yields a structured
// {"query": i, "error": "..."} response and the batch continues.
//
// --serve mode wraps an ExplorationDaemon instead: requests are admitted
// into a bounded, per-client-fair queue (or rejected with
// {"error": "overloaded"}), carry optional "deadline_ms"/"client" fields,
// and responses stream back in COMPLETION order keyed by "query". The
// daemon snapshots its warm caches on a timer and on graceful shutdown
// ({"shutdown": true} or EOF) and restores them on start, so a restarted
// server answers warm. tools/chaos_runner drives this mode through
// kill/restart/corrupt cycles.
//
// Exit codes (uniform across the CLIs): 0 success, 1 exploration/runtime
// failure, 2 usage or request-parse errors (including any malformed batch
// line, even though the batch itself still completes).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/daemon.hpp"
#include "driver/network_explorer.hpp"
#include "support/error.hpp"
#include "support/jsonl.hpp"
#include "tensor/network.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: explore_server [--file F] [--threads N] [--max-frontier N]\n"
      "                      [--list-workloads]\n"
      "       explore_server --serve [--snapshot F] [--snapshot-interval-ms N]\n"
      "                      [--queue-bound N] [--client-queue-bound N]\n"
      "                      [--workers N] [--default-deadline-ms N]\n"
      "                      [--threads N] [--max-frontier N]\n"
      "Reads one JSON request per line from --file (default stdin); runs\n"
      "the whole stream as one batched, cached exploration. A line with a\n"
      "'network' or 'network_file' field is a network-level request. With\n"
      "--serve the server stays resident: bounded admission queue, optional\n"
      "deadlines, crash-safe cache snapshots; see docs/PROTOCOL.md.\n");
  return 2;
}

driver::Objective requireObjective(const std::string& name) {
  const auto o = driver::parseObjective(name);
  if (!o)
    fail("unknown objective '" + name +
         "' (expected performance|power|energy-delay)");
  return *o;
}

/// Applies the array fields every request kind shares.
void parseArrayFields(const support::JsonObject& obj, stt::ArrayConfig* array) {
  if (const auto v = obj.getInt("rows")) array->rows = *v;
  if (const auto v = obj.getInt("cols")) array->cols = *v;
  if (const auto v = obj.getDouble("bandwidth_gbps")) array->bandwidthGBps = *v;
  if (const auto v = obj.getDouble("frequency_mhz")) array->frequencyMHz = *v;
  if (const auto v = obj.getInt("data_bytes")) array->dataBytes = *v;
}

driver::ExploreQuery parseQuery(const support::JsonObject& obj) {
  const auto workload = obj.getString("workload");
  if (!workload) fail("query missing required field 'workload'");

  tensor::TensorAlgebra algebra = [&] {
    if (*workload == "gemm" && (obj.has("m") || obj.has("n") || obj.has("k")))
      return tensor::workloads::gemm(obj.getInt("m").value_or(64),
                                     obj.getInt("n").value_or(64),
                                     obj.getInt("k").value_or(64));
    const auto* named = tensor::workloads::findWorkload(*workload);
    if (!named)
      fail("unknown workload '" + *workload + "' (try --list-workloads)");
    return named->algebra;
  }();

  driver::ExploreQuery q(std::move(algebra));
  if (const auto* named = tensor::workloads::findWorkload(*workload))
    q.enumeration.dropAllUnicast = !named->allowAllUnicast;

  if (const auto v = obj.getString("objective"))
    q.objective = requireObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  parseArrayFields(obj, &q.array);
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getInt("deadline_ms")) q.deadlineMs = *v;
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

driver::NetworkQuery parseNetworkQuery(const support::JsonObject& obj) {
  tensor::NetworkSpec network = [&] {
    if (const auto name = obj.getString("network")) {
      const auto* builtin = tensor::workloads::findNetwork(*name);
      if (!builtin)
        fail("unknown network '" + *name +
             "' (see network_explorer --list-models)");
      return *builtin;
    }
    const auto file = obj.getString("network_file");
    if (!file) fail("network request needs 'network' or 'network_file'");
    return tensor::workloads::loadNetworkJsonl(*file);
  }();

  driver::NetworkQuery q(std::move(network));
  stt::ArrayConfig base;
  parseArrayFields(obj, &base);
  if (const auto v = obj.getString("arrays"))
    q.arrays = driver::parseArrayList(*v, base);
  else
    q.arrays = {base};
  if (const auto v = obj.getString("objective"))
    q.objective = requireObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

/// One parsed input line: exactly one of `plain` / `network` / `error`.
struct Request {
  std::optional<driver::ExploreQuery> plain;
  std::optional<driver::NetworkQuery> network;
  std::string name;   ///< workload or model name, echoed in the response
  std::string error;  ///< parse failure for this line (batch continues)
};

std::string errorLine(std::size_t index, const std::string& message) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"error\": \""
     << support::jsonEscape(message) << "\"}";
  return os.str();
}

std::string resultLine(std::size_t index, const std::string& workload,
                       const std::string& backend, const std::string& objective,
                       const driver::QueryResult& r, std::size_t maxFrontier) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"workload\": \""
     << support::jsonEscape(workload) << "\", \"backend\": \"" << backend
     << "\", \"objective\": \"" << objective << "\", \"designs\": " << r.designs
     << ", \"frontier_size\": " << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& rep = r.frontier[i];
    const auto f = rep.figures();
    os << (i ? ", " : "") << "{\"label\": \""
       << support::jsonEscape(rep.spec.label()) << "\", \"cycles\": "
       << rep.perf.totalCycles << ", \"power_mw\": " << f.powerMw
       << ", \"area\": " << f.area << ", \"utilization\": "
       << rep.perf.utilization << "}";
  }
  os << "]";
  if (r.best)
    os << ", \"best\": \"" << support::jsonEscape(r.best->spec.label()) << "\"";
  if (r.timedOut) os << ", \"timed_out\": true";
  os << ", \"cache\": {\"hits\": " << r.cache.hits << ", \"misses\": "
     << r.cache.misses << ", \"pruned\": " << r.cache.pruned
     << ", \"skipped\": " << r.cache.skipped << "}}";
  return os.str();
}

void appendNetworkDesign(std::ostringstream& os,
                         const driver::NetworkQuery& q,
                         const driver::NetworkDesign& d) {
  const auto& array = q.arrays[d.arrayIndex];
  os << "{\"array\": \"" << array.rows << "x" << array.cols
     << "\", \"cycles\": " << d.cost.cycles << ", \"power_mw\": "
     << d.cost.powerMw << ", \"area\": " << d.cost.area
     << ", \"utilization\": " << d.cost.utilization << ", \"assignments\": [";
  for (std::size_t l = 0; l < d.layers.size(); ++l) {
    const auto& layer = d.layers[l];
    os << (l ? ", " : "") << "{\"layer\": \""
       << support::jsonEscape(layer.layer) << "\", \"dataflow\": \""
       << support::jsonEscape(layer.dataflow) << "\", \"cycles\": "
       << layer.cycles << "}";
  }
  os << "]}";
}

std::string networkResultLine(std::size_t index, const std::string& name,
                              const driver::NetworkQuery& q,
                              const driver::NetworkResult& r,
                              std::size_t maxFrontier) {
  driver::QueryCacheCounts cache;
  for (const auto& s : r.layers) {
    cache.hits += s.cache.hits;
    cache.misses += s.cache.misses;
    cache.pruned += s.cache.pruned;
  }
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"network\": \""
     << support::jsonEscape(name) << "\", \"layers\": "
     << q.network.layerCount() << ", \"arrays\": " << q.arrays.size()
     << ", \"backend\": \"" << cost::backendKindName(q.backend)
     << "\", \"objective\": \"" << driver::objectiveName(q.objective)
     << "\", \"designs\": " << r.designs << ", \"frontier_size\": "
     << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) os << ", ";
    appendNetworkDesign(os, q, r.frontier[i]);
  }
  os << "]";
  if (r.best) {
    os << ", \"best\": ";
    appendNetworkDesign(os, q, *r.best);
  }
  os << ", \"cache\": {\"hits\": " << cache.hits << ", \"misses\": "
     << cache.misses << ", \"pruned\": " << cache.pruned << "}}";
  return os.str();
}

/// Service-wide cache summary fragment: eval cache plus the tile-mapping
/// and candidate-matrix memos (so clients can audit all three layers the
/// snapshot persists).
std::string cacheStatsJson(const driver::CacheStats& stats) {
  const auto cand = stt::candidateCacheStats();
  std::ostringstream os;
  os << "{\"hits\": " << stats.hits << ", \"misses\": " << stats.misses
     << ", \"evictions\": " << stats.evictions << ", \"entries\": "
     << stats.entries << ", \"shards\": " << stats.shards
     << ", \"mappings\": {\"hits\": " << stats.mappings.hits
     << ", \"misses\": " << stats.mappings.misses << ", \"evictions\": "
     << stats.mappings.evictions << ", \"entries\": " << stats.mappings.entries
     << "}, \"candidates\": {\"hits\": " << cand.hits << ", \"misses\": "
     << cand.misses << ", \"evictions\": " << cand.evictions
     << ", \"entries\": " << cand.entries << "}}";
  return os.str();
}

// ---- resident daemon mode ---------------------------------------------------

/// Thread-safe line emitter: responses come from daemon worker threads and
/// the read loop; every line is written and flushed atomically so the
/// JSONL stream never interleaves.
class LineOutput {
 public:
  void emit(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  std::mutex mutex_;
};

int serve(const driver::DaemonOptions& daemonOptions, std::size_t maxFrontier) {
  // Declared before the daemon: if an exception escapes the read loop, the
  // daemon destructor's shutdown() still drains queued requests whose
  // completion callbacks call out.emit() — the emitter must outlive them.
  LineOutput out;
  driver::ExplorationDaemon daemon(daemonOptions);
  const auto& restore = daemon.restore();
  std::fprintf(stderr,
               "explore_server: serving (restore %s: %zu evals, %zu mappings, "
               "%zu candidate lists%s%s)\n",
               driver::snapshot::restoreStatusName(restore.status).c_str(),
               restore.evalEntries, restore.mappingEntries,
               restore.candidateLists, restore.message.empty() ? "" : " — ",
               restore.message.c_str());

  std::string line;
  std::size_t index = 0;
  bool shutdownRequested = false;
  while (!shutdownRequested && std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::size_t id = index++;
    try {
      const auto obj = support::parseJsonLine(line);
      if (obj.getBool("shutdown").value_or(false)) {
        shutdownRequested = true;
        break;
      }
      if (obj.getBool("cache_stats").value_or(false)) {
        out.emit("{\"query\": " + std::to_string(id) + ", \"cache\": " +
                 cacheStatsJson(daemon.service().cacheStats()) + "}");
        continue;
      }
      if (obj.has("network") || obj.has("network_file")) {
        // Network requests run synchronously on the read loop (they fan
        // out through the shared service themselves) and bypass admission
        // control; docs/PROTOCOL.md flags this.
        const auto q = parseNetworkQuery(obj);
        driver::NetworkExplorer explorer(daemon.service());
        out.emit(networkResultLine(id, q.network.name(), q,
                                   explorer.explore(q), maxFrontier));
        continue;
      }
      auto query = parseQuery(obj);
      const std::string client = obj.getString("client").value_or("default");
      const std::string workload = *obj.getString("workload");
      const std::string backend = cost::backendKindName(query.backend);
      const std::string objective = driver::objectiveName(query.objective);
      const auto admission = daemon.submit(
          client, std::move(query),
          [&out, id, workload, backend, objective,
           maxFrontier](driver::ExplorationDaemon::Outcome outcome) {
            if (outcome.failed()) {
              out.emit(errorLine(id, outcome.error));
            } else {
              out.emit(resultLine(id, workload, backend, objective,
                                  *outcome.result, maxFrontier));
            }
          });
      if (admission != driver::Admission::Accepted)
        out.emit(errorLine(id, driver::admissionName(admission)));
    } catch (const Error& e) {
      out.emit(errorLine(id, e.what()));
    }
  }

  // Graceful shutdown (explicit request or EOF): drain admitted work, join
  // the workers, write the final snapshot, then report what happened.
  daemon.shutdown();
  const auto stats = daemon.stats();
  std::ostringstream os;
  os << "{\"shutdown\": {\"accepted\": " << stats.accepted
     << ", \"rejected_overloaded\": " << stats.rejectedOverloaded
     << ", \"completed\": " << stats.completed << ", \"failed\": "
     << stats.failed << ", \"timed_out\": " << stats.timedOut
     << ", \"snapshots_saved\": " << stats.snapshotsSaved
     << ", \"snapshot_failures\": " << stats.snapshotFailures
     << ", \"cache\": " << cacheStatsJson(daemon.service().cacheStats())
     << "}}";
  out.emit(os.str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::size_t threads = 0, maxFrontier = 16;
  bool listWorkloads = false;
  bool serveMode = false;
  driver::DaemonOptions daemonOptions;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--file") file = next();
      else if (a == "--threads") threads = std::stoull(next());
      else if (a == "--max-frontier") maxFrontier = std::stoull(next());
      else if (a == "--list-workloads") listWorkloads = true;
      else if (a == "--serve") serveMode = true;
      else if (a == "--snapshot") daemonOptions.snapshotPath = next();
      else if (a == "--snapshot-interval-ms")
        daemonOptions.snapshotIntervalMs = std::stoll(next());
      else if (a == "--queue-bound") daemonOptions.queueBound = std::stoull(next());
      else if (a == "--client-queue-bound")
        daemonOptions.perClientQueueBound = std::stoull(next());
      else if (a == "--workers") daemonOptions.workers = std::stoull(next());
      else if (a == "--default-deadline-ms")
        daemonOptions.defaultDeadlineMs = std::stoll(next());
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  if (listWorkloads) {
    for (const auto& w : tensor::workloads::allWorkloads())
      std::printf("%-20s %s\n", w.name.c_str(), w.algebra.str().c_str());
    return 0;
  }

  if (serveMode) {
    daemonOptions.service.threads = threads;
    try {
      return serve(daemonOptions, maxFrontier);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  std::ifstream fileStream;
  if (!file.empty()) {
    fileStream.open(file);
    if (!fileStream) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : fileStream;

  // Parse the whole stream up front. A malformed line becomes a Request
  // carrying its error: it still occupies its input-order slot (so "query"
  // indices line up), gets a structured error response, and the rest of
  // the batch runs; the process exits 2 at the end.
  std::vector<Request> requests;
  std::size_t parseErrors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Request request;
    try {
      const auto obj = support::parseJsonLine(line);
      if (obj.has("network") || obj.has("network_file")) {
        request.network = parseNetworkQuery(obj);
        request.name = request.network->network.name();
      } else {
        request.plain = parseQuery(obj);
        request.name = *obj.getString("workload");
      }
    } catch (const Error& e) {
      request.error = e.what();
      ++parseErrors;
    }
    requests.push_back(std::move(request));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no requests on input\n");
    return 2;
  }

  try {
    driver::ServiceOptions options;
    options.threads = threads;
    driver::ExplorationService service(options);

    // Plain queries run as ONE batch; network queries run through a
    // NetworkExplorer borrowing the same service, so the whole stream
    // shares one evaluation cache. Responses print in input order.
    std::vector<driver::ExploreQuery> batch;
    for (const Request& r : requests)
      if (r.plain) batch.push_back(*r.plain);
    const auto batchResults = service.runBatch(batch);

    driver::NetworkExplorer explorer(service);
    std::size_t nextPlain = 0;
    std::size_t queries = 0, networks = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const Request& r = requests[i];
      if (!r.error.empty()) {
        std::printf("%s\n", errorLine(i, r.error).c_str());
      } else if (r.plain) {
        ++queries;
        std::printf("%s\n",
                    resultLine(i, r.name,
                               cost::backendKindName(r.plain->backend),
                               driver::objectiveName(r.plain->objective),
                               batchResults[nextPlain++], maxFrontier)
                        .c_str());
      } else {
        ++networks;
        const auto result = explorer.explore(*r.network);
        std::printf("%s\n", networkResultLine(i, r.name, *r.network, result,
                                              maxFrontier)
                                .c_str());
      }
    }

    std::printf(
        "{\"batch\": {\"queries\": %zu, \"networks\": %zu, \"errors\": %zu, "
        "\"cache\": %s}}\n",
        queries, networks, parseErrors,
        cacheStatsJson(service.cacheStats()).c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return parseErrors == 0 ? 0 : 2;
}
