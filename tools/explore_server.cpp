// explore_server: batched exploration over a JSON-lines query stream.
//
//   explore_server --file queries.jsonl          # batch from a file
//   cat queries.jsonl | explore_server           # batch from stdin
//   explore_server --list-workloads
//
// Each input line is one flat JSON query:
//   {"workload": "gemm", "rows": 8, "cols": 8,
//    "objective": "power", "backend": "fpga", "max_entry": 1}
// Fields: workload (required; a scenario-table name, "gemm" also accepts
// m/n/k extents), objective (performance|power|energy-delay), backend
// (asic|fpga), rows/cols/bandwidth_gbps/frequency_mhz/data_bytes,
// data_width (ASIC), fp32/vector_lanes/placement_optimized (FPGA),
// max_entry (enumeration range).
//
// The whole stream is executed as ONE ExplorationService batch, so
// overlapping queries share enumerations and design-point evaluations.
// Output is JSON lines: one result per query (Pareto frontier over
// cycles/power/area, objective winner, per-query cache traffic) plus a
// trailing batch summary with service-wide cache stats.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/explore_service.hpp"
#include "support/error.hpp"
#include "support/jsonl.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: explore_server [--file F] [--threads N] [--max-frontier N]\n"
      "                      [--list-workloads]\n"
      "Reads one JSON query per line from --file (default stdin); runs the\n"
      "whole stream as one batched, cached exploration.\n");
  return 2;
}

driver::Objective parseObjective(const std::string& name) {
  if (name == "performance") return driver::Objective::Performance;
  if (name == "power") return driver::Objective::Power;
  if (name == "energy-delay") return driver::Objective::EnergyDelay;
  fail("unknown objective '" + name +
       "' (expected performance|power|energy-delay)");
}

std::string objectiveName(driver::Objective o) {
  switch (o) {
    case driver::Objective::Performance: return "performance";
    case driver::Objective::Power: return "power";
    case driver::Objective::EnergyDelay: return "energy-delay";
  }
  return "?";
}

driver::ExploreQuery parseQuery(const support::JsonObject& obj) {
  const auto workload = obj.getString("workload");
  if (!workload) fail("query missing required field 'workload'");

  tensor::TensorAlgebra algebra = [&] {
    if (*workload == "gemm" && (obj.has("m") || obj.has("n") || obj.has("k")))
      return tensor::workloads::gemm(obj.getInt("m").value_or(64),
                                     obj.getInt("n").value_or(64),
                                     obj.getInt("k").value_or(64));
    const auto* named = tensor::workloads::findWorkload(*workload);
    if (!named)
      fail("unknown workload '" + *workload + "' (try --list-workloads)");
    return named->algebra;
  }();

  driver::ExploreQuery q(std::move(algebra));
  if (const auto* named = tensor::workloads::findWorkload(*workload))
    q.enumeration.dropAllUnicast = !named->allowAllUnicast;

  if (const auto v = obj.getString("objective")) q.objective = parseObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  if (const auto v = obj.getInt("rows")) q.array.rows = *v;
  if (const auto v = obj.getInt("cols")) q.array.cols = *v;
  if (const auto v = obj.getDouble("bandwidth_gbps")) q.array.bandwidthGBps = *v;
  if (const auto v = obj.getDouble("frequency_mhz")) q.array.frequencyMHz = *v;
  if (const auto v = obj.getInt("data_bytes")) q.array.dataBytes = *v;
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

void printResultLine(std::size_t index, const std::string& workload,
                     const driver::ExploreQuery& q,
                     const driver::QueryResult& r, std::size_t maxFrontier) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"workload\": \""
     << support::jsonEscape(workload) << "\", \"backend\": \""
     << cost::backendKindName(q.backend) << "\", \"objective\": \""
     << objectiveName(q.objective) << "\", \"designs\": " << r.designs
     << ", \"frontier_size\": " << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& rep = r.frontier[i];
    const auto f = rep.figures();
    os << (i ? ", " : "") << "{\"label\": \""
       << support::jsonEscape(rep.spec.label()) << "\", \"cycles\": "
       << rep.perf.totalCycles << ", \"power_mw\": " << f.powerMw
       << ", \"area\": " << f.area << ", \"utilization\": "
       << rep.perf.utilization << "}";
  }
  os << "]";
  if (r.best)
    os << ", \"best\": \"" << support::jsonEscape(r.best->spec.label()) << "\"";
  os << ", \"cache\": {\"hits\": " << r.cache.hits << ", \"misses\": "
     << r.cache.misses << "}}";
  std::printf("%s\n", os.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::size_t threads = 0, maxFrontier = 16;
  bool listWorkloads = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--file") file = next();
      else if (a == "--threads") threads = std::stoull(next());
      else if (a == "--max-frontier") maxFrontier = std::stoull(next());
      else if (a == "--list-workloads") listWorkloads = true;
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  if (listWorkloads) {
    for (const auto& w : tensor::workloads::allWorkloads())
      std::printf("%-20s %s\n", w.name.c_str(), w.algebra.str().c_str());
    return 0;
  }

  std::ifstream fileStream;
  if (!file.empty()) {
    fileStream.open(file);
    if (!fileStream) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : fileStream;

  std::vector<driver::ExploreQuery> batch;
  std::vector<std::string> workloadNames;
  std::string line;
  try {
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto obj = support::parseJsonLine(line);
      batch.push_back(parseQuery(obj));
      workloadNames.push_back(*obj.getString("workload"));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (batch.empty()) {
    std::fprintf(stderr, "no queries on input\n");
    return 2;
  }

  try {
    driver::ServiceOptions options;
    options.threads = threads;
    driver::ExplorationService service(options);
    const auto results = service.runBatch(batch);
    for (std::size_t i = 0; i < results.size(); ++i)
      printResultLine(i, workloadNames[i], batch[i], results[i], maxFrontier);
    const auto stats = service.cacheStats();
    std::printf(
        "{\"batch\": {\"queries\": %zu, \"cache\": {\"hits\": %llu, "
        "\"misses\": %llu, \"evictions\": %llu, \"entries\": %zu, "
        "\"shards\": %zu}}}\n",
        results.size(), static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions), stats.entries,
        stats.shards);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
