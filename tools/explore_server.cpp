// explore_server: batched exploration over a JSON-lines request stream.
//
//   explore_server --file queries.jsonl          # batch from a file
//   cat queries.jsonl | explore_server           # batch from stdin
//   explore_server --list-workloads
//
// Two request kinds share one stream (docs/PROTOCOL.md is the full schema):
//
//   * batch query — one operator on one array:
//       {"workload": "gemm", "rows": 8, "cols": 8,
//        "objective": "power", "backend": "fpga", "max_entry": 1}
//   * network query — a whole multi-layer model on shared candidate
//     arrays, marked by a "network" (built-in model) or "network_file"
//     (JSONL model description) field:
//       {"network": "resnet-block", "arrays": "8x8,16x16",
//        "objective": "performance"}
//
// The whole stream runs against ONE ExplorationService: plain queries as
// one batch, network queries through a NetworkExplorer borrowing the same
// service, so every request shares enumerations, design-point evaluations
// and the tile-mapping memo. Output is JSON lines, one result per request
// in input order, plus a trailing batch summary with service-wide cache
// stats.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/network_explorer.hpp"
#include "support/error.hpp"
#include "support/jsonl.hpp"
#include "tensor/network.hpp"
#include "tensor/workloads.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: explore_server [--file F] [--threads N] [--max-frontier N]\n"
      "                      [--list-workloads]\n"
      "Reads one JSON request per line from --file (default stdin); runs\n"
      "the whole stream as one batched, cached exploration. A line with a\n"
      "'network' or 'network_file' field is a network-level request; see\n"
      "docs/PROTOCOL.md.\n");
  return 2;
}

driver::Objective requireObjective(const std::string& name) {
  const auto o = driver::parseObjective(name);
  if (!o)
    fail("unknown objective '" + name +
         "' (expected performance|power|energy-delay)");
  return *o;
}

/// Applies the array fields every request kind shares.
void parseArrayFields(const support::JsonObject& obj, stt::ArrayConfig* array) {
  if (const auto v = obj.getInt("rows")) array->rows = *v;
  if (const auto v = obj.getInt("cols")) array->cols = *v;
  if (const auto v = obj.getDouble("bandwidth_gbps")) array->bandwidthGBps = *v;
  if (const auto v = obj.getDouble("frequency_mhz")) array->frequencyMHz = *v;
  if (const auto v = obj.getInt("data_bytes")) array->dataBytes = *v;
}

driver::ExploreQuery parseQuery(const support::JsonObject& obj) {
  const auto workload = obj.getString("workload");
  if (!workload) fail("query missing required field 'workload'");

  tensor::TensorAlgebra algebra = [&] {
    if (*workload == "gemm" && (obj.has("m") || obj.has("n") || obj.has("k")))
      return tensor::workloads::gemm(obj.getInt("m").value_or(64),
                                     obj.getInt("n").value_or(64),
                                     obj.getInt("k").value_or(64));
    const auto* named = tensor::workloads::findWorkload(*workload);
    if (!named)
      fail("unknown workload '" + *workload + "' (try --list-workloads)");
    return named->algebra;
  }();

  driver::ExploreQuery q(std::move(algebra));
  if (const auto* named = tensor::workloads::findWorkload(*workload))
    q.enumeration.dropAllUnicast = !named->allowAllUnicast;

  if (const auto v = obj.getString("objective"))
    q.objective = requireObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  parseArrayFields(obj, &q.array);
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

driver::NetworkQuery parseNetworkQuery(const support::JsonObject& obj) {
  tensor::NetworkSpec network = [&] {
    if (const auto name = obj.getString("network")) {
      const auto* builtin = tensor::workloads::findNetwork(*name);
      if (!builtin)
        fail("unknown network '" + *name +
             "' (see network_explorer --list-models)");
      return *builtin;
    }
    const auto file = obj.getString("network_file");
    if (!file) fail("network request needs 'network' or 'network_file'");
    return tensor::workloads::loadNetworkJsonl(*file);
  }();

  driver::NetworkQuery q(std::move(network));
  stt::ArrayConfig base;
  parseArrayFields(obj, &base);
  if (const auto v = obj.getString("arrays"))
    q.arrays = driver::parseArrayList(*v, base);
  else
    q.arrays = {base};
  if (const auto v = obj.getString("objective"))
    q.objective = requireObjective(*v);
  if (const auto v = obj.getString("backend")) {
    const auto kind = cost::parseBackendKind(*v);
    if (!kind) fail("unknown backend '" + *v + "' (expected asic|fpga)");
    q.backend = *kind;
  }
  if (const auto v = obj.getInt("data_width")) q.dataWidth = static_cast<int>(*v);
  if (const auto v = obj.getInt("max_entry"))
    q.enumeration.maxEntry = static_cast<int>(*v);
  if (const auto v = obj.getBool("fp32")) q.fpga.fp32 = *v;
  if (const auto v = obj.getInt("vector_lanes")) q.fpga.vectorLanes = *v;
  if (const auto v = obj.getBool("placement_optimized"))
    q.fpga.placementOptimized = *v;
  return q;
}

/// One parsed input line: exactly one of `plain` / `network` is set.
struct Request {
  std::optional<driver::ExploreQuery> plain;
  std::optional<driver::NetworkQuery> network;
  std::string name;  ///< workload or model name, echoed in the response
};

std::string resultLine(std::size_t index, const std::string& workload,
                       const driver::ExploreQuery& q,
                       const driver::QueryResult& r, std::size_t maxFrontier) {
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"workload\": \""
     << support::jsonEscape(workload) << "\", \"backend\": \""
     << cost::backendKindName(q.backend) << "\", \"objective\": \""
     << driver::objectiveName(q.objective) << "\", \"designs\": " << r.designs
     << ", \"frontier_size\": " << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& rep = r.frontier[i];
    const auto f = rep.figures();
    os << (i ? ", " : "") << "{\"label\": \""
       << support::jsonEscape(rep.spec.label()) << "\", \"cycles\": "
       << rep.perf.totalCycles << ", \"power_mw\": " << f.powerMw
       << ", \"area\": " << f.area << ", \"utilization\": "
       << rep.perf.utilization << "}";
  }
  os << "]";
  if (r.best)
    os << ", \"best\": \"" << support::jsonEscape(r.best->spec.label()) << "\"";
  os << ", \"cache\": {\"hits\": " << r.cache.hits << ", \"misses\": "
     << r.cache.misses << ", \"pruned\": " << r.cache.pruned << "}}";
  return os.str();
}

void appendNetworkDesign(std::ostringstream& os,
                         const driver::NetworkQuery& q,
                         const driver::NetworkDesign& d) {
  const auto& array = q.arrays[d.arrayIndex];
  os << "{\"array\": \"" << array.rows << "x" << array.cols
     << "\", \"cycles\": " << d.cost.cycles << ", \"power_mw\": "
     << d.cost.powerMw << ", \"area\": " << d.cost.area
     << ", \"utilization\": " << d.cost.utilization << ", \"assignments\": [";
  for (std::size_t l = 0; l < d.layers.size(); ++l) {
    const auto& layer = d.layers[l];
    os << (l ? ", " : "") << "{\"layer\": \""
       << support::jsonEscape(layer.layer) << "\", \"dataflow\": \""
       << support::jsonEscape(layer.dataflow) << "\", \"cycles\": "
       << layer.cycles << "}";
  }
  os << "]}";
}

std::string networkResultLine(std::size_t index, const std::string& name,
                              const driver::NetworkQuery& q,
                              const driver::NetworkResult& r,
                              std::size_t maxFrontier) {
  driver::QueryCacheCounts cache;
  for (const auto& s : r.layers) {
    cache.hits += s.cache.hits;
    cache.misses += s.cache.misses;
    cache.pruned += s.cache.pruned;
  }
  std::ostringstream os;
  os << "{\"query\": " << index << ", \"network\": \""
     << support::jsonEscape(name) << "\", \"layers\": "
     << q.network.layerCount() << ", \"arrays\": " << q.arrays.size()
     << ", \"backend\": \"" << cost::backendKindName(q.backend)
     << "\", \"objective\": \"" << driver::objectiveName(q.objective)
     << "\", \"designs\": " << r.designs << ", \"frontier_size\": "
     << r.frontier.size() << ", \"frontier\": [";
  const std::size_t shown = std::min(maxFrontier, r.frontier.size());
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) os << ", ";
    appendNetworkDesign(os, q, r.frontier[i]);
  }
  os << "]";
  if (r.best) {
    os << ", \"best\": ";
    appendNetworkDesign(os, q, *r.best);
  }
  os << ", \"cache\": {\"hits\": " << cache.hits << ", \"misses\": "
     << cache.misses << ", \"pruned\": " << cache.pruned << "}}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::size_t threads = 0, maxFrontier = 16;
  bool listWorkloads = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--file") file = next();
      else if (a == "--threads") threads = std::stoull(next());
      else if (a == "--max-frontier") maxFrontier = std::stoull(next());
      else if (a == "--list-workloads") listWorkloads = true;
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  if (listWorkloads) {
    for (const auto& w : tensor::workloads::allWorkloads())
      std::printf("%-20s %s\n", w.name.c_str(), w.algebra.str().c_str());
    return 0;
  }

  std::ifstream fileStream;
  if (!file.empty()) {
    fileStream.open(file);
    if (!fileStream) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : fileStream;

  std::vector<Request> requests;
  std::string line;
  try {
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto obj = support::parseJsonLine(line);
      Request request;
      if (obj.has("network") || obj.has("network_file")) {
        request.network = parseNetworkQuery(obj);
        request.name = request.network->network.name();
      } else {
        request.plain = parseQuery(obj);
        request.name = *obj.getString("workload");
      }
      requests.push_back(std::move(request));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no requests on input\n");
    return 2;
  }

  try {
    driver::ServiceOptions options;
    options.threads = threads;
    driver::ExplorationService service(options);

    // Plain queries run as ONE batch; network queries run through a
    // NetworkExplorer borrowing the same service, so the whole stream
    // shares one evaluation cache. Responses print in input order.
    std::vector<driver::ExploreQuery> batch;
    for (const Request& r : requests)
      if (r.plain) batch.push_back(*r.plain);
    const auto batchResults = service.runBatch(batch);

    driver::NetworkExplorer explorer(service);
    std::size_t nextPlain = 0;
    std::size_t queries = 0, networks = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const Request& r = requests[i];
      if (r.plain) {
        ++queries;
        std::printf("%s\n", resultLine(i, r.name, *r.plain,
                                       batchResults[nextPlain++], maxFrontier)
                                .c_str());
      } else {
        ++networks;
        const auto result = explorer.explore(*r.network);
        std::printf("%s\n", networkResultLine(i, r.name, *r.network, result,
                                              maxFrontier)
                                .c_str());
      }
    }

    const auto stats = service.cacheStats();
    std::printf(
        "{\"batch\": {\"queries\": %zu, \"networks\": %zu, \"cache\": "
        "{\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
        "\"entries\": %zu, \"shards\": %zu}}}\n",
        queries, networks, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.evictions), stats.entries,
        stats.shards);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
