// explore_server: batched exploration over a JSON-lines request stream.
//
//   explore_server --file queries.jsonl          # batch from a file
//   cat queries.jsonl | explore_server           # batch from stdin
//   explore_server --serve --snapshot warm.snap  # resident daemon, stdio
//   explore_server --serve --port 7421           # resident daemon, TCP
//   explore_server --serve --unix-socket /tmp/explore.sock
//   explore_server --list-workloads
//
// Three request kinds share one stream (docs/PROTOCOL.md is the full
// schema):
//
//   * batch query — one operator on one array:
//       {"workload": "gemm", "rows": 8, "cols": 8,
//        "objective": "power", "backend": "fpga", "max_entry": 1}
//   * network query — a whole multi-layer model on shared candidate
//     arrays, marked by a "network" (built-in model) or "network_file"
//     (JSONL model description) field:
//       {"network": "resnet-block", "arrays": "8x8,16x16",
//        "objective": "performance"}
//   * model-conformance request — run the stitched-model differential
//     oracle (explore every layer, stitch the winners into one compiled
//     netlist, execute, compare element-exactly against the composed
//     dense reference), marked by a "model_conformance" field:
//       {"model_conformance": "mlp-3", "data_seed": 7, "threads": 8}
//
// Batch mode runs the whole stream against ONE ExplorationService: plain
// queries as one batch, network queries through a NetworkExplorer borrowing
// the same service, so every request shares enumerations, design-point
// evaluations and the tile-mapping memo. Output is JSON lines, one result
// per request in input order, plus a trailing batch summary with
// service-wide cache stats. A malformed line yields a structured
// {"query": i, "error": "..."} response and the batch continues.
//
// --serve mode wraps an ExplorationDaemon instead: requests are admitted
// into a bounded, per-client-fair queue (or rejected with
// {"error": "overloaded"}), carry optional "deadline_ms"/"client" fields,
// and responses stream back in COMPLETION order keyed by "query". The
// daemon snapshots its warm caches on a timer and on graceful shutdown
// ({"shutdown": true} or EOF) and restores them on start, so a restarted
// server answers warm. With --port and/or --unix-socket the daemon serves
// N concurrent socket connections instead of stdio, each connection its
// own fairness client (driver/socket_server.*); without them it speaks
// JSONL on stdin/stdout exactly as before. tools/chaos_runner drives both
// front-ends through kill/restart/corrupt/disconnect cycles.
//
// Exit codes (uniform across the CLIs): 0 success, 1 exploration/runtime
// failure, 2 usage or request-parse errors (including any malformed batch
// line, even though the batch itself still completes).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "driver/daemon.hpp"
#include "driver/network_explorer.hpp"
#include "driver/socket_server.hpp"
#include "driver/wire.hpp"
#include "support/error.hpp"
#include "support/jsonl.hpp"
#include "tensor/workloads.hpp"
#include "verify/model_conformance.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: explore_server [--file F] [--threads N] [--max-frontier N]\n"
      "                      [--list-workloads]\n"
      "       explore_server --serve [--snapshot F] [--snapshot-interval-ms N]\n"
      "                      [--queue-bound N] [--client-queue-bound N]\n"
      "                      [--workers N] [--default-deadline-ms N]\n"
      "                      [--threads N] [--max-frontier N]\n"
      "                      [--port N] [--bind ADDR] [--unix-socket PATH]\n"
      "                      [--write-queue-bound N] [--send-buffer-bytes N]\n"
      "Reads one JSON request per line from --file (default stdin); runs\n"
      "the whole stream as one batched, cached exploration. A line with a\n"
      "'network' or 'network_file' field is a network-level request; a line\n"
      "with a 'model_conformance' field runs the stitched-model oracle. With\n"
      "--serve the server stays resident: bounded admission queue, optional\n"
      "deadlines, crash-safe cache snapshots; see docs/PROTOCOL.md. --port\n"
      "(0 = ephemeral) and/or --unix-socket serve concurrent socket\n"
      "connections instead of stdio.\n");
  return 2;
}

void reportRestore(const driver::ExplorationDaemon& daemon) {
  const auto& restore = daemon.restore();
  std::fprintf(stderr,
               "explore_server: serving (restore %s: %zu evals, %zu mappings, "
               "%zu candidate lists%s%s)\n",
               driver::snapshot::restoreStatusName(restore.status).c_str(),
               restore.evalEntries, restore.mappingEntries,
               restore.candidateLists, restore.message.empty() ? "" : " — ",
               restore.message.c_str());
}

// ---- resident daemon mode, stdio front-end ----------------------------------

/// Thread-safe line emitter: responses come from daemon worker threads and
/// the read loop; every line is written and flushed atomically so the
/// JSONL stream never interleaves.
class LineOutput {
 public:
  void emit(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  std::mutex mutex_;
};

int serveStdio(const driver::DaemonOptions& daemonOptions,
               std::size_t maxFrontier) {
  // Declared before the daemon: if an exception escapes the read loop, the
  // daemon destructor's shutdown() still drains queued requests whose
  // completion callbacks call out.emit() — the emitter must outlive them.
  LineOutput out;
  driver::ExplorationDaemon daemon(daemonOptions);
  reportRestore(daemon);

  std::string line;
  std::size_t index = 0;
  bool shutdownRequested = false;
  while (!shutdownRequested && std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::size_t id = index++;
    try {
      auto request = driver::wire::parseRequest(support::parseJsonLine(line));
      switch (request.kind) {
        case driver::wire::Request::Kind::Shutdown:
          shutdownRequested = true;
          break;
        case driver::wire::Request::Kind::CacheStats:
          out.emit("{\"query\": " + std::to_string(id) + ", \"cache\": " +
                   driver::wire::cacheStatsJson(daemon.service().cacheStats()) +
                   "}");
          break;
        case driver::wire::Request::Kind::Network: {
          // Network requests run synchronously on the read loop (they fan
          // out through the shared service themselves) and bypass admission
          // control; docs/PROTOCOL.md flags this.
          driver::NetworkExplorer explorer(daemon.service());
          out.emit(driver::wire::networkResultLine(
              id, request.name, *request.network,
              explorer.explore(*request.network), maxFrontier));
          break;
        }
        case driver::wire::Request::Kind::ModelConformance:
          // The stitched-model oracle owns its own ExplorationService (the
          // verdict must not depend on this daemon's warm caches), so it
          // runs synchronously on the read loop like network requests.
          out.emit(driver::wire::modelConformanceResultLine(
              id, verify::checkModel(*request.model, request.modelOptions)));
          break;
        case driver::wire::Request::Kind::Query: {
          const std::string workload = request.name;
          const std::string backend =
              cost::backendKindName(request.query->backend);
          const std::string objective =
              driver::objectiveName(request.query->objective);
          const auto admission = daemon.submit(
              request.client, std::move(*request.query),
              [&out, id, workload, backend, objective,
               maxFrontier](driver::ExplorationDaemon::Outcome outcome) {
                if (outcome.failed()) {
                  out.emit(driver::wire::errorLine(id, outcome.error));
                } else {
                  out.emit(driver::wire::resultLine(id, workload, backend,
                                                    objective, *outcome.result,
                                                    maxFrontier));
                }
              });
          if (admission != driver::Admission::Accepted)
            out.emit(driver::wire::errorLine(id, driver::admissionName(admission)));
          break;
        }
      }
    } catch (const Error& e) {
      out.emit(driver::wire::errorLine(id, e.what()));
    }
  }

  // Graceful shutdown (explicit request or EOF): drain admitted work, join
  // the workers, write the final snapshot, then report what happened.
  daemon.shutdown();
  out.emit(driver::wire::shutdownSummaryLine(daemon.stats(),
                                             daemon.service().cacheStats()));
  return 0;
}

// ---- resident daemon mode, socket front-end ---------------------------------

int serveSocket(const driver::DaemonOptions& daemonOptions,
                const driver::SocketServerOptions& socketOptions) {
  driver::ExplorationDaemon daemon(daemonOptions);
  reportRestore(daemon);
  driver::SocketServer server(daemon, socketOptions);
  if (!server.start()) {
    std::fprintf(stderr, "error: %s\n", server.lastError().c_str());
    return 1;
  }
  if (server.port() >= 0)
    std::fprintf(stderr, "explore_server: listening on %s:%d\n",
                 socketOptions.bindAddress.c_str(), server.port());
  if (!socketOptions.unixSocketPath.empty())
    std::fprintf(stderr, "explore_server: listening on unix socket %s\n",
                 socketOptions.unixSocketPath.c_str());

  // Some connection sends {"shutdown": true}: stop accepting and reading,
  // let every admitted request finish and every writer flush, take the
  // daemon down (final snapshot), then deliver the summary line to the
  // connection that asked.
  server.waitForShutdownRequest();
  server.drain();
  daemon.shutdown();
  server.close(driver::wire::shutdownSummaryLine(
      daemon.stats(), daemon.service().cacheStats()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::size_t threads = 0, maxFrontier = 16;
  bool listWorkloads = false;
  bool serveMode = false;
  driver::DaemonOptions daemonOptions;
  driver::SocketServerOptions socketOptions;
  socketOptions.port = -1;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--file") file = next();
      else if (a == "--threads") threads = std::stoull(next());
      else if (a == "--max-frontier") maxFrontier = std::stoull(next());
      else if (a == "--list-workloads") listWorkloads = true;
      else if (a == "--serve") serveMode = true;
      else if (a == "--snapshot") daemonOptions.snapshotPath = next();
      else if (a == "--snapshot-interval-ms")
        daemonOptions.snapshotIntervalMs = std::stoll(next());
      else if (a == "--queue-bound") daemonOptions.queueBound = std::stoull(next());
      else if (a == "--client-queue-bound")
        daemonOptions.perClientQueueBound = std::stoull(next());
      else if (a == "--workers") daemonOptions.workers = std::stoull(next());
      else if (a == "--default-deadline-ms")
        daemonOptions.defaultDeadlineMs = std::stoll(next());
      else if (a == "--port") socketOptions.port = std::stoi(next());
      else if (a == "--bind") socketOptions.bindAddress = next();
      else if (a == "--unix-socket") socketOptions.unixSocketPath = next();
      else if (a == "--write-queue-bound")
        socketOptions.writeQueueBound = std::stoull(next());
      else if (a == "--send-buffer-bytes")
        socketOptions.sendBufferBytes = std::stoi(next());
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  if (listWorkloads) {
    for (const auto& w : tensor::workloads::allWorkloads())
      std::printf("%-20s %s\n", w.name.c_str(), w.algebra.str().c_str());
    return 0;
  }

  if (serveMode) {
    daemonOptions.service.threads = threads;
    socketOptions.maxFrontier = maxFrontier;
    const bool socketFrontend =
        socketOptions.port >= 0 || !socketOptions.unixSocketPath.empty();
    try {
      return socketFrontend ? serveSocket(daemonOptions, socketOptions)
                            : serveStdio(daemonOptions, maxFrontier);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  std::ifstream fileStream;
  if (!file.empty()) {
    fileStream.open(file);
    if (!fileStream) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
  }
  std::istream& in = file.empty() ? std::cin : fileStream;

  /// One parsed input line: exactly one of `request` / `error`.
  struct Parsed {
    std::optional<driver::wire::Request> request;
    std::string error;  ///< parse failure for this line (batch continues)
  };

  // Parse the whole stream up front. A malformed line becomes a Parsed
  // carrying its error: it still occupies its input-order slot (so "query"
  // indices line up), gets a structured error response, and the rest of
  // the batch runs; the process exits 2 at the end.
  std::vector<Parsed> requests;
  std::size_t parseErrors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Parsed parsed;
    try {
      auto request = driver::wire::parseRequest(support::parseJsonLine(line));
      if (request.kind == driver::wire::Request::Kind::Shutdown ||
          request.kind == driver::wire::Request::Kind::CacheStats)
        fail("request is only available in --serve mode");
      parsed.request = std::move(request);
    } catch (const Error& e) {
      parsed.error = e.what();
      ++parseErrors;
    }
    requests.push_back(std::move(parsed));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no requests on input\n");
    return 2;
  }

  try {
    driver::ServiceOptions options;
    options.threads = threads;
    driver::ExplorationService service(options);

    // Plain queries run as ONE batch; network queries run through a
    // NetworkExplorer borrowing the same service, so the whole stream
    // shares one evaluation cache. Responses print in input order.
    std::vector<driver::ExploreQuery> batch;
    for (const Parsed& p : requests)
      if (p.request && p.request->kind == driver::wire::Request::Kind::Query)
        batch.push_back(*p.request->query);
    const auto batchResults = service.runBatch(batch);

    driver::NetworkExplorer explorer(service);
    std::size_t nextPlain = 0;
    std::size_t queries = 0, networks = 0, models = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const Parsed& p = requests[i];
      if (!p.error.empty()) {
        std::printf("%s\n", driver::wire::errorLine(i, p.error).c_str());
      } else if (p.request->kind ==
                 driver::wire::Request::Kind::ModelConformance) {
        ++models;
        std::printf("%s\n",
                    driver::wire::modelConformanceResultLine(
                        i, verify::checkModel(*p.request->model,
                                              p.request->modelOptions))
                        .c_str());
      } else if (p.request->kind == driver::wire::Request::Kind::Query) {
        ++queries;
        std::printf(
            "%s\n",
            driver::wire::resultLine(
                i, p.request->name,
                cost::backendKindName(p.request->query->backend),
                driver::objectiveName(p.request->query->objective),
                batchResults[nextPlain++], maxFrontier)
                .c_str());
      } else {
        ++networks;
        const auto result = explorer.explore(*p.request->network);
        std::printf("%s\n",
                    driver::wire::networkResultLine(i, p.request->name,
                                                    *p.request->network, result,
                                                    maxFrontier)
                        .c_str());
      }
    }

    std::printf(
        "{\"batch\": {\"queries\": %zu, \"networks\": %zu, "
        "\"model_conformance\": %zu, \"errors\": %zu, \"cache\": %s}}\n",
        queries, networks, models, parseErrors,
        driver::wire::cacheStatsJson(service.cacheStats()).c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return parseErrors == 0 ? 0 : 2;
}
