#!/usr/bin/env bash
# Docs CI: keeps README/docs/ROADMAP honest without any external tooling.
#
#   1. Link check     — every relative markdown link resolves to a file.
#   2. Snippet check  — every `build/<tool>` a doc names has a source file,
#                       and every --flag on that line exists verbatim in
#                       that tool's source (so docs can't document flags
#                       that were renamed or never existed).
#   3. Sync check     — the example JSONL files embedded in
#                       docs/PROTOCOL.md match the committed files in
#                       examples/ line for line.
#
# Usage: tools/check_docs.sh   (from anywhere; exits 1 on any failure)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

docs="README.md ROADMAP.md"
for f in docs/*.md; do docs="$docs $f"; done

fail=0
err() { echo "check_docs: $1" >&2; fail=1; }

# --- 1. relative markdown links resolve ------------------------------------
for doc in $docs; do
  dir="$(dirname "$doc")"
  for target in $(grep -oE '\]\([^) ]+\)' "$doc" | sed 's/^](//; s/)$//'); do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      err "$doc links to missing file '$target'"
    fi
  done
done

# --- 2. documented tools and flags exist -----------------------------------
source_for_tool() {
  case "$1" in
    bench_*)   echo "bench/${1#bench_}.cpp" ;;
    example_*) echo "examples/${1#example_}.cpp" ;;
    *_test)    echo "tests/$1.cpp" ;;
    *)         echo "tools/$1.cpp" ;;
  esac
}

for doc in $docs; do
  grep -nE 'build/[A-Za-z0-9_]+' "$doc" | while IFS=: read -r lineno line; do
    # A line may invoke several tools (pipes); every named tool must have
    # a source, and every --flag must exist in at least one of them.
    srcs=""
    for tool in $(echo "$line" | grep -oE 'build/[A-Za-z0-9_]+' | sort -u); do
      tool="${tool#build/}"
      src="$(source_for_tool "$tool")"
      if [ ! -f "$src" ]; then
        echo "check_docs: $doc:$lineno names 'build/$tool' but $src does not exist" >&2
        touch "$repo_root/.check_docs_failed"
      else
        srcs="$srcs $src"
      fi
    done
    [ -z "$srcs" ] && continue
    for flag in $(echo "$line" | grep -oE '\-\-[a-z][a-z0-9-]*'); do
      if ! grep -Fq -- "$flag" $srcs; then
        echo "check_docs: $doc:$lineno flag '$flag' not found in:$srcs" >&2
        touch "$repo_root/.check_docs_failed"
      fi
    done
  done
done
if [ -e .check_docs_failed ]; then rm -f .check_docs_failed; fail=1; fi

# --- 3. embedded example JSONL stays in sync (both directions) -------------
# Every committed example line must appear in docs/PROTOCOL.md ...
for example in examples/batch_queries.jsonl examples/resnet_block.jsonl; do
  while IFS= read -r line; do
    [ -z "$line" ] && continue
    if ! grep -Fxq -- "$line" docs/PROTOCOL.md; then
      err "docs/PROTOCOL.md is out of sync with $example (missing: $line)"
    fi
  done < "$example"
done
# ... and every example-shaped line embedded in PROTOCOL.md (a complete
# one-line model/layer/workload/network object — the kinds the example
# files hold; hand-written request/response illustrations use other keys
# or span lines) must still exist in a committed example file, so deleting
# an example line cannot leave a stale documented copy behind.
grep -E '^\{"(model|layer|workload|network)": .*\}$' docs/PROTOCOL.md |
  while IFS= read -r line; do
    if ! grep -Fxq -- "$line" examples/batch_queries.jsonl &&
       ! grep -Fxq -- "$line" examples/resnet_block.jsonl; then
      echo "check_docs: docs/PROTOCOL.md embeds a line no example file contains: $line" >&2
      touch "$repo_root/.check_docs_failed"
    fi
  done
if [ -e .check_docs_failed ]; then rm -f .check_docs_failed; fail=1; fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs: OK ($(echo $docs | wc -w) files checked)"
