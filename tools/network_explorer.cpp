// network_explorer: map a whole multi-layer model onto one shared PE array.
//
//   network_explorer --model resnet-block
//   network_explorer --file examples/resnet_block.jsonl --arrays 8x8,16x16
//   network_explorer --model attention-block --backend fpga --objective power
//   network_explorer --list-models
//
// Runs every (candidate array, layer) pair as ONE ExplorationService batch
// (shared evaluation cache, tile-mapping memo, lower-bound pruning), then
// composes the per-layer Pareto frontiers under the shared-array execution
// model: network cycles = sum over layers, network power/area = max over
// the chosen per-layer designs. Prints the network frontier with each
// design's per-layer dataflow assignment, the objective winner, and the
// service cache stats (repeated layer shapes show up as cache hits).
// docs/PROTOCOL.md documents the JSONL model format.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "driver/network_explorer.hpp"
#include "support/error.hpp"
#include "tensor/network.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: network_explorer (--model NAME | --file MODEL.jsonl)\n"
      "                        [--arrays RxC[,RxC...]] [--rows N] [--cols N]\n"
      "                        [--bandwidth-gbps F] [--frequency-mhz F]\n"
      "                        [--data-bytes N] [--data-width N]\n"
      "                        [--objective performance|power|energy-delay]\n"
      "                        [--backend asic|fpga] [--max-entry N]\n"
      "                        [--threads N] [--max-frontier N]\n"
      "                        [--list-models]\n"
      "Explores every layer of the model on each candidate array through\n"
      "one batched, cached service run and composes the network frontier.\n");
  return 2;
}

std::string arrayName(const stt::ArrayConfig& a) {
  return std::to_string(a.rows) + "x" + std::to_string(a.cols);
}

void printDesign(const driver::NetworkQuery& query,
                 const driver::NetworkDesign& design, const char* prefix) {
  std::printf("%s array %-7s cycles %-10.0f power %8.2f mW  area %8.4f  util %5.1f%%\n",
              prefix, arrayName(query.arrays[design.arrayIndex]).c_str(),
              design.cost.cycles, design.cost.powerMw, design.cost.area,
              100.0 * design.cost.utilization);
  for (const auto& layer : design.layers)
    std::printf("      %-12s -> %-14s cycles %-10lld util %5.1f%%\n",
                layer.layer.c_str(), layer.dataflow.c_str(),
                static_cast<long long>(layer.cycles),
                100.0 * layer.utilization);
}

}  // namespace

int main(int argc, char** argv) {
  std::string model, file, arraysArg;
  stt::ArrayConfig base;
  driver::Objective objective = driver::Objective::Performance;
  cost::BackendKind backend = cost::BackendKind::Asic;
  int dataWidth = 16, maxEntry = 1;
  std::size_t threads = 0, maxFrontier = 16;
  bool listModels = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--model") model = next();
      else if (a == "--file") file = next();
      else if (a == "--arrays") arraysArg = next();
      else if (a == "--rows") base.rows = std::stoll(next());
      else if (a == "--cols") base.cols = std::stoll(next());
      else if (a == "--bandwidth-gbps") base.bandwidthGBps = std::stod(next());
      else if (a == "--frequency-mhz") base.frequencyMHz = std::stod(next());
      else if (a == "--data-bytes") base.dataBytes = std::stoll(next());
      else if (a == "--data-width") dataWidth = std::stoi(next());
      else if (a == "--max-entry") maxEntry = std::stoi(next());
      else if (a == "--threads") threads = std::stoull(next());
      else if (a == "--max-frontier") maxFrontier = std::stoull(next());
      else if (a == "--objective") {
        const auto o = driver::parseObjective(next());
        if (!o) return usage();
        objective = *o;
      } else if (a == "--backend") {
        const auto b = cost::parseBackendKind(next());
        if (!b) return usage();
        backend = *b;
      } else if (a == "--list-models") listModels = true;
      else return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  if (listModels) {
    for (const auto& n : tensor::workloads::builtinNetworks())
      std::printf("%s", n.str().c_str());
    return 0;
  }
  if (model.empty() == file.empty()) return usage();  // exactly one source

  // Model resolution failures are input errors (exit 2, like usage);
  // failures during exploration below are runtime errors (exit 1).
  std::optional<tensor::NetworkSpec> network;
  try {
    if (!file.empty()) {
      network = tensor::workloads::loadNetworkJsonl(file);
    } else {
      const auto* builtin = tensor::workloads::findNetwork(model);
      if (!builtin)
        fail("unknown model '" + model + "' (try --list-models)");
      network = *builtin;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  try {
    driver::NetworkQuery query(*network);
    query.arrays = arraysArg.empty() ? std::vector<stt::ArrayConfig>{base}
                                     : driver::parseArrayList(arraysArg, base);
    query.objective = objective;
    query.backend = backend;
    query.dataWidth = dataWidth;
    query.enumeration.maxEntry = maxEntry;

    driver::ServiceOptions options;
    options.threads = threads;
    driver::NetworkExplorer explorer(options);

    std::printf("%s", network->str().c_str());
    const driver::NetworkResult result = explorer.explore(query);

    std::printf("\nper-layer exploration (%zu queries, %zu design points):\n",
                result.layers.size(), result.designs);
    for (const auto& s : result.layers)
      std::printf("  array %-7s %-12s designs %-7zu frontier %-4zu "
                  "cache hits %llu misses %llu pruned %llu\n",
                  arrayName(query.arrays[s.arrayIndex]).c_str(),
                  s.layer.c_str(), s.designs, s.frontierSize,
                  static_cast<unsigned long long>(s.cache.hits),
                  static_cast<unsigned long long>(s.cache.misses),
                  static_cast<unsigned long long>(s.cache.pruned));

    std::printf("\nnetwork frontier (%zu designs):\n", result.frontier.size());
    const std::size_t shown = std::min(maxFrontier, result.frontier.size());
    for (std::size_t i = 0; i < shown; ++i)
      printDesign(query, result.frontier[i], "  ");
    if (shown < result.frontier.size())
      std::printf("  ... %zu more (raise --max-frontier)\n",
                  result.frontier.size() - shown);

    if (result.best) {
      std::printf("\nbest (%s):\n",
                  driver::objectiveName(query.objective).c_str());
      printDesign(query, *result.best, "  ");
    }

    std::printf("\nservice cache: %s\n",
                explorer.service().cacheStats().str().c_str());
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
