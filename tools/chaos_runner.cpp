// chaos_runner: fault-injection harness for the resident explore_server.
//
//   chaos_runner --server ./explore_server            # full chaos suite
//   chaos_runner --server ./explore_server --smoke    # one cycle (CI)
//
// Drives `explore_server --serve` as a child process (driver::ExploreClient)
// through the failure modes a resident daemon must survive, checking after
// every recovery that the server still answers the reference query set with
// BIT-IDENTICAL responses (a baseline captured from a never-snapshotted,
// never-faulted server; per-query cache counters are stripped before
// comparing — warm traffic legitimately hits where cold traffic misses):
//
//   * graceful restart    stop (drains + snapshots) / start — must be warm
//   * kill -9 mid-batch   crash with requests in flight; the snapshot on
//                         disk stays whole (atomic tmp+rename)
//   * snapshot corruption byte flip / truncation of the on-disk snapshot;
//                         restart must log a cold start and keep answering
//   * snapshot_write faults (TENSORLIB_FAULTS): forced write failure,
//                         post-checksum corruption, half-file truncation
//   * overload storm      queue bound 1 + injected per-unit sleep; the
//                         pipelined burst must shed with "overloaded",
//                         never block or crash, and the client's
//                         exponential backoff must eventually get through
//   * deadline expiry     deadline_ms=1 under injected sleep — a partial,
//                         "timed_out" response, then full service again
//   * connection kill     (socket front-end, unix socket) sever the
//                         connection with requests in flight; the server
//                         must cancel the dropped client's queued work,
//                         keep serving other connections, and answer the
//                         reconnecting client bit-identically to stdio
//   * slow-reader storm   (socket front-end) flood requests and never
//                         read; the server must drop the stalled
//                         connection at its write-queue bound while a
//                         second connection keeps getting full service
//
// Exit codes: 0 all cycles survived, 1 divergence/crash, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "driver/explore_client.hpp"

extern "C" {
#include <unistd.h>
}

namespace {

using tensorlib::driver::ClientOptions;
using tensorlib::driver::ExploreClient;

int usage() {
  std::printf(
      "usage: chaos_runner --server PATH [--smoke] [--snapshot PATH]\n"
      "Drives PATH (an explore_server binary) in --serve mode through\n"
      "kill/restart/corrupt/overload/deadline fault cycles and checks every\n"
      "recovery answers the reference queries bit-identically.\n");
  return 2;
}

/// The reference query set every recovery must answer identically.
std::vector<std::string> referenceQueries(bool smoke) {
  std::vector<std::string> q = {
      R"({"workload": "gemm", "rows": 4, "cols": 4, "max_entry": 1})",
      R"({"workload": "gemm", "rows": 4, "cols": 4, "max_entry": 1, "objective": "power"})",
      R"({"workload": "gemm", "rows": 6, "cols": 6, "max_entry": 1, "objective": "energy-delay"})",
  };
  if (!smoke) {
    q.push_back(
        R"({"workload": "gemm", "rows": 4, "cols": 4, "max_entry": 1, "backend": "fpga"})");
    q.push_back(
        R"({"workload": "gemm", "rows": 6, "cols": 6, "max_entry": 1, "backend": "fpga", "objective": "power"})");
  }
  return q;
}

/// Strips the per-run volatile parts of a response: the "query" index
/// (monotonic per server lifetime) and the trailing "cache" counters
/// (legitimately different warm vs cold). Everything else must match bit
/// for bit.
std::string canonical(const std::string& response) {
  std::string s = response;
  if (s.rfind("{\"query\": ", 0) == 0) {
    const auto comma = s.find(", ");
    if (comma != std::string::npos) s = "{" + s.substr(comma + 2);
  }
  const auto cache = s.rfind(", \"cache\": ");
  if (cache != std::string::npos && s.size() >= 2 &&
      s.compare(s.size() - 2, 2, "}}") == 0) {
    s = s.substr(0, cache) + "}";
  }
  return s;
}

struct Harness {
  std::string server;
  std::string snapshotPath;
  std::string socketPath;  ///< unix socket for the socket-front-end cycles
  std::vector<std::string> queries;
  std::vector<std::string> baseline;  ///< canonical reference responses
  int faults = 0;     ///< injected faults survived so far
  int failures = 0;   ///< divergences / crashes observed

  ClientOptions clientOptions(const std::vector<std::string>& extraArgs,
                              const std::string& faultSpec) const {
    ClientOptions o;
    o.command = {server, "--serve", "--snapshot", snapshotPath};
    o.command.insert(o.command.end(), extraArgs.begin(), extraArgs.end());
    if (!faultSpec.empty()) o.env.push_back("TENSORLIB_FAULTS=" + faultSpec);
    return o;
  }

  /// Owner variant of clientOptions for the socket front-end: the spawned
  /// server listens on the harness unix socket (no port races) and the
  /// client speaks to it over that socket instead of stdio pipes.
  ClientOptions socketOwnerOptions(
      const std::vector<std::string>& extraArgs) const {
    ClientOptions o = clientOptions(extraArgs, "");
    o.command.push_back("--unix-socket");
    o.command.push_back(socketPath);
    o.unixSocketPath = socketPath;
    return o;
  }

  /// Connect-only client: attaches to whatever server currently owns the
  /// harness unix socket.
  ClientOptions socketPeerOptions() const {
    ClientOptions o;
    o.unixSocketPath = socketPath;
    return o;
  }

  void fail(const std::string& what) {
    ++failures;
    std::printf("  FAIL: %s\n", what.c_str());
  }

  /// Sends every reference query through `client` and checks the canonical
  /// responses against the baseline.
  bool checkAnswers(ExploreClient& client, const std::string& context) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto response = client.request(queries[i]);
      if (!response) {
        fail(context + ": no response to query " + std::to_string(i));
        return false;
      }
      if (canonical(*response) != baseline[i]) {
        fail(context + ": divergent response to query " + std::to_string(i) +
             "\n    got      " + canonical(*response) + "\n    expected " +
             baseline[i]);
        return false;
      }
    }
    return true;
  }

  /// Captures the baseline from a pristine server (no snapshot on disk,
  /// no faults), leaving a fresh snapshot behind for the chaos cycles.
  bool captureBaseline() {
    std::remove(snapshotPath.c_str());
    ExploreClient client(clientOptions({}, ""));
    for (const auto& q : queries) {
      const auto response = client.request(q);
      if (!response) {
        fail("baseline: server did not answer");
        return false;
      }
      baseline.push_back(canonical(*response));
    }
    client.stop();  // graceful: drains and writes the seed snapshot
    return true;
  }

  // ---- cycles --------------------------------------------------------------

  void gracefulRestartCycle() {
    std::printf("cycle: graceful restart\n");
    ExploreClient client(clientOptions({}, ""));
    if (!checkAnswers(client, "graceful restart")) return;
    client.stop();
    ExploreClient again(clientOptions({}, ""));
    checkAnswers(again, "after graceful restart");
    again.stop();
  }

  void killCycle() {
    std::printf("cycle: kill -9 mid-batch\n");
    ExploreClient client(clientOptions({"--snapshot-interval-ms", "20"}, ""));
    // Pipeline the whole set without reading, then crash mid-flight.
    for (const auto& q : queries) client.sendLine(q);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    client.killServer();
    ++faults;
    // The client transparently respawns; the atomic snapshot must have
    // survived the crash whole (or be absent — never half-written).
    checkAnswers(client, "after kill -9");
    client.stop();
  }

  void corruptSnapshotCycle(bool truncate) {
    std::printf("cycle: %s snapshot on disk\n",
                truncate ? "truncate" : "corrupt");
    {
      std::ifstream in(snapshotPath, std::ios::binary);
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      if (bytes.empty()) {
        fail("no snapshot on disk to corrupt");
        return;
      }
      if (truncate) {
        bytes.resize(bytes.size() / 2);
      } else {
        bytes[bytes.size() / 2] ^= 0x40;  // land inside the payload
      }
      std::ofstream out(snapshotPath, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    ++faults;
    ExploreClient client(clientOptions({}, ""));
    // Must cold-start (warning on stderr) and still answer identically;
    // the graceful stop below rewrites a healthy snapshot.
    checkAnswers(client, truncate ? "after truncated snapshot"
                                  : "after corrupted snapshot");
    client.stop();
  }

  void snapshotWriteFaultCycle(const std::string& action) {
    std::printf("cycle: snapshot_write=%s fault\n", action.c_str());
    {
      ExploreClient client(
          clientOptions({}, "snapshot_write=" + action + "@0"));
      checkAnswers(client, "under snapshot_write=" + action);
      client.stop();  // shutdown snapshot hits the fault too
      ++faults;
    }
    // Next boot sees the fault's wreckage (stale, corrupt or truncated
    // snapshot) and must recover to identical answers.
    ExploreClient client(clientOptions({}, ""));
    checkAnswers(client, "after snapshot_write=" + action);
    client.stop();
  }

  void overloadStormCycle() {
    std::printf("cycle: overload storm\n");
    ExploreClient client(clientOptions(
        {"--queue-bound", "1", "--client-queue-bound", "1", "--workers", "1"},
        "work_unit=sleep:40@0"));
    if (!client.start()) {
      fail("overload storm: server did not start");
      return;
    }
    // Pipeline a burst without reading: with one queue slot and every work
    // unit slowed 40 ms, most of the burst must be shed.
    const int burst = 8;
    for (int i = 0; i < burst; ++i) client.sendLine(queries[0]);
    int overloaded = 0, answered = 0;
    for (int i = 0; i < burst; ++i) {
      const auto response = client.readLine();
      if (!response) {
        fail("overload storm: server died mid-burst");
        return;
      }
      if (response->find("\"error\": \"overloaded\"") != std::string::npos) {
        ++overloaded;
      } else {
        ++answered;
      }
    }
    if (overloaded == 0) fail("overload storm: nothing was shed");
    if (answered == 0) fail("overload storm: nothing was answered");
    faults += overloaded;
    std::printf("  shed %d of %d, answered %d\n", overloaded, burst, answered);
    // The retry client must get through the (still slowed) server.
    const auto response = client.request(queries[0]);
    if (!response ||
        response->find("\"frontier\"") == std::string::npos) {
      fail("overload storm: backoff retry did not get through");
    }
    client.stop();
  }

  void connectionKillCycle() {
    std::printf("cycle: kill the connection (socket)\n");
    ExploreClient owner(socketOwnerOptions({}));
    // The canonical baseline was captured over stdio pipes; matching it
    // here is the cross-transport bit-identity check.
    if (!checkAnswers(owner, "socket service")) {
      owner.stop();
      return;
    }
    // Pipeline the whole set without reading, then sever the connection
    // mid-flight. The server must cancel the dropped connection's queued
    // work and keep running.
    for (const auto& q : queries) owner.sendLine(q);
    owner.dropConnection();
    ++faults;
    // A second, connect-only connection gets full service from the same
    // server...
    ExploreClient peer(socketPeerOptions());
    checkAnswers(peer, "second connection after kill");
    peer.dropConnection();
    // ...and the dropped client reconnects (request() re-establishes) to
    // identical answers.
    checkAnswers(owner, "reconnect after connection kill");
    owner.stop();
  }

  void slowReaderStormCycle() {
    std::printf("cycle: slow-reader storm (socket)\n");
    // Tiny server-side send buffer + tight write-queue bound: once the
    // flooding client's socket backs up, the per-connection write queue
    // overflows and the server must drop THAT connection, never stall a
    // worker or another connection.
    ExploreClient owner(socketOwnerOptions(
        {"--queue-bound", "2048", "--client-queue-bound", "2048",
         "--write-queue-bound", "4", "--send-buffer-bytes", "4096",
         "--workers", "2"}));
    if (!owner.start()) {
      fail("slow-reader storm: server did not start");
      return;
    }
    const std::string big =
        R"({"workload": "gemm", "rows": 8, "cols": 8, "max_entry": 2})";
    int sent = 0;
    for (int i = 0; i < 512; ++i) {
      if (!owner.sendLine(big)) break;  // server already dropped us
      ++sent;
    }
    ++faults;
    std::printf("  flooded %d requests without reading\n", sent);
    // A healthy second connection keeps getting bit-identical service
    // while the storm connection backs up / gets dropped.
    ExploreClient peer(socketPeerOptions());
    checkAnswers(peer, "during slow-reader storm");
    peer.dropConnection();
    // The storm client itself must be able to rejoin.
    owner.dropConnection();
    checkAnswers(owner, "after slow-reader storm");
    owner.stop();
  }

  void deadlineCycle() {
    std::printf("cycle: deadline expiry\n");
    ExploreClient client(clientOptions({}, "work_unit=sleep:30@0"));
    std::string query = queries[0];
    query.insert(query.size() - 1, ", \"deadline_ms\": 1");
    const auto response = client.request(query);
    if (!response) {
      fail("deadline: no response");
      return;
    }
    if (response->find("\"timed_out\": true") == std::string::npos) {
      fail("deadline: expired query not marked timed_out: " + *response);
      return;
    }
    ++faults;
    client.stop();
    // A fresh, unslowed server must still answer in full.
    ExploreClient again(clientOptions({}, ""));
    checkAnswers(again, "after deadline cycle");
    again.stop();
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string server;
  std::string snapshotPath = "chaos_runner.snap.tmp";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--server" && i + 1 < argc) server = argv[++i];
    else if (a == "--snapshot" && i + 1 < argc) snapshotPath = argv[++i];
    else if (a == "--smoke") smoke = true;
    else return usage();
  }
  if (server.empty()) return usage();
  if (access(server.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "server binary not executable: %s\n", server.c_str());
    return 2;
  }

  Harness h;
  h.server = server;
  h.snapshotPath = snapshotPath;
  h.socketPath = snapshotPath + ".sock";
  h.queries = referenceQueries(smoke);

  std::printf("chaos_runner: %s suite against %s\n",
              smoke ? "smoke" : "full", server.c_str());
  if (!h.captureBaseline()) return 1;

  if (smoke) {
    h.killCycle();
    h.corruptSnapshotCycle(/*truncate=*/false);
    h.connectionKillCycle();
    h.slowReaderStormCycle();
  } else {
    h.gracefulRestartCycle();
    for (int round = 0; round < 9; ++round) h.killCycle();
    for (int round = 0; round < 4; ++round) {
      h.corruptSnapshotCycle(/*truncate=*/false);
      h.corruptSnapshotCycle(/*truncate=*/true);
    }
    h.snapshotWriteFaultCycle("fail");
    h.snapshotWriteFaultCycle("corrupt");
    h.snapshotWriteFaultCycle("truncate");
    h.overloadStormCycle();
    h.deadlineCycle();
    for (int round = 0; round < 2; ++round) h.connectionKillCycle();
    h.slowReaderStormCycle();
  }

  std::remove(snapshotPath.c_str());
  std::remove(h.socketPath.c_str());
  std::printf("chaos_runner: %d injected faults survived, %d failures\n",
              h.faults, h.failures);
  if (h.failures > 0) return 1;
  if (!smoke && h.faults < 25) {
    std::printf("chaos_runner: expected >= 25 injected faults, got %d\n",
                h.faults);
    return 1;
  }
  return 0;
}
