// conformance_runner: sweep the cross-layer differential oracle.
//
//   conformance_runner                         # all registered workloads
//   conformance_runner --workload conv2d-strided
//   conformance_runner --seeds 200             # 200 random algebras
//   conformance_runner --seeds 1000 --time-budget-ms 120000   # CI smoke
//   conformance_runner --seeds 1 --seed-base 1337             # replay
//
// Every design point of every scenario runs through the dense reference,
// the behavioral simulator with trace memoization on and off, and the
// generated netlist under both RTL engines; the first divergent layer is
// reported with the replay seed. Fuzz failures are shrunk to a minimal
// failing algebra before printing. Exit code 0 iff everything conformed.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "support/error.hpp"
#include "tensor/workloads.hpp"
#include "verify/conformance.hpp"
#include "verify/fuzz.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: conformance_runner [--workload NAME] [--seeds N]\n"
      "                          [--seed-base S] [--data-seed S]\n"
      "                          [--rows R --cols C] [--max-specs N]\n"
      "                          [--max-rtl N] [--time-budget-ms T]\n"
      "                          [--no-shrink] [--list]\n"
      "With no --seeds/--workload, checks every registered workload.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload;
  std::int64_t seeds = 0, seedBase = 1;
  std::int64_t timeBudgetMs = 0;
  bool shrink = true, list = false;
  verify::ConformanceOptions options;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--workload") workload = next();
      else if (a == "--seeds") seeds = std::stoll(next());
      else if (a == "--seed-base") seedBase = std::stoll(next());
      else if (a == "--data-seed") options.dataSeed = std::stoull(next());
      else if (a == "--rows") options.array.rows = std::stoll(next());
      else if (a == "--cols") options.array.cols = std::stoll(next());
      else if (a == "--max-specs") options.maxSpecsPerSelection = std::stoull(next());
      else if (a == "--max-rtl") options.maxRtlSpecs = std::stoull(next());
      else if (a == "--time-budget-ms") timeBudgetMs = std::stoll(next());
      else if (a == "--no-shrink") shrink = false;
      else if (a == "--list") list = true;
      else return usage();
    }
  } catch (const std::exception&) {  // non-numeric / overflowing flag value
    return usage();
  }

  if (list) {
    for (const auto& w : tensor::workloads::allWorkloads())
      std::printf("%-20s %s\n", w.name.c_str(), w.algebra.str().c_str());
    return 0;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto budgetLeft = [&] {
    if (timeBudgetMs <= 0) return true;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return elapsed < timeBudgetMs;
  };

  int tableDivergent = 0, fuzzDivergent = 0;
  std::int64_t checked = 0;

  // --- Scenario table ---------------------------------------------------
  if (seeds == 0 || !workload.empty()) {
    for (const auto& w : tensor::workloads::allWorkloads()) {
      if (!workload.empty() && w.name != workload) continue;
      if (!budgetLeft()) {
        std::printf("time budget exhausted after %lld scenario(s)\n",
                    static_cast<long long>(checked));
        break;
      }
      verify::ConformanceOptions o = options;
      o.enumeration.dropAllUnicast = !w.allowAllUnicast;
      o.maxSpecsPerSelection =
          std::min(o.maxSpecsPerSelection, w.sweepCap);
      const auto report = verify::checkAlgebra(w.algebra, o);
      ++checked;
      const std::string detail =
          report.pass() ? std::string() : "\n" + report.summary();
      std::printf("[%s] %-20s specs=%zu rtl=%zu%s\n",
                  report.pass() ? "PASS" : "FAIL", w.name.c_str(),
                  report.specsChecked, report.rtlSpecsChecked, detail.c_str());
      if (!report.pass()) ++tableDivergent;
    }
    if (!workload.empty() && checked == 0) {
      std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                   workload.c_str());
      return 2;
    }
  }

  // --- Fuzzed algebras --------------------------------------------------
  if (seeds > 0) {
    const verify::FuzzOptions fuzzOpts;
    // Keep all-unicast (streaming) designs: without them ~1% of random
    // algebras enumerate an empty — vacuous — design space.
    verify::ConformanceOptions fuzzConformance = options;
    fuzzConformance.enumeration.dropAllUnicast = false;
    std::int64_t ran = 0;
    for (std::int64_t s = 0; s < seeds; ++s) {
      if (!budgetLeft()) {
        std::printf("time budget exhausted after %lld of %lld seeds\n",
                    static_cast<long long>(ran), static_cast<long long>(seeds));
        break;
      }
      const std::uint64_t seed = static_cast<std::uint64_t>(seedBase + s);
      const auto algebra = verify::randomAlgebra(seed, fuzzOpts);
      verify::ConformanceReport report;
      bool errored = false;
      std::string errorText;
      try {
        report = verify::checkAlgebra(algebra, fuzzConformance);
      } catch (const Error& e) {
        errored = true;
        errorText = e.what();
      }
      ++ran;
      if (!errored && report.pass()) continue;

      ++fuzzDivergent;
      std::printf("[FAIL] fuzz seed %llu\n  %s\n",
                  static_cast<unsigned long long>(seed),
                  verify::describeAlgebra(algebra).c_str());
      if (errored)
        std::printf("  pipeline error: %s\n", errorText.c_str());
      else
        std::printf("%s\n", report.summary().c_str());

      // Shrinking minimizes divergences; a vacuous failure (empty design
      // space) or pipeline error has nothing for the predicate to hold onto.
      if (shrink && !errored && !report.failures.empty()) {
        const auto minimal = verify::shrinkAlgebra(
            algebra, verify::divergencePredicate(fuzzConformance), fuzzOpts);
        std::printf("  shrunken to:\n  %s\n",
                    verify::describeAlgebra(minimal).c_str());
      }
      std::printf("  replay: conformance_runner --seeds 1 --seed-base %llu\n",
                  static_cast<unsigned long long>(seed));
    }
    std::printf("fuzz: %lld seed(s) checked, %d divergent\n",
                static_cast<long long>(ran), fuzzDivergent);
  }

  return tableDivergent + fuzzDivergent == 0 ? 0 : 1;
}
