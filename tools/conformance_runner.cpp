// conformance_runner: sweep the cross-layer differential oracle.
//
//   conformance_runner                         # all registered workloads
//   conformance_runner --workload conv2d-strided
//   conformance_runner --seeds 200             # 200 random algebras
//   conformance_runner --seeds 1000 --time-budget-ms 120000   # CI smoke
//   conformance_runner --seeds 1 --seed-base 1337             # replay
//   conformance_runner --model all             # stitched builtin models
//   conformance_runner --model mlp-3 --threads 8
//   conformance_runner --network-seeds 100     # fuzzed stitched models
//
// Every design point of every scenario runs through the dense reference,
// the behavioral simulator with trace memoization on and off, and the
// generated netlist under both RTL engines; the first divergent layer is
// reported with the replay seed. Fuzz failures are shrunk to a minimal
// failing algebra before printing. --model / --network-seeds lift the
// oracle to whole models: per-layer exploration winners stitched into ONE
// compiled netlist with inter-layer buffers, executed element-exactly
// against the composed dense reference (src/verify/model_conformance.*).
// Exit code 0 iff everything conformed.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "support/error.hpp"
#include "tensor/network.hpp"
#include "tensor/workloads.hpp"
#include "verify/conformance.hpp"
#include "verify/fuzz.hpp"
#include "verify/model_conformance.hpp"
#include "verify/network_fuzz.hpp"

namespace {

using namespace tensorlib;

int usage() {
  std::printf(
      "usage: conformance_runner [--workload NAME] [--seeds N]\n"
      "                          [--seed-base S] [--data-seed S]\n"
      "                          [--rows R --cols C] [--max-specs N]\n"
      "                          [--max-rtl N] [--time-budget-ms T]\n"
      "                          [--model NAME|all] [--network-seeds N]\n"
      "                          [--threads T] [--no-shrink] [--list]\n"
      "With no --seeds/--workload/--model/--network-seeds, checks every\n"
      "registered workload. --model runs the stitched model oracle on a\n"
      "builtin network (all of them with 'all'); --network-seeds fuzzes\n"
      "random stitched models; --threads sets the exploration service\n"
      "worker count for the model paths.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload, model;
  std::int64_t seeds = 0, seedBase = 1, networkSeeds = 0, threads = 1;
  std::int64_t timeBudgetMs = 0;
  bool shrink = true, list = false;
  verify::ConformanceOptions options;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) { usage(); std::exit(2); }
        return argv[++i];
      };
      if (a == "--workload") workload = next();
      else if (a == "--seeds") seeds = std::stoll(next());
      else if (a == "--seed-base") seedBase = std::stoll(next());
      else if (a == "--data-seed") options.dataSeed = std::stoull(next());
      else if (a == "--rows") options.array.rows = std::stoll(next());
      else if (a == "--cols") options.array.cols = std::stoll(next());
      else if (a == "--max-specs") options.maxSpecsPerSelection = std::stoull(next());
      else if (a == "--max-rtl") options.maxRtlSpecs = std::stoull(next());
      else if (a == "--time-budget-ms") timeBudgetMs = std::stoll(next());
      else if (a == "--model") model = next();
      else if (a == "--network-seeds") networkSeeds = std::stoll(next());
      else if (a == "--threads") threads = std::stoll(next());
      else if (a == "--no-shrink") shrink = false;
      else if (a == "--list") list = true;
      else return usage();
    }
  } catch (const std::exception&) {  // non-numeric / overflowing flag value
    return usage();
  }

  if (list) {
    for (const auto& w : tensor::workloads::allWorkloads())
      std::printf("%-20s %s\n", w.name.c_str(), w.algebra.str().c_str());
    return 0;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto budgetLeft = [&] {
    if (timeBudgetMs <= 0) return true;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return elapsed < timeBudgetMs;
  };

  int tableDivergent = 0, fuzzDivergent = 0;
  int modelDivergent = 0, networkFuzzDivergent = 0;
  std::int64_t checked = 0;

  verify::ModelConformanceOptions modelOptions;
  modelOptions.array = options.array;
  modelOptions.dataSeed = options.dataSeed;
  modelOptions.threads = static_cast<std::size_t>(threads > 0 ? threads : 1);

  // --- Scenario table ---------------------------------------------------
  const bool modelMode = !model.empty() || networkSeeds > 0;
  if ((seeds == 0 && !modelMode) || !workload.empty()) {
    for (const auto& w : tensor::workloads::allWorkloads()) {
      if (!workload.empty() && w.name != workload) continue;
      if (!budgetLeft()) {
        std::printf("time budget exhausted after %lld scenario(s)\n",
                    static_cast<long long>(checked));
        break;
      }
      verify::ConformanceOptions o = options;
      o.enumeration.dropAllUnicast = !w.allowAllUnicast;
      o.maxSpecsPerSelection =
          std::min(o.maxSpecsPerSelection, w.sweepCap);
      const auto report = verify::checkAlgebra(w.algebra, o);
      ++checked;
      const std::string detail =
          report.pass() ? std::string() : "\n" + report.summary();
      std::printf("[%s] %-20s specs=%zu rtl=%zu%s\n",
                  report.pass() ? "PASS" : "FAIL", w.name.c_str(),
                  report.specsChecked, report.rtlSpecsChecked, detail.c_str());
      if (!report.pass()) ++tableDivergent;
    }
    if (!workload.empty() && checked == 0) {
      std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                   workload.c_str());
      return 2;
    }
  }

  // --- Fuzzed algebras --------------------------------------------------
  if (seeds > 0) {
    const verify::FuzzOptions fuzzOpts;
    // Keep all-unicast (streaming) designs: without them ~1% of random
    // algebras enumerate an empty — vacuous — design space.
    verify::ConformanceOptions fuzzConformance = options;
    fuzzConformance.enumeration.dropAllUnicast = false;
    std::int64_t ran = 0;
    for (std::int64_t s = 0; s < seeds; ++s) {
      if (!budgetLeft()) {
        std::printf("time budget exhausted after %lld of %lld seeds\n",
                    static_cast<long long>(ran), static_cast<long long>(seeds));
        break;
      }
      const std::uint64_t seed = static_cast<std::uint64_t>(seedBase + s);
      const auto algebra = verify::randomAlgebra(seed, fuzzOpts);
      verify::ConformanceReport report;
      bool errored = false;
      std::string errorText;
      try {
        report = verify::checkAlgebra(algebra, fuzzConformance);
      } catch (const Error& e) {
        errored = true;
        errorText = e.what();
      }
      ++ran;
      if (!errored && report.pass()) continue;

      ++fuzzDivergent;
      std::printf("[FAIL] fuzz seed %llu\n  %s\n",
                  static_cast<unsigned long long>(seed),
                  verify::describeAlgebra(algebra).c_str());
      if (errored)
        std::printf("  pipeline error: %s\n", errorText.c_str());
      else
        std::printf("%s\n", report.summary().c_str());

      // Shrinking minimizes divergences; a vacuous failure (empty design
      // space) or pipeline error has nothing for the predicate to hold onto.
      if (shrink && !errored && !report.failures.empty()) {
        const auto minimal = verify::shrinkAlgebra(
            algebra, verify::divergencePredicate(fuzzConformance), fuzzOpts);
        std::printf("  shrunken to:\n  %s\n",
                    verify::describeAlgebra(minimal).c_str());
      }
      std::printf("  replay: conformance_runner --seeds 1 --seed-base %llu\n",
                  static_cast<unsigned long long>(seed));
    }
    std::printf("fuzz: %lld seed(s) checked, %d divergent\n",
                static_cast<long long>(ran), fuzzDivergent);
  }

  // --- Stitched builtin models ------------------------------------------
  if (!model.empty()) {
    bool found = false;
    for (const auto& network : tensor::workloads::builtinNetworks()) {
      if (model != "all" && network.name() != model) continue;
      found = true;
      if (!budgetLeft()) {
        std::printf("time budget exhausted before model '%s'\n",
                    network.name().c_str());
        break;
      }
      const auto report = verify::checkModel(network, modelOptions);
      std::printf("[%s] %s\n", report.pass() ? "PASS" : "FAIL",
                  report.summary().c_str());
      if (!report.pass()) ++modelDivergent;
    }
    if (!found) {
      std::fprintf(stderr, "unknown model '%s' (builtins: ", model.c_str());
      for (const auto& network : tensor::workloads::builtinNetworks())
        std::fprintf(stderr, "%s ", network.name().c_str());
      std::fprintf(stderr, ")\n");
      return 2;
    }
  }

  // --- Fuzzed stitched models -------------------------------------------
  if (networkSeeds > 0) {
    std::int64_t ran = 0;
    for (std::int64_t s = 0; s < networkSeeds; ++s) {
      if (!budgetLeft()) {
        std::printf("time budget exhausted after %lld of %lld network seeds\n",
                    static_cast<long long>(ran),
                    static_cast<long long>(networkSeeds));
        break;
      }
      const std::uint64_t seed = static_cast<std::uint64_t>(seedBase + s);
      const auto network = verify::randomNetwork(seed);
      const auto report = verify::checkModel(network, modelOptions);
      ++ran;
      if (report.pass()) continue;

      ++networkFuzzDivergent;
      std::printf("[FAIL] network fuzz seed %llu\n%s\n  %s\n",
                  static_cast<unsigned long long>(seed),
                  network.str().c_str(), report.summary().c_str());
      if (shrink) {
        const auto minimal = verify::shrinkNetwork(
            network, [&](const tensor::NetworkSpec& candidate) {
              return !verify::checkModel(candidate, modelOptions).pass();
            });
        std::printf("  shrunken to:\n%s\n", minimal.str().c_str());
      }
      std::printf(
          "  replay: conformance_runner --network-seeds 1 --seed-base %llu "
          "--data-seed %llu\n",
          static_cast<unsigned long long>(seed),
          static_cast<unsigned long long>(modelOptions.dataSeed));
    }
    std::printf("network fuzz: %lld seed(s) checked, %d divergent\n",
                static_cast<long long>(ran), networkFuzzDivergent);
  }

  return tableDivergent + fuzzDivergent + modelDivergent +
                     networkFuzzDivergent ==
                 0
             ? 0
             : 1;
}
