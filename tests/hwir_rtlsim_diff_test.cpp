// Differential test: the compiled-tape RTL engine must be bit-identical to
// the legacy walk-the-graph interpreter on every node, every cycle — over
// PRNG-generated netlists (random widths, kinds, feedback registers,
// enables) and over a real generated accelerator netlist.
#include <gtest/gtest.h>

#include <vector>

#include "arch/generator.hpp"
#include "hwir/module.hpp"
#include "hwir/rtlsim.hpp"
#include "stt/enumerate.hpp"
#include "support/prng.hpp"
#include "tensor/workloads.hpp"

namespace tensorlib::hwir {
namespace {

/// Grows a random but structurally valid netlist: mixed Bits/Float32 pools,
/// registers with feedback (D connected after downstream logic exists) and
/// random enables, every op the IR defines, a few output ports.
Netlist randomNetlist(Prng& rng, int extraNodes) {
  Netlist n("fuzz");
  std::vector<NodeId> bits;
  std::vector<NodeId> floats;
  std::vector<NodeId> danglingRegs;  // Bits regs awaiting a D connection

  const int numInputs = static_cast<int>(rng.uniformInt(2, 5));
  for (int i = 0; i < numInputs; ++i)
    bits.push_back(n.input("in" + std::to_string(i),
                           static_cast<int>(rng.uniformInt(1, 48))));
  floats.push_back(n.input("fin0", 32, DataKind::Float32));
  floats.push_back(n.input("fin1", 32, DataKind::Float32));
  bits.push_back(n.constant(rng.uniformInt(-100, 100),
                            static_cast<int>(rng.uniformInt(2, 64))));
  floats.push_back(n.constant(
      static_cast<std::int64_t>(RtlSimulator::encodeFloat(1.25f)), 32,
      DataKind::Float32));

  auto pickBits = [&] {
    return bits[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(bits.size()) - 1))];
  };
  auto pickFloat = [&] {
    return floats[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(floats.size()) - 1))];
  };

  for (int i = 0; i < extraNodes; ++i) {
    switch (rng.uniformInt(0, 11)) {
      case 0: bits.push_back(n.add(pickBits(), pickBits())); break;
      case 1: bits.push_back(n.sub(pickBits(), pickBits())); break;
      case 2: bits.push_back(n.mul(pickBits(), pickBits())); break;
      case 3: bits.push_back(n.mux(pickBits(), pickBits(), pickBits())); break;
      case 4: bits.push_back(n.eq(pickBits(), pickBits())); break;
      case 5: bits.push_back(n.lt(pickBits(), pickBits())); break;
      case 6: bits.push_back(n.logicalAnd(pickBits(), pickBits())); break;
      case 7: bits.push_back(n.logicalOr(pickBits(), pickBits())); break;
      case 8: bits.push_back(n.logicalNot(pickBits())); break;
      case 9: {
        const NodeId r =
            n.reg(static_cast<int>(rng.uniformInt(1, 48)), DataKind::Bits,
                  rng.uniformInt(-8, 8), "r" + std::to_string(i));
        danglingRegs.push_back(r);
        bits.push_back(r);
        break;
      }
      case 10:
        floats.push_back(rng.uniformInt(0, 2) == 0
                             ? n.add(pickFloat(), pickFloat())
                             : rng.uniformInt(0, 1) == 0
                                   ? n.sub(pickFloat(), pickFloat())
                                   : n.mul(pickFloat(), pickFloat()));
        break;
      case 11: {
        const NodeId r = n.reg(32, DataKind::Float32, 0, "fr" + std::to_string(i));
        n.connectRegInput(r, pickFloat());
        floats.push_back(r);
        break;
      }
    }
  }
  // Close the feedback loops: any Bits node (including later ones) may feed
  // a register; about half the registers get a 1-bit enable.
  for (NodeId r : danglingRegs) {
    n.connectRegInput(r, pickBits());
    if (rng.uniformInt(0, 1) == 0) n.connectRegEnable(r, n.eq(pickBits(), pickBits()));
  }
  n.output("out_b", pickBits());
  n.output("out_f", pickFloat());
  return n;
}

void runDifferential(const Netlist& netlist, Prng& rng, int cycles) {
  RtlSimulator compiled(netlist, SimEngine::Compiled);
  RtlSimulator legacy(netlist, SimEngine::Legacy);
  for (int c = 0; c < cycles; ++c) {
    for (NodeId in : netlist.inputs()) {
      const std::uint64_t v = rng.next();
      compiled.poke(in, v);
      legacy.poke(in, v);
    }
    compiled.evaluate();
    legacy.evaluate();
    for (NodeId id = 0; id < netlist.size(); ++id)
      ASSERT_EQ(compiled.peek(id), legacy.peek(id))
          << "node " << id << " (" << opName(netlist.node(id).op) << " '"
          << netlist.node(id).name << "') diverges at cycle " << c;
    compiled.step();
    legacy.step();
  }
  EXPECT_EQ(compiled.cycle(), legacy.cycle());
}

TEST(RtlSimDiff, RandomNetlistsBitIdentical) {
  Prng seeds(0xd1ffe7e57ULL);
  for (int trial = 0; trial < 25; ++trial) {
    Prng rng(seeds.next());
    const Netlist n = randomNetlist(rng, static_cast<int>(rng.uniformInt(20, 120)));
    runDifferential(n, rng, 40);
  }
}

TEST(RtlSimDiff, GeneratedAcceleratorBitIdentical) {
  const auto g = tensor::workloads::gemm(8, 8, 8);
  const auto spec = stt::findDataflowByLabel(g, "MNK-SST");
  ASSERT_TRUE(spec.has_value());
  stt::ArrayConfig config;
  config.rows = 4;
  config.cols = 4;
  const auto acc = arch::generateAccelerator(*spec, config);
  Prng rng(42);
  runDifferential(acc.netlist, rng, 64);
}

TEST(RtlSimDiff, CompiledIsDefaultEngine) {
  Netlist n("tiny");
  const NodeId a = n.input("a", 8);
  n.output("y", n.add(a, n.constant(1, 8)));
  RtlSimulator sim(n);
  EXPECT_EQ(sim.engine(), SimEngine::Compiled);
  sim.poke("a", 41);
  sim.evaluate();
  EXPECT_EQ(sim.peekOutput("y"), 42u);
}

}  // namespace
}  // namespace tensorlib::hwir
